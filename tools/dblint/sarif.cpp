#include "sarif.hpp"

#include <cstdio>
#include <map>
#include <sstream>

namespace dblint {
namespace {

std::string json_escape(const std::string& s) {
  std::ostringstream out;
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

struct RuleMeta {
  const char* id;
  const char* description;
};

/// Static rule table — stable ruleIndex values regardless of which rules
/// fired in a given run.
const std::vector<RuleMeta>& rule_table() {
  static const std::vector<RuleMeta> kRules = {
      {"ct-compare", "Secret buffers must be compared with ct_equal, not memcmp/=="},
      {"rng", "Crypto-bearing directories must use SecureRng, not a deterministic RNG"},
      {"expose", "expose_secret() is restricted to the crypto kernel"},
      {"log-secret", "Logging statements must not mention secret material"},
      {"layering", "Include layering must be respected and acyclic"},
      {"unchecked-status", "Status/Result return values must be consumed"},
      {"lock-discipline", "RAII guards only; the lock-order graph must be acyclic"},
      {"leakage-conformance", "Declared tactic leakage must fit the schema ceilings"},
      {"secret-cache", "Secret-derived cached values live only in core/hot_cache"},
      {"secret-egress",
       "No unsanitized secret/plaintext flow may reach an egress sink "
       "(interprocedural taint analysis)"},
      {"wipe-on-all-paths",
       "Raw copies of expose_secret() products must be wiped on every exit path"},
      {"lock-held-egress",
       "No RPC/channel egress may be reachable while a mutex is held"},
      {"inconsistent-lockset",
       "Concurrently-reachable accesses to a field must share a common mutex "
       "(interprocedural lockset analysis)"},
      {"guard-escape",
       "Pointers/iterators into guarded fields must not outlive the guard"},
      {"lock-order-cycle",
       "The interprocedural lock-order graph must stay acyclic"},
  };
  return kRules;
}

int rule_index(const std::string& rule) {
  const auto& table = rule_table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (rule == table[i].id) return static_cast<int>(i);
  }
  return -1;
}

void emit_location(std::ostringstream& os, const std::string& file, int line,
                   const std::string& indent) {
  os << indent << "{\n";
  os << indent << "  \"physicalLocation\": {\n";
  os << indent << "    \"artifactLocation\": {\"uri\": \"" << json_escape(file)
     << "\"},\n";
  os << indent << "    \"region\": {\"startLine\": " << (line > 0 ? line : 1) << "}\n";
  os << indent << "  }\n";
  os << indent << "}";
}

}  // namespace

std::string to_sarif(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  os << "  \"version\": \"2.1.0\",\n";
  os << "  \"runs\": [\n";
  os << "    {\n";
  os << "      \"tool\": {\n";
  os << "        \"driver\": {\n";
  os << "          \"name\": \"dblint\",\n";
  os << "          \"informationUri\": \"https://example.invalid/dblint\",\n";
  os << "          \"rules\": [\n";
  const auto& table = rule_table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    os << "            {\"id\": \"" << table[i].id
       << "\", \"shortDescription\": {\"text\": \"" << json_escape(table[i].description)
       << "\"}}" << (i + 1 < table.size() ? "," : "") << "\n";
  }
  os << "          ]\n";
  os << "        }\n";
  os << "      },\n";
  os << "      \"results\": [\n";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    os << "        {\n";
    os << "          \"ruleId\": \"" << json_escape(d.rule) << "\",\n";
    const int idx = rule_index(d.rule);
    if (idx >= 0) os << "          \"ruleIndex\": " << idx << ",\n";
    os << "          \"level\": \"error\",\n";
    os << "          \"message\": {\"text\": \"" << json_escape(d.message) << "\"},\n";
    os << "          \"locations\": [\n";
    emit_location(os, d.file, d.line, "            ");
    os << "\n          ]";
    if (!d.trace.empty()) {
      os << ",\n          \"codeFlows\": [\n";
      os << "            {\"threadFlows\": [{\"locations\": [\n";
      for (std::size_t t = 0; t < d.trace.size(); ++t) {
        const TraceStep& step = d.trace[t];
        os << "              {\"location\": {\n";
        os << "                \"physicalLocation\": {\n";
        os << "                  \"artifactLocation\": {\"uri\": \""
           << json_escape(step.file) << "\"},\n";
        os << "                  \"region\": {\"startLine\": "
           << (step.line > 0 ? step.line : 1) << "}\n";
        os << "                },\n";
        os << "                \"message\": {\"text\": \"" << json_escape(step.note)
           << "\"}\n";
        os << "              }}" << (t + 1 < d.trace.size() ? "," : "") << "\n";
      }
      os << "            ]}]}\n";
      os << "          ]";
    }
    os << "\n        }" << (i + 1 < diagnostics.size() ? "," : "") << "\n";
  }
  os << "      ]\n";
  os << "    }\n";
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

}  // namespace dblint
