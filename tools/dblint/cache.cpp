#include "cache.hpp"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>

#include "text.hpp"

namespace dblint {
namespace {

// v2: FieldDecl (fd) and FieldAccess (fa) records, GuardSite::var,
// Statement::held_mutexes (H section), FunctionInfo::thread_root.
constexpr int kFormatVersion = 2;

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::filesystem::path cache_file_for(const std::string& cache_dir,
                                     const std::string& path) {
  return std::filesystem::path(cache_dir) / (hex64(fnv1a64(path)) + ".facts");
}

// Serialization helpers. Every record is one line; the only fields that may
// contain spaces (diagnostic messages) go last on their line. Empty strings
// are written as "-" (no identifier/path in the model is a bare dash).

std::string opt(const std::string& s) { return s.empty() ? "-" : s; }
std::string unopt(const std::string& s) { return s == "-" ? "" : s; }

void write_marker_sets(std::ostream& os, const char* rec,
                       const std::vector<std::set<std::string>>& sets) {
  for (std::size_t i = 0; i < sets.size(); ++i) {
    for (const std::string& rule : sets[i]) {
      os << rec << " " << i << " " << rule << "\n";
    }
  }
}

// Cursor over the whole cache file: splits lines, then space-separated fields
// within the current line. The loader IS the warm-path cost (the --stats gate
// in CI asserts warm >= 3x faster than cold), so it walks raw pointers
// instead of spinning up an istringstream per line.
class Cursor {
 public:
  explicit Cursor(const std::string& buf)
      : p_(buf.data()), end_(buf.data() + buf.size()) {}

  bool next_line() {
    if (p_ >= end_) return false;
    const char* nl = static_cast<const char*>(
        std::memchr(p_, '\n', static_cast<std::size_t>(end_ - p_)));
    line_ = std::string_view(p_, static_cast<std::size_t>((nl ? nl : end_) - p_));
    p_ = nl ? nl + 1 : end_;
    return true;
  }

  bool field(std::string_view* out) {
    if (line_.empty()) return false;
    const std::size_t sp = line_.find(' ');
    *out = line_.substr(0, sp);
    line_.remove_prefix(sp == std::string_view::npos ? line_.size() : sp + 1);
    return true;
  }

  // Remainder of the current line, for trailing free-text (diag messages).
  std::string_view rest() const { return line_; }

 private:
  const char* p_;
  const char* end_;
  std::string_view line_;
};

std::string str_field(Cursor& cur) {
  std::string_view f;
  return cur.field(&f) ? std::string(f) : std::string();
}

// Lenient like operator>>: a missing or malformed field leaves the default.
template <typename T>
T num_field(Cursor& cur) {
  std::string_view f;
  T v{};
  if (cur.field(&f)) std::from_chars(f.data(), f.data() + f.size(), v);
  return v;
}

}  // namespace

std::vector<IncludeEdge> extract_includes(const std::vector<std::string>& raw_lines) {
  std::vector<IncludeEdge> edges;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    std::size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos || line[pos] != '#') continue;
    pos = line.find_first_not_of(" \t", pos + 1);
    if (pos == std::string::npos || line.compare(pos, 7, "include") != 0) continue;
    const std::size_t open = line.find('"', pos + 7);
    if (open == std::string::npos) continue;
    const std::size_t close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    edges.push_back({i, line.substr(open + 1, close - open - 1)});
  }
  return edges;
}

std::uint64_t fnv1a64(const std::string& data) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

FileFacts compute_file_facts(const std::string& path, const std::string& content) {
  FileFacts facts;
  facts.path = path;
  facts.token_diags = lint_file(path, content);
  facts.includes = extract_includes(split_lines(content));
  facts.index = index_file(path, content, &facts.status_names);
  return facts;
}

void store_file_facts(const std::string& cache_dir, const std::string& path,
                      std::uint64_t content_hash, const FileFacts& facts) {
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  if (ec) return;
  std::ofstream os(cache_file_for(cache_dir, path), std::ios::binary | std::ios::trunc);
  if (!os) return;

  os << "dblintcache " << kFormatVersion << " " << hex64(content_hash) << "\n";
  os << "path " << facts.path << "\n";
  // allows/fn_allows sizes define the line count (needed to rebuild the
  // per-line vectors even when no marker exists).
  os << "lines " << facts.index.allows.size() << "\n";
  write_marker_sets(os, "allow", facts.index.allows);
  write_marker_sets(os, "fnallow", facts.index.fn_allows);
  for (const Diagnostic& d : facts.token_diags) {
    os << "diag " << d.line << " " << d.rule << " " << d.message << "\n";
  }
  for (const IncludeEdge& e : facts.includes) {
    os << "inc " << e.line_index << " " << e.target << "\n";
  }
  for (const std::string& name : facts.status_names) {
    os << "status " << name << "\n";
  }
  for (const FieldDecl& fd : facts.index.fields) {
    os << "fd " << fd.line_index << " " << (fd.is_atomic ? 1 : 0) << " "
       << (fd.is_sync ? 1 : 0) << " " << fd.class_name << " " << fd.name << " "
       << opt(fd.type) << "\n";
  }
  for (const FunctionInfo& fn : facts.index.functions) {
    os << "fn " << fn.line_index << " " << (fn.returns_status ? 1 : 0) << " "
       << (fn.thread_root ? 1 : 0) << " " << fn.name << " " << fn.qualified
       << " " << opt(fn.class_name) << "\n";
    for (const std::string& p : fn.params) os << "p " << p << "\n";
    for (const CallSite& c : fn.calls) {
      os << "c " << c.line_index << " " << (c.member_call ? 1 : 0) << " "
         << (c.result_discarded ? 1 : 0) << " " << (c.void_cast ? 1 : 0) << " "
         << c.callee << " " << opt(c.chain_head) << "\n";
      for (const std::vector<std::string>& arg : c.args) {
        os << "a";
        for (const std::string& ident : arg) os << " " << ident;
        os << "\n";
      }
      for (const std::string& m : c.held_mutexes) os << "h " << m << "\n";
    }
    for (const GuardSite& g : fn.guards) {
      os << "g " << g.line_index << " " << g.depth << " " << opt(g.var);
      for (const std::string& m : g.mutexes) os << " " << m;
      os << "\n";
    }
    for (const FieldAccess& a : fn.accesses) {
      os << "fa " << a.line_index << " " << (a.is_write ? 1 : 0) << " "
         << a.field;
      for (const std::string& m : a.held_mutexes) os << " " << m;
      os << "\n";
    }
    for (const LockEdge& e : fn.lock_edges) {
      os << "e " << e.line_index << " " << e.from << " " << e.to << "\n";
    }
    for (const Statement& s : fn.stmts) {
      os << "s " << s.line_index << " " << (s.is_return ? 1 : 0) << " "
         << (s.is_throw ? 1 : 0) << " " << opt(s.write_ident) << " "
         << opt(s.decl_type) << " H";
      for (const std::string& m : s.held_mutexes) os << " " << m;
      os << " C";
      for (const std::size_t c : s.calls) os << " " << c;
      os << " R";
      for (const std::string& r : s.read_idents) os << " " << r;
      os << "\n";
    }
  }
  os << "end\n";
}

bool load_file_facts(const std::string& cache_dir, const std::string& path,
                     std::uint64_t content_hash, FileFacts* out) {
  std::ifstream is(cache_file_for(cache_dir, path), std::ios::binary);
  if (!is) return false;
  std::string buf;
  is.seekg(0, std::ios::end);
  const auto size = is.tellg();
  if (size < 0) return false;
  buf.resize(static_cast<std::size_t>(size));
  is.seekg(0);
  is.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!is) return false;

  Cursor cur(buf);
  if (!cur.next_line()) return false;
  if (str_field(cur) != "dblintcache" || num_field<int>(cur) != kFormatVersion ||
      str_field(cur) != hex64(content_hash)) {
    return false;
  }

  FileFacts facts;
  FunctionInfo* fn = nullptr;
  CallSite* call = nullptr;
  bool saw_end = false;

  std::string_view rec;
  while (cur.next_line()) {
    if (!cur.field(&rec)) continue;
    if (rec == "path") {
      facts.path = str_field(cur);
      if (facts.path != path) return false;
    } else if (rec == "lines") {
      const std::size_t n = num_field<std::size_t>(cur);
      facts.index.allows.resize(n);
      facts.index.fn_allows.resize(n);
    } else if (rec == "allow" || rec == "fnallow") {
      const std::size_t i = num_field<std::size_t>(cur);
      auto& sets = (rec == "allow") ? facts.index.allows : facts.index.fn_allows;
      if (i >= sets.size()) return false;
      sets[i].insert(str_field(cur));
    } else if (rec == "diag") {
      Diagnostic d;
      d.file = path;
      d.line = num_field<int>(cur);
      d.rule = str_field(cur);
      d.message = std::string(cur.rest());
      facts.token_diags.push_back(std::move(d));
    } else if (rec == "inc") {
      IncludeEdge e;
      e.line_index = num_field<std::size_t>(cur);
      e.target = std::string(cur.rest());
      facts.includes.push_back(std::move(e));
    } else if (rec == "status") {
      facts.status_names.insert(str_field(cur));
    } else if (rec == "fd") {
      FieldDecl fd;
      fd.line_index = num_field<std::size_t>(cur);
      fd.is_atomic = num_field<int>(cur) != 0;
      fd.is_sync = num_field<int>(cur) != 0;
      fd.class_name = str_field(cur);
      fd.name = str_field(cur);
      fd.type = unopt(str_field(cur));
      facts.index.fields.push_back(std::move(fd));
    } else if (rec == "fn") {
      FunctionInfo f;
      f.line_index = num_field<std::size_t>(cur);
      f.returns_status = num_field<int>(cur) != 0;
      f.thread_root = num_field<int>(cur) != 0;
      f.name = str_field(cur);
      f.qualified = str_field(cur);
      f.class_name = unopt(str_field(cur));
      facts.index.functions.push_back(std::move(f));
      fn = &facts.index.functions.back();
      call = nullptr;
    } else if (fn == nullptr) {
      if (rec == "end") saw_end = true;
      continue;
    } else if (rec == "p") {
      fn->params.push_back(str_field(cur));
    } else if (rec == "c") {
      CallSite c;
      c.line_index = num_field<std::size_t>(cur);
      c.member_call = num_field<int>(cur) != 0;
      c.result_discarded = num_field<int>(cur) != 0;
      c.void_cast = num_field<int>(cur) != 0;
      c.callee = str_field(cur);
      c.chain_head = unopt(str_field(cur));
      fn->calls.push_back(std::move(c));
      call = &fn->calls.back();
    } else if (rec == "a") {
      if (call == nullptr) return false;
      std::vector<std::string> idents;
      std::string_view ident;
      while (cur.field(&ident)) idents.emplace_back(ident);
      call->args.push_back(std::move(idents));
    } else if (rec == "h") {
      if (call == nullptr) return false;
      call->held_mutexes.push_back(str_field(cur));
    } else if (rec == "g") {
      GuardSite g;
      g.line_index = num_field<std::size_t>(cur);
      g.depth = num_field<std::size_t>(cur);
      g.var = unopt(str_field(cur));
      std::string_view m;
      while (cur.field(&m)) g.mutexes.emplace_back(m);
      fn->guards.push_back(std::move(g));
    } else if (rec == "fa") {
      FieldAccess a;
      a.line_index = num_field<std::size_t>(cur);
      a.is_write = num_field<int>(cur) != 0;
      a.field = str_field(cur);
      std::string_view m;
      while (cur.field(&m)) a.held_mutexes.emplace_back(m);
      fn->accesses.push_back(std::move(a));
    } else if (rec == "e") {
      LockEdge e;
      e.line_index = num_field<std::size_t>(cur);
      e.from = str_field(cur);
      e.to = str_field(cur);
      fn->lock_edges.push_back(std::move(e));
    } else if (rec == "s") {
      Statement s;
      s.line_index = num_field<std::size_t>(cur);
      s.is_return = num_field<int>(cur) != 0;
      s.is_throw = num_field<int>(cur) != 0;
      s.write_ident = unopt(str_field(cur));
      s.decl_type = unopt(str_field(cur));
      if (str_field(cur) != "H") return false;
      std::string_view word;
      while (cur.field(&word) && word != "C") {
        s.held_mutexes.emplace_back(word);
      }
      while (cur.field(&word) && word != "R") {
        std::size_t idx = 0;
        std::from_chars(word.data(), word.data() + word.size(), idx);
        s.calls.push_back(idx);
      }
      while (cur.field(&word)) s.read_idents.emplace_back(word);
      fn->stmts.push_back(std::move(s));
    } else if (rec == "end") {
      saw_end = true;
    }
  }
  if (!saw_end) return false;  // truncated write
  facts.index.path = path;
  *out = std::move(facts);
  return true;
}

}  // namespace dblint
