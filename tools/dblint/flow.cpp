#include "flow.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "text.hpp"

namespace dblint {
namespace {

constexpr std::size_t kMaxTraceSteps = 12;
constexpr int kMaxFixpointRounds = 10;
constexpr std::size_t kMaxCalleeDefs = 3;  // skip resolution beyond this

// ---------------------------------------------------------------------------
// Source / sanitizer / sink classification
// ---------------------------------------------------------------------------

/// Case-sensitive '_'-segment scan, shared with the old R8: the `Value(`
/// wire-constructor is allowed, `enc_value` / `plaintext` are not.
bool has_segment(const std::string& ident, const std::set<std::string>& segments) {
  std::size_t start = 0;
  while (start <= ident.size()) {
    const std::size_t us = ident.find('_', start);
    const std::string seg =
        ident.substr(start, (us == std::string::npos ? ident.size() : us) - start);
    if (segments.count(seg) > 0) return true;
    if (us == std::string::npos) break;
    start = us + 1;
  }
  return false;
}

bool is_plaintext_accessor(const std::string& callee) {
  static const std::set<std::string> kAccessors = {"as_string", "as_int", "as_double",
                                                   "as_bool", "scalar_bytes"};
  return kAccessors.count(callee) > 0;
}

/// Identifiers that are taint sources by NAME. Returns "", "secret" or
/// "plaintext". Deliberately narrower than R8's old ident test: `value` is
/// NOT a taint segment — the wire type doc::Value carries sealed bytes as
/// often as not (decode_value, Value{}, value_), and the engine tracks the
/// REAL plaintext mints (accessors, decrypt, expose_secret) as flows
/// instead of guessing from that name.
std::string name_taint_kind(const std::string& ident) {
  if (ident == "expose_secret" || is_plaintext_accessor(ident)) return "plaintext";
  static const std::set<std::string> kSecret = {"secret"};
  static const std::set<std::string> kPlain = {"plaintext", "cleartext"};
  if (has_segment(ident, kSecret)) return "secret";
  if (has_segment(ident, kPlain)) return "plaintext";
  return {};
}

/// The crypto-kernel entry points whose OUTPUT is safe to egress. hkdf is
/// deliberately absent (key derivation: output is still key material), and
/// decrypt is a source, not a sanitizer.
bool is_sanitizer(const std::string& callee) {
  static const std::set<std::string> kSegments = {
      "encrypt", "seal", "prf", "prf64", "hmac", "fingerprint",
      "hash",    "digest", "mac", "sha",  "sha256"};
  return has_segment(callee, kSegments);
}

bool is_decrypt(const std::string& callee) {
  static const std::set<std::string> kSegments = {"decrypt", "unseal", "open"};
  return has_segment(callee, kSegments);
}

/// RPC/channel egress. `log_line` is an R11 sink but handled separately —
/// it is not "egress" for R13 (logging under a lock is noisy, not a
/// wire-protocol hazard).
bool is_egress_sink(const CallSite& call) {
  if (!call.member_call) return false;
  static const std::set<std::string> kSinks = {
      "call",      "send_batch", "transfer_request", "transfer_response",
      "call_read", "call_write", "dispatch"};
  return kSinks.count(call.callee) > 0;
}

bool is_wipe_callee(const std::string& callee) {
  return callee == "secure_wipe" || callee == "wipe_region";
}

bool is_owning_buffer_type(const std::string& decl_type) {
  static const std::set<std::string> kOwning = {"Bytes", "string", "basic_string",
                                                "vector", "array"};
  return kOwning.count(decl_type) > 0;
}

// ---------------------------------------------------------------------------
// Scope predicates — where findings are reported (summaries are computed
// everywhere so helpers in any tree contribute).
// ---------------------------------------------------------------------------

bool r11_scope(const std::string& path) {
  return starts_with(path, "src/") && !starts_with(path, "src/workload/");
}
bool r12_scope(const std::string& path) { return starts_with(path, "src/"); }
bool r13_scope(const std::string& path) {
  // The simulated client (workload/) is outside the trust boundary the
  // lock/egress interaction protects; its driver loops hold bookkeeping
  // locks around whole gateway calls by design.
  return starts_with(path, "src/") && !starts_with(path, "src/workload/");
}

// ---------------------------------------------------------------------------
// Taint values and summaries
// ---------------------------------------------------------------------------

/// Taint carried by one identifier: inherent (a source was touched) and/or
/// parameter-derived (flows from the function's own params — the part that
/// becomes the caller's problem via summaries).
struct Taint {
  bool inherent = false;
  std::string kind;  // "secret" | "plaintext" when inherent
  std::set<int> from_params;
  std::vector<TraceStep> steps;

  bool empty() const { return !inherent && from_params.empty(); }
};

void append_steps(std::vector<TraceStep>* dst, const std::vector<TraceStep>& src) {
  for (const TraceStep& s : src) {
    if (dst->size() >= kMaxTraceSteps) return;
    dst->push_back(s);
  }
}

void append_step(std::vector<TraceStep>* dst, const std::string& file,
                 std::size_t line_index, const std::string& note) {
  if (dst->size() >= kMaxTraceSteps) return;
  dst->push_back({file, static_cast<int>(line_index + 1), note});
}

void merge_taint(Taint* into, const Taint& from) {
  if (from.empty()) return;
  if (from.inherent) {
    if (!into->inherent) {
      into->inherent = true;
      into->kind = from.kind;
    } else if (into->kind == "plaintext" && from.kind == "secret") {
      into->kind = "secret";  // secret dominates in messages
    }
  }
  into->from_params.insert(from.from_params.begin(), from.from_params.end());
  if (into->steps.empty()) {
    into->steps = from.steps;
  } else {
    append_steps(&into->steps, from.steps);
  }
}

struct FnSummary {
  std::map<int, std::vector<TraceStep>> param_to_sink;
  std::set<int> param_to_return;
  bool returns_secret = false;
  std::string returns_kind;
  std::vector<TraceStep> returns_trace;
  bool reaches_egress = false;
  std::vector<TraceStep> egress_trace;

  /// Change detection for the fixpoint — traces excluded (they only grow
  /// in lockstep with the boolean/set facts).
  bool same_facts(const FnSummary& o) const {
    // dblint:allow(ct-compare): summary booleans about secrecy, not key material
    if (returns_secret != o.returns_secret || reaches_egress != o.reaches_egress ||
        param_to_return != o.param_to_return) {
      return false;
    }
    if (param_to_sink.size() != o.param_to_sink.size()) return false;
    for (const auto& [k, unused] : param_to_sink) {
      (void)unused;
      if (o.param_to_sink.count(k) == 0) return false;
    }
    return true;
  }
};

struct FnRef {
  const FileIndex* file = nullptr;
  const FunctionInfo* fn = nullptr;
};

struct Engine {
  const RepoIndex* index = nullptr;
  std::vector<FnRef> fns;                         // all functions, index order
  std::map<std::string, std::vector<std::size_t>> defs;  // unqualified name -> fns idx
  std::vector<FnSummary> summaries;               // parallel to fns

  // Report-pass outputs.
  std::vector<Diagnostic>* out = nullptr;
  std::set<SanctionedFlow>* sanctioned = nullptr;
  std::set<std::string> emitted;  // "file:line:rule" dedup
};

bool flow_allowed(const FileIndex& file, const FunctionInfo& fn,
                  std::size_t line_index, const std::string& rule) {
  return allowed(file.allows, line_index, rule) ||
         allowed(file.fn_allows, fn.line_index, rule);
}

void emit(Engine* eng, const FileIndex& file, const FunctionInfo& fn,
          std::size_t line_index, const std::string& rule, const std::string& message,
          std::vector<TraceStep> trace) {
  if (eng->out == nullptr) return;
  if (flow_allowed(file, fn, line_index, rule)) return;
  std::ostringstream key;
  key << file.path << ":" << line_index << ":" << rule;
  if (!eng->emitted.insert(key.str()).second) return;
  Diagnostic d;
  d.file = file.path;
  d.line = static_cast<int>(line_index + 1);
  d.rule = rule;
  d.message = message;
  d.trace = std::move(trace);
  eng->out->push_back(std::move(d));
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

// ---------------------------------------------------------------------------
// Local transfer function: one pass over a function body, computing its
// summary against the current callee summaries; with `report` set it also
// emits R11/R13 findings (R12 runs separately — it is purely local).
// ---------------------------------------------------------------------------

struct LocalState {
  std::map<std::string, Taint> taint;
  std::set<std::string> cleansed;          // sanitizer products by name
  std::map<std::string, std::string> decl_types;
  std::map<std::string, int> param_index;
};

Taint ident_taint(const LocalState& st, const std::string& ident,
                  const std::string& file, std::size_t line_index) {
  if (st.cleansed.count(ident) > 0) return {};
  const auto it = st.taint.find(ident);
  if (it != st.taint.end()) return it->second;
  const std::string kind = name_taint_kind(ident);
  if (!kind.empty()) {
    Taint t;
    t.inherent = true;
    t.kind = kind;
    append_step(&t.steps, file, line_index,
                "identifier '" + ident + "' is " + kind + "-patterned");
    return t;
  }
  return {};
}

/// Method names that collide with the standard containers/smart pointers.
/// `journal_.find(k)` is almost always std::map::find, not whatever
/// `find()` the tree happens to define — resolving it interprocedurally
/// manufactures absurd chains (map.insert → Planner::insert → RPC egress).
/// The cost is losing flows through same-named in-tree APIs; direct sink
/// detection is unaffected.
bool is_container_method(const std::string& callee) {
  static const std::set<std::string> kMethods = {
      "insert",  "find",    "erase",   "emplace", "emplace_back", "push_back",
      "pop_back","append",  "at",      "count",   "begin",        "end",
      "size",    "empty",   "clear",   "front",   "back",         "data",
      "reserve", "resize",  "substr",  "c_str",   "str",          "reset",
      "release", "swap",    "assign",  "get",     "push",         "pop",
      "top",     "load",    "store",   "contains"};
  return kMethods.count(callee) > 0;
}

/// Resolves an unqualified callee name to its in-tree definitions (at most
/// kMaxCalleeDefs — beyond that the name is too generic to trust).
const std::vector<std::size_t>* resolve(const Engine& eng, const std::string& callee) {
  if (is_container_method(callee)) return nullptr;
  const auto it = eng.defs.find(callee);
  if (it == eng.defs.end() || it->second.size() > kMaxCalleeDefs) return nullptr;
  return &it->second;
}

void analyze_function(Engine* eng, std::size_t fn_idx, bool report) {
  const FileIndex& file = *eng->fns[fn_idx].file;
  const FunctionInfo& fn = *eng->fns[fn_idx].fn;
  FnSummary& sum = eng->summaries[fn_idx];

  LocalState st;
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    const std::string& p = fn.params[i];
    st.param_index[p] = static_cast<int>(i);
    Taint t;
    t.from_params.insert(static_cast<int>(i));
    const std::string kind = name_taint_kind(p);
    if (!kind.empty()) {
      t.inherent = true;
      t.kind = kind;
    }
    append_step(&t.steps, file.path, fn.line_index,
                "parameter " + std::to_string(i + 1) + " ('" + p + "') of " + fn.qualified);
    st.taint[p] = std::move(t);
  }

  // Two sweeps so taint assigned late still reaches earlier statements of a
  // loop body; findings are emitted on the last sweep only.
  for (int sweep = 0; sweep < 2; ++sweep) {
    const bool emit_now = report && sweep == 1;
    for (const Statement& stmt : fn.stmts) {
      Taint stmt_taint;
      bool sanitizer_in_stmt = false;
      std::set<std::string> sanitized_idents;

      // Sanitizer arguments are collected up front so a sink that appears
      // EARLIER in token order than the sanitizer feeding it — the nested
      // `call(m, pack(encrypt(v)))` shape — still sees them excluded.
      for (const std::size_t c : stmt.calls) {
        const CallSite& call = fn.calls[c];
        if (!is_sanitizer(call.callee)) continue;
        for (const auto& arg : call.args) {
          for (const std::string& ident : arg) sanitized_idents.insert(ident);
        }
      }

      // Summary-driven laundering: an argument consumed by a resolved callee
      // whose summary proves that parameter neither forwards to a sink nor
      // flows to the return value is clean for the rest of the statement —
      // the callee sanitizes internally (SSE clients PRF keywords before the
      // wire, for instance). Recorded as a sanctioned flow like an inline
      // sanitizer would be. The arity guard keeps a mis-parsed signature
      // from laundering everything.
      std::map<std::string, std::string> laundered;  // ident -> laundering callee
      for (const std::size_t c : stmt.calls) {
        const CallSite& call = fn.calls[c];
        if (is_sanitizer(call.callee) || is_egress_sink(call) ||
            call.callee == "log_line" || call.callee == "expose_secret" ||
            is_plaintext_accessor(call.callee) || is_decrypt(call.callee) ||
            is_wipe_callee(call.callee)) {
          continue;
        }
        const std::vector<std::size_t>* targets = resolve(*eng, call.callee);
        if (targets == nullptr) continue;
        for (std::size_t a = 0; a < call.args.size(); ++a) {
          bool launders = true;
          for (const std::size_t t_idx : *targets) {
            const FnSummary& cs = eng->summaries[t_idx];
            const int ap = static_cast<int>(a);
            if (eng->fns[t_idx].fn->params.size() <= a ||
                cs.param_to_sink.count(ap) > 0 || cs.param_to_return.count(ap) > 0) {
              launders = false;
            }
          }
          if (!launders) continue;
          for (const std::string& ident : call.args[a]) {
            laundered.emplace(ident, call.callee);
            const Taint t = ident_taint(st, ident, file.path, stmt.line_index);
            if (emit_now && t.inherent && eng->sanctioned != nullptr &&
                starts_with(file.path, "src/")) {
              eng->sanctioned->insert(
                  {file.path, fn.qualified, call.callee,
                   t.steps.empty() ? (t.kind + " value") : t.steps.front().note});
            }
          }
        }
      }

      // Products of resolved same-statement callees, keyed by callee name:
      // `sink(helper(x))` must see helper's summary without an intermediate
      // local. Two rounds so a nested producer feeds an enclosing one.
      std::map<std::string, Taint> products;
      for (int prod_round = 0; prod_round < 2; ++prod_round) {
        for (const std::size_t c : stmt.calls) {
          const CallSite& call = fn.calls[c];
          if (is_sanitizer(call.callee) || laundered.count(call.callee) > 0) continue;
          const std::vector<std::size_t>* targets = resolve(*eng, call.callee);
          if (targets == nullptr) continue;
          Taint product;
          for (const std::size_t t_idx : *targets) {
            const FnSummary& cs = eng->summaries[t_idx];
            if (cs.returns_secret) {
              Taint t;
              t.inherent = true;
              t.kind = cs.returns_kind;
              t.steps = cs.returns_trace;
              append_step(&t.steps, file.path, call.line_index,
                          "returned by '" + call.callee + "()' in " + fn.qualified);
              merge_taint(&product, t);
            }
            for (std::size_t a = 0; a < call.args.size(); ++a) {
              if (cs.param_to_return.count(static_cast<int>(a)) == 0) continue;
              Taint at;
              for (const std::string& ident : call.args[a]) {
                if (laundered.count(ident) > 0 || sanitized_idents.count(ident) > 0) {
                  continue;
                }
                merge_taint(&at, ident_taint(st, ident, file.path, stmt.line_index));
                const auto pit = products.find(ident);
                if (pit != products.end()) merge_taint(&at, pit->second);
              }
              if (at.empty()) continue;
              append_step(&at.steps, file.path, call.line_index,
                          "flows through '" + call.callee + "()' (argument " +
                              std::to_string(a + 1) + " returned)");
              merge_taint(&product, at);
            }
          }
          if (!product.empty()) products[call.callee] = product;
        }
      }

      for (const std::size_t c : stmt.calls) {
        const CallSite& call = fn.calls[c];

        // Union taint of all argument identifiers (and nested call
        // products), remembering per-arg taints for the param mapping below.
        std::vector<Taint> arg_taints(call.args.size());
        for (std::size_t a = 0; a < call.args.size(); ++a) {
          for (const std::string& ident : call.args[a]) {
            merge_taint(&arg_taints[a],
                        ident_taint(st, ident, file.path, stmt.line_index));
            const auto pit = products.find(ident);
            if (pit != products.end()) merge_taint(&arg_taints[a], pit->second);
          }
        }

        if (is_sanitizer(call.callee)) {
          sanitizer_in_stmt = true;
          Taint all;
          for (std::size_t a = 0; a < call.args.size(); ++a) {
            merge_taint(&all, arg_taints[a]);
            for (const std::string& ident : call.args[a]) sanitized_idents.insert(ident);
          }
          if (emit_now && all.inherent && eng->sanctioned != nullptr &&
              starts_with(file.path, "src/")) {
            eng->sanctioned->insert(
                {file.path, fn.qualified, call.callee,
                 all.steps.empty() ? (all.kind + " value") : all.steps.front().note});
          }
          continue;  // product is clean
        }

        if (call.callee == "expose_secret") {
          Taint t;
          t.inherent = true;
          t.kind = "secret";
          append_step(&t.steps, file.path, call.line_index,
                      "expose_secret() unwraps key material in " + fn.qualified);
          merge_taint(&stmt_taint, t);
          continue;
        }
        if (is_plaintext_accessor(call.callee)) {
          Taint t;
          t.inherent = true;
          t.kind = "plaintext";
          append_step(&t.steps, file.path, call.line_index,
                      "plaintext accessor '" + call.callee + "()' in " + fn.qualified);
          merge_taint(&stmt_taint, t);
          continue;
        }
        if (is_decrypt(call.callee)) {
          Taint t;
          t.inherent = true;
          t.kind = "plaintext";
          append_step(&t.steps, file.path, call.line_index,
                      "decryption product of '" + call.callee + "()' in " + fn.qualified);
          merge_taint(&stmt_taint, t);
          continue;
        }

        const bool sink = is_egress_sink(call);
        const bool log_sink = call.callee == "log_line";

        if (sink || log_sink) {
          if (sink) {
            if (!sum.reaches_egress) {
              sum.reaches_egress = true;
              append_step(&sum.egress_trace, file.path, call.line_index,
                          "egress '" + call.callee + "' in " + fn.qualified);
            }
            if (!call.held_mutexes.empty() && emit_now && r13_scope(file.path)) {
              std::vector<TraceStep> trace;
              append_step(&trace, file.path, call.line_index,
                          "egress '" + call.callee + "' with " +
                              join(call.held_mutexes, ", ") + " held");
              emit(eng, file, fn, call.line_index, "lock-held-egress",
                   "egress call '" + call.callee + "' in " + fn.qualified +
                       " while holding " + join(call.held_mutexes, ", ") +
                       "; release the lock before touching the wire, or annotate "
                       "the function with dblint:allow-fn(lock-held-egress)",
                   std::move(trace));
            }
          }
          // Tainted flow INTO the sink (R11).
          for (std::size_t a = 0; a < call.args.size(); ++a) {
            Taint t;
            for (const std::string& ident : call.args[a]) {
              if (sanitized_idents.count(ident) > 0) continue;
              if (laundered.count(ident) > 0) continue;
              merge_taint(&t, ident_taint(st, ident, file.path, stmt.line_index));
              const auto pit = products.find(ident);
              if (pit != products.end()) merge_taint(&t, pit->second);
            }
            if (t.empty()) continue;
            std::vector<TraceStep> trace = t.steps;
            append_step(&trace, file.path, call.line_index,
                        "reaches egress '" + call.callee + "' in " + fn.qualified);
            if (t.inherent && emit_now && r11_scope(file.path)) {
              emit(eng, file, fn, call.line_index, "secret-egress",
                   t.kind + "-tainted value reaches egress call '" + call.callee +
                       "' in " + fn.qualified +
                       "; seal it through a crypto-kernel sanitizer first",
                   trace);
            }
            for (const int p : t.from_params) {
              if (sum.param_to_sink.count(p) == 0) sum.param_to_sink[p] = trace;
            }
          }
          continue;
        }

        // Resolved in-tree callees: propagate their summaries.
        const std::vector<std::size_t>* targets = resolve(*eng, call.callee);
        bool callee_reaches_egress = false;
        std::vector<TraceStep> callee_egress_trace;
        if (targets != nullptr) {
          for (const std::size_t t_idx : *targets) {
            const FnSummary& cs = eng->summaries[t_idx];
            if (cs.reaches_egress && !callee_reaches_egress) {
              callee_reaches_egress = true;
              callee_egress_trace = cs.egress_trace;
            }
            if (cs.returns_secret) {
              const auto lb = laundered.find(call.callee);
              if (lb != laundered.end() || sanitized_idents.count(call.callee) > 0) {
                // The product feeds straight into a laundering (or sanitizer)
                // call in the same statement — sanctioned, not propagated.
                if (emit_now && eng->sanctioned != nullptr &&
                    starts_with(file.path, "src/")) {
                  eng->sanctioned->insert(
                      {file.path, fn.qualified,
                       lb != laundered.end() ? lb->second : std::string("sanitizer"),
                       cs.returns_trace.empty() ? (cs.returns_kind + " value")
                                                : cs.returns_trace.front().note});
                }
              } else {
                Taint t;
                t.inherent = true;
                t.kind = cs.returns_kind;
                t.steps = cs.returns_trace;
                append_step(&t.steps, file.path, call.line_index,
                            "returned by '" + call.callee + "()' in " + fn.qualified);
                merge_taint(&stmt_taint, t);
              }
            }
            for (std::size_t a = 0; a < call.args.size(); ++a) {
              const int ap = static_cast<int>(a);
              Taint at = arg_taints[a];
              for (const std::string& ident : call.args[a]) {
                if (sanitized_idents.count(ident) > 0 || laundered.count(ident) > 0) {
                  at = Taint{};
                }
              }
              if (at.empty()) continue;
              if (cs.param_to_return.count(ap) > 0) {
                Taint t = at;
                append_step(&t.steps, file.path, call.line_index,
                            "flows through '" + call.callee + "()' (argument " +
                                std::to_string(a + 1) + " returned)");
                merge_taint(&stmt_taint, t);
              }
              const auto ps = cs.param_to_sink.find(ap);
              if (ps != cs.param_to_sink.end()) {
                std::vector<TraceStep> trace = at.steps;
                append_step(&trace, file.path, call.line_index,
                            "passed as argument " + std::to_string(a + 1) + " to '" +
                                call.callee + "()' in " + fn.qualified);
                append_steps(&trace, ps->second);
                if (at.inherent && emit_now && r11_scope(file.path)) {
                  emit(eng, file, fn, call.line_index, "secret-egress",
                       at.kind + "-tainted value passed to '" + call.callee +
                           "()', which forwards it to an egress sink; seal it "
                           "through a crypto-kernel sanitizer first",
                       trace);
                }
                for (const int p : at.from_params) {
                  if (sum.param_to_sink.count(p) == 0) sum.param_to_sink[p] = trace;
                }
              }
            }
          }
        }
        if (callee_reaches_egress) {
          if (!sum.reaches_egress) {
            sum.reaches_egress = true;
            append_step(&sum.egress_trace, file.path, call.line_index,
                        "calls '" + call.callee + "()' in " + fn.qualified);
            append_steps(&sum.egress_trace, callee_egress_trace);
          }
          if (!call.held_mutexes.empty() && emit_now && r13_scope(file.path)) {
            std::vector<TraceStep> trace;
            append_step(&trace, file.path, call.line_index,
                        "calls '" + call.callee + "()' with " +
                            join(call.held_mutexes, ", ") + " held");
            append_steps(&trace, callee_egress_trace);
            emit(eng, file, fn, call.line_index, "lock-held-egress",
                 "call to '" + call.callee + "()' reaches an egress sink while " +
                     join(call.held_mutexes, ", ") +
                     " is held; release the lock before touching the wire, or "
                     "annotate the function with dblint:allow-fn(lock-held-egress)",
                 std::move(trace));
          }
        }
      }

      // Reads outside sanitizer/laundering arguments contribute to the
      // statement value.
      for (const std::string& ident : stmt.read_idents) {
        if (sanitizer_in_stmt && sanitized_idents.count(ident) > 0) continue;
        if (laundered.count(ident) > 0) continue;
        if (is_sanitizer(ident)) continue;  // the callee name itself
        merge_taint(&stmt_taint, ident_taint(st, ident, file.path, stmt.line_index));
      }

      // Return edges feed the summary.
      if (stmt.is_return && !stmt_taint.empty()) {
        if (stmt_taint.inherent && !sum.returns_secret) {
          sum.returns_secret = true;
          sum.returns_kind = stmt_taint.kind;
          sum.returns_trace = stmt_taint.steps;
        }
        sum.param_to_return.insert(stmt_taint.from_params.begin(),
                                   stmt_taint.from_params.end());
      }

      // Assignment: strong update.
      if (!stmt.write_ident.empty()) {
        if (!stmt.decl_type.empty()) st.decl_types[stmt.write_ident] = stmt.decl_type;

        // Writing a tainted value into a replica LogEntry is a sink: the
        // entry is replayed to every cloud replica.
        const auto dt = st.decl_types.find(stmt.write_ident);
        if (dt != st.decl_types.end() && dt->second == "LogEntry" &&
            !stmt_taint.empty() && !sanitizer_in_stmt) {
          std::vector<TraceStep> trace = stmt_taint.steps;
          append_step(&trace, file.path, stmt.line_index,
                      "stored into replica LogEntry '" + stmt.write_ident + "' in " +
                          fn.qualified);
          if (stmt_taint.inherent && emit_now && r11_scope(file.path)) {
            emit(eng, file, fn, stmt.line_index, "secret-egress",
                 stmt_taint.kind + "-tainted value stored into replica LogEntry '" +
                     stmt.write_ident + "' in " + fn.qualified +
                     "; the log is replayed to every replica — seal the bytes first",
                 trace);
          }
          for (const int p : stmt_taint.from_params) {
            if (sum.param_to_sink.count(p) == 0) sum.param_to_sink[p] = trace;
          }
        }

        if (stmt.decl_type == "SecretBytes") {
          Taint t;
          t.inherent = true;
          t.kind = "secret";
          append_step(&t.steps, file.path, stmt.line_index,
                      "SecretBytes '" + stmt.write_ident + "' declared in " + fn.qualified);
          st.cleansed.erase(stmt.write_ident);
          st.taint[stmt.write_ident] = std::move(t);
        } else if (sanitizer_in_stmt) {
          st.cleansed.insert(stmt.write_ident);
          st.taint.erase(stmt.write_ident);
        } else if (!stmt_taint.empty()) {
          st.cleansed.erase(stmt.write_ident);
          Taint t = stmt_taint;
          st.taint[stmt.write_ident] = std::move(t);
        } else if (st.param_index.count(stmt.write_ident) == 0) {
          // Clean overwrite kills prior and name-pattern taint (but a
          // param keeps its origin — the summary tracks entry values).
          st.cleansed.insert(stmt.write_ident);
          st.taint.erase(stmt.write_ident);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R12: wipe-on-all-paths — purely local, linear CFG sketch: a raw owning
// copy of an expose_secret() product must have a wipe (secure_wipe /
// wipe_region / SecretBytes adoption) between its declaration and every
// later return/throw edge.
// ---------------------------------------------------------------------------

void check_wipe_on_all_paths(Engine* eng, std::size_t fn_idx) {
  const FileIndex& file = *eng->fns[fn_idx].file;
  const FunctionInfo& fn = *eng->fns[fn_idx].fn;
  if (!r12_scope(file.path)) return;

  for (std::size_t si = 0; si < fn.stmts.size(); ++si) {
    const Statement& decl = fn.stmts[si];
    if (decl.write_ident.empty() || !is_owning_buffer_type(decl.decl_type)) continue;
    bool exposes = false;
    for (const std::size_t c : decl.calls) {
      if (fn.calls[c].callee == "expose_secret") exposes = true;
    }
    if (!exposes) continue;
    const std::string& local = decl.write_ident;

    std::vector<std::size_t> wipes;  // statement indices
    std::vector<std::size_t> exits;
    for (std::size_t sj = si + 1; sj < fn.stmts.size(); ++sj) {
      const Statement& s = fn.stmts[sj];
      bool wiped = false;
      for (const std::size_t c : s.calls) {
        const CallSite& call = fn.calls[c];
        if (is_wipe_callee(call.callee)) {
          for (const auto& arg : call.args) {
            if (std::find(arg.begin(), arg.end(), local) != arg.end()) wiped = true;
          }
        }
        if (call.callee == "throw_error" && !wiped) exits.push_back(sj);
      }
      if (s.decl_type == "SecretBytes" &&
          std::find(s.read_idents.begin(), s.read_idents.end(), local) !=
              s.read_idents.end()) {
        wiped = true;  // the adopting constructor wipes its source
      }
      if (wiped) wipes.push_back(sj);
      if (s.is_return || s.is_throw) exits.push_back(sj);
    }

    auto decl_step = [&](std::vector<TraceStep>* trace) {
      append_step(trace, file.path, decl.line_index,
                  "raw owning copy of expose_secret() product into '" + local + "' (" +
                      decl.decl_type + ") in " + fn.qualified);
    };

    if (wipes.empty()) {
      std::vector<TraceStep> trace;
      decl_step(&trace);
      append_step(&trace, file.path, decl.line_index, "no secure_wipe on any path");
      emit(eng, file, fn, decl.line_index, "wipe-on-all-paths",
           "raw secret copy '" + local + "' in " + fn.qualified +
               " is never wiped; call secure_wipe()/wipe_region() or adopt it "
               "into SecretBytes before every exit",
           std::move(trace));
      continue;
    }
    for (const std::size_t e : exits) {
      const bool covered =
          std::any_of(wipes.begin(), wipes.end(),
                      [e](std::size_t w) { return w <= e; });
      if (covered) continue;
      std::vector<TraceStep> trace;
      decl_step(&trace);
      append_step(&trace, file.path, fn.stmts[e].line_index,
                  "exit path without prior secure_wipe of '" + local + "'");
      emit(eng, file, fn, fn.stmts[e].line_index, "wipe-on-all-paths",
           "exit path leaves raw secret copy '" + local + "' in " + fn.qualified +
               " unwiped; wipe before this return/throw",
           std::move(trace));
    }
  }
}

Engine build_engine(const RepoIndex& index) {
  Engine eng;
  eng.index = &index;
  for (const FileIndex& file : index.files) {
    for (const FunctionInfo& fn : file.functions) {
      eng.defs[fn.name].push_back(eng.fns.size());
      eng.fns.push_back({&file, &fn});
    }
  }
  eng.summaries.resize(eng.fns.size());
  return eng;
}

void run_fixpoint(Engine* eng) {
  for (int round = 0; round < kMaxFixpointRounds; ++round) {
    bool changed = false;
    for (std::size_t i = 0; i < eng->fns.size(); ++i) {
      const FnSummary before = eng->summaries[i];
      analyze_function(eng, i, /*report=*/false);
      if (!eng->summaries[i].same_facts(before)) changed = true;
    }
    if (!changed) break;
  }
}

}  // namespace

FlowAnalysis analyze_flows(const RepoIndex& index) {
  Engine eng = build_engine(index);
  run_fixpoint(&eng);

  FlowAnalysis result;
  std::set<SanctionedFlow> sanctioned;
  eng.out = &result.diagnostics;
  eng.sanctioned = &sanctioned;
  for (std::size_t i = 0; i < eng.fns.size(); ++i) {
    analyze_function(&eng, i, /*report=*/true);
    check_wipe_on_all_paths(&eng, i);
  }
  result.sanctioned.assign(sanctioned.begin(), sanctioned.end());
  return result;
}

std::vector<FlowSummary> flow_summaries(const RepoIndex& index) {
  Engine eng = build_engine(index);
  run_fixpoint(&eng);
  std::vector<FlowSummary> out;
  for (std::size_t i = 0; i < eng.fns.size(); ++i) {
    FlowSummary s;
    s.file = eng.fns[i].file->path;
    s.qualified = eng.fns[i].fn->qualified;
    for (const auto& [p, unused] : eng.summaries[i].param_to_sink) {
      (void)unused;
      s.params_to_sink.insert(p);
    }
    s.params_to_return = eng.summaries[i].param_to_return;
    s.returns_secret = eng.summaries[i].returns_secret;
    s.reaches_egress = eng.summaries[i].reaches_egress;
    out.push_back(std::move(s));
  }
  return out;
}

std::string secret_flows_markdown(const std::vector<SanctionedFlow>& flows) {
  std::ostringstream os;
  os << "# Sanctioned secret flows\n\n";
  os << "Generated by `dblint --emit-secret-flows`; do not edit by hand.\n\n";
  os << "Every row is a place where the taint engine (tools/dblint/flow.cpp)\n"
        "watched a secret- or plaintext-tainted value cross into a crypto-kernel\n"
        "sanitizer — the ONLY sanctioned way for protected material to reach an\n"
        "egress sink. The table is line-free on purpose: it drifts only when a\n"
        "flow appears or disappears, and `dblint` fails until it is\n"
        "regenerated, the same gate doc/LEAKAGE.md uses.\n\n";
  os << "| File | Function | Sanitizer | Source |\n";
  os << "|---|---|---|---|\n";
  for (const SanctionedFlow& f : flows) {
    os << "| " << f.file << " | " << f.function << " | " << f.sanitizer << " | "
       << f.source << " |\n";
  }
  return os.str();
}

}  // namespace dblint
