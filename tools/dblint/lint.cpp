#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "cache.hpp"
#include "concurrency.hpp"
#include "flow.hpp"
#include "index.hpp"
#include "leakage_pass.hpp"
#include "passes.hpp"
#include "text.hpp"

namespace dblint {
namespace {

bool is_secret_buffer_name(const std::string& ident) {
  static const std::set<std::string> kSegments = {"tag", "mac", "token", "key", "secret"};
  return kSegments.count(last_segment(ident)) > 0;
}

bool is_secret_log_name(const std::string& ident) {
  static const std::set<std::string> kSegments = {"tag", "mac",    "token", "key", "secret",
                                                  "ikm", "master", "prk",   "okm"};
  return kSegments.count(last_segment(ident)) > 0;
}

/// Effective name of the operand to the LEFT of tokens[op]: for a trailing
/// call chain `det_token.size()` the method name (`size`) is what matters —
/// `.size()` comparisons are public metadata, the buffer itself is not.
std::string left_operand_name(const std::vector<Token>& tokens, std::size_t op) {
  std::size_t i = op;
  if (i == 0) return {};
  --i;
  if (tokens[i].text == ")") {
    int depth = 1;
    while (i > 0 && depth > 0) {
      --i;
      if (tokens[i].text == ")") ++depth;
      if (tokens[i].text == "(") --depth;
    }
    if (i == 0) return {};
    --i;  // token before '(' — the callee name
  }
  if (tokens[i].text == "]") {  // subscript: name[idx] — walk back to name
    int depth = 1;
    while (i > 0 && depth > 0) {
      --i;
      if (tokens[i].text == "]") ++depth;
      if (tokens[i].text == "[") --depth;
    }
    if (i == 0) return {};
    --i;
  }
  return tokens[i].is_ident ? tokens[i].text : std::string{};
}

/// Effective name of the operand to the RIGHT of tokens[op]: follows the
/// member chain `det_token.size()` forward and returns the final name.
std::string right_operand_name(const std::vector<Token>& tokens, std::size_t op) {
  std::size_t i = op + 1;
  while (i < tokens.size() && (tokens[i].text == "*" || tokens[i].text == "&" ||
                               tokens[i].text == "!" || tokens[i].text == "::")) {
    ++i;
  }
  if (i >= tokens.size() || !tokens[i].is_ident) return {};
  std::string name = tokens[i].text;
  while (i + 2 < tokens.size() && (tokens[i + 1].text == "." || tokens[i + 1].text == "->") &&
         tokens[i + 2].is_ident) {
    i += 2;
    name = tokens[i].text;
  }
  return name;
}

// ---------------------------------------------------------------------------
// Rule predicates keyed on path
// ---------------------------------------------------------------------------

bool in_rng_restricted_dir(const std::string& path) {
  for (const char* dir : {"src/crypto/", "src/kms/", "src/ppe/", "src/sse/", "src/phe/"}) {
    if (starts_with(path, dir)) return true;
  }
  return false;
}

/// The crypto kernel: the only files allowed to unwrap SecretBytes without
/// a justification. Shrunk by the flow-engine audit (PR 8): key_manager,
/// onion, hot_cache and the wrapper's own test now carry per-site
/// `dblint:allow(expose)` escapes instead of a blanket entry, so every
/// unwrap outside the kernel names its reason in-line.
bool may_expose_secret(const std::string& path) {
  if (path == "src/common/secret.hpp" || path == "src/common/secret.cpp") return true;
  for (const char* dir : {"src/crypto/", "src/ppe/", "src/sse/", "src/phe/"}) {
    if (starts_with(path, dir) && ends_with(path, ".cpp")) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// R1–R3: token-stream rules
// ---------------------------------------------------------------------------

void check_ct_compare(const std::string& path, const std::vector<Token>& tokens,
                      const std::vector<std::set<std::string>>& allows,
                      std::vector<Diagnostic>* out) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.is_ident && t.text == "memcmp" && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      if (!allowed(allows, t.line_index, "ct-compare")) {
        out->push_back({path, static_cast<int>(t.line_index + 1), "ct-compare",
                        "memcmp leaks timing; compare secret buffers with ct_equal"});
      }
      continue;
    }
    // std::equal / std::ranges::equal over a secret-named buffer.
    if (t.is_ident && t.text == "equal" && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      int depth = 0;
      std::string secret_arg;
      for (std::size_t j = i + 1; j < tokens.size(); ++j) {
        if (tokens[j].text == "(") ++depth;
        if (tokens[j].text == ")" && --depth == 0) break;
        if (tokens[j].is_ident && is_secret_buffer_name(tokens[j].text)) {
          secret_arg = tokens[j].text;
        }
      }
      if (!secret_arg.empty() && !allowed(allows, t.line_index, "ct-compare")) {
        out->push_back({path, static_cast<int>(t.line_index + 1), "ct-compare",
                        "std::equal over secret-named buffer '" + secret_arg +
                            "'; use ct_equal"});
      }
      continue;
    }
    if (t.text != "==" && t.text != "!=") continue;
    // `operator==` declarations are structure, not comparisons.
    if (i > 0 && tokens[i - 1].is_ident && tokens[i - 1].text == "operator") continue;
    const std::string lhs = left_operand_name(tokens, i);
    const std::string rhs = right_operand_name(tokens, i);
    if (is_secret_buffer_name(lhs) || is_secret_buffer_name(rhs)) {
      if (!allowed(allows, t.line_index, "ct-compare")) {
        const std::string& name = is_secret_buffer_name(lhs) ? lhs : rhs;
        out->push_back({path, static_cast<int>(t.line_index + 1), "ct-compare",
                        "variable-time comparison of secret-named buffer '" + name +
                            "'; use ct_equal"});
      }
    }
  }
}

void check_rng(const std::string& path, const std::vector<Token>& tokens,
               const std::vector<std::set<std::string>>& allows, std::vector<Diagnostic>* out) {
  if (!in_rng_restricted_dir(path)) return;
  static const std::set<std::string> kBanned = {
      "DetRng", "mt19937",       "mt19937_64",           "minstd_rand", "rand",
      "srand",  "random_device", "default_random_engine"};
  for (const Token& t : tokens) {
    if (!t.is_ident || kBanned.count(t.text) == 0) continue;
    if (allowed(allows, t.line_index, "rng")) continue;
    out->push_back({path, static_cast<int>(t.line_index + 1), "rng",
                    "'" + t.text + "' is not a CSPRNG; crypto-bearing directories must use "
                    "SecureRng"});
  }
}

void check_expose(const std::string& path, const std::vector<Token>& tokens,
                  const std::vector<std::set<std::string>>& allows,
                  std::vector<Diagnostic>* out) {
  if (may_expose_secret(path)) return;
  for (const Token& t : tokens) {
    if (!t.is_ident || t.text != "expose_secret") continue;
    if (allowed(allows, t.line_index, "expose")) continue;
    out->push_back({path, static_cast<int>(t.line_index + 1), "expose",
                    "expose_secret() outside the crypto kernel allowlist; pass SecretBytes "
                    "through and let the kernel unwrap"});
  }
}

/// R4: a logging statement (DB_LOG* stream or log_line call) must not
/// mention secret material. The statement runs from the logging token to
/// the terminating ';'.
void check_log_secret(const std::string& path, const std::vector<Token>& tokens,
                      const std::vector<std::set<std::string>>& allows,
                      std::vector<Diagnostic>* out) {
  // Skip the logging framework's own definitions.
  if (path == "src/common/logging.hpp" || path == "src/common/logging.cpp") return;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (!t.is_ident || !(starts_with(t.text, "DB_LOG") || t.text == "log_line")) continue;
    std::size_t end = i;
    while (end < tokens.size() && tokens[end].text != ";") ++end;
    for (std::size_t j = i + 1; j < end; ++j) {
      if (!tokens[j].is_ident) continue;
      if (starts_with(tokens[j].text, "DB_LOG") || tokens[j].text == "log_line") continue;
      if (tokens[j].text == "expose_secret" || is_secret_log_name(tokens[j].text)) {
        if (!allowed(allows, t.line_index, "log-secret")) {
          out->push_back({path, static_cast<int>(t.line_index + 1), "log-secret",
                          "logging statement mentions secret-pattern identifier '" +
                              tokens[j].text + "'; log a redacted form instead"});
        }
        break;  // one finding per statement
      }
    }
    i = end;
  }
}

/// R10: secret-derived cached values belong in the HotCache — its entries
/// are SecretBytes, wiped on eviction/invalidation — and nowhere else. A
/// statement that both unwraps a secret (expose_secret) and touches a
/// cache-named container is a plaintext copy an ordinary container would
/// keep alive after "deletion". Statement granularity: token run up to ';'.
void check_secret_cache(const std::string& path, const std::vector<Token>& tokens,
                        const std::vector<std::set<std::string>>& allows,
                        std::vector<Diagnostic>* out) {
  if (path == "src/core/hot_cache.cpp" || path == "src/core/hot_cache.hpp") return;
  auto mentions_cache = [](const std::string& ident) {
    std::string lower = ident;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return lower.find("cache") != std::string::npos;
  };
  std::size_t stmt_begin = 0;
  for (std::size_t i = 0; i <= tokens.size(); ++i) {
    if (i < tokens.size() && tokens[i].text != ";") continue;
    bool exposes = false;
    std::size_t expose_line = 0;
    std::string cache_ident;
    for (std::size_t j = stmt_begin; j < i && j < tokens.size(); ++j) {
      if (!tokens[j].is_ident) continue;
      if (tokens[j].text == "expose_secret") {
        if (!exposes) expose_line = tokens[j].line_index;
        exposes = true;
      } else if (cache_ident.empty() && mentions_cache(tokens[j].text)) {
        cache_ident = tokens[j].text;
      }
    }
    if (exposes && !cache_ident.empty() &&
        !allowed(allows, expose_line, "secret-cache")) {
      out->push_back({path, static_cast<int>(expose_line + 1), "secret-cache",
                      "expose_secret() product flows into cache-named container '" +
                          cache_ident +
                          "'; cache secret-derived values only through core/hot_cache "
                          "(wiped SecretBytes entries)"});
    }
    stmt_begin = i + 1;
  }
}

// ---------------------------------------------------------------------------
// R5: include graph
// ---------------------------------------------------------------------------

/// Coarse architectural layers, lowest first. A file may include its own
/// top-level directory or any strictly lower layer. Directories absent from
/// the map (tests, tools) are exempt.
const std::map<std::string, int>& layer_ranks() {
  static const std::map<std::string, int> kRanks = {
      {"common", 0}, {"crypto", 1}, {"bigint", 1}, {"doc", 1},  {"phe", 2},
      {"ppe", 2},    {"sse", 2},    {"schema", 2}, {"store", 2}, {"net", 2},
      {"kms", 2},    {"onion", 3},  {"fhir", 3},   {"core", 4},  {"workload", 5},
  };
  return kRanks;
}

std::string top_dir_under_src(const std::string& path) {
  if (!starts_with(path, "src/")) return {};
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return {};
  return path.substr(4, slash - 4);
}

void report_cycles(const std::map<std::string, std::vector<std::string>>& graph,
                   std::vector<Diagnostic>* out) {
  // Iterative DFS with colors; reports each back-edge's cycle once.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack_path;
  std::set<std::string> reported;

  struct Frame {
    std::string node;
    std::size_t next_child = 0;
  };

  for (const auto& [start, unused] : graph) {
    (void)unused;
    if (color[start] != 0) continue;
    std::vector<Frame> stack;
    stack.push_back({start});
    color[start] = 1;
    stack_path.push_back(start);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto it = graph.find(frame.node);
      static const std::vector<std::string> kNone;
      const std::vector<std::string>& children = (it != graph.end()) ? it->second : kNone;
      if (frame.next_child < children.size()) {
        const std::string child = children[frame.next_child++];
        if (color[child] == 1) {
          // Back edge: the cycle is the stack_path suffix from `child`.
          auto at = std::find(stack_path.begin(), stack_path.end(), child);
          std::ostringstream cycle;
          for (auto p = at; p != stack_path.end(); ++p) cycle << *p << " -> ";
          cycle << child;
          if (reported.insert(cycle.str()).second) {
            out->push_back({frame.node, 1, "layering", "include cycle: " + cycle.str()});
          }
        } else if (color[child] == 0) {
          color[child] = 1;
          stack_path.push_back(child);
          stack.push_back({child});
        }
      } else {
        color[frame.node] = 2;
        stack_path.pop_back();
        stack.pop_back();
      }
    }
  }
}

std::string json_escape(const std::string& s) {
  std::ostringstream out;
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::string format(const Diagnostic& d) {
  std::ostringstream os;
  os << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message;
  for (const TraceStep& step : d.trace) {
    os << "\n    trace: " << step.file << ":" << step.line << ": " << step.note;
  }
  return os.str();
}

std::string to_json(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i) os << ",";
    os << "\n  {\"file\": \"" << json_escape(d.file) << "\", \"line\": " << d.line
       << ", \"rule\": \"" << json_escape(d.rule) << "\", \"message\": \""
       << json_escape(d.message) << "\"";
    if (!d.trace.empty()) {
      os << ", \"trace\": [";
      for (std::size_t t = 0; t < d.trace.size(); ++t) {
        const TraceStep& step = d.trace[t];
        if (t) os << ", ";
        os << "{\"file\": \"" << json_escape(step.file) << "\", \"line\": " << step.line
           << ", \"note\": \"" << json_escape(step.note) << "\"}";
      }
      os << "]";
    }
    os << "}";
  }
  os << (diagnostics.empty() ? "]\n" : "\n]\n");
  return os.str();
}

std::vector<Diagnostic> lint_file(const std::string& path, const std::string& content) {
  std::vector<Diagnostic> out;
  const std::vector<std::string> raw_lines = split_lines(content);
  const std::vector<std::set<std::string>> allows = collect_allows(raw_lines);
  const std::vector<Token> tokens = tokenize(strip_comments_and_strings(content));

  check_ct_compare(path, tokens, allows, &out);
  check_rng(path, tokens, allows, &out);
  check_expose(path, tokens, allows, &out);
  check_log_secret(path, tokens, allows, &out);
  check_secret_cache(path, tokens, allows, &out);
  return out;
}

namespace {

/// Include-graph rules over assembled facts. `files` must already be
/// filtered to src/ (the layer map only speaks src/ dirs anyway).
void include_graph_pass(const std::vector<const FileFacts*>& files,
                        std::vector<Diagnostic>* out_ptr) {
  std::vector<Diagnostic>& out = *out_ptr;
  std::set<std::string> known_paths;
  for (const FileFacts* f : files) known_paths.insert(f->path);

  std::map<std::string, std::vector<std::string>> graph;
  for (const FileFacts* fp : files) {
    const FileFacts& f = *fp;
    const std::vector<std::set<std::string>>& allows = f.index.allows;
    const std::string from_dir = top_dir_under_src(f.path);
    const auto& ranks = layer_ranks();

    for (const IncludeEdge& e : f.includes) {
      const std::string resolved = "src/" + e.target;
      if (known_paths.count(resolved)) graph[f.path].push_back(resolved);

      const std::size_t slash = e.target.find('/');
      if (slash == std::string::npos) continue;
      const std::string to_dir = e.target.substr(0, slash);
      const auto from_rank = ranks.find(from_dir);
      const auto to_rank = ranks.find(to_dir);
      if (from_rank == ranks.end() || to_rank == ranks.end()) continue;

      if (starts_with(f.path, "src/core/tactics/") && to_dir == "crypto") {
        if (!allowed(allows, e.line_index, "layering")) {
          out.push_back({f.path, static_cast<int>(e.line_index + 1), "layering",
                         "tactics must not include crypto/ directly; reach primitives via the "
                         "core/spi.hpp surfaces (ppe/sse/phe schemes)"});
        }
        continue;
      }
      if (to_dir != from_dir && to_rank->second >= from_rank->second) {
        if (!allowed(allows, e.line_index, "layering")) {
          out.push_back({f.path, static_cast<int>(e.line_index + 1), "layering",
                         "layering violation: src/" + from_dir + " (layer " +
                             std::to_string(from_rank->second) + ") must not include src/" +
                             to_dir + " (layer " + std::to_string(to_rank->second) + ")"});
        }
      }
    }
  }
  report_cycles(graph, &out);
}

}  // namespace

std::vector<Diagnostic> lint_include_graph(const std::vector<FileInput>& files) {
  std::vector<FileFacts> facts;
  for (const FileInput& f : files) {
    FileFacts ff;
    ff.path = f.path;
    const std::vector<std::string> raw_lines = split_lines(f.content);
    ff.includes = extract_includes(raw_lines);
    ff.index.allows = collect_allows(raw_lines);
    facts.push_back(std::move(ff));
  }
  std::vector<const FileFacts*> ptrs;
  for (const FileFacts& f : facts) ptrs.push_back(&f);
  std::vector<Diagnostic> out;
  include_graph_pass(ptrs, &out);
  return out;
}

std::vector<Diagnostic> lint_indexed(const std::vector<FileInput>& files) {
  const RepoIndex index = build_index(files);
  std::vector<Diagnostic> out = check_unchecked_status(index);
  std::vector<Diagnostic> locks = check_lock_discipline(index);
  out.insert(out.end(), locks.begin(), locks.end());
  FlowAnalysis flows = analyze_flows(index);
  out.insert(out.end(), flows.diagnostics.begin(), flows.diagnostics.end());
  ConcurrencyAnalysis conc = analyze_concurrency(index);
  out.insert(out.end(), conc.diagnostics.begin(), conc.diagnostics.end());
  return out;
}

std::vector<FileInput> read_tree(const std::string& repo_root) {
  namespace fs = std::filesystem;
  std::vector<FileInput> files;
  for (const char* top : {"src", "tests", "bench", "tools"}) {
    const fs::path base = fs::path(repo_root) / top;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp") continue;
      const std::string rel = fs::relative(entry.path(), repo_root).generic_string();
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      files.push_back({rel, ss.str()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const FileInput& a, const FileInput& b) { return a.path < b.path; });
  return files;
}

namespace {

std::string read_doc(const std::string& repo_root, const char* name) {
  const std::filesystem::path doc = std::filesystem::path(repo_root) / "doc" / name;
  if (!std::filesystem::exists(doc)) return {};
  std::ifstream in(doc, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

std::vector<Diagnostic> lint_tree(const std::string& repo_root,
                                  const LintOptions& options, LintStats* stats) {
  const std::vector<FileInput> files = read_tree(repo_root);
  std::vector<Diagnostic> out;

  // Per-file phase — the part the facts cache accelerates and --stats times.
  std::vector<FileFacts> facts;
  facts.reserve(files.size());
  std::size_t cache_hits = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const FileInput& file : files) {
    const std::uint64_t hash = fnv1a64(file.content);
    FileFacts ff;
    if (!options.cache_dir.empty() &&
        load_file_facts(options.cache_dir, file.path, hash, &ff)) {
      ++cache_hits;
    } else {
      ff = compute_file_facts(file.path, file.content);
      if (!options.cache_dir.empty()) {
        store_file_facts(options.cache_dir, file.path, hash, ff);
      }
    }
    facts.push_back(std::move(ff));
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (stats != nullptr) {
    stats->files = files.size();
    stats->cache_hits = cache_hits;
    stats->analysis_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(t1 - t0)
            .count();
  }

  // Repo-level passes over the assembled facts.
  RepoIndex index;
  std::vector<const FileFacts*> src_facts;
  std::vector<FileInput> src_files;
  for (std::size_t i = 0; i < facts.size(); ++i) {
    out.insert(out.end(), facts[i].token_diags.begin(), facts[i].token_diags.end());
    index.files.push_back(facts[i].index);
    index.status_returning.insert(facts[i].status_names.begin(),
                                  facts[i].status_names.end());
    if (starts_with(facts[i].path, "src/")) {
      src_facts.push_back(&facts[i]);
      src_files.push_back(files[i]);
    }
  }
  include_graph_pass(src_facts, &out);

  std::vector<Diagnostic> indexed = check_unchecked_status(index);
  out.insert(out.end(), indexed.begin(), indexed.end());
  std::vector<Diagnostic> locks = check_lock_discipline(index);
  out.insert(out.end(), locks.begin(), locks.end());
  FlowAnalysis flows = analyze_flows(index);
  out.insert(out.end(), flows.diagnostics.begin(), flows.diagnostics.end());
  ConcurrencyAnalysis conc = analyze_concurrency(index);
  out.insert(out.end(), conc.diagnostics.begin(), conc.diagnostics.end());

  const std::vector<Diagnostic> leakage = lint_leakage_conformance(src_files);
  out.insert(out.end(), leakage.begin(), leakage.end());

  // doc/LEAKAGE.md drift gate: the checked-in matrix must match what the
  // current schema ceilings + tactic tables generate.
  {
    const std::string expected = leakage_matrix_markdown(src_files);
    const std::string actual = read_doc(repo_root, "LEAKAGE.md");
    if (actual != expected) {
      out.push_back({"doc/LEAKAGE.md", 1, "leakage-conformance",
                     actual.empty()
                         ? "doc/LEAKAGE.md is missing; generate it with "
                           "`dblint --emit-leakage-matrix`"
                         : "doc/LEAKAGE.md is stale; regenerate with "
                           "`dblint --emit-leakage-matrix`"});
    }
  }

  // doc/SECRET_FLOWS.md drift gate: the sanctioned-flow inventory the taint
  // engine observed must match the checked-in document.
  {
    const std::string expected = secret_flows_markdown(flows.sanctioned);
    const std::string actual = read_doc(repo_root, "SECRET_FLOWS.md");
    if (actual != expected) {
      out.push_back({"doc/SECRET_FLOWS.md", 1, "secret-egress",
                     actual.empty()
                         ? "doc/SECRET_FLOWS.md is missing; generate it with "
                           "`dblint --emit-secret-flows`"
                         : "doc/SECRET_FLOWS.md is stale; regenerate with "
                           "`dblint --emit-secret-flows`"});
    }
  }

  // doc/CONCURRENCY.md drift gate: the inferred thread-root inventory and
  // guarded-by map must match the checked-in concurrency contract.
  {
    const std::string expected = concurrency_markdown(conc);
    const std::string actual = read_doc(repo_root, "CONCURRENCY.md");
    if (actual != expected) {
      out.push_back({"doc/CONCURRENCY.md", 1, "inconsistent-lockset",
                     actual.empty()
                         ? "doc/CONCURRENCY.md is missing; generate it with "
                           "`dblint --emit-concurrency`"
                         : "doc/CONCURRENCY.md is stale; regenerate with "
                           "`dblint --emit-concurrency`"});
    }
  }

  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<Diagnostic> lint_tree(const std::string& repo_root) {
  return lint_tree(repo_root, LintOptions{}, nullptr);
}

}  // namespace dblint
