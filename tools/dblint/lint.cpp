#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace dblint {
namespace {

// ---------------------------------------------------------------------------
// Small text utilities
// ---------------------------------------------------------------------------

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Replaces comments, string literals and char literals with spaces so the
/// token rules never fire on prose. Newlines survive, so line numbers hold.
std::string strip_comments_and_strings(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = (i + 1 < out.size()) ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && next != '\0') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && next != '\0') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Allow-escape markers: `// dblint:allow(<rule>)` suppresses findings for
// <rule> on its own line and on the line immediately below (so a marker can
// sit on a short line of its own above the flagged statement).
// ---------------------------------------------------------------------------

std::vector<std::set<std::string>> collect_allows(const std::vector<std::string>& raw_lines) {
  std::vector<std::set<std::string>> allows(raw_lines.size());
  const std::string marker = "dblint:allow(";
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    std::size_t pos = 0;
    while ((pos = line.find(marker, pos)) != std::string::npos) {
      const std::size_t start = pos + marker.size();
      const std::size_t close = line.find(')', start);
      if (close == std::string::npos) break;
      const std::string rule = line.substr(start, close - start);
      allows[i].insert(rule);
      if (i + 1 < raw_lines.size()) allows[i + 1].insert(rule);
      pos = close;
    }
  }
  return allows;
}

bool allowed(const std::vector<std::set<std::string>>& allows, std::size_t line_index,
             const std::string& rule) {
  return line_index < allows.size() && allows[line_index].count(rule) > 0;
}

// ---------------------------------------------------------------------------
// Tokenizer — a whole-file token stream with line numbers, just enough
// structure for operand analysis across line breaks.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  bool is_ident = false;
  std::size_t line_index = 0;  // 0-based
};

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> tokens;
  std::size_t line = 0;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (is_ident_char(c)) {
      std::size_t j = i;
      while (j < text.size() && is_ident_char(text[j])) ++j;
      tokens.push_back({text.substr(i, j - i), true, line});
      i = j;
      continue;
    }
    // Two-char operators we care about; everything else is single-char.
    if (i + 1 < text.size()) {
      const std::string two = text.substr(i, 2);
      if (two == "==" || two == "!=" || two == "->" || two == "<=" || two == ">=" ||
          two == "&&" || two == "||" || two == "<<" || two == ">>" || two == "::") {
        tokens.push_back({two, false, line});
        i += 2;
        continue;
      }
    }
    tokens.push_back({std::string(1, c), false, line});
    ++i;
  }
  return tokens;
}

/// Last '_'-separated segment of an identifier, trailing underscores and
/// digits stripped: "prf_key_" -> "key", "det_token" -> "token",
/// "keyword" -> "keyword".
std::string last_segment(const std::string& ident) {
  std::string s = ident;
  while (!s.empty() && (s.back() == '_' || std::isdigit(static_cast<unsigned char>(s.back())))) {
    s.pop_back();
  }
  const std::size_t pos = s.rfind('_');
  std::string seg = (pos == std::string::npos) ? s : s.substr(pos + 1);
  std::transform(seg.begin(), seg.end(), seg.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return seg;
}

bool is_secret_buffer_name(const std::string& ident) {
  static const std::set<std::string> kSegments = {"tag", "mac", "token", "key", "secret"};
  return kSegments.count(last_segment(ident)) > 0;
}

bool is_secret_log_name(const std::string& ident) {
  static const std::set<std::string> kSegments = {"tag", "mac",    "token", "key", "secret",
                                                  "ikm", "master", "prk",   "okm"};
  return kSegments.count(last_segment(ident)) > 0;
}

/// Effective name of the operand to the LEFT of tokens[op]: for a trailing
/// call chain `det_token.size()` the method name (`size`) is what matters —
/// `.size()` comparisons are public metadata, the buffer itself is not.
std::string left_operand_name(const std::vector<Token>& tokens, std::size_t op) {
  std::size_t i = op;
  if (i == 0) return {};
  --i;
  if (tokens[i].text == ")") {
    int depth = 1;
    while (i > 0 && depth > 0) {
      --i;
      if (tokens[i].text == ")") ++depth;
      if (tokens[i].text == "(") --depth;
    }
    if (i == 0) return {};
    --i;  // token before '(' — the callee name
  }
  if (tokens[i].text == "]") {  // subscript: name[idx] — walk back to name
    int depth = 1;
    while (i > 0 && depth > 0) {
      --i;
      if (tokens[i].text == "]") ++depth;
      if (tokens[i].text == "[") --depth;
    }
    if (i == 0) return {};
    --i;
  }
  return tokens[i].is_ident ? tokens[i].text : std::string{};
}

/// Effective name of the operand to the RIGHT of tokens[op]: follows the
/// member chain `det_token.size()` forward and returns the final name.
std::string right_operand_name(const std::vector<Token>& tokens, std::size_t op) {
  std::size_t i = op + 1;
  while (i < tokens.size() && (tokens[i].text == "*" || tokens[i].text == "&" ||
                               tokens[i].text == "!" || tokens[i].text == "::")) {
    ++i;
  }
  if (i >= tokens.size() || !tokens[i].is_ident) return {};
  std::string name = tokens[i].text;
  while (i + 2 < tokens.size() && (tokens[i + 1].text == "." || tokens[i + 1].text == "->") &&
         tokens[i + 2].is_ident) {
    i += 2;
    name = tokens[i].text;
  }
  return name;
}

// ---------------------------------------------------------------------------
// Rule predicates keyed on path
// ---------------------------------------------------------------------------

bool in_rng_restricted_dir(const std::string& path) {
  for (const char* dir : {"src/crypto/", "src/kms/", "src/ppe/", "src/sse/", "src/phe/"}) {
    if (starts_with(path, dir)) return true;
  }
  return false;
}

/// The crypto kernel: the only files allowed to unwrap SecretBytes. The
/// list is deliberately explicit — widening it is a review decision, not a
/// drive-by.
bool may_expose_secret(const std::string& path) {
  if (path == "src/common/secret.hpp" || path == "src/common/secret.cpp") return true;
  if (path == "src/kms/key_manager.cpp") return true;
  if (path == "src/onion/onion.cpp") return true;
  if (path == "tests/secret_test.cpp") return true;  // verifies the wrapper itself
  for (const char* dir : {"src/crypto/", "src/ppe/", "src/sse/", "src/phe/"}) {
    if (starts_with(path, dir) && ends_with(path, ".cpp")) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// R1–R3: token-stream rules
// ---------------------------------------------------------------------------

void check_ct_compare(const std::string& path, const std::vector<Token>& tokens,
                      const std::vector<std::set<std::string>>& allows,
                      std::vector<Diagnostic>* out) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.is_ident && t.text == "memcmp" && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      if (!allowed(allows, t.line_index, "ct-compare")) {
        out->push_back({path, static_cast<int>(t.line_index + 1), "ct-compare",
                        "memcmp leaks timing; compare secret buffers with ct_equal"});
      }
      continue;
    }
    // std::equal / std::ranges::equal over a secret-named buffer.
    if (t.is_ident && t.text == "equal" && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      int depth = 0;
      std::string secret_arg;
      for (std::size_t j = i + 1; j < tokens.size(); ++j) {
        if (tokens[j].text == "(") ++depth;
        if (tokens[j].text == ")" && --depth == 0) break;
        if (tokens[j].is_ident && is_secret_buffer_name(tokens[j].text)) {
          secret_arg = tokens[j].text;
        }
      }
      if (!secret_arg.empty() && !allowed(allows, t.line_index, "ct-compare")) {
        out->push_back({path, static_cast<int>(t.line_index + 1), "ct-compare",
                        "std::equal over secret-named buffer '" + secret_arg +
                            "'; use ct_equal"});
      }
      continue;
    }
    if (t.text != "==" && t.text != "!=") continue;
    // `operator==` declarations are structure, not comparisons.
    if (i > 0 && tokens[i - 1].is_ident && tokens[i - 1].text == "operator") continue;
    const std::string lhs = left_operand_name(tokens, i);
    const std::string rhs = right_operand_name(tokens, i);
    if (is_secret_buffer_name(lhs) || is_secret_buffer_name(rhs)) {
      if (!allowed(allows, t.line_index, "ct-compare")) {
        const std::string& name = is_secret_buffer_name(lhs) ? lhs : rhs;
        out->push_back({path, static_cast<int>(t.line_index + 1), "ct-compare",
                        "variable-time comparison of secret-named buffer '" + name +
                            "'; use ct_equal"});
      }
    }
  }
}

void check_rng(const std::string& path, const std::vector<Token>& tokens,
               const std::vector<std::set<std::string>>& allows, std::vector<Diagnostic>* out) {
  if (!in_rng_restricted_dir(path)) return;
  static const std::set<std::string> kBanned = {
      "DetRng", "mt19937",       "mt19937_64",           "minstd_rand", "rand",
      "srand",  "random_device", "default_random_engine"};
  for (const Token& t : tokens) {
    if (!t.is_ident || kBanned.count(t.text) == 0) continue;
    if (allowed(allows, t.line_index, "rng")) continue;
    out->push_back({path, static_cast<int>(t.line_index + 1), "rng",
                    "'" + t.text + "' is not a CSPRNG; crypto-bearing directories must use "
                    "SecureRng"});
  }
}

void check_expose(const std::string& path, const std::vector<Token>& tokens,
                  const std::vector<std::set<std::string>>& allows,
                  std::vector<Diagnostic>* out) {
  if (may_expose_secret(path)) return;
  for (const Token& t : tokens) {
    if (!t.is_ident || t.text != "expose_secret") continue;
    if (allowed(allows, t.line_index, "expose")) continue;
    out->push_back({path, static_cast<int>(t.line_index + 1), "expose",
                    "expose_secret() outside the crypto kernel allowlist; pass SecretBytes "
                    "through and let the kernel unwrap"});
  }
}

/// R4: a logging statement (DB_LOG* stream or log_line call) must not
/// mention secret material. The statement runs from the logging token to
/// the terminating ';'.
void check_log_secret(const std::string& path, const std::vector<Token>& tokens,
                      const std::vector<std::set<std::string>>& allows,
                      std::vector<Diagnostic>* out) {
  // Skip the logging framework's own definitions.
  if (path == "src/common/logging.hpp" || path == "src/common/logging.cpp") return;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (!t.is_ident || !(starts_with(t.text, "DB_LOG") || t.text == "log_line")) continue;
    std::size_t end = i;
    while (end < tokens.size() && tokens[end].text != ";") ++end;
    for (std::size_t j = i + 1; j < end; ++j) {
      if (!tokens[j].is_ident) continue;
      if (starts_with(tokens[j].text, "DB_LOG") || tokens[j].text == "log_line") continue;
      if (tokens[j].text == "expose_secret" || is_secret_log_name(tokens[j].text)) {
        if (!allowed(allows, t.line_index, "log-secret")) {
          out->push_back({path, static_cast<int>(t.line_index + 1), "log-secret",
                          "logging statement mentions secret-pattern identifier '" +
                              tokens[j].text + "'; log a redacted form instead"});
        }
        break;  // one finding per statement
      }
    }
    i = end;
  }
}

// ---------------------------------------------------------------------------
// R5: include graph
// ---------------------------------------------------------------------------

/// Coarse architectural layers, lowest first. A file may include its own
/// top-level directory or any strictly lower layer. Directories absent from
/// the map (tests, tools) are exempt.
const std::map<std::string, int>& layer_ranks() {
  static const std::map<std::string, int> kRanks = {
      {"common", 0}, {"crypto", 1}, {"bigint", 1}, {"doc", 1},  {"phe", 2},
      {"ppe", 2},    {"sse", 2},    {"schema", 2}, {"store", 2}, {"net", 2},
      {"kms", 2},    {"onion", 3},  {"fhir", 3},   {"core", 4},  {"workload", 5},
  };
  return kRanks;
}

std::string top_dir_under_src(const std::string& path) {
  if (!starts_with(path, "src/")) return {};
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return {};
  return path.substr(4, slash - 4);
}

struct IncludeEdge {
  std::size_t line_index;
  std::string target;  // as written, e.g. "crypto/gcm.hpp"
};

std::vector<IncludeEdge> extract_includes(const std::vector<std::string>& raw_lines) {
  std::vector<IncludeEdge> edges;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    std::size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos || line[pos] != '#') continue;
    pos = line.find_first_not_of(" \t", pos + 1);
    if (pos == std::string::npos || line.compare(pos, 7, "include") != 0) continue;
    const std::size_t open = line.find('"', pos + 7);
    if (open == std::string::npos) continue;
    const std::size_t close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    edges.push_back({i, line.substr(open + 1, close - open - 1)});
  }
  return edges;
}

void report_cycles(const std::map<std::string, std::vector<std::string>>& graph,
                   std::vector<Diagnostic>* out) {
  // Iterative DFS with colors; reports each back-edge's cycle once.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack_path;
  std::set<std::string> reported;

  struct Frame {
    std::string node;
    std::size_t next_child = 0;
  };

  for (const auto& [start, unused] : graph) {
    (void)unused;
    if (color[start] != 0) continue;
    std::vector<Frame> stack;
    stack.push_back({start});
    color[start] = 1;
    stack_path.push_back(start);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto it = graph.find(frame.node);
      static const std::vector<std::string> kNone;
      const std::vector<std::string>& children = (it != graph.end()) ? it->second : kNone;
      if (frame.next_child < children.size()) {
        const std::string child = children[frame.next_child++];
        if (color[child] == 1) {
          // Back edge: the cycle is the stack_path suffix from `child`.
          auto at = std::find(stack_path.begin(), stack_path.end(), child);
          std::ostringstream cycle;
          for (auto p = at; p != stack_path.end(); ++p) cycle << *p << " -> ";
          cycle << child;
          if (reported.insert(cycle.str()).second) {
            out->push_back({frame.node, 1, "layering", "include cycle: " + cycle.str()});
          }
        } else if (color[child] == 0) {
          color[child] = 1;
          stack_path.push_back(child);
          stack.push_back({child});
        }
      } else {
        color[frame.node] = 2;
        stack_path.pop_back();
        stack.pop_back();
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::string format(const Diagnostic& d) {
  std::ostringstream os;
  os << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message;
  return os.str();
}

std::vector<Diagnostic> lint_file(const std::string& path, const std::string& content) {
  std::vector<Diagnostic> out;
  const std::vector<std::string> raw_lines = split_lines(content);
  const std::vector<std::set<std::string>> allows = collect_allows(raw_lines);
  const std::vector<Token> tokens = tokenize(strip_comments_and_strings(content));

  check_ct_compare(path, tokens, allows, &out);
  check_rng(path, tokens, allows, &out);
  check_expose(path, tokens, allows, &out);
  check_log_secret(path, tokens, allows, &out);
  return out;
}

std::vector<Diagnostic> lint_include_graph(const std::vector<FileInput>& files) {
  std::vector<Diagnostic> out;
  std::set<std::string> known_paths;
  for (const FileInput& f : files) known_paths.insert(f.path);

  std::map<std::string, std::vector<std::string>> graph;
  for (const FileInput& f : files) {
    const std::vector<std::string> raw_lines = split_lines(f.content);
    const std::vector<std::set<std::string>> allows = collect_allows(raw_lines);
    const std::string from_dir = top_dir_under_src(f.path);
    const auto& ranks = layer_ranks();

    for (const IncludeEdge& e : extract_includes(raw_lines)) {
      const std::string resolved = "src/" + e.target;
      if (known_paths.count(resolved)) graph[f.path].push_back(resolved);

      const std::size_t slash = e.target.find('/');
      if (slash == std::string::npos) continue;
      const std::string to_dir = e.target.substr(0, slash);
      const auto from_rank = ranks.find(from_dir);
      const auto to_rank = ranks.find(to_dir);
      if (from_rank == ranks.end() || to_rank == ranks.end()) continue;

      if (starts_with(f.path, "src/core/tactics/") && to_dir == "crypto") {
        if (!allowed(allows, e.line_index, "layering")) {
          out.push_back({f.path, static_cast<int>(e.line_index + 1), "layering",
                         "tactics must not include crypto/ directly; reach primitives via the "
                         "core/spi.hpp surfaces (ppe/sse/phe schemes)"});
        }
        continue;
      }
      if (to_dir != from_dir && to_rank->second >= from_rank->second) {
        if (!allowed(allows, e.line_index, "layering")) {
          out.push_back({f.path, static_cast<int>(e.line_index + 1), "layering",
                         "layering violation: src/" + from_dir + " (layer " +
                             std::to_string(from_rank->second) + ") must not include src/" +
                             to_dir + " (layer " + std::to_string(to_rank->second) + ")"});
        }
      }
    }
  }
  report_cycles(graph, &out);
  return out;
}

std::vector<Diagnostic> lint_tree(const std::string& repo_root) {
  namespace fs = std::filesystem;
  std::vector<Diagnostic> out;
  std::vector<FileInput> src_files;

  for (const char* top : {"src", "tests"}) {
    const fs::path base = fs::path(repo_root) / top;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp") continue;
      const std::string rel = fs::relative(entry.path(), repo_root).generic_string();
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      FileInput file{rel, ss.str()};
      const std::vector<Diagnostic> diags = lint_file(file.path, file.content);
      out.insert(out.end(), diags.begin(), diags.end());
      if (starts_with(rel, "src/")) src_files.push_back(std::move(file));
    }
  }
  const std::vector<Diagnostic> graph_diags = lint_include_graph(src_files);
  out.insert(out.end(), graph_diags.begin(), graph_diags.end());

  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace dblint
