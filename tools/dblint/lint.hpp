// dblint — DataBlinder's in-repo static analyzer.
//
// A deliberately small, dependency-free checker (no libclang): v1 is a
// token-level scan over src/ and tests/ plus an include-graph pass; v2
// adds a lightweight indexer (index.hpp) — one pass extracting function
// definitions, call edges, RAII guard scopes and Status-returning
// signatures into an in-memory fact base — and rules that query it.
// It exists to make the repo's safety types enforceable: SecretBytes
// (src/common/secret.hpp) gets its textual escape hatches closed, the
// leakage-ceiling table (src/schema/leakage.hpp) gets machine-checked
// against every tactic's declared profile, and [[nodiscard]] Status gets a
// portable twin of -Wunused-result.
//
// Rules:
//   ct-compare          (R1)  no memcmp/operator== on tag/key/token/mac
//                             buffers; use ct_equal.
//   rng                 (R2)  DetRng/mt19937/rand() banned under
//                             src/crypto, src/kms, src/ppe, src/sse,
//                             src/phe; SecureRng only.
//   expose              (R3)  expose_secret() only in allowlisted
//                             crypto-kernel files.
//   log-secret          (R4)  no logging statement may receive SecretBytes
//                             contents or key/secret-pattern identifiers.
//   layering            (R5)  include layering + no include cycles.
//   unchecked-status    (R6)  no discarded call to a Status/Result-
//                             returning function (see passes.hpp).
//   lock-discipline     (R7)  no raw .lock()/.unlock(); acyclic lock-order
//                             graph from nested guard scopes.
//   plaintext-egress    (R8)  plaintext-derived identifiers reach egress
//                             calls only from allowlisted kernels.
//   leakage-conformance (R9)  declared tactic leakage within the
//                             schema/leakage.hpp ceilings; doc/LEAKAGE.md
//                             in sync (see leakage_pass.hpp).
//   secret-cache        (R10) secret-derived cached values live only in
//                             core/hot_cache (SecretBytes entries, wiped
//                             on eviction); no other cache-named container
//                             may receive expose_secret() products.
//
// Escape hatch: a finding on line N is suppressed when line N (or the
// line immediately above) carries `// dblint:allow(<rule>): reason`.
#pragma once

#include <string>
#include <vector>

namespace dblint {

struct Diagnostic {
  std::string file;  // repo-relative, '/'-separated
  int line = 0;      // 1-based
  std::string rule;  // e.g. "ct-compare"
  std::string message;

  bool operator==(const Diagnostic&) const = default;
};

/// "file:line: [rule] message" — the CI-greppable form.
std::string format(const Diagnostic& d);

/// The same diagnostics as a JSON array (stable key order:
/// file, line, rule, message) for tooling; `dblint --json`.
std::string to_json(const std::vector<Diagnostic>& diagnostics);

struct FileInput {
  std::string path;  // repo-relative, '/'-separated
  std::string content;
};

/// Token-level rules (R1–R4) over one file. `path` decides which rules
/// apply (restricted dirs, allowlists).
std::vector<Diagnostic> lint_file(const std::string& path, const std::string& content);

/// Include-graph rules (R5) over a set of files (normally everything
/// under src/).
std::vector<Diagnostic> lint_include_graph(const std::vector<FileInput>& files);

/// Indexer-backed rules (R6–R8) over a set of files: builds the fact base
/// (index.hpp) once, then runs unchecked-status, lock-discipline and
/// plaintext-egress against it.
std::vector<Diagnostic> lint_indexed(const std::vector<FileInput>& files);

/// Every .hpp/.cpp under `repo_root`/src and `repo_root`/tests, paths
/// repo-relative. The walk behind lint_tree and --emit-leakage-matrix.
std::vector<FileInput> read_tree(const std::string& repo_root);

/// Runs every rule (R1–R9) over the repo, including the doc/LEAKAGE.md
/// drift check. Diagnostics come back sorted by file then line.
std::vector<Diagnostic> lint_tree(const std::string& repo_root);

}  // namespace dblint
