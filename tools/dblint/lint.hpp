// dblint — DataBlinder's in-repo secret-hygiene checker.
//
// A deliberately small, dependency-free lint pass (no libclang): a
// token-level scan over src/ and tests/ plus an include-graph pass.
// It exists to make the SecretBytes taint type (src/common/secret.hpp)
// enforceable: the type system stops implicit conversions, dblint stops
// the textual escape hatches (raw memcmp, logging a key, calling
// expose_secret() outside the crypto kernel).
//
// Rules:
//   ct-compare  (R1)  no memcmp/operator== on tag/key/token/mac buffers;
//                     use ct_equal.
//   rng         (R2)  DetRng/mt19937/rand() banned under src/crypto,
//                     src/kms, src/ppe, src/sse, src/phe; SecureRng only.
//   expose      (R3)  expose_secret() only in allowlisted crypto-kernel
//                     files.
//   log-secret  (R4)  no logging statement may receive SecretBytes
//                     contents or key/secret-pattern identifiers.
//   layering    (R5)  include layering: src/common must not include
//                     src/core; core/tactics must not include crypto/
//                     directly (reach it via the ppe/sse/phe surfaces);
//                     no include cycles.
//
// Escape hatch: a finding on line N is suppressed when line N (or the
// line immediately above) carries `// dblint:allow(<rule>): reason`.
#pragma once

#include <string>
#include <vector>

namespace dblint {

struct Diagnostic {
  std::string file;  // repo-relative, '/'-separated
  int line = 0;      // 1-based
  std::string rule;  // e.g. "ct-compare"
  std::string message;

  bool operator==(const Diagnostic&) const = default;
};

/// "file:line: [rule] message" — the CI-greppable form.
std::string format(const Diagnostic& d);

struct FileInput {
  std::string path;  // repo-relative, '/'-separated
  std::string content;
};

/// Token-level rules (R1–R4) over one file. `path` decides which rules
/// apply (restricted dirs, allowlists).
std::vector<Diagnostic> lint_file(const std::string& path, const std::string& content);

/// Include-graph rules (R5) over a set of files (normally everything
/// under src/).
std::vector<Diagnostic> lint_include_graph(const std::vector<FileInput>& files);

/// Walks `repo_root`/src and `repo_root`/tests for .hpp/.cpp files and
/// runs every rule. Diagnostics come back sorted by file then line.
std::vector<Diagnostic> lint_tree(const std::string& repo_root);

}  // namespace dblint
