// dblint — DataBlinder's in-repo static analyzer.
//
// A deliberately small, dependency-free checker (no libclang): v1 is a
// token-level scan plus an include-graph pass; v2 adds a lightweight
// indexer (index.hpp) — one pass extracting function definitions, call
// edges, RAII guard scopes and Status-returning signatures into an
// in-memory fact base — and rules that query it; v3 adds an
// interprocedural taint-flow engine (flow.hpp) over per-function summaries
// propagated to fixpoint, an on-disk facts cache (cache.hpp) keyed by
// content hash, and SARIF 2.1.0 output (sarif.hpp) for CI code-scanning
// annotations; v4 adds a RacerD-style interprocedural lockset analyzer
// (concurrency.hpp) — thread-root discovery, per-function field-access
// summaries widened by caller-held locks, and guarded-by inference emitted
// as doc/CONCURRENCY.md. The linted tree covers src/, tests/, bench/ and
// tools/.
//
// Rules:
//   ct-compare          (R1)  no memcmp/operator== on tag/key/token/mac
//                             buffers; use ct_equal.
//   rng                 (R2)  DetRng/mt19937/rand() banned under
//                             src/crypto, src/kms, src/ppe, src/sse,
//                             src/phe; SecureRng only.
//   expose              (R3)  expose_secret() only in the crypto kernel
//                             (secret.{hpp,cpp} + crypto/ppe/sse/phe
//                             kernels); everywhere else needs a justified
//                             dblint:allow(expose) escape.
//   log-secret          (R4)  no logging statement may receive SecretBytes
//                             contents or key/secret-pattern identifiers.
//   layering            (R5)  include layering + no include cycles.
//   unchecked-status    (R6)  no discarded call to a Status/Result-
//                             returning function (see passes.hpp).
//   lock-discipline     (R7)  no raw .lock()/.unlock(); acyclic lock-order
//                             graph from nested guard scopes.
//   leakage-conformance (R9)  declared tactic leakage within the
//                             schema/leakage.hpp ceilings; doc/LEAKAGE.md
//                             in sync (see leakage_pass.hpp).
//   secret-cache        (R10) secret-derived cached values live only in
//                             core/hot_cache (SecretBytes entries, wiped
//                             on eviction); no other cache-named container
//                             may receive expose_secret() products.
//   secret-egress       (R11) interprocedural: no unsanitized secret/
//                             plaintext flow reaches an egress sink; the
//                             diagnostic carries the source→…→sink trace
//                             (see flow.hpp — replaces R8's allowlists).
//   wipe-on-all-paths   (R12) raw copies of expose_secret() products are
//                             wiped on every return/throw edge.
//   lock-held-egress    (R13) no RPC/channel sink reachable while a mutex
//                             from the R7 lock model is held.
//   inconsistent-lockset(R14) interprocedural: every pair of concurrently-
//                             reachable accesses to a field of a lock-
//                             owning class shares a common mutex (or the
//                             field is std::atomic); both conflicting
//                             chains appear in the trace.
//   guard-escape        (R15) a pointer/iterator into a guarded field
//                             (.data()/.c_str()/.begin()/…) must not
//                             outlive the guard: no returning it under the
//                             lock, no use after the scope closes.
//   lock-order-cycle    (R16) the lock-order graph plus "holding M while
//                             calling a function that acquires N" edges
//                             across the call graph stays acyclic (intra-
//                             function cycles stay R7 findings).
//
// Escape hatches: a finding on line N is suppressed when line N (or the
// line immediately above) carries `// dblint:allow(<rule>): reason`; the
// flow rules (R11–R16) additionally honor `// dblint:allow-fn(<rule>):
// reason` on a function's signature line, suppressing the rule for that
// whole body. `// dblint:thread-root` on (or above) a function definition
// marks it as a thread entry point for R14 reachability.
#pragma once

#include <string>
#include <vector>

namespace dblint {

/// One hop of a flow trace attached to a diagnostic (R11–R13).
struct TraceStep {
  std::string file;  // repo-relative
  int line = 0;      // 1-based
  std::string note;

  bool operator==(const TraceStep&) const = default;
};

struct Diagnostic {
  std::string file;  // repo-relative, '/'-separated
  int line = 0;      // 1-based
  std::string rule;  // e.g. "ct-compare"
  std::string message;
  std::vector<TraceStep> trace;  // source→…→sink, flow rules only

  bool operator==(const Diagnostic&) const = default;
};

/// "file:line: [rule] message" — the CI-greppable form; flow traces follow
/// as indented "    trace: file:line: note" lines.
std::string format(const Diagnostic& d);

/// The same diagnostics as a JSON array (stable key order: file, line,
/// rule, message, trace) for tooling; `dblint --json`.
std::string to_json(const std::vector<Diagnostic>& diagnostics);

struct FileInput {
  std::string path;  // repo-relative, '/'-separated
  std::string content;
};

/// Token-level rules (R1–R4, R10) over one file. `path` decides which
/// rules apply (restricted dirs, kernel allowlist).
std::vector<Diagnostic> lint_file(const std::string& path, const std::string& content);

/// Include-graph rules (R5) over a set of files (normally everything
/// under src/).
std::vector<Diagnostic> lint_include_graph(const std::vector<FileInput>& files);

/// Indexer-backed rules (R6, R7, R11–R13) over a set of files: builds the
/// fact base (index.hpp) once, then runs unchecked-status, lock-discipline
/// and the taint-flow engine against it.
std::vector<Diagnostic> lint_indexed(const std::vector<FileInput>& files);

/// Every .hpp/.cpp under `repo_root`/{src,tests,bench,tools}, paths
/// repo-relative. The walk behind lint_tree and the --emit-* modes.
std::vector<FileInput> read_tree(const std::string& repo_root);

struct LintOptions {
  std::string cache_dir;  // "" disables the on-disk facts cache
};

struct LintStats {
  std::size_t files = 0;
  std::size_t cache_hits = 0;
  double analysis_ms = 0.0;  // per-file phase only: hash + (load | compute)
};

/// Runs every rule over the repo, including the doc/LEAKAGE.md and
/// doc/SECRET_FLOWS.md drift checks. Diagnostics come back sorted by file
/// then line. With a cache dir set, unchanged files load their facts from
/// disk instead of re-lexing; `stats` (optional) reports the hit count and
/// the per-file analysis time — the portion the cache accelerates.
std::vector<Diagnostic> lint_tree(const std::string& repo_root,
                                  const LintOptions& options, LintStats* stats);
std::vector<Diagnostic> lint_tree(const std::string& repo_root);

}  // namespace dblint
