// dblint flow engine — interprocedural taint analysis over the index.hpp
// fact base. This is what replaced R8's path allowlists: instead of asking
// "is this FILE entitled to touch the wire", the engine asks "does a SECRET
// or PLAINTEXT value actually FLOW into this egress call", across function
// and TU boundaries.
//
// Model (DESIGN.md §14 has the full write-up):
//
//   sources     expose_secret() products, SecretBytes declarations, the
//               document plaintext accessors (as_string/as_int/as_double/
//               as_bool/scalar_bytes), decrypt products, and identifiers
//               whose '_'-segments spell plaintext/cleartext/value/secret.
//   sanitizers  the crypto-kernel entry points (encrypt/seal/prf/hmac/
//               fingerprint/hash/digest/mac/sha segments). hkdf is NOT a
//               sanitizer — its output is key material. decrypt is a
//               source, not a sanitizer.
//   sinks       the egress calls (RpcClient::call / send_batch,
//               Channel::transfer_*, ReplicaGroup::call_read/call_write,
//               RpcServer::dispatch), log_line, and replica LogEntry
//               construction.
//
// Per-function summaries (which params reach a sink, which params flow to
// the return value, whether the return value is secret, whether the body
// reaches egress at all) are propagated to fixpoint across the call graph,
// so a secret that takes three hops through helpers before hitting
// send_batch is caught — with the full source → … → sink trace attached to
// the diagnostic.
//
// Rules:
//   secret-egress     (R11)  no unsanitized secret/plaintext flow may reach
//                            an egress sink. Replaces plaintext-egress (R8).
//   wipe-on-all-paths (R12)  a raw owning copy of an expose_secret()
//                            product must reach secure_wipe/wipe_region (or
//                            be adopted by SecretBytes, whose adopting
//                            constructor wipes the source) before every
//                            return/throw edge after it.
//   lock-held-egress  (R13)  no RPC/channel sink may be reachable — directly
//                            or through callees — while a mutex from the R7
//                            lock model is held.
//
// Scope: findings are reported for src/ only (src/workload/ is exempt from
// R11 — the simulated client's job is plaintext); summaries are computed
// over every indexed function so helpers anywhere contribute. Suppression:
// `dblint:allow(<rule>)` at the finding line, or `dblint:allow-fn(<rule>)`
// on the enclosing function's signature for the whole body.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "index.hpp"
#include "lint.hpp"

namespace dblint {

/// One sanctioned secret→sanitizer crossing observed in src/: the inventory
/// behind doc/SECRET_FLOWS.md. Deliberately line-free so the document only
/// drifts when a flow appears/disappears, not when code shifts.
struct SanctionedFlow {
  std::string file;
  std::string function;   // qualified name containing the crossing
  std::string sanitizer;  // callee that consumed the tainted value
  std::string source;     // first trace step's note (where the taint began)

  bool operator==(const SanctionedFlow&) const = default;
  bool operator<(const SanctionedFlow& o) const {
    if (file != o.file) return file < o.file;
    if (function != o.function) return function < o.function;
    if (sanitizer != o.sanitizer) return sanitizer < o.sanitizer;
    return source < o.source;
  }
};

struct FlowAnalysis {
  std::vector<Diagnostic> diagnostics;     // R11–R13, traces attached
  std::vector<SanctionedFlow> sanctioned;  // sorted, deduplicated
};

/// Runs the summary fixpoint + report pass over a built index.
FlowAnalysis analyze_flows(const RepoIndex& index);

/// Introspection view of one function's converged summary, for tests.
struct FlowSummary {
  std::string file;
  std::string qualified;
  std::set<int> params_to_sink;    // param indices that reach an egress sink
  std::set<int> params_to_return;  // param indices that flow to the return
  bool returns_secret = false;     // return value carries inherent taint
  bool reaches_egress = false;     // body (or a callee) performs egress
};

/// Converged summaries for every indexed function, in index order.
std::vector<FlowSummary> flow_summaries(const RepoIndex& index);

/// doc/SECRET_FLOWS.md content for the given analysis result.
std::string secret_flows_markdown(const std::vector<SanctionedFlow>& flows);

}  // namespace dblint
