// leakage-conformance (R9) — the lint half of the leakage invariant.
//
// Parses the per-operation `{TacticOperation::kX, {LeakageLevel::kY, ...}}`
// descriptor tables out of every src/core/tactics/*_tactic.cpp and checks
// each declared rung against the constexpr ceiling table in
// src/schema/leakage.hpp — the SAME definition site the runtime registry
// and policy engine consult, so the lint and the gateway cannot disagree.
// Also generates doc/LEAKAGE.md from those two inputs; lint_tree treats
// any drift between the generated text and the checked-in file as a
// finding.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint.hpp"

namespace dblint {

/// One `{TacticOperation, {LeakageLevel, ...}}` row, as parsed.
struct OperationLeakage {
  int operation = 0;  // schema::TacticOperation numeric value
  int level = 0;      // schema::LeakageLevel numeric value
  std::size_t line_index = 0;
};

/// One descriptor table found in a tactic translation unit.
struct TacticLeakage {
  std::string file;
  std::string name;          // `.name = "DET"`
  int protection_class = 0;  // 1..5; 0 when the parser found none
  std::size_t class_line_index = 0;
  std::vector<OperationLeakage> operations;
};

/// Descriptor tables from every `src/core/tactics/*_tactic.cpp` in
/// `files`; other paths are ignored. Sorted by tactic name.
std::vector<TacticLeakage> parse_tactic_leakage(const std::vector<FileInput>& files);

/// The leakage-conformance pass: every parsed declaration must satisfy
/// schema::leakage_within; a tactic file the parser cannot extract a
/// descriptor from is itself a finding (the pass must not rot silently).
std::vector<Diagnostic> lint_leakage_conformance(const std::vector<FileInput>& files);

/// Deterministic markdown for doc/LEAKAGE.md: the ceiling matrix straight
/// from schema::leakage_ceiling plus every tactic's declared profile.
std::string leakage_matrix_markdown(const std::vector<FileInput>& files);

}  // namespace dblint
