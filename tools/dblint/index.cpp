#include "index.hpp"

#include <algorithm>

namespace dblint {
namespace {

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",      "for",     "while",    "switch",   "catch",    "return",
      "sizeof",  "alignof", "decltype", "throw",    "new",      "delete",
      "else",    "do",      "case",     "default",  "using",    "typedef",
      "template","typename","operator", "noexcept", "static_assert",
      "alignas", "co_await","co_return","co_yield", "requires", "assert"};
  return kKeywords.count(s) > 0;
}

bool is_decl_qualifier(const std::string& s) {
  static const std::set<std::string> kQualifiers = {
      "const", "static", "constexpr", "inline", "mutable",
      "volatile", "thread_local", "struct", "class", "typename"};
  return kQualifiers.count(s) > 0;
}

/// Index of the token matching tokens[open] (an `open_text` delimiter), or
/// npos. Counts only its own delimiter kind, so mixed nesting is fine.
std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open,
                          const std::string& open_text, const std::string& close_text) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == open_text) ++depth;
    if (tokens[i].text == close_text && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Skips template arguments starting at tokens[open] == "<"; returns the
/// index just past the closing '>', treating '>>' as two closers. npos on
/// a runaway (not actually template args, e.g. a comparison).
std::size_t skip_template_args(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  const std::size_t limit = std::min(tokens.size(), open + 64);
  for (std::size_t i = open; i < limit; ++i) {
    const std::string& t = tokens[i].text;
    if (t == "<") ++depth;
    if (t == "<=" || t == ">=" || t == ";" || t == "{") return std::string::npos;
    if (t == ">" && --depth == 0) return i + 1;
    if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Records every name declared (or defined) with a Status / Result<...>
/// return type: `Status f(`, `Status Cls::f(`, `Result<T> g(`, including
/// `static Status OK(`.
void collect_status_signatures(const std::vector<Token>& tokens,
                               std::set<std::string>* out) {
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!tokens[i].is_ident) continue;
    std::size_t j;
    if (tokens[i].text == "Status") {
      j = i + 1;
    } else if (tokens[i].text == "Result" && tokens[i + 1].text == "<") {
      j = skip_template_args(tokens, i + 1);
      if (j == std::string::npos) continue;
    } else {
      continue;
    }
    if (j >= tokens.size() || !tokens[j].is_ident) continue;
    // Skip a Cls::...:: qualifier chain to the final name.
    while (j + 2 < tokens.size() && tokens[j + 1].text == "::" && tokens[j + 2].is_ident) {
      j += 2;
    }
    if (j + 1 < tokens.size() && tokens[j + 1].text == "(" && !is_keyword(tokens[j].text)) {
      out->insert(tokens[j].text);
    }
  }
}

const std::set<std::string>& guard_types() {
  static const std::set<std::string> kGuards = {"lock_guard", "scoped_lock",
                                                "unique_lock", "shared_lock"};
  return kGuards;
}

/// Container / atomic methods that mutate their receiver: the chain head of
/// `pool_.push_back(x)` is a WRITE of pool_, while `entries_.find(k)` reads.
bool is_mutating_method(const std::string& callee) {
  static const std::set<std::string> kMutating = {
      "push_back", "pop_back",  "push_front", "pop_front", "emplace",
      "emplace_back", "emplace_front", "insert", "erase",  "clear",
      "resize",    "reserve",   "assign",     "push",      "pop",
      "store",     "fetch_add", "fetch_sub",  "exchange",  "swap",
      "reset",     "merge"};
  return kMutating.count(callee) > 0;
}

/// Field names whose '_'-segments spell a synchronization object — the
/// mutexes/cvs themselves are lock NODES, not guarded data, so accesses to
/// them are not member-field accesses for the race analyzer.
bool is_sync_named(const std::string& name) {
  static const std::set<std::string> kSync = {"mutex", "mu", "cv", "lock",
                                              "latch", "cond"};
  return kSync.count(last_segment(name)) > 0;
}

/// Normalizes one guard-constructor argument (a token slice) into a mutex
/// name: "mutex_" -> "mutex_", "other . mutex_" -> "other.mutex_". Member
/// mutexes (single trailing-underscore identifier) are qualified with the
/// enclosing class so KvStore::mutex_ and DocStore::mutex_ stay distinct
/// nodes in the lock-order graph. Lock tags (std::adopt_lock etc.) and
/// non-name expressions return empty.
std::string normalize_mutex(const std::vector<Token>& tokens, std::size_t begin,
                            std::size_t end, const std::string& class_name) {
  std::string name;
  std::size_t ident_count = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::string& t = tokens[i].text;
    if (t == "this" || t == "*" || t == "&") continue;
    if (t == "." || t == "->" || t == "::") {
      if (!name.empty()) name += (t == "::") ? "::" : ".";
      continue;
    }
    if (!tokens[i].is_ident) return {};  // expression, not a name
    name += t;
    ++ident_count;
  }
  if (name.empty()) return {};
  if (ends_with(name, "_lock")) return {};  // std::adopt_lock / defer_lock tags
  if (ident_count == 1 && ends_with(name, "_") && !class_name.empty()) {
    return class_name + "::" + name;
  }
  return name;
}

/// Collects the identifiers inside each top-level argument of a call whose
/// '(' sits at `open` and matching ')' at `close`.
std::vector<std::vector<std::string>> collect_call_args(
    const std::vector<Token>& tokens, std::size_t open, std::size_t close) {
  std::vector<std::vector<std::string>> args;
  if (close <= open + 1) return args;  // zero-arg call
  std::vector<std::string> current;
  int nest = 0;
  for (std::size_t k = open + 1; k < close; ++k) {
    const std::string& t = tokens[k].text;
    if (t == "(" || t == "{" || t == "[") ++nest;
    if (t == ")" || t == "}" || t == "]") --nest;
    if (t == "," && nest == 0) {
      args.push_back(std::move(current));
      current.clear();
      continue;
    }
    if (tokens[k].is_ident && !is_keyword(t)) current.push_back(t);
  }
  args.push_back(std::move(current));
  return args;
}

/// The active lockset as a sorted, deduplicated snapshot — recorded into
/// `lockset_changes` whenever a guard is constructed, lock()ed, unlock()ed
/// or popped, so the statement scanner can query the set at any token.
struct OpenGuard {
  std::size_t depth;
  std::vector<std::string> mutexes;
  std::string var;  // guard variable name
  bool active;      // false between defer_lock construction and .lock()
};

std::vector<std::string> active_lockset(const std::vector<OpenGuard>& guards) {
  std::set<std::string> held;
  for (const OpenGuard& g : guards) {
    if (g.active) held.insert(g.mutexes.begin(), g.mutexes.end());
  }
  return {held.begin(), held.end()};
}

using LocksetChanges = std::vector<std::pair<std::size_t, std::vector<std::string>>>;

/// Lockset in effect at token index `at` (last change with index <= at).
const std::vector<std::string>& lockset_at(const LocksetChanges& changes,
                                           std::size_t at) {
  static const std::vector<std::string> kNone;
  const std::vector<std::string>* cur = &kNone;
  for (const auto& [idx, set] : changes) {
    if (idx > at) break;
    cur = &set;
  }
  return *cur;
}

/// Walks one function body: brace depth, guard scopes (with held-before
/// edges), and call sites with discard classification, argument identifier
/// lists, and the mutexes held at each site. `call_tokens` receives the
/// callee-token index of each recorded call (parallel to fn->calls) so the
/// statement scanner can map calls into statements. `lockset_changes`
/// receives (token index, active lockset) snapshots.
///
/// Guard tracking understands the unique_lock life cycle: a defer_lock
/// construction holds nothing until `.lock()` on the guard variable, an
/// explicit `.unlock()` releases mid-scope, and adopt_lock / try_to_lock
/// count as held from construction (try_to_lock over-approximates the
/// success branch). `.lock()`/`.unlock()` on a known guard VARIABLE is
/// lockset bookkeeping, not a raw-mutex call, so it is not recorded as a
/// call site (R7 only flags raw locking of the mutex itself).
void scan_body(const std::vector<Token>& tokens, std::size_t body_begin,
               std::size_t body_end, FunctionInfo* fn,
               std::vector<std::size_t>* call_tokens,
               LocksetChanges* lockset_changes) {
  std::vector<OpenGuard> open_guards;
  std::size_t depth = 0;

  for (std::size_t i = body_begin; i <= body_end; ++i) {
    const Token& t = tokens[i];
    if (t.text == "{") {
      ++depth;
      continue;
    }
    if (t.text == "}") {
      --depth;
      bool released = false;
      while (!open_guards.empty() && open_guards.back().depth > depth) {
        released = released || open_guards.back().active;
        open_guards.pop_back();
      }
      if (released) lockset_changes->push_back({i, active_lockset(open_guards)});
      continue;
    }

    // --- RAII guard acquisition ------------------------------------------
    if (t.is_ident && guard_types().count(t.text) > 0) {
      std::size_t j = i + 1;
      if (j < body_end && tokens[j].text == "<") {
        const std::size_t past = skip_template_args(tokens, j);
        if (past == std::string::npos) continue;
        j = past;
      }
      if (j + 1 >= body_end || !tokens[j].is_ident || tokens[j + 1].text != "(") {
        continue;  // e.g. a mention in a type alias — no acquisition
      }
      const std::size_t close = match_forward(tokens, j + 1, "(", ")");
      if (close == std::string::npos || close > body_end) continue;

      GuardSite guard;
      guard.line_index = t.line_index;
      guard.depth = depth;
      guard.var = tokens[j].text;
      bool deferred = false;
      std::size_t arg_begin = j + 2;
      int nest = 0;
      for (std::size_t k = j + 2; k <= close; ++k) {
        const std::string& kt = tokens[k].text;
        if (kt == "(" || kt == "{") ++nest;
        if (kt == ")" || kt == "}") --nest;
        if (kt == "defer_lock") deferred = true;  // held only after .lock()
        if ((kt == "," && nest == 0) || k == close) {
          const std::string m =
              normalize_mutex(tokens, arg_begin, k, fn->class_name);
          if (!m.empty()) guard.mutexes.push_back(m);
          arg_begin = k + 1;
        }
      }
      if (!guard.mutexes.empty()) {
        if (!deferred) {
          for (const OpenGuard& held : open_guards) {
            if (!held.active) continue;
            for (const std::string& from : held.mutexes) {
              for (const std::string& to : guard.mutexes) {
                fn->lock_edges.push_back({from, to, t.line_index});
              }
            }
          }
        }
        open_guards.push_back({depth, guard.mutexes, guard.var, !deferred});
        if (!deferred) {
          lockset_changes->push_back({close, active_lockset(open_guards)});
        }
        fn->guards.push_back(std::move(guard));
      }
      i = close;
      continue;
    }

    // --- guard-variable lock()/unlock(): lockset bookkeeping --------------
    if (t.text == "(" && i >= body_begin + 3 && tokens[i - 1].is_ident &&
        (tokens[i - 1].text == "lock" || tokens[i - 1].text == "unlock" ||
         tokens[i - 1].text == "try_lock") &&
        (tokens[i - 2].text == "." || tokens[i - 2].text == "->") &&
        tokens[i - 3].is_ident) {
      OpenGuard* target = nullptr;
      for (auto it = open_guards.rbegin(); it != open_guards.rend(); ++it) {
        if (it->var == tokens[i - 3].text) {
          target = &*it;
          break;
        }
      }
      if (target != nullptr) {
        const std::size_t close = match_forward(tokens, i, "(", ")");
        if (close == std::string::npos || close > body_end) continue;
        const bool acquire = tokens[i - 1].text != "unlock";
        if (acquire && !target->active) {
          for (const OpenGuard& held : open_guards) {
            if (!held.active) continue;
            for (const std::string& from : held.mutexes) {
              for (const std::string& to : target->mutexes) {
                fn->lock_edges.push_back({from, to, tokens[i - 1].line_index});
              }
            }
          }
        }
        if (target->active != acquire) {
          target->active = acquire;
          lockset_changes->push_back({close, active_lockset(open_guards)});
        }
        i = close;
        continue;
      }
      // Not a guard variable: fall through — a raw .lock() on the mutex
      // itself is a recorded call site (and an R7 finding).
    }

    // --- call sites -------------------------------------------------------
    if (t.text == "(" && i > body_begin && tokens[i - 1].is_ident &&
        !is_keyword(tokens[i - 1].text)) {
      const std::size_t close = match_forward(tokens, i, "(", ")");
      if (close == std::string::npos || close > body_end) continue;

      CallSite call;
      call.callee = tokens[i - 1].text;
      call.line_index = tokens[i - 1].line_index;
      call.args = collect_call_args(tokens, i, close);
      for (const OpenGuard& held : open_guards) {
        if (!held.active) continue;
        call.held_mutexes.insert(call.held_mutexes.end(), held.mutexes.begin(),
                                 held.mutexes.end());
      }

      // Walk the member chain back to its head: `store_.sub().sync(` is
      // approximated by stepping over `ident . ident` pairs.
      std::size_t h = i - 1;
      call.member_call = h > body_begin && (tokens[h - 1].text == "." ||
                                            tokens[h - 1].text == "->");
      while (h >= body_begin + 2 &&
             (tokens[h - 1].text == "." || tokens[h - 1].text == "->" ||
              tokens[h - 1].text == "::") &&
             tokens[h - 2].is_ident) {
        h -= 2;
      }
      call.chain_head = tokens[h].text;

      // Discarded iff the call chain IS the whole expression statement:
      // terminated by ';' and preceded by a statement boundary. A `)`
      // boundary covers `if (...) chain.f();` — still a discard — while a
      // preceding `(void)` cast marks the discard deliberate.
      if (close + 1 <= body_end && tokens[close + 1].text == ";") {
        const std::size_t p = h - 1;  // h > body_begin always (body '{' first)
        const std::string& pt = tokens[p].text;
        if (pt == ";" || pt == "{" || pt == "}" || pt == ")" || pt == "else") {
          call.result_discarded = true;
          if (pt == ")" && p >= 2 && tokens[p - 1].text == "void" &&
              tokens[p - 2].text == "(") {
            call.void_cast = true;
          }
        }
      }
      call_tokens->push_back(i - 1);
      fn->calls.push_back(std::move(call));
      continue;
    }
  }
}

/// Resolves the written lvalue left of the '=' at token `eq`: walks back
/// over a subscript, then over a `.`/`->`/`::` chain to its HEAD, so
/// `entry.wire = x` writes `entry` and `cache_[k] = x` writes `cache_`.
std::string lvalue_head(const std::vector<Token>& tokens, std::size_t begin,
                        std::size_t eq) {
  if (eq == begin) return {};
  std::size_t p = eq - 1;
  // Compound assignment: `buf += x` tokenizes as '+' '='.
  static const std::set<std::string> kCompound = {"+", "-", "*", "/", "%",
                                                  "&", "|", "^", "<<", ">>"};
  if (kCompound.count(tokens[p].text) > 0) {
    if (p == begin) return {};
    --p;
  }
  if (tokens[p].text == "]") {
    int depth = 1;
    while (p > begin && depth > 0) {
      --p;
      if (tokens[p].text == "]") ++depth;
      if (tokens[p].text == "[") --depth;
    }
    if (p == begin) return {};
    --p;
  }
  while (p >= begin + 2 &&
         (tokens[p - 1].text == "." || tokens[p - 1].text == "->" ||
          tokens[p - 1].text == "::") &&
         tokens[p - 2].is_ident) {
    p -= 2;
  }
  return tokens[p].is_ident ? tokens[p].text : std::string{};
}

/// Token index of the lvalue chain HEAD left of the '=' at `eq` (the same
/// walk as lvalue_head, but positional): the field-access extractor marks
/// exactly that chain as the statement's write.
std::size_t lvalue_chain_start(const std::vector<Token>& tokens, std::size_t begin,
                               std::size_t eq) {
  if (eq == begin) return std::string::npos;
  std::size_t p = eq - 1;
  static const std::set<std::string> kCompound = {"+", "-", "*", "/", "%",
                                                  "&", "|", "^", "<<", ">>"};
  if (kCompound.count(tokens[p].text) > 0) {
    if (p == begin) return std::string::npos;
    --p;
  }
  if (tokens[p].text == "]") {
    int depth = 1;
    while (p > begin && depth > 0) {
      --p;
      if (tokens[p].text == "]") ++depth;
      if (tokens[p].text == "[") --depth;
    }
    if (p == begin) return std::string::npos;
    --p;
  }
  while (p >= begin + 2 &&
         (tokens[p - 1].text == "." || tokens[p - 1].text == "->" ||
          tokens[p - 1].text == "::") &&
         tokens[p - 2].is_ident) {
    p -= 2;
  }
  return tokens[p].is_ident ? p : std::string::npos;
}

bool file_declares_field(const std::vector<FieldDecl>& fields,
                         const std::string& class_name, const std::string& name) {
  for (const FieldDecl& fd : fields) {
    if (fd.name != name) continue;
    if (class_name.empty() || fd.class_name == class_name) return true;
  }
  return false;
}

/// Extracts the member-field accesses of one statement fragment: walks the
/// `a.b->c_` chains, resolves each to a class-scoped (`Class::f_`) or
/// object-qualified (`obj.f_`) field key, classifies read vs write (lvalue
/// chain of '=', ++/--, mutating container/atomic methods), and attaches
/// the lockset active at the access token. Guard-construction fragments are
/// skipped by the caller; mutex/cv-named members are lock nodes, not data.
void extract_field_accesses(const std::vector<Token>& tokens, std::size_t frag_begin,
                            std::size_t frag_end, std::size_t eq,
                            std::size_t decl_ident, FunctionInfo* fn,
                            const std::vector<FieldDecl>& fields,
                            const LocksetChanges& lockset_changes) {
  const std::size_t write_head =
      (eq != std::string::npos) ? lvalue_chain_start(tokens, frag_begin, eq)
                                : std::string::npos;
  for (std::size_t k = frag_begin; k < frag_end; ++k) {
    if (!tokens[k].is_ident || is_keyword(tokens[k].text)) continue;
    if (k == decl_ident) continue;  // a declared LOCAL, not a field
    // Only chain heads: members reached through '.'/'->' are handled as part
    // of the chain; '::'-qualified names are types/statics, not accesses.
    if (k > frag_begin &&
        (tokens[k - 1].text == "." || tokens[k - 1].text == "->" ||
         tokens[k - 1].text == "::")) {
      continue;
    }
    // Walk the chain forward.
    std::vector<std::size_t> segs{k};
    std::size_t p = k;
    while (p + 2 < frag_end &&
           (tokens[p + 1].text == "." || tokens[p + 1].text == "->") &&
           tokens[p + 2].is_ident) {
      p += 2;
      segs.push_back(p);
    }
    std::string method;
    if (p + 1 < frag_end && tokens[p + 1].text == "(" && segs.size() > 1) {
      method = tokens[segs.back()].text;  // trailing member call
      segs.pop_back();
    }

    // Resolve the chain to a field key.
    const std::string& head = tokens[segs[0]].text;
    std::string key;
    std::string member;
    if (head == "this") {
      if (segs.size() < 2 || fn->class_name.empty()) continue;
      member = tokens[segs[1]].text;
      key = fn->class_name + "::" + member;
    } else if (!fn->class_name.empty() &&
               (ends_with(head, "_") ||
                file_declares_field(fields, fn->class_name, head))) {
      member = head;
      key = fn->class_name + "::" + head;
    } else if (segs.size() >= 2) {
      member = tokens[segs[1]].text;
      if (!ends_with(member, "_") && !file_declares_field(fields, {}, member)) {
        continue;
      }
      key = head + "." + member;
    } else {
      continue;
    }
    if (is_sync_named(member)) continue;

    FieldAccess access;
    access.field = key;
    access.line_index = tokens[segs[0]].line_index;
    // ++/-- tokenize as two single-char operators; check both sides.
    const bool prefix_incdec =
        segs[0] >= frag_begin + 2 &&
        (tokens[segs[0] - 1].text == "+" || tokens[segs[0] - 1].text == "-") &&
        tokens[segs[0] - 2].text == tokens[segs[0] - 1].text;
    const bool postfix_incdec =
        p + 2 < frag_end &&
        (tokens[p + 1].text == "+" || tokens[p + 1].text == "-") &&
        tokens[p + 2].text == tokens[p + 1].text;
    access.is_write = (segs[0] == write_head) || prefix_incdec ||
                      postfix_incdec ||
                      (!method.empty() && is_mutating_method(method));
    access.held_mutexes = lockset_at(lockset_changes, segs[0]);
    const bool dup =
        std::any_of(fn->accesses.begin(), fn->accesses.end(),
                    [&](const FieldAccess& a) {
                      return a.field == access.field &&
                             a.line_index == access.line_index &&
                             a.is_write == access.is_write &&
                             a.held_mutexes == access.held_mutexes;
                    });
    if (!dup) fn->accesses.push_back(std::move(access));
    k = p;  // chain consumed
  }
}

/// Detects a declaration at the start of a statement fragment. On success
/// sets decl_type (LAST segment of the type chain: `std::string` ->
/// "string", `SecretBytes` -> "SecretBytes") and returns the token index of
/// the declared identifier; npos otherwise.
std::size_t detect_declaration(const std::vector<Token>& tokens, std::size_t begin,
                               std::size_t end, std::string* decl_type) {
  std::size_t i = begin;
  while (i < end && tokens[i].is_ident && is_decl_qualifier(tokens[i].text)) ++i;
  if (i >= end || !tokens[i].is_ident || is_keyword(tokens[i].text)) return std::string::npos;
  std::string type = tokens[i].text;
  ++i;
  while (i + 1 < end && tokens[i].text == "::" && tokens[i + 1].is_ident) {
    type = tokens[i + 1].text;
    i += 2;
  }
  if (i < end && tokens[i].text == "<") {
    const std::size_t past = skip_template_args(tokens, i);
    if (past == std::string::npos) return std::string::npos;
    i = past;
  }
  while (i < end && (tokens[i].text == "*" || tokens[i].text == "&" ||
                     tokens[i].text == "&&" || tokens[i].text == "const")) {
    ++i;
  }
  if (i >= end || !tokens[i].is_ident || is_keyword(tokens[i].text)) return std::string::npos;
  // The declared name must be followed by an initializer or terminator —
  // `foo (x)` is a call, `Bytes x(...)` / `Bytes x = ...` / `Bytes x;` are
  // declarations (the fragment end doubles as the ';' / '{' boundary).
  if (i + 1 < end) {
    const std::string& nx = tokens[i + 1].text;
    if (nx != "=" && nx != "(" && nx != "{" && nx != "," && nx != "[") {
      return std::string::npos;
    }
  }
  *decl_type = type;
  return i;
}

/// Splits the body into statement fragments (boundaries: ';', '{', '}') and
/// computes per-fragment flow facts. `call_tokens` maps fn->calls entries to
/// their callee-token index; `lockset_changes` is scan_body's guard-state
/// trail, queried for the lockset at each fragment and field access.
void scan_statements(const std::vector<Token>& tokens, std::size_t body_begin,
                     std::size_t body_end, FunctionInfo* fn,
                     const std::vector<std::size_t>& call_tokens,
                     const std::vector<FieldDecl>& fields,
                     const LocksetChanges& lockset_changes) {
  std::size_t frag_begin = body_begin + 1;
  for (std::size_t i = body_begin + 1; i <= body_end; ++i) {
    const std::string& t = tokens[i].text;
    if (t != ";" && t != "{" && t != "}" && i != body_end) continue;
    const std::size_t frag_end = i;  // exclusive
    if (frag_end > frag_begin) {
      Statement stmt;
      stmt.line_index = tokens[frag_begin].line_index;
      stmt.held_mutexes = lockset_at(lockset_changes, frag_begin);

      int depth = 0;
      std::size_t eq = std::string::npos;
      bool is_guard_stmt = false;
      for (std::size_t k = frag_begin; k < frag_end; ++k) {
        const std::string& kt = tokens[k].text;
        if (kt == "(" || kt == "[") ++depth;
        if (kt == ")" || kt == "]") --depth;
        if (tokens[k].is_ident && guard_types().count(kt) > 0) is_guard_stmt = true;
        if (depth == 0) {
          if (kt == "return" || kt == "co_return") stmt.is_return = true;
          if (kt == "throw") stmt.is_throw = true;
          if (kt == "=" && eq == std::string::npos) eq = k;
        }
      }

      std::size_t reads_from = frag_begin;
      const std::size_t decl_ident =
          detect_declaration(tokens, frag_begin, frag_end, &stmt.decl_type);
      if (eq != std::string::npos) {
        stmt.write_ident = lvalue_head(tokens, frag_begin, eq);
        reads_from = eq + 1;
      } else if (decl_ident != std::string::npos) {
        stmt.write_ident = tokens[decl_ident].text;
        reads_from = decl_ident + 1;  // ctor-style init: read the arguments
      }
      if (!is_guard_stmt) {
        // Guard constructions name their mutex, which is not a data access.
        extract_field_accesses(tokens, frag_begin, frag_end, eq, decl_ident,
                               fn, fields, lockset_changes);
      }
      for (std::size_t k = reads_from; k < frag_end; ++k) {
        if (!tokens[k].is_ident || is_keyword(tokens[k].text)) continue;
        if (std::find(stmt.read_idents.begin(), stmt.read_idents.end(),
                      tokens[k].text) == stmt.read_idents.end()) {
          stmt.read_idents.push_back(tokens[k].text);
        }
      }
      for (std::size_t c = 0; c < call_tokens.size(); ++c) {
        if (call_tokens[c] >= frag_begin && call_tokens[c] < frag_end) {
          stmt.calls.push_back(c);
        }
      }
      if (!stmt.read_idents.empty() || !stmt.write_ident.empty() ||
          !stmt.calls.empty() || stmt.is_return || stmt.is_throw) {
        fn->stmts.push_back(std::move(stmt));
      }
    }
    frag_begin = i + 1;
  }
}

/// Collects data-member declarations at class scope: walks the token stream
/// tracking class/struct bodies (same discipline as extract_functions), and
/// inside each class records `Type name_;` / `Type name_ = init;` /
/// `Type name_{init};` fragments. Method declarations (`name(` after the
/// identifier), constexpr/static constants, using/typedef/friend lines and
/// access specifiers are skipped.
std::vector<FieldDecl> collect_field_decls(const std::vector<Token>& tokens) {
  std::vector<FieldDecl> fields;
  struct ClassScope {
    std::size_t depth;
    std::string name;
  };
  std::vector<ClassScope> class_stack;
  std::size_t depth = 0;
  std::size_t frag_begin = 0;

  auto consume_fragment = [&](std::size_t frag_end) {
    if (class_stack.empty() || depth != class_stack.back().depth) return;
    std::size_t begin = frag_begin;
    // Skip a leading access specifier (`public :` etc.).
    while (begin + 1 < frag_end &&
           (tokens[begin].text == "public" || tokens[begin].text == "private" ||
            tokens[begin].text == "protected") &&
           tokens[begin + 1].text == ":") {
      begin += 2;
    }
    if (begin >= frag_end) return;
    bool atomic = false;
    for (std::size_t k = begin; k < frag_end; ++k) {
      const std::string& kt = tokens[k].text;
      if (kt == "constexpr" || kt == "static" || kt == "using" ||
          kt == "typedef" || kt == "friend" || kt == "enum") {
        return;
      }
      if (tokens[k].is_ident && kt.compare(0, 6, "atomic") == 0) atomic = true;
    }
    std::string type;
    const std::size_t name_idx = detect_declaration(tokens, begin, frag_end, &type);
    if (name_idx == std::string::npos) return;
    // `name(` at class scope is a method declaration, not a field.
    if (name_idx + 1 < frag_end && tokens[name_idx + 1].text == "(") return;
    static const std::set<std::string> kSyncTypes = {
        "mutex",          "shared_mutex",       "recursive_mutex",
        "timed_mutex",    "recursive_timed_mutex",
        "condition_variable", "condition_variable_any"};
    FieldDecl fd;
    fd.class_name = class_stack.back().name;
    fd.name = tokens[name_idx].text;
    fd.type = type;
    fd.line_index = tokens[name_idx].line_index;
    fd.is_atomic = atomic;
    fd.is_sync = kSyncTypes.count(type) > 0;
    fields.push_back(std::move(fd));
  };

  std::size_t i = 0;
  while (i < tokens.size()) {
    const Token& t = tokens[i];
    if (t.is_ident && (t.text == "class" || t.text == "struct") &&
        i + 1 < tokens.size() && tokens[i + 1].is_ident) {
      const std::string name = tokens[i + 1].text;
      std::size_t k = i + 2;
      bool has_body = false;
      while (k < tokens.size() && k < i + 48) {
        if (tokens[k].text == "{") {
          has_body = true;
          break;
        }
        if (tokens[k].text == ";" || tokens[k].text == "(") break;
        ++k;
      }
      if (has_body) {
        class_stack.push_back({depth + 1, name});
        depth += 1;
        i = k + 1;
        frag_begin = i;
        continue;
      }
      i += 2;
      continue;
    }
    if (t.text == "{") {
      consume_fragment(i);  // `Type name_{init};` terminates at its '{'
      ++depth;
      ++i;
      frag_begin = i;
      continue;
    }
    if (t.text == "}") {
      --depth;
      while (!class_stack.empty() && class_stack.back().depth > depth) {
        class_stack.pop_back();
      }
      ++i;
      frag_begin = i;
      continue;
    }
    if (t.text == ";") {
      consume_fragment(i);
      ++i;
      frag_begin = i;
      continue;
    }
    ++i;
  }
  return fields;
}

/// Parses the parameter names out of a definition's `(...)` span.
std::vector<std::string> parse_params(const std::vector<Token>& tokens,
                                      std::size_t open, std::size_t close) {
  std::vector<std::string> params;
  std::size_t chunk_begin = open + 1;
  int nest = 0;
  for (std::size_t k = open + 1; k <= close; ++k) {
    const std::string& t = tokens[k].text;
    if (t == "(" || t == "{" || t == "[" || t == "<") ++nest;
    if (t == ")" || t == "}" || t == "]" || t == ">") --nest;
    const bool at_close = (k == close);
    if ((t == "," && nest == 0) || at_close) {
      // Name = last identifier before a top-level '=' (default argument).
      std::string name;
      int d = 0;
      for (std::size_t p = chunk_begin; p < k; ++p) {
        const std::string& pt = tokens[p].text;
        if (pt == "(" || pt == "{" || pt == "[" || pt == "<") ++d;
        if (pt == ")" || pt == "}" || pt == "]" || pt == ">") --d;
        if (pt == "=" && d == 0) break;
        if (tokens[p].is_ident && !is_keyword(pt)) name = pt;
      }
      if (!name.empty() && name != "void") params.push_back(name);
      chunk_begin = k + 1;
    }
  }
  return params;
}

/// Extracts function definitions from one file's token stream, tracking
/// enclosing class/struct scopes so inline members get a class name.
/// `fields` is the file's class-scope member table (collect_field_decls),
/// consulted by the field-access extractor.
std::vector<FunctionInfo> extract_functions(const std::vector<Token>& tokens,
                                            const std::vector<FieldDecl>& fields) {
  std::vector<FunctionInfo> functions;
  struct ClassScope {
    std::size_t depth;  // brace depth INSIDE the class body
    std::string name;
  };
  std::vector<ClassScope> class_stack;
  std::size_t depth = 0;

  std::size_t i = 0;
  while (i < tokens.size()) {
    const Token& t = tokens[i];
    if (t.text == "{") {
      ++depth;
      ++i;
      continue;
    }
    if (t.text == "}") {
      --depth;
      while (!class_stack.empty() && class_stack.back().depth > depth) {
        class_stack.pop_back();
      }
      ++i;
      continue;
    }

    // class/struct scope entry (skipping forward declarations).
    if (t.is_ident && (t.text == "class" || t.text == "struct") &&
        i + 1 < tokens.size() && tokens[i + 1].is_ident) {
      const std::string name = tokens[i + 1].text;
      std::size_t k = i + 2;
      bool has_body = false;
      while (k < tokens.size() && k < i + 48) {
        if (tokens[k].text == "{") {
          has_body = true;
          break;
        }
        if (tokens[k].text == ";" || tokens[k].text == "(") break;
        ++k;
      }
      if (has_body) {
        class_stack.push_back({depth + 1, name});
        depth += 1;
        i = k + 1;
        continue;
      }
      i += 2;
      continue;
    }

    if (t.text != "(" || i == 0 || !tokens[i - 1].is_ident ||
        is_keyword(tokens[i - 1].text)) {
      ++i;
      continue;
    }

    // Candidate: qualified-name '(' params ')' [qualifiers] '{'.
    std::size_t chain_start = i - 1;
    std::string qualified = tokens[chain_start].text;
    std::string class_name;
    while (chain_start >= 2 && tokens[chain_start - 1].text == "::" &&
           tokens[chain_start - 2].is_ident) {
      if (class_name.empty()) class_name = tokens[chain_start - 2].text;
      qualified = tokens[chain_start - 2].text + "::" + qualified;
      chain_start -= 2;
    }
    if (class_name.empty() && !class_stack.empty()) {
      class_name = class_stack.back().name;
    }

    const std::size_t close = match_forward(tokens, i, "(", ")");
    if (close == std::string::npos) {
      ++i;
      continue;
    }

    // Bridge the gap between ')' and the body '{' — cv-qualifiers,
    // noexcept(...), trailing return, ctor init list. Anything else
    // (';', '=', ',', '.', operators) means "not a definition".
    std::size_t m = close + 1;
    std::size_t body = std::string::npos;
    while (m < tokens.size()) {
      const std::string& mt = tokens[m].text;
      if (mt == "{") {
        body = m;
        break;
      }
      if (mt == "const" || mt == "override" || mt == "final" || mt == "&" ||
          mt == "&&") {
        ++m;
        continue;
      }
      if (mt == "noexcept") {
        ++m;
        if (m < tokens.size() && tokens[m].text == "(") {
          const std::size_t nc = match_forward(tokens, m, "(", ")");
          if (nc == std::string::npos) break;
          m = nc + 1;
        }
        continue;
      }
      if (mt == "->") {  // trailing return type
        ++m;
        while (m < tokens.size() &&
               (tokens[m].is_ident || tokens[m].text == "::" ||
                tokens[m].text == "<" || tokens[m].text == ">" ||
                tokens[m].text == ">>" || tokens[m].text == "*" ||
                tokens[m].text == "&" || tokens[m].text == ",")) {
          ++m;
        }
        continue;
      }
      if (mt == ":") {  // constructor init list
        ++m;
        bool parsed = true;
        while (m < tokens.size()) {
          while (m < tokens.size() &&
                 (tokens[m].is_ident || tokens[m].text == "::")) {
            ++m;
          }
          if (m >= tokens.size() ||
              (tokens[m].text != "(" && tokens[m].text != "{")) {
            parsed = false;
            break;
          }
          const bool paren = tokens[m].text == "(";
          const std::size_t gc = paren ? match_forward(tokens, m, "(", ")")
                                       : match_forward(tokens, m, "{", "}");
          if (gc == std::string::npos) {
            parsed = false;
            break;
          }
          m = gc + 1;
          if (m < tokens.size() && tokens[m].text == ",") {
            ++m;
            continue;
          }
          break;
        }
        if (!parsed) break;
        continue;
      }
      break;
    }

    if (body == std::string::npos) {
      i = close + 1;
      continue;
    }
    const std::size_t body_end = match_forward(tokens, body, "{", "}");
    if (body_end == std::string::npos) {
      i = body + 1;
      ++depth;
      continue;
    }

    FunctionInfo fn;
    fn.name = tokens[i - 1].text;
    fn.qualified = qualified;
    fn.class_name = class_name;
    fn.line_index = tokens[chain_start].line_index;
    fn.params = parse_params(tokens, i, close);
    if (chain_start > 0) {
      const Token& prev = tokens[chain_start - 1];
      if (prev.text == "Status") {
        fn.returns_status = true;
      } else if (prev.text == ">" || prev.text == ">>") {
        // Walk the template args back to their head and check for Result.
        int tdepth = 0;
        std::size_t b = chain_start - 1;
        for (;; --b) {
          const std::string& bt = tokens[b].text;
          if (bt == ">") ++tdepth;
          if (bt == ">>") tdepth += 2;
          if (bt == "<" && --tdepth == 0) break;
          if (b == 0) break;
        }
        if (b >= 1 && tokens[b - 1].text == "Result") fn.returns_status = true;
      }
    }
    std::vector<std::size_t> call_tokens;
    LocksetChanges lockset_changes;
    scan_body(tokens, body, body_end, &fn, &call_tokens, &lockset_changes);
    scan_statements(tokens, body, body_end, &fn, call_tokens, fields,
                    lockset_changes);
    functions.push_back(std::move(fn));
    i = body_end + 1;
  }
  return functions;
}

}  // namespace

FileIndex index_file(const std::string& path, const std::string& content,
                     std::set<std::string>* status_out) {
  FileIndex fi;
  fi.path = path;
  const std::vector<Token> tokens = tokenize(strip_comments_and_strings(content));
  const std::vector<std::string> raw_lines = split_lines(content);
  fi.allows = collect_allows(raw_lines);
  fi.fn_allows = collect_fn_allows(raw_lines);
  fi.fields = collect_field_decls(tokens);
  fi.functions = extract_functions(tokens, fi.fields);
  if (status_out != nullptr) collect_status_signatures(tokens, status_out);

  // `// dblint:thread-root` on (or on the line above) a function definition
  // marks it as a thread entry point for the concurrency analyzer.
  std::set<std::size_t> root_lines;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    if (raw_lines[i].find("dblint:thread-root") != std::string::npos) {
      root_lines.insert(i);
      root_lines.insert(i + 1);
    }
  }
  for (FunctionInfo& fn : fi.functions) {
    if (root_lines.count(fn.line_index) > 0) fn.thread_root = true;
  }
  return fi;
}

RepoIndex build_index(const std::vector<FileInput>& files) {
  RepoIndex index;
  for (const FileInput& f : files) {
    index.files.push_back(index_file(f.path, f.content, &index.status_returning));
  }
  return index;
}

}  // namespace dblint
