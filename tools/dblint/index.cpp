#include "index.hpp"

#include <algorithm>

namespace dblint {
namespace {

bool is_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",      "for",     "while",    "switch",   "catch",    "return",
      "sizeof",  "alignof", "decltype", "throw",    "new",      "delete",
      "else",    "do",      "case",     "default",  "using",    "typedef",
      "template","typename","operator", "noexcept", "static_assert",
      "alignas", "co_await","co_return","co_yield", "requires", "assert"};
  return kKeywords.count(s) > 0;
}

bool is_decl_qualifier(const std::string& s) {
  static const std::set<std::string> kQualifiers = {
      "const", "static", "constexpr", "inline", "mutable",
      "volatile", "thread_local", "struct", "class", "typename"};
  return kQualifiers.count(s) > 0;
}

/// Index of the token matching tokens[open] (an `open_text` delimiter), or
/// npos. Counts only its own delimiter kind, so mixed nesting is fine.
std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open,
                          const std::string& open_text, const std::string& close_text) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == open_text) ++depth;
    if (tokens[i].text == close_text && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Skips template arguments starting at tokens[open] == "<"; returns the
/// index just past the closing '>', treating '>>' as two closers. npos on
/// a runaway (not actually template args, e.g. a comparison).
std::size_t skip_template_args(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  const std::size_t limit = std::min(tokens.size(), open + 64);
  for (std::size_t i = open; i < limit; ++i) {
    const std::string& t = tokens[i].text;
    if (t == "<") ++depth;
    if (t == "<=" || t == ">=" || t == ";" || t == "{") return std::string::npos;
    if (t == ">" && --depth == 0) return i + 1;
    if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Records every name declared (or defined) with a Status / Result<...>
/// return type: `Status f(`, `Status Cls::f(`, `Result<T> g(`, including
/// `static Status OK(`.
void collect_status_signatures(const std::vector<Token>& tokens,
                               std::set<std::string>* out) {
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!tokens[i].is_ident) continue;
    std::size_t j;
    if (tokens[i].text == "Status") {
      j = i + 1;
    } else if (tokens[i].text == "Result" && tokens[i + 1].text == "<") {
      j = skip_template_args(tokens, i + 1);
      if (j == std::string::npos) continue;
    } else {
      continue;
    }
    if (j >= tokens.size() || !tokens[j].is_ident) continue;
    // Skip a Cls::...:: qualifier chain to the final name.
    while (j + 2 < tokens.size() && tokens[j + 1].text == "::" && tokens[j + 2].is_ident) {
      j += 2;
    }
    if (j + 1 < tokens.size() && tokens[j + 1].text == "(" && !is_keyword(tokens[j].text)) {
      out->insert(tokens[j].text);
    }
  }
}

const std::set<std::string>& guard_types() {
  static const std::set<std::string> kGuards = {"lock_guard", "scoped_lock",
                                                "unique_lock", "shared_lock"};
  return kGuards;
}

/// Normalizes one guard-constructor argument (a token slice) into a mutex
/// name: "mutex_" -> "mutex_", "other . mutex_" -> "other.mutex_". Member
/// mutexes (single trailing-underscore identifier) are qualified with the
/// enclosing class so KvStore::mutex_ and DocStore::mutex_ stay distinct
/// nodes in the lock-order graph. Lock tags (std::adopt_lock etc.) and
/// non-name expressions return empty.
std::string normalize_mutex(const std::vector<Token>& tokens, std::size_t begin,
                            std::size_t end, const std::string& class_name) {
  std::string name;
  std::size_t ident_count = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::string& t = tokens[i].text;
    if (t == "this" || t == "*" || t == "&") continue;
    if (t == "." || t == "->" || t == "::") {
      if (!name.empty()) name += (t == "::") ? "::" : ".";
      continue;
    }
    if (!tokens[i].is_ident) return {};  // expression, not a name
    name += t;
    ++ident_count;
  }
  if (name.empty()) return {};
  if (ends_with(name, "_lock")) return {};  // std::adopt_lock / defer_lock tags
  if (ident_count == 1 && ends_with(name, "_") && !class_name.empty()) {
    return class_name + "::" + name;
  }
  return name;
}

/// Collects the identifiers inside each top-level argument of a call whose
/// '(' sits at `open` and matching ')' at `close`.
std::vector<std::vector<std::string>> collect_call_args(
    const std::vector<Token>& tokens, std::size_t open, std::size_t close) {
  std::vector<std::vector<std::string>> args;
  if (close <= open + 1) return args;  // zero-arg call
  std::vector<std::string> current;
  int nest = 0;
  for (std::size_t k = open + 1; k < close; ++k) {
    const std::string& t = tokens[k].text;
    if (t == "(" || t == "{" || t == "[") ++nest;
    if (t == ")" || t == "}" || t == "]") --nest;
    if (t == "," && nest == 0) {
      args.push_back(std::move(current));
      current.clear();
      continue;
    }
    if (tokens[k].is_ident && !is_keyword(t)) current.push_back(t);
  }
  args.push_back(std::move(current));
  return args;
}

/// Walks one function body: brace depth, guard scopes (with held-before
/// edges), and call sites with discard classification, argument identifier
/// lists, and the mutexes held at each site. `call_tokens` receives the
/// callee-token index of each recorded call (parallel to fn->calls) so the
/// statement scanner can map calls into statements.
void scan_body(const std::vector<Token>& tokens, std::size_t body_begin,
               std::size_t body_end, FunctionInfo* fn,
               std::vector<std::size_t>* call_tokens) {
  struct OpenGuard {
    std::size_t depth;
    std::vector<std::string> mutexes;
  };
  std::vector<OpenGuard> open_guards;
  std::size_t depth = 0;

  for (std::size_t i = body_begin; i <= body_end; ++i) {
    const Token& t = tokens[i];
    if (t.text == "{") {
      ++depth;
      continue;
    }
    if (t.text == "}") {
      --depth;
      while (!open_guards.empty() && open_guards.back().depth > depth) {
        open_guards.pop_back();
      }
      continue;
    }

    // --- RAII guard acquisition ------------------------------------------
    if (t.is_ident && guard_types().count(t.text) > 0) {
      std::size_t j = i + 1;
      if (j < body_end && tokens[j].text == "<") {
        const std::size_t past = skip_template_args(tokens, j);
        if (past == std::string::npos) continue;
        j = past;
      }
      if (j + 1 >= body_end || !tokens[j].is_ident || tokens[j + 1].text != "(") {
        continue;  // e.g. a mention in a type alias — no acquisition
      }
      const std::size_t close = match_forward(tokens, j + 1, "(", ")");
      if (close == std::string::npos || close > body_end) continue;

      GuardSite guard;
      guard.line_index = t.line_index;
      guard.depth = depth;
      std::size_t arg_begin = j + 2;
      int nest = 0;
      for (std::size_t k = j + 2; k <= close; ++k) {
        const std::string& kt = tokens[k].text;
        if (kt == "(" || kt == "{") ++nest;
        if (kt == ")" || kt == "}") --nest;
        if ((kt == "," && nest == 0) || k == close) {
          const std::string m =
              normalize_mutex(tokens, arg_begin, k, fn->class_name);
          if (!m.empty()) guard.mutexes.push_back(m);
          arg_begin = k + 1;
        }
      }
      if (!guard.mutexes.empty()) {
        for (const OpenGuard& held : open_guards) {
          for (const std::string& from : held.mutexes) {
            for (const std::string& to : guard.mutexes) {
              fn->lock_edges.push_back({from, to, t.line_index});
            }
          }
        }
        open_guards.push_back({depth, guard.mutexes});
        fn->guards.push_back(std::move(guard));
      }
      i = close;
      continue;
    }

    // --- call sites -------------------------------------------------------
    if (t.text == "(" && i > body_begin && tokens[i - 1].is_ident &&
        !is_keyword(tokens[i - 1].text)) {
      const std::size_t close = match_forward(tokens, i, "(", ")");
      if (close == std::string::npos || close > body_end) continue;

      CallSite call;
      call.callee = tokens[i - 1].text;
      call.line_index = tokens[i - 1].line_index;
      call.args = collect_call_args(tokens, i, close);
      for (const OpenGuard& held : open_guards) {
        call.held_mutexes.insert(call.held_mutexes.end(), held.mutexes.begin(),
                                 held.mutexes.end());
      }

      // Walk the member chain back to its head: `store_.sub().sync(` is
      // approximated by stepping over `ident . ident` pairs.
      std::size_t h = i - 1;
      call.member_call = h > body_begin && (tokens[h - 1].text == "." ||
                                            tokens[h - 1].text == "->");
      while (h >= body_begin + 2 &&
             (tokens[h - 1].text == "." || tokens[h - 1].text == "->" ||
              tokens[h - 1].text == "::") &&
             tokens[h - 2].is_ident) {
        h -= 2;
      }
      call.chain_head = tokens[h].text;

      // Discarded iff the call chain IS the whole expression statement:
      // terminated by ';' and preceded by a statement boundary. A `)`
      // boundary covers `if (...) chain.f();` — still a discard — while a
      // preceding `(void)` cast marks the discard deliberate.
      if (close + 1 <= body_end && tokens[close + 1].text == ";") {
        const std::size_t p = h - 1;  // h > body_begin always (body '{' first)
        const std::string& pt = tokens[p].text;
        if (pt == ";" || pt == "{" || pt == "}" || pt == ")" || pt == "else") {
          call.result_discarded = true;
          if (pt == ")" && p >= 2 && tokens[p - 1].text == "void" &&
              tokens[p - 2].text == "(") {
            call.void_cast = true;
          }
        }
      }
      call_tokens->push_back(i - 1);
      fn->calls.push_back(std::move(call));
      continue;
    }
  }
}

/// Resolves the written lvalue left of the '=' at token `eq`: walks back
/// over a subscript, then over a `.`/`->`/`::` chain to its HEAD, so
/// `entry.wire = x` writes `entry` and `cache_[k] = x` writes `cache_`.
std::string lvalue_head(const std::vector<Token>& tokens, std::size_t begin,
                        std::size_t eq) {
  if (eq == begin) return {};
  std::size_t p = eq - 1;
  // Compound assignment: `buf += x` tokenizes as '+' '='.
  static const std::set<std::string> kCompound = {"+", "-", "*", "/", "%",
                                                  "&", "|", "^", "<<", ">>"};
  if (kCompound.count(tokens[p].text) > 0) {
    if (p == begin) return {};
    --p;
  }
  if (tokens[p].text == "]") {
    int depth = 1;
    while (p > begin && depth > 0) {
      --p;
      if (tokens[p].text == "]") ++depth;
      if (tokens[p].text == "[") --depth;
    }
    if (p == begin) return {};
    --p;
  }
  while (p >= begin + 2 &&
         (tokens[p - 1].text == "." || tokens[p - 1].text == "->" ||
          tokens[p - 1].text == "::") &&
         tokens[p - 2].is_ident) {
    p -= 2;
  }
  return tokens[p].is_ident ? tokens[p].text : std::string{};
}

/// Detects a declaration at the start of a statement fragment. On success
/// sets decl_type (LAST segment of the type chain: `std::string` ->
/// "string", `SecretBytes` -> "SecretBytes") and returns the token index of
/// the declared identifier; npos otherwise.
std::size_t detect_declaration(const std::vector<Token>& tokens, std::size_t begin,
                               std::size_t end, std::string* decl_type) {
  std::size_t i = begin;
  while (i < end && tokens[i].is_ident && is_decl_qualifier(tokens[i].text)) ++i;
  if (i >= end || !tokens[i].is_ident || is_keyword(tokens[i].text)) return std::string::npos;
  std::string type = tokens[i].text;
  ++i;
  while (i + 1 < end && tokens[i].text == "::" && tokens[i + 1].is_ident) {
    type = tokens[i + 1].text;
    i += 2;
  }
  if (i < end && tokens[i].text == "<") {
    const std::size_t past = skip_template_args(tokens, i);
    if (past == std::string::npos) return std::string::npos;
    i = past;
  }
  while (i < end && (tokens[i].text == "*" || tokens[i].text == "&" ||
                     tokens[i].text == "&&" || tokens[i].text == "const")) {
    ++i;
  }
  if (i >= end || !tokens[i].is_ident || is_keyword(tokens[i].text)) return std::string::npos;
  // The declared name must be followed by an initializer or terminator —
  // `foo (x)` is a call, `Bytes x(...)` / `Bytes x = ...` / `Bytes x;` are
  // declarations (the fragment end doubles as the ';' / '{' boundary).
  if (i + 1 < end) {
    const std::string& nx = tokens[i + 1].text;
    if (nx != "=" && nx != "(" && nx != "{" && nx != "," && nx != "[") {
      return std::string::npos;
    }
  }
  *decl_type = type;
  return i;
}

/// Splits the body into statement fragments (boundaries: ';', '{', '}') and
/// computes per-fragment flow facts. `call_tokens` maps fn->calls entries to
/// their callee-token index.
void scan_statements(const std::vector<Token>& tokens, std::size_t body_begin,
                     std::size_t body_end, FunctionInfo* fn,
                     const std::vector<std::size_t>& call_tokens) {
  std::size_t frag_begin = body_begin + 1;
  for (std::size_t i = body_begin + 1; i <= body_end; ++i) {
    const std::string& t = tokens[i].text;
    if (t != ";" && t != "{" && t != "}" && i != body_end) continue;
    const std::size_t frag_end = i;  // exclusive
    if (frag_end > frag_begin) {
      Statement stmt;
      stmt.line_index = tokens[frag_begin].line_index;

      int depth = 0;
      std::size_t eq = std::string::npos;
      for (std::size_t k = frag_begin; k < frag_end; ++k) {
        const std::string& kt = tokens[k].text;
        if (kt == "(" || kt == "[") ++depth;
        if (kt == ")" || kt == "]") --depth;
        if (depth == 0) {
          if (kt == "return" || kt == "co_return") stmt.is_return = true;
          if (kt == "throw") stmt.is_throw = true;
          if (kt == "=" && eq == std::string::npos) eq = k;
        }
      }

      std::size_t reads_from = frag_begin;
      const std::size_t decl_ident =
          detect_declaration(tokens, frag_begin, frag_end, &stmt.decl_type);
      if (eq != std::string::npos) {
        stmt.write_ident = lvalue_head(tokens, frag_begin, eq);
        reads_from = eq + 1;
      } else if (decl_ident != std::string::npos) {
        stmt.write_ident = tokens[decl_ident].text;
        reads_from = decl_ident + 1;  // ctor-style init: read the arguments
      }
      for (std::size_t k = reads_from; k < frag_end; ++k) {
        if (!tokens[k].is_ident || is_keyword(tokens[k].text)) continue;
        if (std::find(stmt.read_idents.begin(), stmt.read_idents.end(),
                      tokens[k].text) == stmt.read_idents.end()) {
          stmt.read_idents.push_back(tokens[k].text);
        }
      }
      for (std::size_t c = 0; c < call_tokens.size(); ++c) {
        if (call_tokens[c] >= frag_begin && call_tokens[c] < frag_end) {
          stmt.calls.push_back(c);
        }
      }
      if (!stmt.read_idents.empty() || !stmt.write_ident.empty() ||
          !stmt.calls.empty() || stmt.is_return || stmt.is_throw) {
        fn->stmts.push_back(std::move(stmt));
      }
    }
    frag_begin = i + 1;
  }
}

/// Parses the parameter names out of a definition's `(...)` span.
std::vector<std::string> parse_params(const std::vector<Token>& tokens,
                                      std::size_t open, std::size_t close) {
  std::vector<std::string> params;
  std::size_t chunk_begin = open + 1;
  int nest = 0;
  for (std::size_t k = open + 1; k <= close; ++k) {
    const std::string& t = tokens[k].text;
    if (t == "(" || t == "{" || t == "[" || t == "<") ++nest;
    if (t == ")" || t == "}" || t == "]" || t == ">") --nest;
    const bool at_close = (k == close);
    if ((t == "," && nest == 0) || at_close) {
      // Name = last identifier before a top-level '=' (default argument).
      std::string name;
      int d = 0;
      for (std::size_t p = chunk_begin; p < k; ++p) {
        const std::string& pt = tokens[p].text;
        if (pt == "(" || pt == "{" || pt == "[" || pt == "<") ++d;
        if (pt == ")" || pt == "}" || pt == "]" || pt == ">") --d;
        if (pt == "=" && d == 0) break;
        if (tokens[p].is_ident && !is_keyword(pt)) name = pt;
      }
      if (!name.empty() && name != "void") params.push_back(name);
      chunk_begin = k + 1;
    }
  }
  return params;
}

/// Extracts function definitions from one file's token stream, tracking
/// enclosing class/struct scopes so inline members get a class name.
std::vector<FunctionInfo> extract_functions(const std::vector<Token>& tokens) {
  std::vector<FunctionInfo> functions;
  struct ClassScope {
    std::size_t depth;  // brace depth INSIDE the class body
    std::string name;
  };
  std::vector<ClassScope> class_stack;
  std::size_t depth = 0;

  std::size_t i = 0;
  while (i < tokens.size()) {
    const Token& t = tokens[i];
    if (t.text == "{") {
      ++depth;
      ++i;
      continue;
    }
    if (t.text == "}") {
      --depth;
      while (!class_stack.empty() && class_stack.back().depth > depth) {
        class_stack.pop_back();
      }
      ++i;
      continue;
    }

    // class/struct scope entry (skipping forward declarations).
    if (t.is_ident && (t.text == "class" || t.text == "struct") &&
        i + 1 < tokens.size() && tokens[i + 1].is_ident) {
      const std::string name = tokens[i + 1].text;
      std::size_t k = i + 2;
      bool has_body = false;
      while (k < tokens.size() && k < i + 48) {
        if (tokens[k].text == "{") {
          has_body = true;
          break;
        }
        if (tokens[k].text == ";" || tokens[k].text == "(") break;
        ++k;
      }
      if (has_body) {
        class_stack.push_back({depth + 1, name});
        depth += 1;
        i = k + 1;
        continue;
      }
      i += 2;
      continue;
    }

    if (t.text != "(" || i == 0 || !tokens[i - 1].is_ident ||
        is_keyword(tokens[i - 1].text)) {
      ++i;
      continue;
    }

    // Candidate: qualified-name '(' params ')' [qualifiers] '{'.
    std::size_t chain_start = i - 1;
    std::string qualified = tokens[chain_start].text;
    std::string class_name;
    while (chain_start >= 2 && tokens[chain_start - 1].text == "::" &&
           tokens[chain_start - 2].is_ident) {
      if (class_name.empty()) class_name = tokens[chain_start - 2].text;
      qualified = tokens[chain_start - 2].text + "::" + qualified;
      chain_start -= 2;
    }
    if (class_name.empty() && !class_stack.empty()) {
      class_name = class_stack.back().name;
    }

    const std::size_t close = match_forward(tokens, i, "(", ")");
    if (close == std::string::npos) {
      ++i;
      continue;
    }

    // Bridge the gap between ')' and the body '{' — cv-qualifiers,
    // noexcept(...), trailing return, ctor init list. Anything else
    // (';', '=', ',', '.', operators) means "not a definition".
    std::size_t m = close + 1;
    std::size_t body = std::string::npos;
    while (m < tokens.size()) {
      const std::string& mt = tokens[m].text;
      if (mt == "{") {
        body = m;
        break;
      }
      if (mt == "const" || mt == "override" || mt == "final" || mt == "&" ||
          mt == "&&") {
        ++m;
        continue;
      }
      if (mt == "noexcept") {
        ++m;
        if (m < tokens.size() && tokens[m].text == "(") {
          const std::size_t nc = match_forward(tokens, m, "(", ")");
          if (nc == std::string::npos) break;
          m = nc + 1;
        }
        continue;
      }
      if (mt == "->") {  // trailing return type
        ++m;
        while (m < tokens.size() &&
               (tokens[m].is_ident || tokens[m].text == "::" ||
                tokens[m].text == "<" || tokens[m].text == ">" ||
                tokens[m].text == ">>" || tokens[m].text == "*" ||
                tokens[m].text == "&" || tokens[m].text == ",")) {
          ++m;
        }
        continue;
      }
      if (mt == ":") {  // constructor init list
        ++m;
        bool parsed = true;
        while (m < tokens.size()) {
          while (m < tokens.size() &&
                 (tokens[m].is_ident || tokens[m].text == "::")) {
            ++m;
          }
          if (m >= tokens.size() ||
              (tokens[m].text != "(" && tokens[m].text != "{")) {
            parsed = false;
            break;
          }
          const bool paren = tokens[m].text == "(";
          const std::size_t gc = paren ? match_forward(tokens, m, "(", ")")
                                       : match_forward(tokens, m, "{", "}");
          if (gc == std::string::npos) {
            parsed = false;
            break;
          }
          m = gc + 1;
          if (m < tokens.size() && tokens[m].text == ",") {
            ++m;
            continue;
          }
          break;
        }
        if (!parsed) break;
        continue;
      }
      break;
    }

    if (body == std::string::npos) {
      i = close + 1;
      continue;
    }
    const std::size_t body_end = match_forward(tokens, body, "{", "}");
    if (body_end == std::string::npos) {
      i = body + 1;
      ++depth;
      continue;
    }

    FunctionInfo fn;
    fn.name = tokens[i - 1].text;
    fn.qualified = qualified;
    fn.class_name = class_name;
    fn.line_index = tokens[chain_start].line_index;
    fn.params = parse_params(tokens, i, close);
    if (chain_start > 0) {
      const Token& prev = tokens[chain_start - 1];
      if (prev.text == "Status") {
        fn.returns_status = true;
      } else if (prev.text == ">" || prev.text == ">>") {
        // Walk the template args back to their head and check for Result.
        int tdepth = 0;
        std::size_t b = chain_start - 1;
        for (;; --b) {
          const std::string& bt = tokens[b].text;
          if (bt == ">") ++tdepth;
          if (bt == ">>") tdepth += 2;
          if (bt == "<" && --tdepth == 0) break;
          if (b == 0) break;
        }
        if (b >= 1 && tokens[b - 1].text == "Result") fn.returns_status = true;
      }
    }
    std::vector<std::size_t> call_tokens;
    scan_body(tokens, body, body_end, &fn, &call_tokens);
    scan_statements(tokens, body, body_end, &fn, call_tokens);
    functions.push_back(std::move(fn));
    i = body_end + 1;
  }
  return functions;
}

}  // namespace

FileIndex index_file(const std::string& path, const std::string& content,
                     std::set<std::string>* status_out) {
  FileIndex fi;
  fi.path = path;
  const std::vector<Token> tokens = tokenize(strip_comments_and_strings(content));
  const std::vector<std::string> raw_lines = split_lines(content);
  fi.allows = collect_allows(raw_lines);
  fi.fn_allows = collect_fn_allows(raw_lines);
  fi.functions = extract_functions(tokens);
  if (status_out != nullptr) collect_status_signatures(tokens, status_out);
  return fi;
}

RepoIndex build_index(const std::vector<FileInput>& files) {
  RepoIndex index;
  for (const FileInput& f : files) {
    index.files.push_back(index_file(f.path, f.content, &index.status_returning));
  }
  return index;
}

}  // namespace dblint
