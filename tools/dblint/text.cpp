#include "text.hpp"

#include <algorithm>
#include <cctype>

namespace dblint {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

namespace {

/// Blanks a raw string literal `R"delim( ... )delim"` in place, starting at
/// the 'R'. Newlines survive so line numbers hold. Returns the index of the
/// closing '"' (or the last index if the literal never closes — still better
/// than desynchronizing the scan for the rest of the file).
std::size_t blank_raw_string(std::string* out, std::size_t r_pos) {
  std::string& s = *out;
  // Delimiter: the (possibly empty) run between `R"` and `(`, max 16 chars.
  const std::size_t quote = r_pos + 1;
  std::size_t open = quote + 1;
  while (open < s.size() && s[open] != '(' && s[open] != '\n' &&
         open - quote <= 17) {
    ++open;
  }
  if (open >= s.size() || s[open] != '(') {
    // Not actually a raw literal; blank just the R so the caller's ordinary
    // string state machine takes over at the quote.
    return r_pos;
  }
  std::string closer;
  closer.push_back(')');
  closer.append(s, quote + 1, open - quote - 1);
  closer.push_back('"');
  const std::size_t end = s.find(closer, open + 1);
  const std::size_t last =
      (end == std::string::npos) ? s.size() - 1 : end + closer.size() - 1;
  for (std::size_t i = r_pos; i <= last && i < s.size(); ++i) {
    if (s[i] != '\n') s[i] = ' ';
  }
  return last;
}

}  // namespace

std::string strip_comments_and_strings(const std::string& text, bool keep_strings) {
  std::string out = text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = (i + 1 < out.size()) ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !is_ident_char(out[i - 1]))) {
          // Raw string literal: blanked in BOTH modes (even keep_strings) —
          // the quote-driven tokenizer cannot re-lex `)delim"` correctly, and
          // no in-scope table (leakage descriptors) uses raw literals.
          i = blank_raw_string(&out, i);
        } else if (c == '"') {
          state = State::kString;
          if (!keep_strings) out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          if (!keep_strings) out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\\' && next == '\n') {
          // Backslash line-continuation: the comment swallows the next
          // physical line too, exactly as the preprocessor does.
          out[i] = ' ';
          ++i;  // keep the newline; stay in the comment
        } else if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (!keep_strings) out[i] = ' ';
          if (next != '\n' && next != '\0') {
            if (!keep_strings) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          if (!keep_strings) out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          if (!keep_strings) out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (!keep_strings) out[i] = ' ';
          if (next != '\n' && next != '\0') {
            if (!keep_strings) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          if (!keep_strings) out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          if (!keep_strings) out[i] = ' ';
        }
      }
  }
  return out;
}

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> tokens;
  std::size_t line = 0;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (is_ident_char(c)) {
      std::size_t j = i;
      while (j < text.size() && is_ident_char(text[j])) ++j;
      tokens.push_back({text.substr(i, j - i), true, false, line});
      i = j;
      continue;
    }
    // String/char literals survive only when the input kept them (the
    // leakage parser); emit the content as one token, quotes removed.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string content;
      while (j < text.size() && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < text.size()) ++j;  // keep escaped char
        content.push_back(text[j]);
        ++j;
      }
      tokens.push_back({content, false, true, line});
      i = (j < text.size()) ? j + 1 : j;
      continue;
    }
    // Two-char operators we care about; everything else is single-char.
    if (i + 1 < text.size()) {
      const std::string two = text.substr(i, 2);
      if (two == "==" || two == "!=" || two == "->" || two == "<=" || two == ">=" ||
          two == "&&" || two == "||" || two == "<<" || two == ">>" || two == "::") {
        tokens.push_back({two, false, false, line});
        i += 2;
        continue;
      }
    }
    tokens.push_back({std::string(1, c), false, false, line});
    ++i;
  }
  return tokens;
}

namespace {

std::vector<std::set<std::string>> collect_markers(
    const std::vector<std::string>& raw_lines, const std::string& marker) {
  std::vector<std::set<std::string>> allows(raw_lines.size());
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    std::size_t pos = 0;
    while ((pos = line.find(marker, pos)) != std::string::npos) {
      const std::size_t start = pos + marker.size();
      const std::size_t close = line.find(')', start);
      if (close == std::string::npos) break;
      const std::string rule = line.substr(start, close - start);
      allows[i].insert(rule);
      if (i + 1 < raw_lines.size()) allows[i + 1].insert(rule);
      pos = close;
    }
  }
  return allows;
}

}  // namespace

std::vector<std::set<std::string>> collect_allows(const std::vector<std::string>& raw_lines) {
  return collect_markers(raw_lines, "dblint:allow(");
}

std::vector<std::set<std::string>> collect_fn_allows(const std::vector<std::string>& raw_lines) {
  // `dblint:allow-fn(` must be matched first when scanning generically —
  // here the distinct marker strings keep the two collections disjoint
  // (plain "dblint:allow(" does not prefix-match the -fn spelling).
  return collect_markers(raw_lines, "dblint:allow-fn(");
}

bool allowed(const std::vector<std::set<std::string>>& allows, std::size_t line_index,
             const std::string& rule) {
  return line_index < allows.size() && allows[line_index].count(rule) > 0;
}

std::string last_segment(const std::string& ident) {
  std::string s = ident;
  while (!s.empty() && (s.back() == '_' || std::isdigit(static_cast<unsigned char>(s.back())))) {
    s.pop_back();
  }
  const std::size_t pos = s.rfind('_');
  std::string seg = (pos == std::string::npos) ? s : s.substr(pos + 1);
  std::transform(seg.begin(), seg.end(), seg.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return seg;
}

}  // namespace dblint
