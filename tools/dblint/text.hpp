// dblint text layer — the lexing substrate shared by the token rules
// (lint.cpp), the indexer (index.cpp) and the leakage-table parser
// (leakage_pass.cpp). Deliberately tiny: comment/string stripping that
// preserves line numbers, a whole-file tokenizer, and the
// `dblint:allow(<rule>)` escape-marker scanner.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace dblint {

bool starts_with(const std::string& s, const std::string& prefix);
bool ends_with(const std::string& s, const std::string& suffix);

std::vector<std::string> split_lines(const std::string& text);

bool is_ident_char(char c);

/// Replaces comments — and, unless `keep_strings`, string/char literals —
/// with spaces so token rules never fire on prose. Newlines survive, so
/// line numbers hold. The leakage-table parser keeps strings because
/// descriptor names live in them (`t.name = "DET"`). Raw string literals
/// (`R"delim(...)delim"`) are blanked in both modes, and a backslash at the
/// end of a `//` comment continues the comment onto the next physical line,
/// exactly as the preprocessor reads it.
std::string strip_comments_and_strings(const std::string& text, bool keep_strings = false);

struct Token {
  std::string text;
  bool is_ident = false;
  bool is_string = false;      // literal content, quotes removed
  std::size_t line_index = 0;  // 0-based
};

/// Whole-file token stream with line numbers: identifiers, string/char
/// literals (only present when the input kept them), the two-char
/// operators the rules care about, and single characters.
std::vector<Token> tokenize(const std::string& text);

/// Per-line rule sets from `// dblint:allow(<rule>): reason` markers; a
/// marker suppresses its rule on its own line and the line below.
std::vector<std::set<std::string>> collect_allows(const std::vector<std::string>& raw_lines);

/// Per-line rule sets from `// dblint:allow-fn(<rule>): reason` markers.
/// Placed on (or directly above) a function's signature line, the marker
/// suppresses the rule for the WHOLE function body — the flow rules
/// (R11–R13) consult it so a sanctioned zone needs one justified escape,
/// not one per flow. Token rules ignore it.
std::vector<std::set<std::string>> collect_fn_allows(const std::vector<std::string>& raw_lines);

bool allowed(const std::vector<std::set<std::string>>& allows, std::size_t line_index,
             const std::string& rule);

/// Last '_'-separated segment of an identifier, trailing underscores and
/// digits stripped and lowercased: "prf_key_" -> "key".
std::string last_segment(const std::string& ident);

}  // namespace dblint
