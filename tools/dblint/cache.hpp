// dblint on-disk facts cache.
//
// The expensive part of a dblint run is per-file: strip + tokenize + index
// + token rules. All of it is a pure function of the file's bytes, so the
// result — a FileFacts record — is cached on disk keyed by a 64-bit FNV-1a
// hash of the content. One cache file per source path (named by the hash of
// the PATH, so renames never collide); a header line carries the format
// version and the content hash, and any mismatch simply recomputes and
// rewrites — the cache is self-pruning and never trusted beyond "the bytes
// hashed the same".
//
// Repo-level passes (include graph, unchecked-status, lock-discipline, the
// flow engine, leakage conformance) are cheap queries over the assembled
// facts and always run fresh.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "index.hpp"
#include "lint.hpp"

namespace dblint {

/// One `#include "..."` edge, kept so the layering pass can run without
/// the raw file text.
struct IncludeEdge {
  std::size_t line_index = 0;
  std::string target;  // as written, e.g. "crypto/gcm.hpp"
};

/// Everything dblint ever needs from one file: the cacheable unit.
struct FileFacts {
  std::string path;
  std::vector<Diagnostic> token_diags;  // lint_file output (R1–R4, R10)
  std::vector<IncludeEdge> includes;
  FileIndex index;                      // functions, allows, fn_allows
  std::set<std::string> status_names;   // Status/Result signature names
};

/// FNV-1a 64-bit. Cheap, deterministic, good enough for content keys in a
/// trusted tree (this is a build cache, not an integrity boundary).
std::uint64_t fnv1a64(const std::string& data);

/// `#include "..."` edges of one file, by raw line scan.
std::vector<IncludeEdge> extract_includes(const std::vector<std::string>& raw_lines);

/// Computes the facts for one file from its raw bytes (used on cache miss
/// and when no cache dir is configured).
FileFacts compute_file_facts(const std::string& path, const std::string& content);

/// Loads the cached facts for `path` if the cache file exists, parses, and
/// its recorded content hash equals `content_hash`. Returns false otherwise.
bool load_file_facts(const std::string& cache_dir, const std::string& path,
                     std::uint64_t content_hash, FileFacts* out);

/// Serializes `facts` for `path` into the cache dir (created if missing).
/// Best-effort: failures are silent — the next run just recomputes.
void store_file_facts(const std::string& cache_dir, const std::string& path,
                      std::uint64_t content_hash, const FileFacts& facts);

}  // namespace dblint
