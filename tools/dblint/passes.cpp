#include "passes.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace dblint {
namespace {

// ---------------------------------------------------------------------------
// R6: unchecked-status
// ---------------------------------------------------------------------------

void unchecked_status_in_file(const FileIndex& file, const std::set<std::string>& statusy,
                              std::vector<Diagnostic>* out) {
  for (const FunctionInfo& fn : file.functions) {
    for (const CallSite& call : fn.calls) {
      if (!call.result_discarded || call.void_cast) continue;
      if (statusy.count(call.callee) == 0) continue;
      if (allowed(file.allows, call.line_index, "unchecked-status")) continue;
      out->push_back({file.path, static_cast<int>(call.line_index + 1),
                      "unchecked-status",
                      "discarded result of Status-returning '" + call.callee +
                          "' in " + fn.qualified +
                          "; handle it, or discard explicitly with (void) and a "
                          "reason comment"});
    }
  }
}

// ---------------------------------------------------------------------------
// R7: lock-discipline
// ---------------------------------------------------------------------------

bool is_raw_lock_method(const std::string& callee) {
  return callee == "lock" || callee == "unlock" || callee == "try_lock" ||
         callee == "try_lock_for" || callee == "try_lock_until";
}

struct EdgeWitness {
  std::string file;
  std::size_t line_index = 0;
  std::string function;
};

void report_lock_cycles(
    const std::map<std::string, std::map<std::string, EdgeWitness>>& graph,
    std::vector<Diagnostic>* out) {
  // DFS with colors over mutex nodes; each back edge is one cycle report,
  // anchored at the witness site of the closing edge.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> path;
  std::set<std::string> reported;

  struct Frame {
    std::string node;
    std::map<std::string, EdgeWitness>::const_iterator next, end;
  };

  for (const auto& [start, unused] : graph) {
    (void)unused;
    if (color[start] != 0) continue;
    std::vector<Frame> stack;
    const auto& first_children = graph.at(start);
    stack.push_back({start, first_children.begin(), first_children.end()});
    color[start] = 1;
    path.push_back(start);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next != frame.end) {
        const std::string& child = frame.next->first;
        const EdgeWitness& witness = frame.next->second;
        ++frame.next;
        if (color[child] == 1) {
          auto at = std::find(path.begin(), path.end(), child);
          std::ostringstream cycle;
          for (auto p = at; p != path.end(); ++p) cycle << *p << " -> ";
          cycle << child;
          if (reported.insert(cycle.str()).second) {
            out->push_back({witness.file, static_cast<int>(witness.line_index + 1),
                            "lock-discipline",
                            "lock-order cycle: " + cycle.str() + " (closing edge in " +
                                witness.function + ")"});
          }
        } else if (color[child] == 0) {
          color[child] = 1;
          path.push_back(child);
          static const std::map<std::string, EdgeWitness> kNone;
          const auto it = graph.find(child);
          const auto& children = (it != graph.end()) ? it->second : kNone;
          stack.push_back({child, children.begin(), children.end()});
        }
      } else {
        color[frame.node] = 2;
        path.pop_back();
        stack.pop_back();
      }
    }
  }
}

}  // namespace

std::vector<Diagnostic> check_unchecked_status(const RepoIndex& index) {
  std::vector<Diagnostic> out;
  for (const FileIndex& file : index.files) {
    unchecked_status_in_file(file, index.status_returning, &out);
  }
  return out;
}

std::vector<Diagnostic> check_lock_discipline(const RepoIndex& index) {
  std::vector<Diagnostic> out;
  std::map<std::string, std::map<std::string, EdgeWitness>> graph;
  for (const FileIndex& file : index.files) {
    for (const FunctionInfo& fn : file.functions) {
      for (const CallSite& call : fn.calls) {
        if (!call.member_call || !is_raw_lock_method(call.callee)) continue;
        if (allowed(file.allows, call.line_index, "lock-discipline")) continue;
        out.push_back({file.path, static_cast<int>(call.line_index + 1),
                       "lock-discipline",
                       "raw ." + call.callee + "() on '" + call.chain_head + "' in " +
                           fn.qualified +
                           "; use a scoped RAII guard (std::lock_guard / "
                           "std::scoped_lock)"});
      }
      for (const LockEdge& edge : fn.lock_edges) {
        if (allowed(file.allows, edge.line_index, "lock-discipline")) continue;
        auto& slot = graph[edge.from][edge.to];
        if (slot.file.empty()) {
          slot = {file.path, edge.line_index, fn.qualified};
        }
      }
    }
  }
  report_lock_cycles(graph, &out);
  return out;
}

}  // namespace dblint
