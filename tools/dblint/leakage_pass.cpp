#include "leakage_pass.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "schema/leakage.hpp"
#include "text.hpp"

namespace dblint {
namespace {

namespace schema = datablinder::schema;
using schema::LeakageLevel;
using schema::ProtectionClass;
using schema::TacticOperation;

bool is_tactic_file(const std::string& path) {
  return starts_with(path, "src/core/tactics/") && ends_with(path, "_tactic.cpp");
}

/// Maps an enumerator spelling ("kInsert") to its TacticOperation value,
/// via the token table that lives next to the enum itself. -1 if unknown.
int operation_from_token(const std::string& spelling) {
  for (int v = 0; v < schema::kTacticOperationCount; ++v) {
    if (spelling == schema::tactic_operation_token(static_cast<TacticOperation>(v))) {
      return v;
    }
  }
  return -1;
}

int level_from_token(const std::string& spelling) {
  for (int v = 1; v <= 5; ++v) {
    if (spelling == schema::leakage_level_token(static_cast<LeakageLevel>(v))) return v;
  }
  return -1;
}

/// `ident :: ident` lookahead: returns the enumerator after `Scope::` when
/// tokens[i] is the scope name, else empty.
std::string scoped_enumerator(const std::vector<Token>& tokens, std::size_t i,
                              const char* scope) {
  if (!tokens[i].is_ident || tokens[i].text != scope) return {};
  if (i + 2 >= tokens.size() || tokens[i + 1].text != "::" || !tokens[i + 2].is_ident) {
    return {};
  }
  return tokens[i + 2].text;
}

/// Parses all descriptor tables out of one tactic file. Strings are KEPT
/// through tokenization because `.name = "DET"` is the tactic's identity.
std::vector<TacticLeakage> parse_file(const FileInput& f) {
  std::vector<TacticLeakage> out;
  const std::vector<Token> tokens =
      tokenize(strip_comments_and_strings(f.content, /*keep_strings=*/true));

  TacticLeakage cur;
  cur.file = f.path;
  auto flush = [&] {
    if (!cur.name.empty() || cur.protection_class != 0 || !cur.operations.empty()) {
      out.push_back(cur);
      cur = TacticLeakage{};
      cur.file = f.path;
    }
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    // `.name = "DET"` starts a new descriptor.
    if (t.is_ident && t.text == "name" && i >= 1 && tokens[i - 1].text == "." &&
        i + 2 < tokens.size() && tokens[i + 1].text == "=" && tokens[i + 2].is_string) {
      flush();
      cur.name = tokens[i + 2].text;
      continue;
    }
    // `.protection_class = schema::ProtectionClass::kClassN`
    if (t.is_ident && t.text == "protection_class" && i >= 1 &&
        tokens[i - 1].text == "." && i + 1 < tokens.size() &&
        tokens[i + 1].text == "=") {
      for (std::size_t k = i + 2; k < std::min(tokens.size(), i + 10); ++k) {
        const std::string e = scoped_enumerator(tokens, k, "ProtectionClass");
        if (e.size() == 7 && starts_with(e, "kClass") && e[6] >= '1' && e[6] <= '5') {
          cur.protection_class = e[6] - '0';
          cur.class_line_index = t.line_index;
          break;
        }
        if (tokens[k].text == ";") break;
      }
      continue;
    }
    // `.operations = { {TacticOperation::kX, {LeakageLevel::kY, ...}}, ... }`
    if (t.is_ident && t.text == "operations" && i >= 1 && tokens[i - 1].text == "." &&
        i + 2 < tokens.size() && tokens[i + 1].text == "=" &&
        tokens[i + 2].text == "{") {
      int depth = 0;
      std::size_t k = i + 2;
      OperationLeakage pending;
      bool have_op = false;
      for (; k < tokens.size(); ++k) {
        if (tokens[k].text == "{") ++depth;
        if (tokens[k].text == "}" && --depth == 0) break;
        const std::string op_tok = scoped_enumerator(tokens, k, "TacticOperation");
        if (!op_tok.empty()) {
          const int op = operation_from_token(op_tok);
          if (op >= 0) {
            pending = OperationLeakage{op, 0, tokens[k].line_index};
            have_op = true;
          }
          k += 2;
          continue;
        }
        const std::string lv_tok = scoped_enumerator(tokens, k, "LeakageLevel");
        if (!lv_tok.empty() && have_op) {
          const int lv = level_from_token(lv_tok);
          if (lv > 0) {
            pending.level = lv;
            cur.operations.push_back(pending);
          }
          have_op = false;
          k += 2;
          continue;
        }
      }
      i = k;
      continue;
    }
  }
  flush();
  return out;
}

}  // namespace

std::vector<TacticLeakage> parse_tactic_leakage(const std::vector<FileInput>& files) {
  std::vector<TacticLeakage> out;
  for (const FileInput& f : files) {
    if (!is_tactic_file(f.path)) continue;
    const std::vector<TacticLeakage> parsed = parse_file(f);
    out.insert(out.end(), parsed.begin(), parsed.end());
  }
  std::sort(out.begin(), out.end(), [](const TacticLeakage& a, const TacticLeakage& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.file < b.file;
  });
  return out;
}

std::vector<Diagnostic> lint_leakage_conformance(const std::vector<FileInput>& files) {
  std::vector<Diagnostic> out;
  std::set<std::string> files_with_tables;
  const std::vector<TacticLeakage> tactics = parse_tactic_leakage(files);

  // Allow markers live per file; gather them lazily.
  std::map<std::string, std::vector<std::set<std::string>>> allows_by_file;
  for (const FileInput& f : files) {
    if (is_tactic_file(f.path)) {
      allows_by_file[f.path] = collect_allows(split_lines(f.content));
    }
  }

  for (const TacticLeakage& t : tactics) {
    files_with_tables.insert(t.file);
    const auto& allows = allows_by_file[t.file];
    if (t.name.empty() || t.protection_class == 0) {
      out.push_back({t.file, static_cast<int>(t.class_line_index + 1),
                     "leakage-conformance",
                     "descriptor table missing " +
                         std::string(t.name.empty() ? ".name" : ".protection_class") +
                         "; the leakage pass cannot vouch for this tactic"});
      continue;
    }
    const auto cls = static_cast<ProtectionClass>(t.protection_class);
    for (const OperationLeakage& o : t.operations) {
      const auto op = static_cast<TacticOperation>(o.operation);
      const auto declared = static_cast<LeakageLevel>(o.level);
      if (schema::leakage_within(cls, op, declared)) continue;
      if (allowed(allows, o.line_index, "leakage-conformance")) continue;
      out.push_back(
          {t.file, static_cast<int>(o.line_index + 1), "leakage-conformance",
           "tactic '" + t.name + "' declares " +
               schema::leakage_level_name(declared) + " leakage for " +
               schema::tactic_operation_name(op) + ", above the " +
               schema::protection_class_name(cls) + " ceiling " +
               schema::leakage_level_name(schema::leakage_ceiling(cls, op))});
    }
  }

  for (const FileInput& f : files) {
    if (is_tactic_file(f.path) && files_with_tables.count(f.path) == 0) {
      out.push_back({f.path, 1, "leakage-conformance",
                     "no {TacticOperation, {LeakageLevel, ...}} descriptor table found; "
                     "every tactic must declare its per-operation leakage"});
    }
  }
  return out;
}

std::string leakage_matrix_markdown(const std::vector<FileInput>& files) {
  std::ostringstream md;
  md << "# Leakage conformance matrix\n\n"
     << "Generated by `dblint --emit-leakage-matrix` from the constexpr ceiling\n"
     << "table in `src/schema/leakage.hpp` and the descriptor tables in\n"
     << "`src/core/tactics/*_tactic.cpp`. Do not edit by hand — CI fails when\n"
     << "this file drifts from its inputs.\n\n";

  md << "## Per-operation leakage ceilings\n\n"
     << "The maximum `LeakageLevel` a tactic registered at each protection\n"
     << "class may declare per operation (Fuller et al. SoK taxonomy:\n"
     << "Structure < Identifiers < Predicates < Equalities < Order).\n\n";
  md << "| Operation | Class1 | Class2 | Class3 | Class4 | Class5 |\n"
     << "|---|---|---|---|---|---|\n";
  for (int v = 0; v < schema::kTacticOperationCount; ++v) {
    const auto op = static_cast<TacticOperation>(v);
    md << "| " << schema::tactic_operation_name(op) << " ";
    for (int c = 1; c <= 5; ++c) {
      md << "| "
         << schema::leakage_level_name(
                schema::leakage_ceiling(static_cast<ProtectionClass>(c), op))
         << " ";
    }
    md << "|\n";
  }

  md << "\n## Declared tactic leakage\n\n"
     << "| Tactic | Class | Operation | Declared | Ceiling |\n"
     << "|---|---|---|---|---|\n";
  for (const TacticLeakage& t : parse_tactic_leakage(files)) {
    if (t.protection_class == 0) continue;
    const auto cls = static_cast<ProtectionClass>(t.protection_class);
    std::vector<OperationLeakage> ops = t.operations;
    std::sort(ops.begin(), ops.end(),
              [](const OperationLeakage& a, const OperationLeakage& b) {
                return a.operation < b.operation;
              });
    for (const OperationLeakage& o : ops) {
      const auto op = static_cast<TacticOperation>(o.operation);
      md << "| " << t.name << " | " << schema::protection_class_name(cls)
         << " | " << schema::tactic_operation_name(op) << " | "
         << schema::leakage_level_name(static_cast<LeakageLevel>(o.level)) << " | "
         << schema::leakage_level_name(schema::leakage_ceiling(cls, op)) << " |\n";
    }
  }
  return md.str();
}

}  // namespace dblint
