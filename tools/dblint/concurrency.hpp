// dblint concurrency engine — RacerD-style interprocedural lockset analysis
// over the index.hpp fact base. TSan certifies the interleavings the tests
// happen to execute; this pass certifies the locking DISCIPLINE statically,
// for every indexed path.
//
// Model (DESIGN.md §15 has the full write-up):
//
//   thread roots   functions spawned onto their own thread: std::thread /
//                  std::jthread constructions (the member-function pointer
//                  argument form is resolved to its in-tree definition, and
//                  the constructing function itself is a root — lambda
//                  bodies are indexed as part of it), .detach() sites,
//                  Executor task submission, and an explicit
//                  `// dblint:thread-root` marker on the definition line
//                  (or the line above) for roots the indexer cannot see,
//                  e.g. a worker loop only ever entered through a lambda.
//   access paths   per-function summaries field -> {read|write} x lockset,
//                  seeded from the indexer's FieldAccess records (ctors and
//                  dtors excluded: pre-publication state) and propagated
//                  caller-ward to fixpoint like flow.hpp's FnSummary — a
//                  callee's bare access inherits the mutexes held at the
//                  call site, which is how `erase_locked()`-style helpers
//                  stay clean when every caller locks first.
//   guarded-by     per class field, the intersection of locksets across
//                  all (non-ctor) writes — emitted as doc/CONCURRENCY.md
//                  and drift-gated like LEAKAGE.md / SECRET_FLOWS.md.
//
// Rules:
//   inconsistent-lockset (R14)  a field written on one concurrently-
//                               reachable path and accessed with a
//                               non-intersecting lockset on another
//                               (std::atomic fields exempt).
//   guard-escape         (R15)  a pointer/iterator into a guarded field
//                               (.data()/.begin()/.c_str()/...) returned
//                               under the guard or stored into a local
//                               that is used after the lockset drops.
//   lock-order-cycle     (R16)  the R7 cycle detector lifted onto the call
//                               graph: holding M while calling a function
//                               whose transitive acquired-set contains N
//                               contributes an M -> N edge; only cycles
//                               with at least one interprocedural edge are
//                               reported here (pure intra-function cycles
//                               are R7's).
//
// Scope: findings anchor to src/ (src/workload/ exempt — the simulated
// client drives the gateway from plain threads by design); summaries are
// computed over every indexed function. Suppression: dblint:allow(<rule>)
// at the finding line, dblint:allow-fn(<rule>) on the enclosing function.
#pragma once

#include <string>
#include <vector>

#include "index.hpp"
#include "lint.hpp"

namespace dblint {

/// One row of the inferred guarded-by map (doc/CONCURRENCY.md). Line-free
/// so the document drifts only when the locking contract changes.
struct GuardedByEntry {
  std::string field;                // "HotCache::entries_"
  std::string type;                 // declared type's last segment
  std::vector<std::string> guards;  // lockset intersection over all writes
  std::size_t writes = 0;           // non-ctor write sites
  std::size_t reads = 0;            // read sites
  bool is_atomic = false;

  bool operator==(const GuardedByEntry&) const = default;
};

/// One discovered thread root, for the markdown inventory.
struct ThreadRoot {
  std::string file;
  std::string qualified;
  std::string how;  // "annotation" | "thread-ctor" | "detach" | "executor-submit"

  bool operator==(const ThreadRoot&) const = default;
  bool operator<(const ThreadRoot& o) const {
    if (file != o.file) return file < o.file;
    if (qualified != o.qualified) return qualified < o.qualified;
    return how < o.how;
  }
};

struct ConcurrencyAnalysis {
  std::vector<Diagnostic> diagnostics;     // R14-R16, traces attached
  std::vector<GuardedByEntry> guarded_by;  // sorted by field
  std::vector<ThreadRoot> roots;           // sorted, deduplicated
};

/// Runs thread-root discovery, the access-summary fixpoint and the three
/// rule passes over a built index.
ConcurrencyAnalysis analyze_concurrency(const RepoIndex& index);

/// doc/CONCURRENCY.md content for the given analysis result.
std::string concurrency_markdown(const ConcurrencyAnalysis& analysis);

}  // namespace dblint
