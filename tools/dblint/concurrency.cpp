#include "concurrency.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "text.hpp"

namespace dblint {
namespace {

constexpr std::size_t kMaxTraceSteps = 12;
constexpr int kMaxFixpointRounds = 10;
constexpr std::size_t kMaxCalleeDefs = 3;
constexpr std::size_t kMaxLocksetsPerField = 4;  // distinct locksets kept per
                                                 // (field, kind) in a summary

// ---------------------------------------------------------------------------
// Scope + classification helpers
// ---------------------------------------------------------------------------

/// Findings anchor to src/ only; src/workload/ is the simulated client,
/// whose driver threads hammer the gateway from plain loops by design.
bool report_scope(const std::string& path) {
  return starts_with(path, "src/") && !starts_with(path, "src/workload/");
}

/// Same standard-library collision list as flow.cpp, plus names that are
/// generic verbs in this tree (`step.run()` must not resolve to
/// Executor::run and drag the whole gateway into thread-root reachability).
bool is_unresolvable_method(const std::string& callee) {
  static const std::set<std::string> kMethods = {
      "insert",  "find",   "erase",  "emplace", "emplace_back", "push_back",
      "pop_back","append", "at",     "count",   "begin",        "end",
      "size",    "empty",  "clear",  "front",   "back",         "data",
      "reserve", "resize", "substr", "c_str",   "str",          "reset",
      "release", "swap",   "assign", "get",     "push",         "pop",
      "top",     "load",   "store",  "contains",
      // std algorithms and utilities whose names the tree also defines:
      // `std::remove(...)` must not resolve to Planner::remove.
      "remove",  "sort",   "copy",   "move",    "transform",    "accumulate",
      "fill",    "min",    "max",    "forward", "to_string",
      // generic verbs in this tree (`step.run()` is a plan step, not
      // Executor::run) and thread plumbing.
      "run",     "wait",   "notify_one", "notify_all", "join", "detach"};
  return kMethods.count(callee) > 0;
}

/// Accessors whose result aliases the receiver's storage: obtaining one on
/// a guarded field mints a pointer/iterator the guard no longer protects
/// once it goes out of scope.
bool is_escape_accessor(const std::string& callee) {
  static const std::set<std::string> kEscaping = {
      "data", "c_str", "begin", "cbegin", "rbegin", "front", "back"};
  return kEscaping.count(callee) > 0;
}

bool is_ctor_or_dtor(const FunctionInfo& fn) {
  return !fn.class_name.empty() && fn.name == fn.class_name;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string lockset_label(const std::vector<std::string>& lockset) {
  return lockset.empty() ? "no lock" : "{" + join(lockset, ", ") + "}";
}

std::vector<std::string> lockset_union(const std::vector<std::string>& a,
                                       const std::vector<std::string>& b) {
  std::set<std::string> u(a.begin(), a.end());
  u.insert(b.begin(), b.end());
  return {u.begin(), u.end()};
}

bool locksets_intersect(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  for (const std::string& m : a) {
    if (std::find(b.begin(), b.end(), m) != b.end()) return true;
  }
  return false;
}

void append_step(std::vector<TraceStep>* dst, const std::string& file,
                 std::size_t line_index, const std::string& note) {
  if (dst->size() >= kMaxTraceSteps) return;
  dst->push_back({file, static_cast<int>(line_index + 1), note});
}

void append_steps(std::vector<TraceStep>* dst, const std::vector<TraceStep>& src) {
  for (const TraceStep& s : src) {
    if (dst->size() >= kMaxTraceSteps) return;
    dst->push_back(s);
  }
}

// ---------------------------------------------------------------------------
// Engine state
// ---------------------------------------------------------------------------

/// One converged way of reaching a field: kind x lockset, with the call
/// chain that witnesses it and the underlying source-level access site.
struct AccessPath {
  bool is_write = false;
  std::vector<std::string> lockset;  // sorted union over the call chain
  std::vector<TraceStep> trace;      // caller-ward chain down to the access
  const FileIndex* leaf_file = nullptr;  // the access's own location,
  const FunctionInfo* leaf_fn = nullptr;  // for scope + allow lookups
  std::size_t leaf_line = 0;
};

using FieldPaths = std::map<std::string, std::vector<AccessPath>>;

struct FnRef {
  const FileIndex* file = nullptr;
  const FunctionInfo* fn = nullptr;
};

struct Engine {
  const RepoIndex* index = nullptr;
  std::vector<FnRef> fns;
  std::map<std::string, std::vector<std::size_t>> defs;  // name -> fns idx
  std::vector<FieldPaths> summaries;                     // parallel to fns
  std::vector<char> is_root;       // thread-root flag per fn
  std::vector<std::string> root_how;  // discovery mechanism when is_root
  std::vector<char> is_callee;     // appears as a resolved call target
  std::map<std::string, FieldDecl> field_decls;  // "Cls::name" -> decl
};

const std::vector<std::size_t>* resolve(const Engine& eng, const std::string& callee) {
  if (is_unresolvable_method(callee)) return nullptr;
  const auto it = eng.defs.find(callee);
  if (it == eng.defs.end() || it->second.size() > kMaxCalleeDefs) return nullptr;
  return &it->second;
}

/// Name-based resolution refined by the receiver: when a member call's
/// chain head names a declared field whose type IS an indexed class, only
/// that class's methods are candidates — `journal_.remove()` on a
/// `Journal journal_;` member must not resolve to Planner::remove. A
/// container/smart-pointer-typed receiver keeps the unrefined candidates
/// (the wrapped element's class is not recoverable from the last type
/// segment). Unqualified calls follow C++ name lookup: they can reach the
/// caller's own class and free functions, never another class's method —
/// `apply(x)` inside PolicyEngine::select (a local lambda there) must not
/// resolve to KvStore::apply.
std::vector<std::size_t> resolve_call(const Engine& eng, const CallSite& call,
                                      const std::string& caller_class) {
  const std::vector<std::size_t>* targets = resolve(eng, call.callee);
  if (targets == nullptr) return {};
  if (!call.member_call || call.chain_head == call.callee ||
      call.chain_head == "this") {
    std::vector<std::size_t> visible;
    for (const std::size_t t : *targets) {
      const std::string& cls = eng.fns[t].fn->class_name;
      if (cls.empty() || cls == caller_class) visible.push_back(t);
    }
    return visible;  // empty: a local lambda or an unindexed free function
  }
  const FieldDecl* receiver = nullptr;
  for (const auto& [key, fd] : eng.field_decls) {
    if (fd.name == call.chain_head) {
      receiver = &fd;
      break;
    }
  }
  if (receiver == nullptr) return *targets;
  bool type_is_class = false;
  std::vector<std::size_t> refined;
  for (const std::size_t t : *targets) {
    if (eng.fns[t].fn->class_name == receiver->type) refined.push_back(t);
  }
  for (const auto& [key, fd] : eng.field_decls) {
    if (fd.class_name == receiver->type) type_is_class = true;
  }
  if (!refined.empty()) return refined;
  // The receiver's type is a known class but defines no such method: the
  // name match was coincidental. Unknown types keep the candidates.
  return type_is_class ? std::vector<std::size_t>{} : *targets;
}

Engine build_engine(const RepoIndex& index) {
  Engine eng;
  eng.index = &index;
  for (const FileIndex& file : index.files) {
    for (const FieldDecl& fd : file.fields) {
      eng.field_decls.emplace(fd.class_name + "::" + fd.name, fd);
    }
    for (const FunctionInfo& fn : file.functions) {
      eng.defs[fn.name].push_back(eng.fns.size());
      eng.fns.push_back({&file, &fn});
    }
  }
  eng.summaries.resize(eng.fns.size());
  eng.is_root.assign(eng.fns.size(), 0);
  eng.root_how.resize(eng.fns.size());
  eng.is_callee.assign(eng.fns.size(), 0);
  return eng;
}

/// Looks up the declaration behind an access key. "Cls::f_" resolves
/// exactly; "obj.f_" (receiver class unknown to the indexer) falls back to
/// any declaration of that member name.
/// A field whose type is a struct made entirely of std::atomic members
/// (e.g. a ChannelStats counters block) needs no guard: every member
/// access lowers to an individually-atomic operation.
bool is_atomic_aggregate(const Engine& eng, const std::string& type) {
  bool any = false;
  for (const auto& [key, fd] : eng.field_decls) {
    (void)key;
    if (fd.class_name != type) continue;
    any = true;
    if (!fd.is_atomic) return false;
  }
  return any;
}

const FieldDecl* decl_for(const Engine& eng, const std::string& field) {
  const std::size_t qual = field.find("::");
  if (qual != std::string::npos) {
    const auto it = eng.field_decls.find(field);
    return it != eng.field_decls.end() ? &it->second : nullptr;
  }
  const std::size_t dot = field.find('.');
  const std::string member = dot == std::string::npos ? field : field.substr(dot + 1);
  for (const auto& [key, fd] : eng.field_decls) {
    if (fd.name == member) return &fd;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Thread-root discovery
// ---------------------------------------------------------------------------

void mark_root(Engine* eng, std::size_t idx, const std::string& how) {
  if (eng->is_root[idx]) return;
  eng->is_root[idx] = 1;
  eng->root_how[idx] = how;
}

void discover_thread_roots(Engine* eng) {
  for (std::size_t i = 0; i < eng->fns.size(); ++i) {
    const FunctionInfo& fn = *eng->fns[i].fn;
    if (fn.thread_root) mark_root(eng, i, "annotation");

    // `std::thread t(&Cls::method, this, ...)` declarations and
    // `member_ = std::thread(...)` assignments: the target method runs on
    // its own thread, and the constructing function owns any lambda body
    // the indexer folded into it.
    for (const Statement& stmt : fn.stmts) {
      const bool spawns =
          stmt.decl_type == "thread" || stmt.decl_type == "jthread";
      for (const std::size_t c : stmt.calls) {
        const CallSite& call = fn.calls[c];
        const bool ctor_call = call.callee == "thread" || call.callee == "jthread";
        if (!spawns && !ctor_call) continue;
        mark_root(eng, i, "thread-ctor");
        // Argument references: an `&Cls::method` pair resolves to exactly
        // that class's method; a lone identifier resolves only to a free
        // function. Lambda arguments need no marking — their bodies are
        // indexed into the constructing function, which is a root itself.
        for (const auto& arg : call.args) {
          if (arg.size() == 1) {
            const std::vector<std::size_t>* targets = resolve(*eng, arg[0]);
            if (targets == nullptr) continue;
            for (const std::size_t t : *targets) {
              if (eng->fns[t].fn->class_name.empty()) {
                mark_root(eng, t, "thread-ctor");
              }
            }
            continue;
          }
          for (std::size_t k = 0; k + 1 < arg.size(); ++k) {
            const std::vector<std::size_t>* targets = resolve(*eng, arg[k + 1]);
            if (targets == nullptr) continue;
            for (const std::size_t t : *targets) {
              const FunctionInfo& cand = *eng->fns[t].fn;
              if (cand.class_name == arg[k] && !is_ctor_or_dtor(cand)) {
                mark_root(eng, t, "thread-ctor");
              }
            }
          }
        }
      }
    }

    for (const CallSite& call : fn.calls) {
      if (!call.member_call) continue;
      // A detached lambda's body is indexed as part of this function.
      if (call.callee == "detach") mark_root(eng, i, "detach");
      // Work handed to the Executor pool runs on worker threads; the task
      // lambda's accesses are attributed to the submitting function.
      if (call.callee == "submit" || call.callee == "enqueue") {
        mark_root(eng, i, "executor-submit");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Access-summary fixpoint
// ---------------------------------------------------------------------------

/// Adds one path, deduplicating on (kind, lockset) and capping the number
/// of distinct locksets kept per (field, kind) — the lattice is finite, so
/// the fixpoint terminates without trace-content comparisons.
bool add_path(std::vector<AccessPath>* paths, AccessPath path) {
  std::size_t same_kind = 0;
  for (const AccessPath& p : *paths) {
    if (p.is_write != path.is_write) continue;
    if (p.lockset == path.lockset) return false;
    ++same_kind;
  }
  if (same_kind >= kMaxLocksetsPerField) return false;
  paths->push_back(std::move(path));
  return true;
}

bool transfer(Engine* eng, std::size_t fn_idx) {
  const FileIndex& file = *eng->fns[fn_idx].file;
  const FunctionInfo& fn = *eng->fns[fn_idx].fn;
  FieldPaths& sum = eng->summaries[fn_idx];
  bool changed = false;

  // Own accesses. Constructors/destructors touch pre-publication (or
  // post-quiescence) state: no concurrent frame can exist yet, so they
  // contribute nothing directly — but calls they make still propagate.
  if (!is_ctor_or_dtor(fn)) {
    for (const FieldAccess& a : fn.accesses) {
      AccessPath path;
      path.is_write = a.is_write;
      path.lockset = a.held_mutexes;
      path.leaf_file = &file;
      path.leaf_fn = &fn;
      path.leaf_line = a.line_index;
      append_step(&path.trace, file.path, a.line_index,
                  std::string(a.is_write ? "write" : "read") + " of '" + a.field +
                      "' with " + lockset_label(a.held_mutexes) + " in " +
                      fn.qualified);
      changed = add_path(&sum[a.field], std::move(path)) || changed;
    }
  }

  // Callee summaries, widened by the mutexes held at the call site: a bare
  // access inside a helper is safe when every caller locks first, and the
  // lockset recorded here is what proves it.
  for (const CallSite& call : fn.calls) {
    for (const std::size_t t : resolve_call(*eng, call, fn.class_name)) {
      if (t == fn_idx) continue;  // direct recursion adds nothing new
      const FieldPaths& callee_sum = eng->summaries[t];
      for (const auto& [field, paths] : callee_sum) {
        for (const AccessPath& p : paths) {
          AccessPath path;
          path.is_write = p.is_write;
          path.lockset = lockset_union(p.lockset, call.held_mutexes);
          path.leaf_file = p.leaf_file;
          path.leaf_fn = p.leaf_fn;
          path.leaf_line = p.leaf_line;
          append_step(&path.trace, file.path, call.line_index,
                      "calls '" + call.callee + "()' in " + fn.qualified +
                          (call.held_mutexes.empty()
                               ? std::string()
                               : " holding " + lockset_label(call.held_mutexes)));
          append_steps(&path.trace, p.trace);
          changed = add_path(&sum[field], std::move(path)) || changed;
        }
      }
    }
  }
  return changed;
}

void run_fixpoint(Engine* eng) {
  for (int round = 0; round < kMaxFixpointRounds; ++round) {
    bool changed = false;
    for (std::size_t i = 0; i < eng->fns.size(); ++i) {
      changed = transfer(eng, i) || changed;
    }
    if (!changed) break;
  }
}

void mark_callees(Engine* eng) {
  for (const FnRef& ref : eng->fns) {
    for (const CallSite& call : ref.fn->calls) {
      for (const std::size_t t : resolve_call(*eng, call, ref.fn->class_name)) {
        eng->is_callee[t] = 1;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R14: inconsistent-lockset
// ---------------------------------------------------------------------------

/// One entry point's view of a field: the converged path plus whether the
/// entry is a thread root (which is what makes the path CONCURRENT).
struct EntryPath {
  const AccessPath* path = nullptr;
  const FnRef* entry = nullptr;
  bool from_root = false;
  std::string root_how;
};

bool path_allowed(const EntryPath& ep, const std::string& rule) {
  return allowed(ep.path->leaf_file->allows, ep.path->leaf_line, rule) ||
         allowed(ep.path->leaf_file->fn_allows, ep.path->leaf_fn->line_index, rule);
}

void entry_steps(const EntryPath& ep, std::vector<TraceStep>* trace) {
  const FnRef& entry = *ep.entry;
  append_step(trace, entry.file->path, entry.fn->line_index,
              ep.from_root
                  ? "thread root '" + entry.fn->qualified + "' (" + ep.root_how + ")"
                  : "entry point '" + entry.fn->qualified + "'");
  append_steps(trace, ep.path->trace);
}

void check_inconsistent_locksets(Engine* eng, std::vector<Diagnostic>* out) {
  // Collect every entry point's converged paths per field. Entry points are
  // thread roots plus functions never reached as a resolved callee — paths
  // that only exist inside helpers surface through their callers' locksets.
  std::map<std::string, std::vector<EntryPath>> by_field;
  for (std::size_t i = 0; i < eng->fns.size(); ++i) {
    if (!eng->is_root[i] && eng->is_callee[i]) continue;
    for (const auto& [field, paths] : eng->summaries[i]) {
      for (const AccessPath& p : paths) {
        by_field[field].push_back(
            {&p, &eng->fns[i], eng->is_root[i] != 0, eng->root_how[i]});
      }
    }
  }

  // Ownership heuristic (RacerD's): only classes that own a synchronization
  // member have shared-between-threads instances worth reporting on. Value
  // types (BigInt, Stopwatch, wire structs) live in one frame at a time —
  // their fields race only through their OWNER's fields, which are covered.
  std::set<std::string> lock_owning;
  for (const auto& [key, fd] : eng->field_decls) {
    if (fd.is_sync) lock_owning.insert(fd.class_name);
  }

  std::set<std::string> emitted;
  for (const auto& [field, entries] : by_field) {
    // Object-qualified keys ("out.limbs_") name per-frame receivers the
    // analyzer cannot prove shared; only this-qualified class state counts.
    const std::size_t qual = field.find("::");
    if (qual == std::string::npos) continue;
    if (lock_owning.count(field.substr(0, qual)) == 0) continue;
    const FieldDecl* decl = decl_for(*eng, field);
    // Unknown declarations cannot be proven non-atomic; std::atomic fields,
    // atomics-only aggregates, and the sync objects themselves are exempt.
    if (decl == nullptr || decl->is_atomic || decl->is_sync) continue;
    if (is_atomic_aggregate(*eng, decl->type)) continue;

    for (const EntryPath& w : entries) {
      if (!w.path->is_write) continue;
      if (!report_scope(w.path->leaf_file->path)) continue;
      for (const EntryPath& a : entries) {
        if (a.path == w.path) continue;
        if (a.path->leaf_file == w.path->leaf_file &&
            a.path->leaf_line == w.path->leaf_line &&
            a.path->is_write == w.path->is_write) {
          continue;  // same source site reached through another entry
        }
        if (!report_scope(a.path->leaf_file->path)) continue;
        if (!w.from_root && !a.from_root) continue;  // never concurrent
        if (locksets_intersect(w.path->lockset, a.path->lockset)) continue;
        if (w.path->lockset.empty() && a.path->lockset.empty() &&
            !(w.from_root && a.from_root)) {
          continue;  // both unguarded: racy only if both sides run on threads
        }
        if (path_allowed(w, "inconsistent-lockset")) continue;

        std::ostringstream key;
        key << w.path->leaf_file->path << ":" << w.path->leaf_line;
        if (!emitted.insert(key.str()).second) continue;

        std::vector<TraceStep> trace;
        entry_steps(w, &trace);
        append_step(&trace, a.path->leaf_file->path, a.path->leaf_line,
                    "conflicting " + std::string(a.path->is_write ? "write" : "read") +
                        " with " + lockset_label(a.path->lockset));
        entry_steps(a, &trace);

        Diagnostic d;
        d.file = w.path->leaf_file->path;
        d.line = static_cast<int>(w.path->leaf_line + 1);
        d.rule = "inconsistent-lockset";
        d.message = "field '" + field + "' written with " +
                    lockset_label(w.path->lockset) + " here but " +
                    (a.path->is_write ? "written" : "read") + " with " +
                    lockset_label(a.path->lockset) + " at " +
                    a.path->leaf_file->path + ":" +
                    std::to_string(a.path->leaf_line + 1) +
                    " on a concurrently-reachable path; guard every access "
                    "with a common mutex or make the field std::atomic";
        d.trace = std::move(trace);
        out->push_back(std::move(d));
        break;  // one conflict per write site
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R15: guard-escape (purely local)
// ---------------------------------------------------------------------------

void check_guard_escapes(const FileIndex& file, const FunctionInfo& fn,
                         std::vector<Diagnostic>* out) {
  if (!report_scope(file.path)) return;

  struct Pending {
    std::string var;    // local holding the aliasing pointer/iterator
    std::string field;  // guarded field it points into
    std::vector<std::string> lockset;
    std::size_t line_index;
    std::size_t stmt_idx;
  };
  std::vector<Pending> pending;

  auto emit = [&](std::size_t line_index, const std::string& message,
                  std::vector<TraceStep> trace) {
    if (allowed(file.allows, line_index, "guard-escape") ||
        allowed(file.fn_allows, fn.line_index, "guard-escape")) {
      return;
    }
    out->push_back({file.path, static_cast<int>(line_index + 1), "guard-escape",
                    message, std::move(trace)});
  };

  for (std::size_t si = 0; si < fn.stmts.size(); ++si) {
    const Statement& stmt = fn.stmts[si];
    for (const std::size_t c : stmt.calls) {
      const CallSite& call = fn.calls[c];
      if (!call.member_call || !is_escape_accessor(call.callee)) continue;
      if (!ends_with(call.chain_head, "_")) continue;  // fields only
      if (call.held_mutexes.empty()) continue;         // nothing to escape
      const std::string field = fn.class_name.empty()
                                    ? call.chain_head
                                    : fn.class_name + "::" + call.chain_head;
      if (stmt.is_return) {
        std::vector<TraceStep> trace;
        append_step(&trace, file.path, call.line_index,
                    "'" + call.chain_head + "." + call.callee +
                        "()' aliases the field's storage under " +
                        lockset_label(call.held_mutexes));
        append_step(&trace, file.path, call.line_index,
                    "returned from " + fn.qualified +
                        "; the guard releases at scope exit");
        emit(call.line_index,
             "pointer/iterator into guarded field '" + field + "' escapes " +
                 fn.qualified + " via return while " +
                 lockset_label(call.held_mutexes) +
                 " is held; copy the value out, or return under a caller-held "
                 "lock",
             std::move(trace));
      } else if (!stmt.write_ident.empty() && !ends_with(stmt.write_ident, "_")) {
        pending.push_back(
            {stmt.write_ident, field, call.held_mutexes, call.line_index, si});
      }
    }
  }

  for (const Pending& p : pending) {
    for (std::size_t sj = p.stmt_idx + 1; sj < fn.stmts.size(); ++sj) {
      const Statement& stmt = fn.stmts[sj];
      const bool reads = std::find(stmt.read_idents.begin(), stmt.read_idents.end(),
                                   p.var) != stmt.read_idents.end();
      if (stmt.write_ident == p.var && !reads) break;  // overwritten
      if (!reads) continue;
      if (locksets_intersect(stmt.held_mutexes, p.lockset)) continue;
      std::vector<TraceStep> trace;
      append_step(&trace, file.path, p.line_index,
                  "'" + p.var + "' aliases guarded field '" + p.field +
                      "' obtained under " + lockset_label(p.lockset));
      append_step(&trace, file.path, stmt.line_index,
                  "used with " + lockset_label(stmt.held_mutexes) + " in " +
                      fn.qualified);
      emit(stmt.line_index,
           "'" + p.var + "' points into guarded field '" + p.field +
               "' but is used after " + lockset_label(p.lockset) +
               " is released; keep the use inside the critical section or "
               "copy the data out",
           std::move(trace));
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// R16: interprocedural lock-order cycles
// ---------------------------------------------------------------------------

struct CycleEdgeWitness {
  const FileIndex* file = nullptr;
  std::size_t line_index = 0;
  std::size_t fn_line = 0;        // enclosing function, for allow-fn
  std::string function;
  bool interproc = false;
};

void check_lock_order_cycles(Engine* eng, std::vector<Diagnostic>* out) {
  // Transitive acquired-sets: mutexes a function (or any resolved callee)
  // takes. Deferred guards are included — they lock eventually.
  std::vector<std::set<std::string>> acquired(eng->fns.size());
  for (std::size_t i = 0; i < eng->fns.size(); ++i) {
    for (const GuardSite& g : eng->fns[i].fn->guards) {
      acquired[i].insert(g.mutexes.begin(), g.mutexes.end());
    }
  }
  for (int round = 0; round < kMaxFixpointRounds; ++round) {
    bool changed = false;
    for (std::size_t i = 0; i < eng->fns.size(); ++i) {
      for (const CallSite& call : eng->fns[i].fn->calls) {
        for (const std::size_t t :
             resolve_call(*eng, call, eng->fns[i].fn->class_name)) {
          const std::size_t before = acquired[i].size();
          acquired[i].insert(acquired[t].begin(), acquired[t].end());
          changed = changed || acquired[i].size() != before;
        }
      }
    }
    if (!changed) break;
  }

  // Edge graph: intra-function edges from the R7 model, plus "holding M
  // while calling a function that acquires N" interprocedural edges. First
  // witness per edge wins (deterministic: index order).
  std::map<std::string, std::map<std::string, CycleEdgeWitness>> graph;
  for (std::size_t i = 0; i < eng->fns.size(); ++i) {
    const FileIndex& file = *eng->fns[i].file;
    const FunctionInfo& fn = *eng->fns[i].fn;
    for (const LockEdge& e : fn.lock_edges) {
      graph[e.from].emplace(
          e.to, CycleEdgeWitness{&file, e.line_index, fn.line_index,
                                 fn.qualified, false});
    }
    for (const CallSite& call : fn.calls) {
      if (call.held_mutexes.empty()) continue;
      for (const std::size_t t : resolve_call(*eng, call, fn.class_name)) {
        for (const std::string& m : call.held_mutexes) {
          for (const std::string& n : acquired[t]) {
            if (n == m || std::find(call.held_mutexes.begin(),
                                    call.held_mutexes.end(),
                                    n) != call.held_mutexes.end()) {
              continue;  // re-entry up the stack, not an ordering edge
            }
            graph[m].emplace(
                n, CycleEdgeWitness{&file, call.line_index, fn.line_index,
                                    fn.qualified + " -> " + call.callee + "()",
                                    true});
          }
        }
      }
    }
  }

  // Cycle DFS (the R7 detector's idiom); only cycles carrying at least one
  // interprocedural edge are reported here — pure intra-function cycles
  // are already R7 findings.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> path;
  std::set<std::string> reported;

  struct Frame {
    std::string node;
    std::map<std::string, CycleEdgeWitness>::const_iterator next, end;
  };

  for (const auto& [start, unused] : graph) {
    (void)unused;
    if (color[start] != 0) continue;
    std::vector<Frame> stack;
    const auto& first_children = graph.at(start);
    stack.push_back({start, first_children.begin(), first_children.end()});
    color[start] = 1;
    path.push_back(start);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next != frame.end) {
        const std::string& child = frame.next->first;
        ++frame.next;
        if (color[child] == 1) {
          const auto at = std::find(path.begin(), path.end(), child);
          std::vector<std::string> cycle(at, path.end());
          cycle.push_back(child);

          const CycleEdgeWitness* anchor = nullptr;
          std::vector<TraceStep> trace;
          for (std::size_t e = 0; e + 1 < cycle.size(); ++e) {
            const CycleEdgeWitness& w = graph.at(cycle[e]).at(cycle[e + 1]);
            append_step(&trace, w.file->path, w.line_index,
                        cycle[e] + " -> " + cycle[e + 1] + " (" + w.function + ")");
            if (w.interproc && anchor == nullptr) anchor = &w;
          }
          if (anchor == nullptr) continue;  // intra-only: R7's finding
          if (!report_scope(anchor->file->path)) continue;
          if (allowed(anchor->file->allows, anchor->line_index,
                      "lock-order-cycle") ||
              allowed(anchor->file->fn_allows, anchor->fn_line,
                      "lock-order-cycle")) {
            continue;
          }
          std::ostringstream label;
          for (const std::string& n : cycle) {
            if (label.tellp() > 0) label << " -> ";
            label << n;
          }
          if (!reported.insert(label.str()).second) continue;
          out->push_back({anchor->file->path,
                          static_cast<int>(anchor->line_index + 1),
                          "lock-order-cycle",
                          "interprocedural lock-order cycle: " + label.str() +
                              " (" + anchor->function +
                              " acquires across the call graph); impose a "
                              "single acquisition order or drop the lock "
                              "before the call",
                          std::move(trace)});
        } else if (color[child] == 0) {
          color[child] = 1;
          path.push_back(child);
          static const std::map<std::string, CycleEdgeWitness> kNone;
          const auto it = graph.find(child);
          const auto& children = (it != graph.end()) ? it->second : kNone;
          stack.push_back({child, children.begin(), children.end()});
        }
      } else {
        color[frame.node] = 2;
        path.pop_back();
        stack.pop_back();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Guarded-by inference (the doc/CONCURRENCY.md payload)
// ---------------------------------------------------------------------------

std::vector<GuardedByEntry> infer_guarded_by(const Engine& eng) {
  struct Agg {
    std::vector<std::string> guards;  // running intersection over writes
    bool any_write = false;
    std::size_t writes = 0;
    std::size_t reads = 0;
  };
  std::map<std::string, Agg> agg;  // class-scoped fields with src/ accesses

  for (const FnRef& ref : eng.fns) {
    if (!starts_with(ref.file->path, "src/")) continue;
    if (is_ctor_or_dtor(*ref.fn)) continue;
    for (const FieldAccess& a : ref.fn->accesses) {
      if (a.field.find("::") == std::string::npos) continue;
      Agg& entry = agg[a.field];
      if (a.is_write) {
        ++entry.writes;
        if (!entry.any_write) {
          entry.any_write = true;
          entry.guards = a.held_mutexes;
        } else {
          std::vector<std::string> kept;
          for (const std::string& m : entry.guards) {
            if (std::find(a.held_mutexes.begin(), a.held_mutexes.end(), m) !=
                a.held_mutexes.end()) {
              kept.push_back(m);
            }
          }
          entry.guards = std::move(kept);
        }
      } else {
        ++entry.reads;
      }
    }
  }

  std::vector<GuardedByEntry> out;
  for (const auto& [field, a] : agg) {
    const FieldDecl* decl = decl_for(eng, field);
    GuardedByEntry e;
    e.field = field;
    e.type = decl != nullptr ? decl->type : "?";
    e.guards = a.any_write ? a.guards : std::vector<std::string>{};
    e.writes = a.writes;
    e.reads = a.reads;
    e.is_atomic = decl != nullptr &&
                  (decl->is_atomic || is_atomic_aggregate(eng, decl->type));
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<ThreadRoot> collect_roots(const Engine& eng) {
  std::set<ThreadRoot> roots;
  for (std::size_t i = 0; i < eng.fns.size(); ++i) {
    if (!eng.is_root[i]) continue;
    if (!starts_with(eng.fns[i].file->path, "src/")) continue;
    roots.insert({eng.fns[i].file->path, eng.fns[i].fn->qualified, eng.root_how[i]});
  }
  return {roots.begin(), roots.end()};
}

}  // namespace

ConcurrencyAnalysis analyze_concurrency(const RepoIndex& index) {
  Engine eng = build_engine(index);
  discover_thread_roots(&eng);
  mark_callees(&eng);
  run_fixpoint(&eng);

  ConcurrencyAnalysis result;
  check_inconsistent_locksets(&eng, &result.diagnostics);
  for (const FnRef& ref : eng.fns) {
    check_guard_escapes(*ref.file, *ref.fn, &result.diagnostics);
  }
  check_lock_order_cycles(&eng, &result.diagnostics);
  result.guarded_by = infer_guarded_by(eng);
  result.roots = collect_roots(eng);
  return result;
}

std::string concurrency_markdown(const ConcurrencyAnalysis& analysis) {
  std::ostringstream os;
  os << "# Concurrency contract\n\n";
  os << "Generated by `dblint --emit-concurrency`; do not edit by hand.\n\n";
  os << "The guarded-by map below is INFERRED by the lockset engine\n"
        "(tools/dblint/concurrency.cpp): for every class field accessed under\n"
        "src/, the guard column is the intersection of the mutexes held across\n"
        "all of its write sites. A PR that changes locking changes this file,\n"
        "and `dblint` fails until it is regenerated — the same drift gate\n"
        "doc/LEAKAGE.md and doc/SECRET_FLOWS.md use. Fields guarded by\n"
        "`(atomic)` rely on std::atomic, not a mutex; `(none)` means no mutex\n"
        "is common to every write — safe only for single-threaded or\n"
        "externally-synchronized state.\n\n";
  os << "## Thread roots\n\n";
  os << "| File | Function | Discovered via |\n";
  os << "|---|---|---|\n";
  for (const ThreadRoot& r : analysis.roots) {
    os << "| " << r.file << " | " << r.qualified << " | " << r.how << " |\n";
  }
  os << "\n## Guarded-by map\n\n";
  os << "| Field | Type | Guarded by | Writes | Reads |\n";
  os << "|---|---|---|---|---|\n";
  for (const GuardedByEntry& e : analysis.guarded_by) {
    os << "| " << e.field << " | " << e.type << " | ";
    if (e.is_atomic) {
      os << "(atomic)";
    } else if (e.guards.empty()) {
      os << "(none)";
    } else {
      for (std::size_t i = 0; i < e.guards.size(); ++i) {
        if (i) os << ", ";
        os << e.guards[i];
      }
    }
    os << " | " << e.writes << " | " << e.reads << " |\n";
  }
  return os.str();
}

}  // namespace dblint
