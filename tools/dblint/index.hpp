// dblint indexer — a single token-level pass over the linted tree that
// extracts the facts the flow-sensitive rules need, without libclang:
//
//   * function definitions (qualified name, enclosing class, parameter
//     names, body span),
//   * call sites inside each body (callee, member-chain head, whether the
//     result is consumed, the identifiers appearing in each argument, and
//     the mutexes held at the site),
//   * RAII guard scopes (lock_guard / scoped_lock / unique_lock /
//     shared_lock) with normalized, class-qualified mutex names and the
//     brace depth they live at,
//   * statement-level flow facts (the identifier written, the identifiers
//     read, return/throw edges, the declared type, the lockset open at the
//     statement) — the substrate the interprocedural taint engine
//     (flow.hpp) runs its summaries over,
//   * member-field accesses (read/write, `this`-qualified and
//     object-qualified, class-scoped names) with the lockset held at each
//     access — the substrate the lockset race analyzer (concurrency.hpp)
//     runs its summaries over,
//   * data-member declarations at class scope (name, type, atomic /
//     synchronization-object classification),
//   * `// dblint:thread-root` annotations on function definitions,
//   * the set of function names whose declared return type is Status or
//     Result<...>.
//
// Everything downstream — unchecked-status, lock-discipline, the taint
// flow rules — is a query over this in-memory fact base; no pass touches
// raw tokens again, which is what lets the on-disk cache (cache.hpp)
// serialize a FileIndex instead of re-lexing unchanged files. The
// extraction is heuristic by design: a construct the indexer cannot parse
// simply contributes no facts (and therefore no findings), never a crash.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lint.hpp"
#include "text.hpp"

namespace dblint {

/// One call site inside a function body.
struct CallSite {
  std::string callee;       // final identifier before '(' (e.g. "sync")
  std::string chain_head;   // first identifier of the member chain ("store_")
  std::size_t line_index = 0;    // 0-based
  bool member_call = false;      // reached via '.' or '->'
  bool result_discarded = false; // full-expression statement, value unused
  bool void_cast = false;        // `(void)chain.call();` — deliberate discard
  /// Identifiers appearing in each top-level argument, in order.
  std::vector<std::vector<std::string>> args;
  /// Normalized mutex names whose RAII guards are open at this site.
  std::vector<std::string> held_mutexes;
};

/// One RAII guard acquisition inside a function body.
struct GuardSite {
  std::vector<std::string> mutexes;  // normalized; >1 for std::scoped_lock
  std::size_t line_index = 0;
  std::size_t depth = 0;  // brace depth inside the body (body '{' = 1)
  std::string var;        // guard variable name ("lock", "lk"); "" if unnamed
};

/// "Mutex `from` was held when `to` was acquired" — one per (guard pair)
/// witnessed inside a single function body. The lock-discipline pass
/// aggregates these across the repo into the lock-order graph.
struct LockEdge {
  std::string from;
  std::string to;
  std::size_t line_index = 0;  // acquisition site of `to`
};

/// One statement (or statement fragment — `if (...)` headers and for-loop
/// parts split the same way) inside a function body. The flow engine's
/// transfer function runs over these.
struct Statement {
  std::size_t line_index = 0;
  std::string write_ident;   // chain head of the lvalue left of '=' ("" if none)
  std::string decl_type;     // last type segment when this declares ("Bytes",
                             // "SecretBytes", "string", "auto", ...; "" if not)
  std::vector<std::string> read_idents;  // identifiers read (RHS / whole stmt)
  std::vector<std::size_t> calls;        // indices into FunctionInfo::calls
  bool is_return = false;                // contains a top-level `return`
  bool is_throw = false;                 // contains a top-level `throw`
  /// Normalized mutex names whose guards are ACTIVE at the statement —
  /// deferred guards count only after `.lock()`, and `.unlock()` shrinks
  /// the set mid-scope.
  std::vector<std::string> held_mutexes;
};

/// One member-field access inside a function body: `pool_.push_back(x)` is
/// a write of `PaillierRandomizerPool::pool_`, `st->mu_` inside a lambda a
/// read of `st.mu_`. The lockset is the set of mutexes whose guards were
/// active at the access token.
struct FieldAccess {
  std::string field;  // "Class::name_" (this-qualified) or "obj.name_"
  std::size_t line_index = 0;
  bool is_write = false;
  std::vector<std::string> held_mutexes;  // sorted, deduplicated
};

/// One data-member declaration at class scope. The concurrency analyzer
/// uses the type to exempt std::atomic fields from race reporting and to
/// exclude synchronization objects (mutexes, condition variables) from the
/// guarded-by map.
struct FieldDecl {
  std::string class_name;
  std::string name;
  std::string type;  // last type segment ("deque", "atomic", "mutex", ...)
  std::size_t line_index = 0;
  bool is_atomic = false;  // std::atomic<...> / atomic_*
  bool is_sync = false;    // mutex / condition_variable family
};

struct FunctionInfo {
  std::string name;        // unqualified ("sync")
  std::string qualified;   // as written ("KvStore::sync")
  std::string class_name;  // enclosing class, from the qualifier or scope
  std::size_t line_index = 0;
  bool returns_status = false;  // Status or Result<...> return type
  bool thread_root = false;     // carries a `// dblint:thread-root` marker
  std::vector<std::string> params;  // parameter names, in order
  std::vector<CallSite> calls;
  std::vector<GuardSite> guards;
  std::vector<LockEdge> lock_edges;
  std::vector<Statement> stmts;
  std::vector<FieldAccess> accesses;
};

struct FileIndex {
  std::string path;
  std::vector<std::set<std::string>> allows;     // dblint:allow markers
  std::vector<std::set<std::string>> fn_allows;  // dblint:allow-fn markers
  std::vector<FunctionInfo> functions;
  std::vector<FieldDecl> fields;  // class-scope data members in this file
};

struct RepoIndex {
  std::vector<FileIndex> files;
  /// Unqualified names of every function declared or defined with a
  /// Status / Result<...> return type anywhere in the indexed set.
  std::set<std::string> status_returning;
};

/// Indexes one file: tokenize, extract functions + statement facts, collect
/// escape markers, and contribute Status/Result signatures to `status_out`.
FileIndex index_file(const std::string& path, const std::string& content,
                     std::set<std::string>* status_out);

RepoIndex build_index(const std::vector<FileInput>& files);

}  // namespace dblint
