// dblint indexer — a single token-level pass over src/ + tests/ that
// extracts the facts the flow-sensitive rules need, without libclang:
//
//   * function definitions (qualified name, enclosing class, body span),
//   * call sites inside each body (callee, member-chain head, whether the
//     result is consumed),
//   * RAII guard scopes (lock_guard / scoped_lock / unique_lock /
//     shared_lock) with normalized, class-qualified mutex names and the
//     brace depth they live at,
//   * the set of function names whose declared return type is Status or
//     Result<...>.
//
// Everything downstream — unchecked-status, lock-discipline,
// plaintext-egress — is a query over this in-memory fact base. The
// extraction is heuristic by design: a construct the indexer cannot parse
// simply contributes no facts (and therefore no findings), never a crash.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lint.hpp"
#include "text.hpp"

namespace dblint {

/// One call site inside a function body.
struct CallSite {
  std::string callee;       // final identifier before '(' (e.g. "sync")
  std::string chain_head;   // first identifier of the member chain ("store_")
  std::size_t callee_token = 0;  // index into FileIndex::tokens
  std::size_t close_token = 0;   // index of the matching ')'
  std::size_t line_index = 0;    // 0-based
  bool member_call = false;      // reached via '.' or '->'
  bool result_discarded = false; // full-expression statement, value unused
  bool void_cast = false;        // `(void)chain.call();` — deliberate discard
};

/// One RAII guard acquisition inside a function body.
struct GuardSite {
  std::vector<std::string> mutexes;  // normalized; >1 for std::scoped_lock
  std::size_t line_index = 0;
  std::size_t depth = 0;  // brace depth inside the body (body '{' = 1)
};

/// "Mutex `from` was held when `to` was acquired" — one per (guard pair)
/// witnessed inside a single function body. The lock-discipline pass
/// aggregates these across the repo into the lock-order graph.
struct LockEdge {
  std::string from;
  std::string to;
  std::size_t line_index = 0;  // acquisition site of `to`
};

struct FunctionInfo {
  std::string name;        // unqualified ("sync")
  std::string qualified;   // as written ("KvStore::sync")
  std::string class_name;  // enclosing class, from the qualifier or scope
  std::size_t line_index = 0;
  std::size_t body_begin = 0;  // token index of '{'
  std::size_t body_end = 0;    // token index of matching '}'
  bool returns_status = false; // Status or Result<...> return type
  std::vector<CallSite> calls;
  std::vector<GuardSite> guards;
  std::vector<LockEdge> lock_edges;
};

struct FileIndex {
  std::string path;
  std::vector<Token> tokens;                   // strings/comments stripped
  std::vector<std::set<std::string>> allows;   // dblint:allow markers
  std::vector<FunctionInfo> functions;
};

struct RepoIndex {
  std::vector<FileIndex> files;
  /// Unqualified names of every function declared or defined with a
  /// Status / Result<...> return type anywhere in the indexed set.
  std::set<std::string> status_returning;
};

RepoIndex build_index(const std::vector<FileInput>& files);

}  // namespace dblint
