// dblint driver: `dblint [repo_root]` scans src/ and tests/, prints
// file:line diagnostics, and exits nonzero when anything fires — wire it
// straight into CI.
#include <cstdio>

#include "lint.hpp"

int main(int argc, char** argv) {
  const char* root = (argc > 1) ? argv[1] : ".";
  const auto diagnostics = dblint::lint_tree(root);
  for (const auto& d : diagnostics) {
    std::fprintf(stderr, "%s\n", dblint::format(d).c_str());
  }
  if (!diagnostics.empty()) {
    std::fprintf(stderr, "dblint: %zu finding(s)\n", diagnostics.size());
    return 1;
  }
  std::fprintf(stdout, "dblint: clean\n");
  return 0;
}
