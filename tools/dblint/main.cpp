// dblint driver.
//
//   dblint [--json|--sarif] [--cache DIR] [--stats] [repo_root]
//                                       run every pass; exit 1 on findings
//   dblint --emit-leakage-matrix [root] regenerate doc/LEAKAGE.md from the
//                                       schema ceilings + tactic tables
//   dblint --emit-secret-flows [root]   regenerate doc/SECRET_FLOWS.md from
//                                       the taint engine's sanctioned-flow
//                                       inventory
//   dblint --emit-concurrency [root]    regenerate doc/CONCURRENCY.md from
//                                       the lockset engine's thread-root and
//                                       guarded-by inference
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "concurrency.hpp"
#include "flow.hpp"
#include "index.hpp"
#include "leakage_pass.hpp"
#include "lint.hpp"
#include "sarif.hpp"

namespace {

bool write_doc(const std::string& root, const char* name, const std::string& content) {
  const std::filesystem::path path = std::filesystem::path(root) / "doc" / name;
  std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  out.close();
  if (!out) {
    std::fprintf(stderr, "dblint: cannot write %s\n", path.string().c_str());
    return false;
  }
  std::fprintf(stdout, "dblint: wrote %s\n", path.string().c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool sarif = false;
  bool stats = false;
  bool emit_matrix = false;
  bool emit_flows = false;
  bool emit_concurrency = false;
  std::string cache_dir;
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--sarif") == 0) {
      sarif = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--emit-leakage-matrix") == 0) {
      emit_matrix = true;
    } else if (std::strcmp(argv[i], "--emit-secret-flows") == 0) {
      emit_flows = true;
    } else if (std::strcmp(argv[i], "--emit-concurrency") == 0) {
      emit_concurrency = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(stdout,
                   "usage: dblint [--json|--sarif] [--cache DIR] [--stats]\n"
                   "              [--emit-leakage-matrix] [--emit-secret-flows]\n"
                   "              [--emit-concurrency] [repo_root]\n");
      return 0;
    } else {
      root = argv[i];
    }
  }

  if (emit_matrix) {
    const std::string matrix = dblint::leakage_matrix_markdown(dblint::read_tree(root));
    return write_doc(root, "LEAKAGE.md", matrix) ? 0 : 1;
  }
  if (emit_flows) {
    std::vector<dblint::FileInput> files = dblint::read_tree(root);
    const dblint::RepoIndex index = dblint::build_index(files);
    const dblint::FlowAnalysis analysis = dblint::analyze_flows(index);
    return write_doc(root, "SECRET_FLOWS.md",
                     dblint::secret_flows_markdown(analysis.sanctioned))
               ? 0
               : 1;
  }
  if (emit_concurrency) {
    std::vector<dblint::FileInput> files = dblint::read_tree(root);
    const dblint::RepoIndex index = dblint::build_index(files);
    const dblint::ConcurrencyAnalysis analysis = dblint::analyze_concurrency(index);
    return write_doc(root, "CONCURRENCY.md", dblint::concurrency_markdown(analysis))
               ? 0
               : 1;
  }

  dblint::LintOptions options;
  options.cache_dir = cache_dir;
  dblint::LintStats run_stats;
  const auto diagnostics = dblint::lint_tree(root, options, &run_stats);
  if (stats) {
    std::fprintf(stdout, "dblint-stats files=%zu cache_hits=%zu analysis_ms=%.3f\n",
                 run_stats.files, run_stats.cache_hits, run_stats.analysis_ms);
  }
  if (json) {
    std::fprintf(stdout, "%s", dblint::to_json(diagnostics).c_str());
  } else if (sarif) {
    std::fprintf(stdout, "%s", dblint::to_sarif(diagnostics).c_str());
  } else {
    for (const auto& d : diagnostics) {
      std::fprintf(stderr, "%s\n", dblint::format(d).c_str());
    }
  }
  if (!diagnostics.empty()) {
    std::fprintf(stderr, "dblint: %zu finding(s)\n", diagnostics.size());
    return 1;
  }
  if (!json && !sarif) std::fprintf(stdout, "dblint: clean\n");
  return 0;
}
