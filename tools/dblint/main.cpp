// dblint driver.
//
//   dblint [--json] [repo_root]         run every pass; exit 1 on findings
//   dblint --emit-leakage-matrix [root] regenerate doc/LEAKAGE.md from the
//                                       schema ceilings + tactic tables
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "leakage_pass.hpp"
#include "lint.hpp"

int main(int argc, char** argv) {
  bool json = false;
  bool emit_matrix = false;
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--emit-leakage-matrix") == 0) {
      emit_matrix = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(stdout,
                   "usage: dblint [--json] [--emit-leakage-matrix] [repo_root]\n");
      return 0;
    } else {
      root = argv[i];
    }
  }

  if (emit_matrix) {
    const std::string matrix = dblint::leakage_matrix_markdown(dblint::read_tree(root));
    const std::filesystem::path path = std::filesystem::path(root) / "doc" / "LEAKAGE.md";
    std::filesystem::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << matrix;
    out.close();
    if (!out) {
      std::fprintf(stderr, "dblint: cannot write %s\n", path.string().c_str());
      return 1;
    }
    std::fprintf(stdout, "dblint: wrote %s\n", path.string().c_str());
    return 0;
  }

  const auto diagnostics = dblint::lint_tree(root);
  if (json) {
    std::fprintf(stdout, "%s", dblint::to_json(diagnostics).c_str());
  } else {
    for (const auto& d : diagnostics) {
      std::fprintf(stderr, "%s\n", dblint::format(d).c_str());
    }
  }
  if (!diagnostics.empty()) {
    std::fprintf(stderr, "dblint: %zu finding(s)\n", diagnostics.size());
    return 1;
  }
  if (!json) std::fprintf(stdout, "dblint: clean\n");
  return 0;
}
