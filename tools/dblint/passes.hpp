// Indexer-backed rules (dblint v2):
//
//   unchecked-status   (R6)  a statement-position call to a function whose
//                            declared return type is Status / Result<...>
//                            must consume the value; `(void)` marks a
//                            deliberate discard.
//   lock-discipline    (R7)  raw .lock()/.unlock()/.try_lock() is banned —
//                            RAII guards only — and the lock-order graph
//                            built from nested guard scopes must be
//                            acyclic.
//   plaintext-egress   (R8)  outside the tactic kernel and net/workload
//                            allowlist, no plaintext/doc::Value-derived
//                            identifier may appear in the arguments of an
//                            egress call (RpcClient::call / send_batch,
//                            Channel::transfer_*, ReplicaGroup::call_read /
//                            call_write, RpcServer::dispatch). The
//                            replication TUs are scanned like any other —
//                            they replay sealed bytes and never mint
//                            plaintext of their own.
#pragma once

#include <vector>

#include "index.hpp"
#include "lint.hpp"

namespace dblint {

std::vector<Diagnostic> check_unchecked_status(const RepoIndex& index);
std::vector<Diagnostic> check_lock_discipline(const RepoIndex& index);
std::vector<Diagnostic> check_plaintext_egress(const RepoIndex& index);

}  // namespace dblint
