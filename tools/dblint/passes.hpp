// Indexer-backed rules (dblint v2):
//
//   unchecked-status   (R6)  a statement-position call to a function whose
//                            declared return type is Status / Result<...>
//                            must consume the value; `(void)` marks a
//                            deliberate discard.
//   lock-discipline    (R7)  raw .lock()/.unlock()/.try_lock() is banned —
//                            RAII guards only — and the lock-order graph
//                            built from nested guard scopes must be
//                            acyclic.
//
// R8 (plaintext-egress) lived here through dblint v2; it is gone — replaced
// by the interprocedural secret-egress rule (R11) in flow.hpp, which checks
// FLOWS instead of file-path allowlists.
#pragma once

#include <vector>

#include "index.hpp"
#include "lint.hpp"

namespace dblint {

std::vector<Diagnostic> check_unchecked_status(const RepoIndex& index);
std::vector<Diagnostic> check_lock_discipline(const RepoIndex& index);

}  // namespace dblint
