// SARIF 2.1.0 emission — `dblint --sarif` output, uploaded by CI to GitHub
// code scanning so findings render as PR annotations. One run, one tool
// (driver "dblint"), static rule metadata for R1–R13, and each diagnostic's
// source→…→sink trace mapped onto result.codeFlows so the annotation shows
// the whole path, not just the sink line.
#pragma once

#include <string>
#include <vector>

#include "lint.hpp"

namespace dblint {

/// Serializes diagnostics as a SARIF 2.1.0 log (schema:
/// https://json.schemastore.org/sarif-2.1.0.json).
std::string to_sarif(const std::vector<Diagnostic>& diagnostics);

}  // namespace dblint
