#!/usr/bin/env python3
"""Structural validator for dblint's SARIF 2.1.0 output.

CI runs `dblint --sarif . > dblint.sarif || true` and pipes the file here
before uploading it to GitHub code scanning. The checks mirror the parts of
the SARIF 2.1.0 schema the upload endpoint actually rejects on: top-level
shape, run/tool/driver identity, rule table integrity, and per-result
location + ruleIndex consistency. Stdlib only — no jsonschema dependency.

Usage: check_sarif.py <file.sarif>   (exit 0 iff structurally valid)
"""

import json
import sys

# R1-R16 minus the retired R8; must match rule_table() in tools/dblint/sarif.cpp.
# A mismatch means a rule was added without declaring it in the driver table
# (its results would upload without metadata) or removed without pruning it.
EXPECTED_RULE_COUNT = 15


def fail(msg):
    print(f"check_sarif: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def main(path):
    with open(path, "rb") as f:
        doc = json.load(f)

    expect(isinstance(doc, dict), "top level must be an object")
    expect(
        doc.get("$schema", "").endswith("sarif-2.1.0.json"),
        f"$schema must reference sarif-2.1.0.json, got {doc.get('$schema')!r}",
    )
    expect(doc.get("version") == "2.1.0", "version must be '2.1.0'")

    runs = doc.get("runs")
    expect(isinstance(runs, list) and len(runs) == 1, "runs must be a 1-element array")
    run = runs[0]

    driver = run.get("tool", {}).get("driver", {})
    expect(driver.get("name") == "dblint", "tool.driver.name must be 'dblint'")
    expect(
        isinstance(driver.get("informationUri"), str),
        "tool.driver.informationUri must be a string",
    )

    rules = driver.get("rules")
    expect(isinstance(rules, list) and rules, "driver.rules must be non-empty")
    rule_ids = []
    for i, rule in enumerate(rules):
        expect(isinstance(rule.get("id"), str) and rule["id"], f"rules[{i}].id missing")
        text = rule.get("shortDescription", {}).get("text")
        expect(
            isinstance(text, str) and text,
            f"rules[{i}].shortDescription.text missing",
        )
        rule_ids.append(rule["id"])
    expect(len(set(rule_ids)) == len(rule_ids), "duplicate rule ids in driver table")
    expect(
        len(rules) == EXPECTED_RULE_COUNT,
        f"driver table must declare {EXPECTED_RULE_COUNT} rules, got {len(rules)}",
    )
    for rid in ("inconsistent-lockset", "guard-escape", "lock-order-cycle"):
        expect(rid in rule_ids, f"concurrency rule {rid!r} missing from driver table")

    results = run.get("results")
    expect(isinstance(results, list), "run.results must be an array")
    for i, r in enumerate(results):
        rid = r.get("ruleId")
        expect(isinstance(rid, str) and rid, f"results[{i}].ruleId missing")
        idx = r.get("ruleIndex")
        if idx is not None:
            expect(
                isinstance(idx, int) and 0 <= idx < len(rule_ids),
                f"results[{i}].ruleIndex {idx} out of range",
            )
            expect(
                rule_ids[idx] == rid,
                f"results[{i}].ruleIndex points at {rule_ids[idx]!r}, not {rid!r}",
            )
        expect(
            r.get("level") in ("error", "warning", "note"),
            f"results[{i}].level invalid: {r.get('level')!r}",
        )
        expect(
            isinstance(r.get("message", {}).get("text"), str),
            f"results[{i}].message.text missing",
        )

        locs = r.get("locations")
        expect(isinstance(locs, list) and locs, f"results[{i}].locations missing")
        for j, loc in enumerate(locs):
            phys = loc.get("physicalLocation", {})
            uri = phys.get("artifactLocation", {}).get("uri")
            expect(
                isinstance(uri, str) and uri and not uri.startswith("/"),
                f"results[{i}].locations[{j}] uri must be repo-relative, got {uri!r}",
            )
            line = phys.get("region", {}).get("startLine")
            expect(
                isinstance(line, int) and line >= 1,
                f"results[{i}].locations[{j}] startLine must be >= 1, got {line!r}",
            )

        for k, flow in enumerate(r.get("codeFlows", [])):
            tflows = flow.get("threadFlows")
            expect(
                isinstance(tflows, list) and tflows,
                f"results[{i}].codeFlows[{k}].threadFlows missing",
            )
            steps = tflows[0].get("locations")
            expect(
                isinstance(steps, list) and steps,
                f"results[{i}].codeFlows[{k}] has no thread-flow locations",
            )
            for s, step in enumerate(steps):
                sloc = step.get("location", {})
                expect(
                    isinstance(
                        sloc.get("physicalLocation", {})
                        .get("artifactLocation", {})
                        .get("uri"),
                        str,
                    ),
                    f"results[{i}].codeFlows[{k}] step {s} missing uri",
                )

    print(
        f"check_sarif: OK: {len(rules)} rules, {len(results)} result(s), "
        f"{sum(len(r.get('codeFlows', [])) for r in results)} code flow(s)"
    )


if __name__ == "__main__":
    if len(sys.argv) != 2:
        fail("usage: check_sarif.py <file.sarif>")
    main(sys.argv[1])
