# Empty compiler generated dependencies file for bench_onion_comparison.
# This may be replaced when dependencies are built.
