file(REMOVE_RECURSE
  "CMakeFiles/bench_onion_comparison.dir/bench_onion_comparison.cpp.o"
  "CMakeFiles/bench_onion_comparison.dir/bench_onion_comparison.cpp.o.d"
  "bench_onion_comparison"
  "bench_onion_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_onion_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
