file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ranges.dir/bench_ablation_ranges.cpp.o"
  "CMakeFiles/bench_ablation_ranges.dir/bench_ablation_ranges.cpp.o.d"
  "bench_ablation_ranges"
  "bench_ablation_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
