# Empty dependencies file for bench_ablation_ranges.
# This may be replaced when dependencies are built.
