file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stateless.dir/bench_ablation_stateless.cpp.o"
  "CMakeFiles/bench_ablation_stateless.dir/bench_ablation_stateless.cpp.o.d"
  "bench_ablation_stateless"
  "bench_ablation_stateless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stateless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
