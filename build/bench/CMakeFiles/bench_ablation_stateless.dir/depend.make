# Empty dependencies file for bench_ablation_stateless.
# This may be replaced when dependencies are built.
