file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_table.dir/bench_latency_table.cpp.o"
  "CMakeFiles/bench_latency_table.dir/bench_latency_table.cpp.o.d"
  "bench_latency_table"
  "bench_latency_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
