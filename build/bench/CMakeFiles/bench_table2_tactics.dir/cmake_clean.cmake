file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_tactics.dir/bench_table2_tactics.cpp.o"
  "CMakeFiles/bench_table2_tactics.dir/bench_table2_tactics.cpp.o.d"
  "bench_table2_tactics"
  "bench_table2_tactics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_tactics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
