file(REMOVE_RECURSE
  "libdatablinder.a"
)
