
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bigint/bigint.cpp" "src/CMakeFiles/datablinder.dir/bigint/bigint.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/bigint/bigint.cpp.o.d"
  "/root/repo/src/bigint/prime.cpp" "src/CMakeFiles/datablinder.dir/bigint/prime.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/bigint/prime.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "src/CMakeFiles/datablinder.dir/common/bytes.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/common/bytes.cpp.o.d"
  "/root/repo/src/common/hex.cpp" "src/CMakeFiles/datablinder.dir/common/hex.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/common/hex.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/datablinder.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/datablinder.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/datablinder.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/common/status.cpp.o.d"
  "/root/repo/src/core/cloud_node.cpp" "src/CMakeFiles/datablinder.dir/core/cloud_node.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/cloud_node.cpp.o.d"
  "/root/repo/src/core/gateway.cpp" "src/CMakeFiles/datablinder.dir/core/gateway.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/gateway.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/datablinder.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/CMakeFiles/datablinder.dir/core/policy.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/policy.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/CMakeFiles/datablinder.dir/core/registry.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/registry.cpp.o.d"
  "/root/repo/src/core/tactic.cpp" "src/CMakeFiles/datablinder.dir/core/tactic.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/tactic.cpp.o.d"
  "/root/repo/src/core/tactics/biex2lev_tactic.cpp" "src/CMakeFiles/datablinder.dir/core/tactics/biex2lev_tactic.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/tactics/biex2lev_tactic.cpp.o.d"
  "/root/repo/src/core/tactics/biexzmf_tactic.cpp" "src/CMakeFiles/datablinder.dir/core/tactics/biexzmf_tactic.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/tactics/biexzmf_tactic.cpp.o.d"
  "/root/repo/src/core/tactics/builtin.cpp" "src/CMakeFiles/datablinder.dir/core/tactics/builtin.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/tactics/builtin.cpp.o.d"
  "/root/repo/src/core/tactics/det_tactic.cpp" "src/CMakeFiles/datablinder.dir/core/tactics/det_tactic.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/tactics/det_tactic.cpp.o.d"
  "/root/repo/src/core/tactics/mitra_stateless_tactic.cpp" "src/CMakeFiles/datablinder.dir/core/tactics/mitra_stateless_tactic.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/tactics/mitra_stateless_tactic.cpp.o.d"
  "/root/repo/src/core/tactics/mitra_tactic.cpp" "src/CMakeFiles/datablinder.dir/core/tactics/mitra_tactic.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/tactics/mitra_tactic.cpp.o.d"
  "/root/repo/src/core/tactics/ope_tactic.cpp" "src/CMakeFiles/datablinder.dir/core/tactics/ope_tactic.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/tactics/ope_tactic.cpp.o.d"
  "/root/repo/src/core/tactics/ore_tactic.cpp" "src/CMakeFiles/datablinder.dir/core/tactics/ore_tactic.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/tactics/ore_tactic.cpp.o.d"
  "/root/repo/src/core/tactics/paillier_tactic.cpp" "src/CMakeFiles/datablinder.dir/core/tactics/paillier_tactic.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/tactics/paillier_tactic.cpp.o.d"
  "/root/repo/src/core/tactics/rangebrc_tactic.cpp" "src/CMakeFiles/datablinder.dir/core/tactics/rangebrc_tactic.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/tactics/rangebrc_tactic.cpp.o.d"
  "/root/repo/src/core/tactics/rnd_tactic.cpp" "src/CMakeFiles/datablinder.dir/core/tactics/rnd_tactic.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/tactics/rnd_tactic.cpp.o.d"
  "/root/repo/src/core/tactics/sophos_tactic.cpp" "src/CMakeFiles/datablinder.dir/core/tactics/sophos_tactic.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/core/tactics/sophos_tactic.cpp.o.d"
  "/root/repo/src/crypto/aes.cpp" "src/CMakeFiles/datablinder.dir/crypto/aes.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/crypto/aes.cpp.o.d"
  "/root/repo/src/crypto/ctr.cpp" "src/CMakeFiles/datablinder.dir/crypto/ctr.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/crypto/ctr.cpp.o.d"
  "/root/repo/src/crypto/gcm.cpp" "src/CMakeFiles/datablinder.dir/crypto/gcm.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/crypto/gcm.cpp.o.d"
  "/root/repo/src/crypto/hkdf.cpp" "src/CMakeFiles/datablinder.dir/crypto/hkdf.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/crypto/hkdf.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/datablinder.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/prf.cpp" "src/CMakeFiles/datablinder.dir/crypto/prf.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/crypto/prf.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/datablinder.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/siv.cpp" "src/CMakeFiles/datablinder.dir/crypto/siv.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/crypto/siv.cpp.o.d"
  "/root/repo/src/doc/binary_codec.cpp" "src/CMakeFiles/datablinder.dir/doc/binary_codec.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/doc/binary_codec.cpp.o.d"
  "/root/repo/src/doc/json.cpp" "src/CMakeFiles/datablinder.dir/doc/json.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/doc/json.cpp.o.d"
  "/root/repo/src/doc/value.cpp" "src/CMakeFiles/datablinder.dir/doc/value.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/doc/value.cpp.o.d"
  "/root/repo/src/fhir/observation.cpp" "src/CMakeFiles/datablinder.dir/fhir/observation.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/fhir/observation.cpp.o.d"
  "/root/repo/src/kms/key_manager.cpp" "src/CMakeFiles/datablinder.dir/kms/key_manager.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/kms/key_manager.cpp.o.d"
  "/root/repo/src/net/channel.cpp" "src/CMakeFiles/datablinder.dir/net/channel.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/net/channel.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/CMakeFiles/datablinder.dir/net/message.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/net/message.cpp.o.d"
  "/root/repo/src/net/rpc.cpp" "src/CMakeFiles/datablinder.dir/net/rpc.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/net/rpc.cpp.o.d"
  "/root/repo/src/onion/onion.cpp" "src/CMakeFiles/datablinder.dir/onion/onion.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/onion/onion.cpp.o.d"
  "/root/repo/src/phe/elgamal.cpp" "src/CMakeFiles/datablinder.dir/phe/elgamal.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/phe/elgamal.cpp.o.d"
  "/root/repo/src/phe/paillier.cpp" "src/CMakeFiles/datablinder.dir/phe/paillier.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/phe/paillier.cpp.o.d"
  "/root/repo/src/ppe/det.cpp" "src/CMakeFiles/datablinder.dir/ppe/det.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/ppe/det.cpp.o.d"
  "/root/repo/src/ppe/ope.cpp" "src/CMakeFiles/datablinder.dir/ppe/ope.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/ppe/ope.cpp.o.d"
  "/root/repo/src/ppe/ore.cpp" "src/CMakeFiles/datablinder.dir/ppe/ore.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/ppe/ore.cpp.o.d"
  "/root/repo/src/ppe/rnd.cpp" "src/CMakeFiles/datablinder.dir/ppe/rnd.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/ppe/rnd.cpp.o.d"
  "/root/repo/src/schema/schema.cpp" "src/CMakeFiles/datablinder.dir/schema/schema.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/schema/schema.cpp.o.d"
  "/root/repo/src/sse/iex2lev.cpp" "src/CMakeFiles/datablinder.dir/sse/iex2lev.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/sse/iex2lev.cpp.o.d"
  "/root/repo/src/sse/iexzmf.cpp" "src/CMakeFiles/datablinder.dir/sse/iexzmf.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/sse/iexzmf.cpp.o.d"
  "/root/repo/src/sse/index_common.cpp" "src/CMakeFiles/datablinder.dir/sse/index_common.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/sse/index_common.cpp.o.d"
  "/root/repo/src/sse/mitra.cpp" "src/CMakeFiles/datablinder.dir/sse/mitra.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/sse/mitra.cpp.o.d"
  "/root/repo/src/sse/mitra_stateless.cpp" "src/CMakeFiles/datablinder.dir/sse/mitra_stateless.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/sse/mitra_stateless.cpp.o.d"
  "/root/repo/src/sse/range_brc.cpp" "src/CMakeFiles/datablinder.dir/sse/range_brc.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/sse/range_brc.cpp.o.d"
  "/root/repo/src/sse/sophos.cpp" "src/CMakeFiles/datablinder.dir/sse/sophos.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/sse/sophos.cpp.o.d"
  "/root/repo/src/sse/twolev.cpp" "src/CMakeFiles/datablinder.dir/sse/twolev.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/sse/twolev.cpp.o.d"
  "/root/repo/src/store/docstore.cpp" "src/CMakeFiles/datablinder.dir/store/docstore.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/store/docstore.cpp.o.d"
  "/root/repo/src/store/kvstore.cpp" "src/CMakeFiles/datablinder.dir/store/kvstore.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/store/kvstore.cpp.o.d"
  "/root/repo/src/workload/loadgen.cpp" "src/CMakeFiles/datablinder.dir/workload/loadgen.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/workload/loadgen.cpp.o.d"
  "/root/repo/src/workload/scenarios.cpp" "src/CMakeFiles/datablinder.dir/workload/scenarios.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/workload/scenarios.cpp.o.d"
  "/root/repo/src/workload/stats.cpp" "src/CMakeFiles/datablinder.dir/workload/stats.cpp.o" "gcc" "src/CMakeFiles/datablinder.dir/workload/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
