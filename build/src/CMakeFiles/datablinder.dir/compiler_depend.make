# Empty compiler generated dependencies file for datablinder.
# This may be replaced when dependencies are built.
