# Empty compiler generated dependencies file for crypto_agility.
# This may be replaced when dependencies are built.
