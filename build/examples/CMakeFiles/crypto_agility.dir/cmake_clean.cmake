file(REMOVE_RECURSE
  "CMakeFiles/crypto_agility.dir/crypto_agility.cpp.o"
  "CMakeFiles/crypto_agility.dir/crypto_agility.cpp.o.d"
  "crypto_agility"
  "crypto_agility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_agility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
