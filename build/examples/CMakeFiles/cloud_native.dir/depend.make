# Empty dependencies file for cloud_native.
# This may be replaced when dependencies are built.
