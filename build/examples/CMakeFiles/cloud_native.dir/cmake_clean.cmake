file(REMOVE_RECURSE
  "CMakeFiles/cloud_native.dir/cloud_native.cpp.o"
  "CMakeFiles/cloud_native.dir/cloud_native.cpp.o.d"
  "cloud_native"
  "cloud_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
