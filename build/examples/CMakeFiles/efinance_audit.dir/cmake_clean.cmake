file(REMOVE_RECURSE
  "CMakeFiles/efinance_audit.dir/efinance_audit.cpp.o"
  "CMakeFiles/efinance_audit.dir/efinance_audit.cpp.o.d"
  "efinance_audit"
  "efinance_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/efinance_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
