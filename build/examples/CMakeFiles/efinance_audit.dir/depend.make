# Empty dependencies file for efinance_audit.
# This may be replaced when dependencies are built.
