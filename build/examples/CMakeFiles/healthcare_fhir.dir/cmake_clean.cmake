file(REMOVE_RECURSE
  "CMakeFiles/healthcare_fhir.dir/healthcare_fhir.cpp.o"
  "CMakeFiles/healthcare_fhir.dir/healthcare_fhir.cpp.o.d"
  "healthcare_fhir"
  "healthcare_fhir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healthcare_fhir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
