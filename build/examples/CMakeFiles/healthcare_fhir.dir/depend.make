# Empty dependencies file for healthcare_fhir.
# This may be replaced when dependencies are built.
