file(REMOVE_RECURSE
  "CMakeFiles/gateway_edge_test.dir/gateway_edge_test.cpp.o"
  "CMakeFiles/gateway_edge_test.dir/gateway_edge_test.cpp.o.d"
  "gateway_edge_test"
  "gateway_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gateway_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
