# Empty dependencies file for gateway_edge_test.
# This may be replaced when dependencies are built.
