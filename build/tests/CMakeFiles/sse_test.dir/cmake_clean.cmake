file(REMOVE_RECURSE
  "CMakeFiles/sse_test.dir/sse_test.cpp.o"
  "CMakeFiles/sse_test.dir/sse_test.cpp.o.d"
  "sse_test"
  "sse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
