# Empty compiler generated dependencies file for ppe_test.
# This may be replaced when dependencies are built.
