file(REMOVE_RECURSE
  "CMakeFiles/ppe_test.dir/ppe_test.cpp.o"
  "CMakeFiles/ppe_test.dir/ppe_test.cpp.o.d"
  "ppe_test"
  "ppe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
