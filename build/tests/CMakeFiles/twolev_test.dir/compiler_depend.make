# Empty compiler generated dependencies file for twolev_test.
# This may be replaced when dependencies are built.
