file(REMOVE_RECURSE
  "CMakeFiles/twolev_test.dir/twolev_test.cpp.o"
  "CMakeFiles/twolev_test.dir/twolev_test.cpp.o.d"
  "twolev_test"
  "twolev_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twolev_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
