file(REMOVE_RECURSE
  "CMakeFiles/range_brc_test.dir/range_brc_test.cpp.o"
  "CMakeFiles/range_brc_test.dir/range_brc_test.cpp.o.d"
  "range_brc_test"
  "range_brc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_brc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
