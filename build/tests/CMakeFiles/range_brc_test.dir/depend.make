# Empty dependencies file for range_brc_test.
# This may be replaced when dependencies are built.
