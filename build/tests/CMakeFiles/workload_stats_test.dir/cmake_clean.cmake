file(REMOVE_RECURSE
  "CMakeFiles/workload_stats_test.dir/workload_stats_test.cpp.o"
  "CMakeFiles/workload_stats_test.dir/workload_stats_test.cpp.o.d"
  "workload_stats_test"
  "workload_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
