file(REMOVE_RECURSE
  "CMakeFiles/kms_test.dir/kms_test.cpp.o"
  "CMakeFiles/kms_test.dir/kms_test.cpp.o.d"
  "kms_test"
  "kms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
