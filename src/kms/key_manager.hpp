// Key management — the "Keys" interface of the deployment view (Fig. 3).
//
// Stands in for the on-premise HSM the paper integrates with: a master
// key from which every tactic-scoped key is derived via HKDF with a
// structured info string ("<tactic>/<collection>/<field>/<epoch>").
// Rotation bumps an epoch counter per scope; derived keys are cached and
// never leave the trusted zone.
//
// All key material lives in SecretBytes: zeroized storage, no implicit
// conversion to Bytes, redacted formatting. derive() hands callers a
// SecretBytes they move straight into a cipher constructor.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/secret.hpp"

namespace datablinder::kms {

class KeyManager {
 public:
  /// Fresh random master key.
  KeyManager();

  /// Deterministic master key (tests / multi-process sharing). Adopts the
  /// buffer: the caller's copy is wiped.
  explicit KeyManager(Bytes master_key);

  /// Deterministic master key, already tainted.
  explicit KeyManager(SecretBytes master_key);

  /// Derives (and caches) a key of `length` bytes for a scope string such
  /// as "det/observations/status". Stable across calls until rotated.
  SecretBytes derive(const std::string& scope, std::size_t length = 32);

  /// Bumps the scope's epoch: subsequent derive() calls return a fresh key.
  /// Returns the new epoch.
  std::uint64_t rotate(const std::string& scope);

  std::uint64_t epoch(const std::string& scope) const;

  /// Number of distinct derived scopes (for observability).
  std::size_t scope_count() const;

 private:
  mutable std::mutex mutex_;
  SecretBytes master_;
  std::unordered_map<std::string, std::uint64_t> epochs_;
  std::unordered_map<std::string, SecretBytes> cache_;  // "<scope>#<epoch>#<len>"
};

}  // namespace datablinder::kms
