#include "kms/key_manager.hpp"

#include "common/rng.hpp"
#include "common/status.hpp"
#include "crypto/hkdf.hpp"

namespace datablinder::kms {

KeyManager::KeyManager() : master_(SecureRng::bytes(32)) {}

KeyManager::KeyManager(Bytes master_key) : master_(std::move(master_key)) {
  require(master_.size() >= 16, "KeyManager: master key too short");
}

KeyManager::KeyManager(SecretBytes master_key) : master_(std::move(master_key)) {
  require(master_.size() >= 16, "KeyManager: master key too short");
}

SecretBytes KeyManager::derive(const std::string& scope, std::size_t length) {
  std::lock_guard lock(mutex_);
  const std::uint64_t ep = epochs_[scope];
  const std::string cache_key =
      scope + "#" + std::to_string(ep) + "#" + std::to_string(length);
  auto it = cache_.find(cache_key);
  if (it != cache_.end()) return it->second.clone();

  Bytes info = to_bytes(scope);
  append(info, be64(ep));
  // dblint:allow(expose): root-of-trust feeds HKDF here; the product stays SecretBytes
  SecretBytes key(crypto::hkdf(to_bytes("datablinder-kms"), master_.expose_secret(),
                               info, length));
  SecretBytes out = key.clone();
  cache_.emplace(cache_key, std::move(key));
  return out;
}

std::uint64_t KeyManager::rotate(const std::string& scope) {
  std::lock_guard lock(mutex_);
  return ++epochs_[scope];
}

std::uint64_t KeyManager::epoch(const std::string& scope) const {
  std::lock_guard lock(mutex_);
  auto it = epochs_.find(scope);
  return it == epochs_.end() ? 0 : it->second;
}

std::size_t KeyManager::scope_count() const {
  std::lock_guard lock(mutex_);
  return epochs_.size();
}

}  // namespace datablinder::kms
