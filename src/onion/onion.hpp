// Onion encryption — a CryptDB-style baseline (Popa et al., SOSP 2011) for
// comparison against DataBlinder's per-field multi-tactic approach.
//
// CryptDB wraps each value in layers ("onions"): RND(DET(OPE(v))) for
// numerics, RND(DET(v)) for text. The server stores the onion at its
// current outermost layer; to enable a query class the client *reveals the
// layer key* and the server peels the whole column in place:
//   RND layer — semantic security, no queries;
//   DET layer — server-side equality (the column now leaks equality
//               permanently, for every row, past and future);
//   OPE layer — server-side ranges (the column leaks order permanently).
//
// The contrast the paper draws (§6): CryptDB keeps the legacy database
// unchanged but ratchets leakage per column monotonically downward, and the
// tactic is fixed; DataBlinder selects leakage per field *up front* via the
// protection-class annotation and can swap tactics later (crypto agility).
// bench_onion_comparison measures both sides of that trade.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/secret.hpp"
#include "doc/value.hpp"
#include "ppe/det.hpp"
#include "ppe/ope.hpp"
#include "ppe/rnd.hpp"

namespace datablinder::onion {

/// Outermost layer currently exposed to the server; strictly decreasing.
enum class OnionLevel : std::uint8_t {
  kRnd = 2,  // strongest: probabilistic
  kDet = 1,  // equality visible
  kOpe = 0,  // order visible (numeric onions only)
};

std::string to_string(OnionLevel level);

/// Client-side key material and encoders for one column.
class OnionClient {
 public:
  /// `numeric` columns carry the OPE core (three layers), text columns two.
  OnionClient(BytesView master_key, const std::string& column, bool numeric);

  /// Full onion for storage (all layers applied).
  Bytes encrypt(const doc::Value& v) const;

  /// DET-layer ciphertext for an equality predicate (valid once the
  /// column is peeled to kDet or below).
  Bytes eq_token(const doc::Value& v) const;

  /// OPE-layer ciphertexts for a range predicate (numeric columns, peeled
  /// to kOpe).
  std::pair<Bytes, Bytes> range_tokens(const doc::Value& lo, const doc::Value& hi) const;

  /// Decrypts a fully- or partially-peeled onion back to the scalar bytes
  /// core (the OPE/plain core), given its current level.
  Bytes decrypt_core(BytesView onion, OnionLevel level) const;

  /// The layer keys the client must REVEAL to the server to enable peeling
  /// — the act that makes CryptDB's leakage permanent. These are the only
  /// places key material deliberately leaves SecretBytes custody.
  Bytes rnd_layer_key() const;
  Bytes det_layer_key() const;

  bool numeric() const noexcept { return numeric_; }

 private:
  Bytes inner_core(const doc::Value& v) const;

  std::string column_;
  bool numeric_;
  SecretBytes rnd_key_;
  SecretBytes det_key_;
  SecretBytes ope_key_;
};

/// Server-side column store: holds onions at the column's current level and
/// executes queries the level permits.
class OnionColumnServer {
 public:
  explicit OnionColumnServer(std::string column, bool numeric);

  void put(const std::string& id, Bytes onion);
  bool erase(const std::string& id);
  std::size_t size() const noexcept { return rows_.size(); }

  OnionLevel level() const noexcept { return level_; }

  /// Peels the ENTIRE column one layer with the revealed key. Throws
  /// kInvalidArgument when already at the requested depth or when peeling
  /// a text column to OPE.
  void peel_to_det(BytesView rnd_key, const std::string& column_context);
  void peel_to_ope(BytesView det_key, const std::string& column_context);

  /// Equality scan; requires level <= kDet.
  std::vector<std::string> find_eq(BytesView det_token) const;

  /// Range scan; requires level == kOpe (numeric columns).
  std::vector<std::string> find_range(BytesView ope_lo, BytesView ope_hi) const;

  std::size_t storage_bytes() const;

 private:
  std::string column_;
  bool numeric_;
  OnionLevel level_ = OnionLevel::kRnd;
  std::map<std::string, Bytes> rows_;  // id -> onion at current level
};

}  // namespace datablinder::onion
