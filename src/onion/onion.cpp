#include "onion/onion.hpp"

#include "common/status.hpp"
#include "crypto/hkdf.hpp"
#include "doc/numeric.hpp"

namespace datablinder::onion {

using doc::Value;

std::string to_string(OnionLevel level) {
  switch (level) {
    case OnionLevel::kRnd: return "RND";
    case OnionLevel::kDet: return "DET";
    case OnionLevel::kOpe: return "OPE";
  }
  return "?";
}

OnionClient::OnionClient(BytesView master_key, const std::string& column, bool numeric)
    : column_(column), numeric_(numeric) {
  rnd_key_ = SecretBytes(crypto::hkdf({}, master_key, to_bytes("onion-rnd/" + column), 32));
  det_key_ = SecretBytes(crypto::hkdf({}, master_key, to_bytes("onion-det/" + column), 32));
  ope_key_ = SecretBytes(crypto::hkdf({}, master_key, to_bytes("onion-ope/" + column), 32));
}

// Layer-key reveal: CryptDB's peeling protocol hands the raw key to the
// server on purpose — the irreversible leakage ratchet the paper contrasts
// against. This is a modelled disclosure, not an accident.
Bytes OnionClient::rnd_layer_key() const {
  // dblint:allow(expose): modelled CryptDB layer-key disclosure (see above)
  const BytesView k = rnd_key_.expose_secret();
  return Bytes(k.begin(), k.end());
}

Bytes OnionClient::det_layer_key() const {
  // dblint:allow(expose): modelled CryptDB layer-key disclosure (see above)
  const BytesView k = det_key_.expose_secret();
  return Bytes(k.begin(), k.end());
}

Bytes OnionClient::inner_core(const Value& v) const {
  if (numeric_) {
    // Numeric core: the OPE ciphertext (order-preserving 16 bytes).
    const ppe::OpeCipher ope(ope_key_, column_);
    return ope.encrypt(doc::ordered_key(v)).to_bytes();
  }
  return v.scalar_bytes();
}

Bytes OnionClient::encrypt(const Value& v) const {
  const ppe::DetCipher det(det_key_, column_);
  const ppe::RndCipher rnd(rnd_key_, column_);
  return rnd.encrypt(det.encrypt(inner_core(v)));
}

Bytes OnionClient::eq_token(const Value& v) const {
  const ppe::DetCipher det(det_key_, column_);
  return det.encrypt(inner_core(v));
}

std::pair<Bytes, Bytes> OnionClient::range_tokens(const Value& lo, const Value& hi) const {
  require(numeric_, "onion: range tokens need a numeric column");
  const ppe::OpeCipher ope(ope_key_, column_);
  return {ope.encrypt(doc::ordered_key(lo)).to_bytes(),
          ope.encrypt(doc::ordered_key(hi)).to_bytes()};
}

Bytes OnionClient::decrypt_core(BytesView onion, OnionLevel level) const {
  Bytes current(onion.begin(), onion.end());
  if (level == OnionLevel::kRnd) {
    const ppe::RndCipher rnd(rnd_key_, column_);
    auto peeled = rnd.decrypt(current);
    if (!peeled) throw_error(ErrorCode::kCryptoFailure, "onion: RND layer corrupt");
    current = std::move(*peeled);
    level = OnionLevel::kDet;
  }
  if (level == OnionLevel::kDet) {
    const ppe::DetCipher det(det_key_, column_);
    auto peeled = det.decrypt(current);
    if (!peeled) throw_error(ErrorCode::kCryptoFailure, "onion: DET layer corrupt");
    current = std::move(*peeled);
  }
  return current;
}

OnionColumnServer::OnionColumnServer(std::string column, bool numeric)
    : column_(std::move(column)), numeric_(numeric) {}

void OnionColumnServer::put(const std::string& id, Bytes onion) {
  rows_[id] = std::move(onion);
}

bool OnionColumnServer::erase(const std::string& id) { return rows_.erase(id) > 0; }

void OnionColumnServer::peel_to_det(BytesView rnd_key, const std::string& context) {
  require(level_ == OnionLevel::kRnd, "onion: column already peeled past RND");
  // The client revealed the RND layer key; from here on the whole column
  // leaks equality — the irreversible CryptDB ratchet.
  const ppe::RndCipher rnd(rnd_key, context);
  for (auto& [id, onion] : rows_) {
    auto peeled = rnd.decrypt(onion);
    if (!peeled) {
      throw_error(ErrorCode::kCryptoFailure, "onion: peel failed for row " + id);
    }
    onion = std::move(*peeled);
  }
  level_ = OnionLevel::kDet;
}

void OnionColumnServer::peel_to_ope(BytesView det_key, const std::string& context) {
  require(level_ == OnionLevel::kDet, "onion: must peel RND before DET");
  require(numeric_, "onion: text columns have no OPE core");
  const ppe::DetCipher det(det_key, context);
  for (auto& [id, onion] : rows_) {
    auto peeled = det.decrypt(onion);
    if (!peeled) {
      throw_error(ErrorCode::kCryptoFailure, "onion: peel failed for row " + id);
    }
    onion = std::move(*peeled);
  }
  level_ = OnionLevel::kOpe;
}

std::vector<std::string> OnionColumnServer::find_eq(BytesView det_token) const {
  require(level_ != OnionLevel::kRnd,
          "onion: equality needs the column peeled to DET first");
  std::vector<std::string> out;
  if (level_ == OnionLevel::kDet) {
    for (const auto& [id, onion] : rows_) {
      // DET labels are server-visible ciphertexts: this match is the leak
      // the DET level advertises, so variable-time comparison is fine.
      if (BytesView(onion).size() == det_token.size() &&
          std::equal(onion.begin(), onion.end(),  // dblint:allow(ct-compare): public DET label match
                     det_token.begin())) {
        out.push_back(id);
      }
    }
  } else {
    // At OPE level the DET wrapper is gone; equality tokens no longer
    // match. CryptDB keeps a second onion column for equality; this
    // single-onion model reports the limitation loudly instead.
    throw_error(ErrorCode::kInvalidArgument,
                "onion: column peeled to OPE; DET equality tokens no longer apply");
  }
  return out;
}

std::vector<std::string> OnionColumnServer::find_range(BytesView ope_lo,
                                                       BytesView ope_hi) const {
  require(level_ == OnionLevel::kOpe, "onion: range needs the column peeled to OPE");
  std::vector<std::string> out;
  const Bytes lo(ope_lo.begin(), ope_lo.end());
  const Bytes hi(ope_hi.begin(), ope_hi.end());
  for (const auto& [id, onion] : rows_) {
    if (onion >= lo && onion <= hi) out.push_back(id);
  }
  return out;
}

std::size_t OnionColumnServer::storage_bytes() const {
  std::size_t n = 0;
  for (const auto& [id, onion] : rows_) n += id.size() + onion.size();
  return n;
}

}  // namespace datablinder::onion
