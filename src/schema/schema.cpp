#include "schema/schema.hpp"

#include "common/status.hpp"

namespace datablinder::schema {

std::string to_string(ProtectionClass c) {
  switch (c) {
    case ProtectionClass::kClass1: return "C1(structure)";
    case ProtectionClass::kClass2: return "C2(identifiers)";
    case ProtectionClass::kClass3: return "C3(predicates)";
    case ProtectionClass::kClass4: return "C4(equalities)";
    case ProtectionClass::kClass5: return "C5(order)";
  }
  return "C?";
}

std::string to_string(LeakageLevel level) { return leakage_level_name(level); }

std::string to_string(TacticOperation op) { return tactic_operation_name(op); }

std::string to_string(Operation op) {
  switch (op) {
    case Operation::kInsert: return "I";
    case Operation::kEquality: return "EQ";
    case Operation::kBoolean: return "BL";
    case Operation::kRange: return "RG";
  }
  return "?";
}

std::string to_string(Aggregate a) {
  switch (a) {
    case Aggregate::kSum: return "sum";
    case Aggregate::kAverage: return "avg";
    case Aggregate::kCount: return "count";
    case Aggregate::kMin: return "min";
    case Aggregate::kMax: return "max";
  }
  return "?";
}

std::string to_string(FieldType t) {
  switch (t) {
    case FieldType::kString: return "string";
    case FieldType::kInt: return "int";
    case FieldType::kDouble: return "double";
    case FieldType::kBool: return "bool";
    case FieldType::kAny: return "any";
  }
  return "?";
}

Schema& Schema::field(const std::string& name, FieldAnnotation ann) {
  require(!fields_.count(name), "Schema: duplicate field '" + name + "'");
  fields_.emplace(name, std::move(ann));
  return *this;
}

Schema& Schema::plain_field(const std::string& name, FieldType type, bool required) {
  FieldAnnotation ann;
  ann.type = type;
  ann.sensitive = false;
  ann.required = required;
  ann.operations = {Operation::kInsert};
  return field(name, std::move(ann));
}

const FieldAnnotation& Schema::annotation(const std::string& name) const {
  auto it = fields_.find(name);
  if (it == fields_.end()) {
    throw_error(ErrorCode::kNotFound, "Schema: unknown field '" + name + "'");
  }
  return it->second;
}

bool type_matches(FieldType declared, const doc::Value& v) {
  using doc::ValueType;
  switch (declared) {
    case FieldType::kAny: return true;
    case FieldType::kString: return v.type() == ValueType::kString;
    case FieldType::kInt: return v.type() == ValueType::kInt;
    case FieldType::kDouble:
      return v.type() == ValueType::kDouble || v.type() == ValueType::kInt;
    case FieldType::kBool: return v.type() == ValueType::kBool;
  }
  return false;
}

void Schema::validate(const doc::Document& d) const {
  for (const auto& [name, ann] : fields_) {
    if (ann.required && !d.has(name)) {
      throw_error(ErrorCode::kSchemaViolation,
                  "schema '" + name_ + "': missing required field '" + name + "'");
    }
  }
  for (const auto& [name, value] : d.fields) {
    auto it = fields_.find(name);
    if (it == fields_.end()) {
      throw_error(ErrorCode::kSchemaViolation,
                  "schema '" + name_ + "': unknown field '" + name + "'");
    }
    if (!type_matches(it->second.type, value)) {
      throw_error(ErrorCode::kSchemaViolation,
                  "schema '" + name_ + "': field '" + name + "' expects " +
                      to_string(it->second.type) + ", got " + value.to_display());
    }
  }
}

}  // namespace datablinder::schema
