// The leakage lattice — single source of truth.
//
// The paper's safety argument (§3.1/§3.2) is that the middleware, not the
// application, guarantees each annotated field's protection class is
// honored by the selected tactic's leakage profile, using the taxonomy of
// Fuller et al. (SoK: Cryptographically Protected Database Search, IEEE
// S&P 2017): structure < identifiers < predicates < equalities < order.
//
// This header is that invariant's ONE definition site. It is deliberately
// self-contained (no project includes) because it has two consumers that
// must never disagree:
//
//   1. the runtime policy layer (src/core/policy.cpp and the registration
//      check in src/core/registry.cpp), which decides which tactic is
//      admissible for a field's protection class, and
//   2. dblint's leakage-conformance pass (tools/dblint/), which parses the
//      per-operation {TacticOperation, {LeakageLevel, ...}} tables out of
//      every src/core/tactics/*_tactic.cpp and machine-checks them against
//      the same ceiling — at lint time, before the code ever runs.
//
// Everything here is constexpr so both consumers evaluate the identical
// table and `doc/LEAKAGE.md` can be generated from it (and drift-gated).
#pragma once

#include <cstdint>
#include <string>

namespace datablinder::schema {

/// Protection classes, mirroring the leakage taxonomy of Fuller et al.
/// (SoK, IEEE S&P 2017) used by the paper: Class1 leaks only structure,
/// Class5 leaks order. A field's effective protection is the weakest class
/// among the tactics applied to it (weakest-link rule, §3.2).
enum class ProtectionClass : std::uint8_t {
  kClass1 = 1,  // structure       (strongest)
  kClass2 = 2,  // identifiers
  kClass3 = 3,  // predicates
  kClass4 = 4,  // equalities
  kClass5 = 5,  // order           (weakest)
};

/// Leakage taxonomy (Fuller et al., SoK 2017 — §3.1 of the paper).
/// kStructure is the most secure; kOrder leaks the most. The numeric
/// values line up with ProtectionClass on purpose: class N tolerates at
/// most leakage rung N from query operations.
enum class LeakageLevel : std::uint8_t {
  kStructure = 1,
  kIdentifiers = 2,
  kPredicates = 3,
  kEqualities = 4,
  kOrder = 5,
};

/// The high-level tactic operations (§3.1: init / update / query families).
enum class TacticOperation : std::uint8_t {
  kInit,
  kInsert,
  kUpdate,
  kDelete,
  kRead,
  kEqualitySearch,
  kBooleanSearch,
  kRangeQuery,
  kSum,
  kAverage,
  kCount,
  kMin,
  kMax,
};

inline constexpr int kTacticOperationCount = 13;

/// Update family: operations that mutate the protected index.
constexpr bool is_update_operation(TacticOperation op) {
  return op == TacticOperation::kInsert || op == TacticOperation::kUpdate ||
         op == TacticOperation::kDelete;
}

/// Query family: operations that read through the protected index
/// (searches, retrieval, aggregates).
constexpr bool is_query_operation(TacticOperation op) {
  return !is_update_operation(op) && op != TacticOperation::kInit;
}

/// The ceiling table: the maximum LeakageLevel a tactic registered at
/// protection class `c` may declare for operation `op`.
///
///  - kInit provisions keys and empty index structures; it may never
///    reveal more than structure, for any class.
///  - Query-family operations are bounded exactly by the class's rung:
///    a Class2 (identifiers) tactic whose search leaks equalities is
///    mis-registered, full stop.
///  - Update-family operations track Bost's forward-privacy dimension,
///    which the SoK treats as orthogonal to query leakage: Class1
///    (semantically secure at rest) requires forward-private updates
///    (structure only); Class5 structures necessarily position every
///    write (order); every class in between tolerates at most
///    update-pattern equalities — which is exactly what admits the
///    paper's stateless Mitra variant (Class2 search leakage, equality
///    of repeated keyword updates) without admitting a Class2 tactic
///    whose *search* leaks equalities.
constexpr LeakageLevel leakage_ceiling(ProtectionClass c, TacticOperation op) {
  if (op == TacticOperation::kInit) return LeakageLevel::kStructure;
  if (is_query_operation(op)) {
    return static_cast<LeakageLevel>(static_cast<std::uint8_t>(c));
  }
  // Update family.
  if (c == ProtectionClass::kClass1) return LeakageLevel::kStructure;
  if (c == ProtectionClass::kClass5) return LeakageLevel::kOrder;
  return LeakageLevel::kEqualities;
}

/// True when a declared per-operation leakage respects the ceiling for the
/// given protection class. This is THE admissibility predicate: the
/// registry enforces it at registration, the policy engine re-checks it
/// against the field's *required* class at selection, and dblint enforces
/// it over the parsed tactic tables.
constexpr bool leakage_within(ProtectionClass c, TacticOperation op,
                              LeakageLevel declared) {
  return static_cast<std::uint8_t>(declared) <=
         static_cast<std::uint8_t>(leakage_ceiling(c, op));
}

// --- constexpr names ---------------------------------------------------------
// Linkage-free naming so dblint and the LEAKAGE.md generator (which do not
// link the datablinder library) print the same labels as the runtime.

constexpr const char* leakage_level_name(LeakageLevel level) {
  switch (level) {
    case LeakageLevel::kStructure: return "Structure";
    case LeakageLevel::kIdentifiers: return "Identifiers";
    case LeakageLevel::kPredicates: return "Predicates";
    case LeakageLevel::kEqualities: return "Equalities";
    case LeakageLevel::kOrder: return "Order";
  }
  return "?";
}

constexpr const char* protection_class_name(ProtectionClass c) {
  switch (c) {
    case ProtectionClass::kClass1: return "Class1";
    case ProtectionClass::kClass2: return "Class2";
    case ProtectionClass::kClass3: return "Class3";
    case ProtectionClass::kClass4: return "Class4";
    case ProtectionClass::kClass5: return "Class5";
  }
  return "?";
}

constexpr const char* tactic_operation_name(TacticOperation op) {
  switch (op) {
    case TacticOperation::kInit: return "init";
    case TacticOperation::kInsert: return "insert";
    case TacticOperation::kUpdate: return "update";
    case TacticOperation::kDelete: return "delete";
    case TacticOperation::kRead: return "read";
    case TacticOperation::kEqualitySearch: return "equality_search";
    case TacticOperation::kBooleanSearch: return "boolean_search";
    case TacticOperation::kRangeQuery: return "range_query";
    case TacticOperation::kSum: return "sum";
    case TacticOperation::kAverage: return "average";
    case TacticOperation::kCount: return "count";
    case TacticOperation::kMin: return "min";
    case TacticOperation::kMax: return "max";
  }
  return "?";
}

/// The enumerator spelling used in tactic source tables ("kInsert", ...),
/// which is what dblint's parser sees. Kept next to the enum so adding an
/// operation cannot silently desynchronize the parser.
constexpr const char* tactic_operation_token(TacticOperation op) {
  switch (op) {
    case TacticOperation::kInit: return "kInit";
    case TacticOperation::kInsert: return "kInsert";
    case TacticOperation::kUpdate: return "kUpdate";
    case TacticOperation::kDelete: return "kDelete";
    case TacticOperation::kRead: return "kRead";
    case TacticOperation::kEqualitySearch: return "kEqualitySearch";
    case TacticOperation::kBooleanSearch: return "kBooleanSearch";
    case TacticOperation::kRangeQuery: return "kRangeQuery";
    case TacticOperation::kSum: return "kSum";
    case TacticOperation::kAverage: return "kAverage";
    case TacticOperation::kCount: return "kCount";
    case TacticOperation::kMin: return "kMin";
    case TacticOperation::kMax: return "kMax";
  }
  return "?";
}

constexpr const char* leakage_level_token(LeakageLevel level) {
  switch (level) {
    case LeakageLevel::kStructure: return "kStructure";
    case LeakageLevel::kIdentifiers: return "kIdentifiers";
    case LeakageLevel::kPredicates: return "kPredicates";
    case LeakageLevel::kEqualities: return "kEqualities";
    case LeakageLevel::kOrder: return "kOrder";
  }
  return "?";
}

// Canonical string forms (defined in schema.cpp; wrap the constexpr names).
std::string to_string(LeakageLevel level);
std::string to_string(TacticOperation op);

}  // namespace datablinder::schema
