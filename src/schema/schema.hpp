// Data-access abstraction model (paper §3.2, Fig. 2).
//
// Application developers annotate each sensitive field with a *protection
// class* (C1 strongest ... C5 weakest) and the operations/aggregates the
// application needs on that field. The middleware's policy engine resolves
// these annotations to concrete tactics; the schema manager validates that
// stored documents conform to their declared schema (paper §4.1, the data
// protection metadata subsystem).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "doc/value.hpp"
#include "schema/leakage.hpp"  // ProtectionClass + the leakage-ceiling table

namespace datablinder::schema {

std::string to_string(ProtectionClass c);

/// Query operations a field can be annotated with (Fig. 2: I, EQ, BL, RG).
enum class Operation : std::uint8_t {
  kInsert,
  kEquality,
  kBoolean,
  kRange,
};

std::string to_string(Operation op);

/// Aggregate functions (Fig. 2: agg list).
enum class Aggregate : std::uint8_t {
  kSum,
  kAverage,
  kCount,
  kMin,
  kMax,
};

std::string to_string(Aggregate a);

/// Expected field value types for schema validation.
enum class FieldType : std::uint8_t { kString, kInt, kDouble, kBool, kAny };

std::string to_string(FieldType t);

/// Per-field annotation: sensitivity + required capabilities.
struct FieldAnnotation {
  FieldType type = FieldType::kAny;
  bool sensitive = false;
  /// Required protection level; the policy engine must honour it as a
  /// *minimum* (a selected tactic set may be stronger, never weaker).
  ProtectionClass protection = ProtectionClass::kClass1;
  std::set<Operation> operations;
  std::set<Aggregate> aggregates;
  bool required = false;  // document must carry this field

  bool needs(Operation op) const { return operations.count(op) > 0; }
  bool needs(Aggregate a) const { return aggregates.count(a) > 0; }
};

/// A named document schema: field -> annotation.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  Schema& field(const std::string& name, FieldAnnotation ann);

  /// Fluent helper for a non-sensitive (plaintext-allowed... still encrypted
  /// at rest by the middleware, but unindexed) field.
  Schema& plain_field(const std::string& name, FieldType type, bool required = false);

  bool has_field(const std::string& name) const { return fields_.count(name) > 0; }

  /// Throws Error(kNotFound) for unknown fields.
  const FieldAnnotation& annotation(const std::string& name) const;

  const std::map<std::string, FieldAnnotation>& fields() const noexcept { return fields_; }

  /// Validates `d` against this schema. Throws Error(kSchemaViolation)
  /// listing the first violation (unknown field, type mismatch, missing
  /// required field).
  void validate(const doc::Document& d) const;

 private:
  std::string name_;
  std::map<std::string, FieldAnnotation> fields_;
};

/// True when the value's dynamic type satisfies the declared field type.
bool type_matches(FieldType declared, const doc::Value& v);

}  // namespace datablinder::schema
