// Paillier partially homomorphic cryptosystem (Paillier, EUROCRYPT'99).
//
// Additively homomorphic: Enc(a) * Enc(b) = Enc(a + b). DataBlinder uses it
// for the cloud-side SUM and AVERAGE aggregate tactics exactly as the
// paper's prototype used Javallier. We use the standard g = n + 1 variant:
//   Enc(m; r) = (1 + m*n) * r^n  mod n^2
//   Dec(c)    = L(c^lambda mod n^2) * lambda^{-1}  mod n,  L(x) = (x-1)/n
//
// Signed values are supported via symmetric half-range encoding: plaintexts
// in (n/2, n) decode as negative.
//
// Fast paths (all optional — the schoolbook paths remain and are pinned
// against them by the differential suite):
//  * `init_fast_paths()` caches Montgomery contexts for n and n^2 so every
//    encryption/homomorphic op amortizes the per-modulus precomputation;
//  * keygen retains p and q, enabling CRT decryption (exponentiate mod p^2
//    and q^2 separately — ~4x less work than one exponentiation mod n^2);
//  * a randomizer pool precomputes the r^n blinding factors off the hot
//    path, reducing a hot encryption to two modular multiplications.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "bigint/bigint.hpp"
#include "bigint/montgomery.hpp"

namespace datablinder::phe {

using bigint::BigInt;
using bigint::Montgomery;

class PaillierRandomizerPool;

struct PaillierPublicKey {
  BigInt n;         // modulus p*q
  BigInt n_squared; // cached n^2

  // Derived accelerators (never serialized; rebuilt via init_fast_paths).
  std::shared_ptr<const Montgomery> mont_n;
  std::shared_ptr<const Montgomery> mont_n2;
  std::shared_ptr<PaillierRandomizerPool> pool;

  /// Builds the cached Montgomery contexts (and, when `pool_low_water` > 0,
  /// a randomizer pool that keeps at least that many precomputed r^n
  /// factors ready, refilled by a background worker off the hot path).
  /// Idempotent; call after constructing/deserializing a key.
  void init_fast_paths(std::size_t pool_low_water = 0);

  /// Encrypts a signed integer (half-range encoding).
  BigInt encrypt(const BigInt& m) const;
  BigInt encrypt_i64(std::int64_t m) const;

  /// Homomorphic addition of two ciphertexts.
  BigInt add(const BigInt& c1, const BigInt& c2) const;

  /// Homomorphic addition of a plaintext constant.
  BigInt add_plain(const BigInt& c, const BigInt& m) const;

  /// Homomorphic multiplication by a plaintext scalar.
  BigInt mul_plain(const BigInt& c, const BigInt& k) const;

  /// Re-randomizes a ciphertext (fresh r^n factor) without changing the
  /// plaintext; used to unlink ciphertexts across protocol steps.
  BigInt rerandomize(const BigInt& c) const;

  /// Encryption of zero — identity element for `add`.
  BigInt encrypt_zero() const;

  /// Keys are equal when their moduli are (derived caches don't count).
  bool operator==(const PaillierPublicKey& o) const { return n == o.n; }

 private:
  /// r^n mod n^2 for fresh r — from the pool when one is attached.
  BigInt blinding_factor() const;
};

struct PaillierPrivateKey {
  BigInt lambda;  // lcm(p-1, q-1)
  BigInt mu;      // lambda^{-1} mod n
  BigInt p;       // prime factors — empty on legacy keys (disables CRT)
  BigInt q;
  PaillierPublicKey pub;

  /// Precomputes the CRT residue system (p^2/q^2 contexts, the L-inverse
  /// constants h_p/h_q, and q^{-1} mod p). No-op unless p and q are set.
  /// Idempotent; decrypt falls back to the lambda/mu path when absent.
  void init_fast_paths();

  /// Decrypts to a signed integer (half-range decoding). Uses CRT when
  /// init_fast_paths() ran with p/q available.
  BigInt decrypt(const BigInt& c) const;
  std::int64_t decrypt_i64(const BigInt& c) const;

  /// Reference decryption via the full lambda/mu exponentiation mod n^2 —
  /// the differential baseline for the CRT path.
  BigInt decrypt_generic(const BigInt& c) const;

 private:
  BigInt decode_signed(BigInt m) const;

  // CRT precomputation (empty when unavailable).
  std::shared_ptr<const Montgomery> mont_p2_;
  std::shared_ptr<const Montgomery> mont_q2_;
  BigInt p_minus_1_, q_minus_1_;
  BigInt hp_, hq_;     // L_p(g^{p-1} mod p^2)^{-1} mod p, resp. for q
  BigInt q_inv_p_;     // q^{-1} mod p
};

struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

/// Precomputed pool of r^n mod n^2 blinding factors. `take()` pops in O(1);
/// when the pool drains below its low-water mark a single background
/// worker refills it to the high-water mark, so steady-state encryption
/// never runs the r^n exponentiation inline. Thread-safe. Randomness is
/// SecureRng (via BigInt::random_below) — pool entries are key material.
class PaillierRandomizerPool {
 public:
  PaillierRandomizerPool(BigInt n, std::shared_ptr<const Montgomery> mont_n2,
                         std::size_t low_water);
  ~PaillierRandomizerPool();

  PaillierRandomizerPool(const PaillierRandomizerPool&) = delete;
  PaillierRandomizerPool& operator=(const PaillierRandomizerPool&) = delete;

  /// Pops a precomputed factor, or computes one inline on a dry pool.
  BigInt take();

  /// Synchronously fills the pool up to `count` entries (setup-time call).
  void prefill(std::size_t count);

  std::size_t size() const;
  std::uint64_t hits() const noexcept { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const noexcept { return misses_.load(std::memory_order_relaxed); }

 private:
  BigInt compute_one() const;
  void refill_worker(std::size_t target);

  const BigInt n_;
  const std::shared_ptr<const Montgomery> mont_n2_;
  const std::size_t low_water_;
  const std::size_t high_water_;

  mutable std::mutex mutex_;
  std::deque<BigInt> pool_;
  bool refilling_ = false;
  bool shutdown_ = false;
  std::thread worker_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Generates a key pair with an n of roughly `modulus_bits` bits, fast
/// paths initialized (Montgomery contexts + CRT; no pool by default).
/// Real deployments use >= 2048; tests and benches may use smaller moduli —
/// the homomorphic structure (what the evaluation measures) is identical.
PaillierKeyPair paillier_generate(std::size_t modulus_bits);

}  // namespace datablinder::phe
