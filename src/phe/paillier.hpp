// Paillier partially homomorphic cryptosystem (Paillier, EUROCRYPT'99).
//
// Additively homomorphic: Enc(a) * Enc(b) = Enc(a + b). DataBlinder uses it
// for the cloud-side SUM and AVERAGE aggregate tactics exactly as the
// paper's prototype used Javallier. We use the standard g = n + 1 variant:
//   Enc(m; r) = (1 + m*n) * r^n  mod n^2
//   Dec(c)    = L(c^lambda mod n^2) * lambda^{-1}  mod n,  L(x) = (x-1)/n
//
// Signed values are supported via half-range encoding: plaintexts in
// [n - n/3, n) decode as negative.
#pragma once

#include <cstdint>

#include "bigint/bigint.hpp"

namespace datablinder::phe {

using bigint::BigInt;

struct PaillierPublicKey {
  BigInt n;         // modulus p*q
  BigInt n_squared; // cached n^2

  /// Encrypts a signed integer (half-range encoding).
  BigInt encrypt(const BigInt& m) const;
  BigInt encrypt_i64(std::int64_t m) const;

  /// Homomorphic addition of two ciphertexts.
  BigInt add(const BigInt& c1, const BigInt& c2) const;

  /// Homomorphic addition of a plaintext constant.
  BigInt add_plain(const BigInt& c, const BigInt& m) const;

  /// Homomorphic multiplication by a plaintext scalar.
  BigInt mul_plain(const BigInt& c, const BigInt& k) const;

  /// Re-randomizes a ciphertext (fresh r^n factor) without changing the
  /// plaintext; used to unlink ciphertexts across protocol steps.
  BigInt rerandomize(const BigInt& c) const;

  /// Encryption of zero — identity element for `add`.
  BigInt encrypt_zero() const;

  bool operator==(const PaillierPublicKey&) const = default;
};

struct PaillierPrivateKey {
  BigInt lambda;  // lcm(p-1, q-1)
  BigInt mu;      // lambda^{-1} mod n
  PaillierPublicKey pub;

  /// Decrypts to a signed integer (half-range decoding).
  BigInt decrypt(const BigInt& c) const;
  std::int64_t decrypt_i64(const BigInt& c) const;
};

struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

/// Generates a key pair with an n of roughly `modulus_bits` bits.
/// Real deployments use >= 2048; tests and benches may use smaller moduli —
/// the homomorphic structure (what the evaluation measures) is identical.
PaillierKeyPair paillier_generate(std::size_t modulus_bits);

}  // namespace datablinder::phe
