#include "phe/paillier.hpp"

#include "bigint/prime.hpp"
#include "common/status.hpp"

namespace datablinder::phe {

namespace {
/// Samples r in [1, n) with gcd(r, n) = 1.
BigInt sample_unit(const BigInt& n) {
  for (;;) {
    BigInt r = BigInt::random_below(n);
    if (!r.is_zero() && BigInt::gcd(r, n) == BigInt(1)) return r;
  }
}
}  // namespace

BigInt PaillierPublicKey::encrypt(const BigInt& m) const {
  // Half-range encoding for signed plaintexts.
  BigInt encoded = m.mod(n);
  const BigInt r = sample_unit(n);
  // (1 + m*n) mod n^2 avoids a full pow_mod for the g^m term (g = n+1).
  const BigInt gm = (BigInt(1) + encoded * n).mod(n_squared);
  const BigInt rn = r.pow_mod(n, n_squared);
  return gm.mul_mod(rn, n_squared);
}

BigInt PaillierPublicKey::encrypt_i64(std::int64_t m) const { return encrypt(BigInt(m)); }

BigInt PaillierPublicKey::add(const BigInt& c1, const BigInt& c2) const {
  return c1.mul_mod(c2, n_squared);
}

BigInt PaillierPublicKey::add_plain(const BigInt& c, const BigInt& m) const {
  const BigInt gm = (BigInt(1) + m.mod(n) * n).mod(n_squared);
  return c.mul_mod(gm, n_squared);
}

BigInt PaillierPublicKey::mul_plain(const BigInt& c, const BigInt& k) const {
  return c.pow_mod(k.mod(n), n_squared);
}

BigInt PaillierPublicKey::rerandomize(const BigInt& c) const {
  const BigInt r = sample_unit(n);
  return c.mul_mod(r.pow_mod(n, n_squared), n_squared);
}

BigInt PaillierPublicKey::encrypt_zero() const { return encrypt(BigInt(0)); }

BigInt PaillierPrivateKey::decrypt(const BigInt& c) const {
  require(!c.is_zero() && c < pub.n_squared, "Paillier: ciphertext out of range");
  const BigInt x = c.pow_mod(lambda, pub.n_squared);
  const BigInt l = (x - BigInt(1)) / pub.n;
  BigInt m = l.mul_mod(mu, pub.n);
  // Half-range decode: values in the top third are negative.
  if (m > pub.n - (pub.n / BigInt(3))) m -= pub.n;
  return m;
}

std::int64_t PaillierPrivateKey::decrypt_i64(const BigInt& c) const {
  return decrypt(c).to_i64();
}

PaillierKeyPair paillier_generate(std::size_t modulus_bits) {
  require(modulus_bits >= 64, "paillier_generate: modulus too small");
  const auto [p, q] = bigint::generate_prime_pair(modulus_bits / 2);
  PaillierKeyPair kp;
  kp.pub.n = p * q;
  kp.pub.n_squared = kp.pub.n * kp.pub.n;
  kp.priv.lambda = BigInt::lcm(p - BigInt(1), q - BigInt(1));
  kp.priv.mu = kp.priv.lambda.inv_mod(kp.pub.n);
  kp.priv.pub = kp.pub;
  return kp;
}

}  // namespace datablinder::phe
