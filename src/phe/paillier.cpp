#include "phe/paillier.hpp"

#include "bigint/prime.hpp"
#include "common/status.hpp"

namespace datablinder::phe {

namespace {
/// Samples r in [1, n) with gcd(r, n) = 1.
BigInt sample_unit(const BigInt& n) {
  for (;;) {
    BigInt r = BigInt::random_below(n);
    if (!r.is_zero() && BigInt::gcd(r, n) == BigInt(1)) return r;
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// Randomizer pool
// ---------------------------------------------------------------------------

PaillierRandomizerPool::PaillierRandomizerPool(BigInt n,
                                               std::shared_ptr<const Montgomery> mont_n2,
                                               std::size_t low_water)
    : n_(std::move(n)),
      mont_n2_(std::move(mont_n2)),
      low_water_(low_water),
      high_water_(low_water * 2) {
  require(mont_n2_ != nullptr, "PaillierRandomizerPool: null n^2 context");
  require(low_water > 0, "PaillierRandomizerPool: low_water must be > 0");
}

PaillierRandomizerPool::~PaillierRandomizerPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    shutdown_ = true;
  }
  if (worker_.joinable()) worker_.join();
}

BigInt PaillierRandomizerPool::compute_one() const {
  return sample_unit(n_).pow_mod(n_, *mont_n2_);
}

BigInt PaillierRandomizerPool::take() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!pool_.empty()) {
      BigInt out = std::move(pool_.front());
      pool_.pop_front();
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (pool_.size() < low_water_ && !refilling_ && !shutdown_) {
        // The previous worker (if any) is already past its final critical
        // section once refilling_ is false, so this join cannot deadlock.
        if (worker_.joinable()) worker_.join();
        refilling_ = true;
        worker_ = std::thread(&PaillierRandomizerPool::refill_worker, this, high_water_);
      }
      return out;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return compute_one();
}

void PaillierRandomizerPool::prefill(std::size_t count) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (pool_.size() >= count || shutdown_) return;
    }
    BigInt fresh = compute_one();
    std::lock_guard<std::mutex> lk(mutex_);
    pool_.push_back(std::move(fresh));
  }
}

std::size_t PaillierRandomizerPool::size() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return pool_.size();
}

// dblint:thread-root
void PaillierRandomizerPool::refill_worker(std::size_t target) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (shutdown_ || pool_.size() >= target) {
        refilling_ = false;
        return;
      }
    }
    BigInt fresh = compute_one();  // the exponentiation runs unlocked
    std::lock_guard<std::mutex> lk(mutex_);
    pool_.push_back(std::move(fresh));
    if (shutdown_ || pool_.size() >= target) {
      refilling_ = false;
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Public key
// ---------------------------------------------------------------------------

void PaillierPublicKey::init_fast_paths(std::size_t pool_low_water) {
  require(n.is_odd(), "Paillier: modulus must be odd");
  if (!mont_n) mont_n = std::make_shared<const Montgomery>(n);
  if (n_squared.is_zero()) n_squared = n * n;
  if (!mont_n2) mont_n2 = std::make_shared<const Montgomery>(n_squared);
  if (pool_low_water > 0 && !pool) {
    pool = std::make_shared<PaillierRandomizerPool>(n, mont_n2, pool_low_water);
    pool->prefill(pool_low_water);
  }
}

BigInt PaillierPublicKey::blinding_factor() const {
  if (pool) return pool->take();
  const BigInt r = sample_unit(n);
  return mont_n2 ? r.pow_mod(n, *mont_n2) : r.pow_mod(n, n_squared);
}

BigInt PaillierPublicKey::encrypt(const BigInt& m) const {
  // Half-range encoding for signed plaintexts.
  const BigInt encoded = m.mod(n);
  // (1 + m*n) mod n^2 avoids a full pow_mod for the g^m term (g = n+1).
  const BigInt gm = (BigInt(1) + encoded * n).mod(n_squared);
  const BigInt rn = blinding_factor();
  return mont_n2 ? gm.mul_mod(rn, *mont_n2) : gm.mul_mod(rn, n_squared);
}

BigInt PaillierPublicKey::encrypt_i64(std::int64_t m) const { return encrypt(BigInt(m)); }

BigInt PaillierPublicKey::add(const BigInt& c1, const BigInt& c2) const {
  return mont_n2 ? c1.mul_mod(c2, *mont_n2) : c1.mul_mod(c2, n_squared);
}

BigInt PaillierPublicKey::add_plain(const BigInt& c, const BigInt& m) const {
  const BigInt gm = (BigInt(1) + m.mod(n) * n).mod(n_squared);
  return mont_n2 ? c.mul_mod(gm, *mont_n2) : c.mul_mod(gm, n_squared);
}

BigInt PaillierPublicKey::mul_plain(const BigInt& c, const BigInt& k) const {
  return mont_n2 ? c.pow_mod(k.mod(n), *mont_n2) : c.pow_mod(k.mod(n), n_squared);
}

BigInt PaillierPublicKey::rerandomize(const BigInt& c) const {
  const BigInt rn = blinding_factor();
  return mont_n2 ? c.mul_mod(rn, *mont_n2) : c.mul_mod(rn, n_squared);
}

BigInt PaillierPublicKey::encrypt_zero() const { return encrypt(BigInt(0)); }

// ---------------------------------------------------------------------------
// Private key
// ---------------------------------------------------------------------------

void PaillierPrivateKey::init_fast_paths() {
  if (p.is_zero() || q.is_zero() || mont_p2_) return;
  const BigInt p2 = p * p;
  const BigInt q2 = q * q;
  mont_p2_ = std::make_shared<const Montgomery>(p2);
  mont_q2_ = std::make_shared<const Montgomery>(q2);
  p_minus_1_ = p - BigInt(1);
  q_minus_1_ = q - BigInt(1);
  // h_p = L_p(g^{p-1} mod p^2)^{-1} mod p with g = n+1 (and symmetrically
  // for q): the constant folded out of every CRT branch.
  const BigInt g = pub.n + BigInt(1);
  const BigInt gp = g.pow_mod(p_minus_1_, *mont_p2_);
  hp_ = ((gp - BigInt(1)) / p).inv_mod(p);
  const BigInt gq = g.pow_mod(q_minus_1_, *mont_q2_);
  hq_ = ((gq - BigInt(1)) / q).inv_mod(q);
  q_inv_p_ = q.inv_mod(p);
}

BigInt PaillierPrivateKey::decode_signed(BigInt m) const {
  // Symmetric half-range decode: the top half of [0, n) is negative.
  if (m > (pub.n >> 1)) m -= pub.n;
  return m;
}

BigInt PaillierPrivateKey::decrypt_generic(const BigInt& c) const {
  require(!c.is_zero() && c < pub.n_squared, "Paillier: ciphertext out of range");
  const BigInt x = pub.mont_n2 ? c.pow_mod(lambda, *pub.mont_n2)
                               : c.pow_mod(lambda, pub.n_squared);
  const BigInt l = (x - BigInt(1)) / pub.n;
  return decode_signed(l.mul_mod(mu, pub.n));
}

BigInt PaillierPrivateKey::decrypt(const BigInt& c) const {
  if (!mont_p2_) return decrypt_generic(c);
  require(!c.is_zero() && c < pub.n_squared, "Paillier: ciphertext out of range");
  // CRT: recover m mod p and m mod q with half-size exponentiations, then
  // recombine. Each branch is ~8x cheaper than the lambda path (half the
  // exponent bits, quarter-size modulus multiplies).
  const BigInt xp = c.pow_mod(p_minus_1_, *mont_p2_);
  const BigInt mp = ((xp - BigInt(1)) / p).mul_mod(hp_, p);
  const BigInt xq = c.pow_mod(q_minus_1_, *mont_q2_);
  const BigInt mq = ((xq - BigInt(1)) / q).mul_mod(hq_, q);
  const BigInt u = (mp - mq).mul_mod(q_inv_p_, p);
  return decode_signed(mq + u * q);
}

std::int64_t PaillierPrivateKey::decrypt_i64(const BigInt& c) const {
  return decrypt(c).to_i64();
}

// ---------------------------------------------------------------------------
// Keygen
// ---------------------------------------------------------------------------

PaillierKeyPair paillier_generate(std::size_t modulus_bits) {
  require(modulus_bits >= 64, "paillier_generate: modulus too small");
  const auto [p, q] = bigint::generate_prime_pair(modulus_bits / 2);
  PaillierKeyPair kp;
  kp.pub.n = p * q;
  kp.pub.n_squared = kp.pub.n * kp.pub.n;
  kp.pub.init_fast_paths();
  kp.priv.lambda = BigInt::lcm(p - BigInt(1), q - BigInt(1));
  kp.priv.mu = kp.priv.lambda.inv_mod(kp.pub.n);
  kp.priv.p = p;
  kp.priv.q = q;
  kp.priv.pub = kp.pub;
  kp.priv.init_fast_paths();
  return kp;
}

}  // namespace datablinder::phe
