#include "phe/elgamal.hpp"

#include "bigint/prime.hpp"
#include "common/status.hpp"

namespace datablinder::phe {

namespace {
BigInt sample_exponent(const BigInt& p) {
  // Exponents over the subgroup of order q = (p-1)/2; uniform in [1, q).
  const BigInt q = (p - BigInt(1)) >> 1;
  for (;;) {
    BigInt r = BigInt::random_below(q);
    if (!r.is_zero()) return r;
  }
}
}  // namespace

void ElGamalPublicKey::init_fast_paths() {
  if (!mont_p) mont_p = std::make_shared<const Montgomery>(p);
}

ElGamalCiphertext ElGamalPublicKey::encrypt(const BigInt& m) const {
  require(!m.is_zero() && m < p, "elgamal: message out of range");
  const BigInt r = sample_exponent(p);
  if (mont_p) {
    return {g.pow_mod(r, *mont_p), m.mul_mod(h.pow_mod(r, *mont_p), *mont_p)};
  }
  return {g.pow_mod(r, p), m.mul_mod(h.pow_mod(r, p), p)};
}

ElGamalCiphertext ElGamalPublicKey::encrypt_exponent(std::uint64_t m) const {
  const BigInt r = sample_exponent(p);
  if (mont_p) {
    const BigInt gm = g.pow_mod(BigInt(m), *mont_p);
    return {g.pow_mod(r, *mont_p), gm.mul_mod(h.pow_mod(r, *mont_p), *mont_p)};
  }
  const BigInt gm = g.pow_mod(BigInt(m), p);
  return {g.pow_mod(r, p), gm.mul_mod(h.pow_mod(r, p), p)};
}

ElGamalCiphertext ElGamalPublicKey::multiply(const ElGamalCiphertext& a,
                                             const ElGamalCiphertext& b) const {
  if (mont_p) return {a.c1.mul_mod(b.c1, *mont_p), a.c2.mul_mod(b.c2, *mont_p)};
  return {a.c1.mul_mod(b.c1, p), a.c2.mul_mod(b.c2, p)};
}

ElGamalCiphertext ElGamalPublicKey::rerandomize(const ElGamalCiphertext& c) const {
  const BigInt r = sample_exponent(p);
  if (mont_p) {
    return {c.c1.mul_mod(g.pow_mod(r, *mont_p), *mont_p),
            c.c2.mul_mod(h.pow_mod(r, *mont_p), *mont_p)};
  }
  return {c.c1.mul_mod(g.pow_mod(r, p), p), c.c2.mul_mod(h.pow_mod(r, p), p)};
}

BigInt ElGamalPrivateKey::decrypt(const ElGamalCiphertext& c) const {
  // m = c2 / c1^x.
  const BigInt s = pub.mont_p ? c.c1.pow_mod(x, *pub.mont_p) : c.c1.pow_mod(x, pub.p);
  return pub.mont_p ? c.c2.mul_mod(s.inv_mod(pub.p), *pub.mont_p)
                    : c.c2.mul_mod(s.inv_mod(pub.p), pub.p);
}

std::optional<std::uint64_t> ElGamalPrivateKey::decrypt_exponent(
    const ElGamalCiphertext& c, std::uint64_t max_exponent) const {
  const BigInt gm = decrypt(c);
  // Bounded linear discrete-log: plaintext spaces here are counters, so a
  // scan beats the setup cost of BSGS at realistic bounds.
  BigInt cur(1);
  for (std::uint64_t m = 0; m <= max_exponent; ++m) {
    if (cur == gm) return m;
    cur = pub.mont_p ? cur.mul_mod(pub.g, *pub.mont_p) : cur.mul_mod(pub.g, pub.p);
  }
  return std::nullopt;
}

ElGamalKeyPair elgamal_generate(std::size_t prime_bits) {
  require(prime_bits >= 64, "elgamal_generate: prime too small");
  // Safe prime p = 2q + 1; generator of the order-q subgroup via squaring.
  BigInt p, q;
  for (;;) {
    q = bigint::generate_prime(prime_bits - 1);
    p = (q << 1) + BigInt(1);
    if (bigint::is_probable_prime(p)) break;
  }
  ElGamalKeyPair kp;
  kp.pub.p = p;
  kp.pub.init_fast_paths();
  BigInt g;
  for (;;) {
    const BigInt candidate = BigInt(2) + BigInt::random_below(p - BigInt(3));
    g = candidate.mul_mod(candidate, *kp.pub.mont_p);  // square: lands in the QR subgroup
    if (g != BigInt(1)) break;
  }
  kp.pub.g = g;
  kp.priv.x = sample_exponent(p);
  kp.pub.h = g.pow_mod(kp.priv.x, *kp.pub.mont_p);
  kp.priv.pub = kp.pub;
  return kp;
}

}  // namespace datablinder::phe
