// ElGamal encryption (ElGamal, 1985) — the multiplicatively homomorphic
// counterpart to Paillier in the paper's background taxonomy ("HE schemes
// provide either addition or multiplication e.g., Paillier and ElGamal").
//
// Two modes over a safe-prime group:
//  * multiplicative — Enc(a) ⊗ Enc(b) = Enc(a·b): geometric aggregation;
//  * exponential ("lifted") — messages in the exponent, Enc(a) ⊗ Enc(b) =
//    Enc(a+b); decryption recovers m by bounded discrete log, so plaintexts
//    must be small (the classic voting/counter construction).
//
// Provided as a library primitive for tactic developers (the SPI makes
// adding a product-aggregate tactic a single registration); the built-in
// aggregate tactic uses Paillier, matching the paper's Table 2.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "bigint/bigint.hpp"
#include "bigint/montgomery.hpp"

namespace datablinder::phe {

using bigint::BigInt;
using bigint::Montgomery;

struct ElGamalCiphertext {
  BigInt c1;  // g^r
  BigInt c2;  // m * h^r   (or g^m * h^r in exponential mode)

  bool operator==(const ElGamalCiphertext&) const = default;
};

struct ElGamalPublicKey {
  BigInt p;  // safe prime
  BigInt g;  // generator of the quadratic-residue subgroup
  BigInt h;  // g^x

  /// Cached Montgomery context for p, shared by the four exponentiations
  /// each operation performs (never serialized; rebuilt on demand).
  std::shared_ptr<const Montgomery> mont_p;

  /// Builds the cached context. Idempotent; keygen calls it, and every
  /// operation falls back to transient contexts when it never ran.
  void init_fast_paths();

  /// Multiplicative encryption of m in [1, p). m must be a quadratic
  /// residue for textbook semantic security; callers square or hash-map
  /// as needed — the homomorphic property holds regardless.
  ElGamalCiphertext encrypt(const BigInt& m) const;

  /// Exponential (lifted) encryption of a small non-negative integer.
  ElGamalCiphertext encrypt_exponent(std::uint64_t m) const;

  /// Homomorphic combine: multiplies plaintexts (or adds exponents).
  ElGamalCiphertext multiply(const ElGamalCiphertext& a,
                             const ElGamalCiphertext& b) const;

  /// Re-randomizes without changing the plaintext.
  ElGamalCiphertext rerandomize(const ElGamalCiphertext& c) const;
};

struct ElGamalPrivateKey {
  BigInt x;
  ElGamalPublicKey pub;

  /// Multiplicative decryption.
  BigInt decrypt(const ElGamalCiphertext& c) const;

  /// Exponential decryption via bounded baby-step search; nullopt when the
  /// plaintext exceeds `max_exponent`.
  std::optional<std::uint64_t> decrypt_exponent(const ElGamalCiphertext& c,
                                                std::uint64_t max_exponent) const;
};

struct ElGamalKeyPair {
  ElGamalPublicKey pub;
  ElGamalPrivateKey priv;
};

/// Generates a key pair over a fresh safe-prime group of `prime_bits`.
ElGamalKeyPair elgamal_generate(std::size_t prime_bits);

}  // namespace datablinder::phe
