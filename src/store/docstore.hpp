// DocumentStore — the MongoDB-role substrate.
//
// Collections of documents with equality and range secondary indexes and a
// small predicate engine (equality / range / and / or). The plaintext
// baseline scenario S_A queries this store directly; the encrypted
// scenarios store opaque blobs here and search via the SSE indexes instead.
//
// Thread-safe per collection (one mutex each).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "doc/value.hpp"

namespace datablinder::store {

/// Predicate AST over document fields.
struct Filter {
  enum class Kind { kTrue, kEq, kRange, kAnd, kOr, kNot };

  Kind kind = Kind::kTrue;
  std::string field;              // kEq / kRange
  doc::Value value;               // kEq
  std::optional<doc::Value> lo;   // kRange (inclusive); nullopt = unbounded
  std::optional<doc::Value> hi;   // kRange (inclusive)
  std::vector<Filter> children;   // kAnd / kOr / kNot

  static Filter all();
  static Filter eq(std::string field, doc::Value v);
  static Filter range(std::string field, std::optional<doc::Value> lo,
                      std::optional<doc::Value> hi);
  static Filter and_of(std::vector<Filter> children);
  static Filter or_of(std::vector<Filter> children);
  static Filter not_of(Filter child);

  bool matches(const doc::Document& d) const;
};

/// Compares two scalar values of compatible types (int/double mix allowed).
/// Returns <0, 0, >0. Throws Error(kInvalidArgument) for incomparable types.
int compare_values(const doc::Value& a, const doc::Value& b);

class Collection {
 public:
  explicit Collection(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Declares an index on `field` (equality + range). Existing documents
  /// are back-filled.
  void create_index(const std::string& field);

  /// Inserts or replaces by id.
  void put(doc::Document d);

  std::optional<doc::Document> get(const std::string& id) const;

  /// Batched lookup: the documents that exist among `ids`, in request
  /// order; missing ids are skipped. One lock acquisition for the whole
  /// batch (the substrate of the gateway's single-round-trip candidate
  /// retrieval).
  std::vector<doc::Document> get_many(const std::vector<std::string>& ids) const;

  bool erase(const std::string& id);
  std::size_t size() const;

  /// Returns matching documents. Uses an index when the filter's root (or
  /// an AND child) is an indexed equality/range predicate; falls back to a
  /// full scan otherwise.
  std::vector<doc::Document> find(const Filter& filter) const;

  /// Full scan visitor (stops early when the visitor returns false).
  void scan(const std::function<bool(const doc::Document&)>& visit) const;

  std::size_t storage_bytes() const;

  /// Order-insensitive digest over all documents (replica convergence
  /// checks). Secondary indexes are derived state and excluded.
  std::uint64_t fingerprint() const;

 private:
  // Index key: canonical scalar encoding (sorts correctly for strings and
  // non-negative ints; doubles handled via order-preserving bit tricks).
  static Bytes index_key(const doc::Value& v);

  void index_doc(const doc::Document& d);
  void unindex_doc(const doc::Document& d);

  // Candidate ids from the best applicable index, or nullopt for scan.
  std::optional<std::set<std::string>> candidates(const Filter& filter) const;

  mutable std::mutex mutex_;
  std::string name_;
  std::unordered_map<std::string, doc::Document> docs_;
  // field -> ordered index (key bytes -> ids)
  std::unordered_map<std::string, std::map<Bytes, std::set<std::string>>> indexes_;
};

class DocumentStore {
 public:
  /// Creates the collection if absent.
  Collection& collection(const std::string& name);

  bool has_collection(const std::string& name) const;

  std::size_t storage_bytes() const;

  /// Order-insensitive digest across every collection.
  std::uint64_t fingerprint() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace datablinder::store
