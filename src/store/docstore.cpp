#include "store/docstore.hpp"

#include <algorithm>

#include "common/fingerprint.hpp"
#include "common/status.hpp"
#include "doc/binary_codec.hpp"

namespace datablinder::store {

using doc::Document;
using doc::Value;
using doc::ValueType;

Filter Filter::all() { return Filter{}; }

Filter Filter::eq(std::string field, Value v) {
  Filter f;
  f.kind = Kind::kEq;
  f.field = std::move(field);
  f.value = std::move(v);
  return f;
}

Filter Filter::range(std::string field, std::optional<Value> lo, std::optional<Value> hi) {
  Filter f;
  f.kind = Kind::kRange;
  f.field = std::move(field);
  f.lo = std::move(lo);
  f.hi = std::move(hi);
  return f;
}

Filter Filter::and_of(std::vector<Filter> children) {
  Filter f;
  f.kind = Kind::kAnd;
  f.children = std::move(children);
  return f;
}

Filter Filter::or_of(std::vector<Filter> children) {
  Filter f;
  f.kind = Kind::kOr;
  f.children = std::move(children);
  return f;
}

Filter Filter::not_of(Filter child) {
  Filter f;
  f.kind = Kind::kNot;
  f.children.push_back(std::move(child));
  return f;
}

int compare_values(const Value& a, const Value& b) {
  const bool numeric_a = a.type() == ValueType::kInt || a.type() == ValueType::kDouble;
  const bool numeric_b = b.type() == ValueType::kInt || b.type() == ValueType::kDouble;
  if (numeric_a && numeric_b) {
    if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
      const auto x = a.as_int(), y = b.as_int();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = a.as_double(), y = b.as_double();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.type() == ValueType::kString && b.type() == ValueType::kString) {
    return a.as_string().compare(b.as_string());
  }
  if (a.type() == ValueType::kBool && b.type() == ValueType::kBool) {
    return static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
  }
  throw_error(ErrorCode::kInvalidArgument, "compare_values: incomparable types");
}

bool Filter::matches(const Document& d) const {
  switch (kind) {
    case Kind::kTrue:
      return true;
    case Kind::kEq: {
      if (!d.has(field)) return false;
      const Value& v = d.at(field);
      // Equality across int/double normalizes numerically.
      try {
        return compare_values(v, value) == 0;
      } catch (const Error&) {
        return false;
      }
    }
    case Kind::kRange: {
      if (!d.has(field)) return false;
      const Value& v = d.at(field);
      try {
        if (lo && compare_values(v, *lo) < 0) return false;
        if (hi && compare_values(v, *hi) > 0) return false;
      } catch (const Error&) {
        return false;
      }
      return true;
    }
    case Kind::kAnd:
      return std::all_of(children.begin(), children.end(),
                         [&](const Filter& c) { return c.matches(d); });
    case Kind::kOr:
      return std::any_of(children.begin(), children.end(),
                         [&](const Filter& c) { return c.matches(d); });
    case Kind::kNot:
      return !children.at(0).matches(d);
  }
  return false;
}

Bytes Collection::index_key(const Value& v) {
  // Order-preserving canonical key per type, with a type tag so mixed-type
  // indexes stay partitioned.
  Bytes out;
  switch (v.type()) {
    case ValueType::kInt: {
      out.push_back(0x02);
      // Flip the sign bit so two's-complement sorts correctly unsigned.
      const auto u = static_cast<std::uint64_t>(v.as_int()) ^ (1ULL << 63);
      append(out, be64(u));
      return out;
    }
    case ValueType::kDouble: {
      out.push_back(0x02);  // shares the numeric partition with ints
      double d = v.as_double();
      std::uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      // IEEE-754 total-order trick: flip all bits for negatives, sign bit
      // for positives.
      bits = (bits & (1ULL << 63)) ? ~bits : (bits | (1ULL << 63));
      append(out, be64(bits));
      return out;
    }
    case ValueType::kString:
      out.push_back(0x04);
      append(out, to_bytes(v.as_string()));
      return out;
    case ValueType::kBool:
      out.push_back(0x01);
      out.push_back(v.as_bool() ? 1 : 0);
      return out;
    default:
      return v.scalar_bytes();  // binary/null: tagged but only equality-useful
  }
}

void Collection::create_index(const std::string& field) {
  std::lock_guard lock(mutex_);
  if (indexes_.count(field)) return;
  auto& index = indexes_[field];
  for (const auto& [id, d] : docs_) {
    if (d.has(field)) index[index_key(d.at(field))].insert(id);
  }
}

void Collection::index_doc(const Document& d) {
  for (auto& [field, index] : indexes_) {
    if (d.has(field)) index[index_key(d.at(field))].insert(d.id);
  }
}

void Collection::unindex_doc(const Document& d) {
  for (auto& [field, index] : indexes_) {
    if (!d.has(field)) continue;
    auto it = index.find(index_key(d.at(field)));
    if (it != index.end()) {
      it->second.erase(d.id);
      if (it->second.empty()) index.erase(it);
    }
  }
}

void Collection::put(Document d) {
  require(!d.id.empty(), "Collection::put: empty id");
  std::lock_guard lock(mutex_);
  auto it = docs_.find(d.id);
  if (it != docs_.end()) unindex_doc(it->second);
  index_doc(d);
  docs_[d.id] = std::move(d);
}

std::optional<Document> Collection::get(const std::string& id) const {
  std::lock_guard lock(mutex_);
  auto it = docs_.find(id);
  if (it == docs_.end()) return std::nullopt;
  return it->second;
}

std::vector<Document> Collection::get_many(const std::vector<std::string>& ids) const {
  std::lock_guard lock(mutex_);
  std::vector<Document> out;
  out.reserve(ids.size());
  for (const auto& id : ids) {
    auto it = docs_.find(id);
    if (it != docs_.end()) out.push_back(it->second);
  }
  return out;
}

bool Collection::erase(const std::string& id) {
  std::lock_guard lock(mutex_);
  auto it = docs_.find(id);
  if (it == docs_.end()) return false;
  unindex_doc(it->second);
  docs_.erase(it);
  return true;
}

std::size_t Collection::size() const {
  std::lock_guard lock(mutex_);
  return docs_.size();
}

std::optional<std::set<std::string>> Collection::candidates(const Filter& filter) const {
  // Called with mutex_ held.
  switch (filter.kind) {
    case Filter::Kind::kEq: {
      auto it = indexes_.find(filter.field);
      if (it == indexes_.end()) return std::nullopt;
      auto jt = it->second.find(index_key(filter.value));
      if (jt == it->second.end()) return std::set<std::string>{};
      return jt->second;
    }
    case Filter::Kind::kRange: {
      auto it = indexes_.find(filter.field);
      if (it == indexes_.end()) return std::nullopt;
      std::set<std::string> out;
      auto begin = filter.lo ? it->second.lower_bound(index_key(*filter.lo))
                             : it->second.begin();
      for (auto jt = begin; jt != it->second.end(); ++jt) {
        if (filter.hi && jt->first > index_key(*filter.hi)) break;
        out.insert(jt->second.begin(), jt->second.end());
      }
      return out;
    }
    case Filter::Kind::kAnd: {
      // Use the most selective indexed child as the candidate source.
      std::optional<std::set<std::string>> best;
      for (const auto& c : filter.children) {
        auto cand = candidates(c);
        if (cand && (!best || cand->size() < best->size())) best = std::move(cand);
      }
      return best;
    }
    case Filter::Kind::kOr: {
      // Union only if ALL children are indexable.
      std::set<std::string> out;
      for (const auto& c : filter.children) {
        auto cand = candidates(c);
        if (!cand) return std::nullopt;
        out.insert(cand->begin(), cand->end());
      }
      return out;
    }
    default:
      return std::nullopt;
  }
}

std::vector<Document> Collection::find(const Filter& filter) const {
  std::lock_guard lock(mutex_);
  std::vector<Document> out;
  const auto cand = candidates(filter);
  if (cand) {
    for (const auto& id : *cand) {
      auto it = docs_.find(id);
      if (it != docs_.end() && filter.matches(it->second)) out.push_back(it->second);
    }
  } else {
    for (const auto& [id, d] : docs_) {
      if (filter.matches(d)) out.push_back(d);
    }
  }
  return out;
}

void Collection::scan(const std::function<bool(const Document&)>& visit) const {
  std::lock_guard lock(mutex_);
  for (const auto& [id, d] : docs_) {
    if (!visit(d)) return;
  }
}

std::size_t Collection::storage_bytes() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [id, d] : docs_) n += doc::encode_document(d).size();
  for (const auto& [field, index] : indexes_) {
    n += field.size();
    for (const auto& [key, ids] : index) {
      n += key.size();
      for (const auto& id : ids) n += id.size();
    }
  }
  return n;
}

std::uint64_t Collection::fingerprint() const {
  std::lock_guard lock(mutex_);
  std::uint64_t digest = 0;
  for (const auto& [id, d] : docs_) {
    std::uint64_t h = fnv1a(kFnvOffset, id);
    h = fnv1a(h, doc::encode_document(d));  // canonical: Object is ordered
    digest += h;
  }
  return digest;
}

Collection& DocumentStore::collection(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    it = collections_.emplace(name, std::make_unique<Collection>(name)).first;
  }
  return *it->second;
}

bool DocumentStore::has_collection(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return collections_.count(name) > 0;
}

std::size_t DocumentStore::storage_bytes() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, c] : collections_) n += c->storage_bytes();
  return n;
}

std::uint64_t DocumentStore::fingerprint() const {
  std::lock_guard lock(mutex_);
  std::uint64_t digest = 0;
  for (const auto& [name, c] : collections_) {
    digest += fnv1a(fnv1a(kFnvOffset, name), c->fingerprint());
  }
  return digest;
}

}  // namespace datablinder::store
