#include "store/kvstore.hpp"

#include "common/fingerprint.hpp"
#include "common/status.hpp"

namespace datablinder::store {

enum class KvStore::OpCode : std::uint8_t {
  kSet = 1,
  kDel = 2,
  kHset = 3,
  kHdel = 4,
  kSadd = 5,
  kSrem = 6,
  kZadd = 7,
  kZrem = 8,
  kIncr = 9,
  kFlush = 10,
};

KvStore::KvStore(const std::string& aof_path) : aof_path_(aof_path) {
  replay(aof_path);
  aof_ = std::fopen(aof_path.c_str(), "ab");
  if (aof_ == nullptr) {
    throw_error(ErrorCode::kUnavailable, "KvStore: cannot open AOF " + aof_path);
  }
}

KvStore::~KvStore() {
  if (aof_ != nullptr) std::fclose(aof_);
}

void KvStore::log_op(OpCode op, const std::vector<Bytes>& args) {
  if (aof_ == nullptr || replaying_) return;
  // Record: opcode byte, arg count, then length-prefixed args.
  Bytes rec;
  rec.push_back(static_cast<std::uint8_t>(op));
  append(rec, be32(static_cast<std::uint32_t>(args.size())));
  for (const auto& a : args) {
    append(rec, be32(static_cast<std::uint32_t>(a.size())));
    append(rec, a);
  }
  if (std::fwrite(rec.data(), 1, rec.size(), aof_) != rec.size()) {
    // Semi-persistent writes are buffered and not individually checked;
    // remember the short write so the next durability point (sync())
    // reports it instead of silently losing the record.
    aof_write_failed_ = true;
  }
  // Semi-persistent mode: no fsync per op (matches the paper's Redis config).
}

void KvStore::replay(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return;  // fresh store
  // Replay runs from the constructor, before the store is published to any
  // other thread — the lock is not needed for correctness, but holding it
  // keeps every mutation of the table state under mutex_ so the locking
  // contract is uniform (and statically checkable).
  std::lock_guard lock(mutex_);
  replaying_ = true;
  auto read_exact = [&](std::uint8_t* buf, std::size_t n) {
    return std::fread(buf, 1, n, f) == n;
  };
  for (;;) {
    std::uint8_t op_byte;
    if (!read_exact(&op_byte, 1)) break;
    std::uint8_t cnt_buf[4];
    if (!read_exact(cnt_buf, 4)) break;
    const std::size_t argc = read_be32({cnt_buf, 4});
    std::vector<Bytes> args(argc);
    bool ok = true;
    for (auto& a : args) {
      std::uint8_t len_buf[4];
      if (!read_exact(len_buf, 4)) { ok = false; break; }
      a.resize(read_be32({len_buf, 4}));
      if (!a.empty() && !read_exact(a.data(), a.size())) { ok = false; break; }
    }
    if (!ok) break;  // torn tail record: semi-persistent semantics accept loss
    apply(static_cast<OpCode>(op_byte), args);
  }
  std::fclose(f);
  replaying_ = false;
}

void KvStore::apply(OpCode op, const std::vector<Bytes>& args) {
  auto s = [](const Bytes& b) { return datablinder::to_string(b); };
  switch (op) {
    case OpCode::kSet: strings_[s(args[0])] = args[1]; break;
    case OpCode::kDel: strings_.erase(s(args[0])); break;
    case OpCode::kHset: hashes_[s(args[0])][s(args[1])] = args[2]; break;
    case OpCode::kHdel: {
      auto it = hashes_.find(s(args[0]));
      if (it != hashes_.end()) it->second.erase(s(args[1]));
      break;
    }
    case OpCode::kSadd: sets_[s(args[0])].insert(s(args[1])); break;
    case OpCode::kSrem: {
      auto it = sets_.find(s(args[0]));
      if (it != sets_.end()) it->second.erase(s(args[1]));
      break;
    }
    case OpCode::kZadd: zsets_[s(args[0])][args[1]].insert(s(args[2])); break;
    case OpCode::kZrem: {
      auto it = zsets_.find(s(args[0]));
      if (it != zsets_.end()) {
        auto jt = it->second.find(args[1]);
        if (jt != it->second.end()) {
          jt->second.erase(s(args[2]));
          if (jt->second.empty()) it->second.erase(jt);
        }
      }
      break;
    }
    case OpCode::kIncr:
      counters_[s(args[0])] += static_cast<std::int64_t>(read_be64(args[1]));
      break;
    case OpCode::kFlush:
      strings_.clear();
      hashes_.clear();
      sets_.clear();
      zsets_.clear();
      counters_.clear();
      break;
  }
}

Status KvStore::sync() {
  std::lock_guard lock(mutex_);
  if (aof_ == nullptr) return Status::OK();  // in-memory store: nothing to land
  if (std::fflush(aof_) != 0) aof_write_failed_ = true;
  if (aof_write_failed_) {
    return Status::Failure(ErrorCode::kUnavailable,
                           "KvStore: AOF write/flush failed for " + aof_path_ +
                               "; durability of buffered records is not assured");
  }
  return Status::OK();
}

void KvStore::set(const std::string& key, Bytes value) {
  std::lock_guard lock(mutex_);
  log_op(OpCode::kSet, {to_bytes(key), value});
  strings_[key] = std::move(value);
}

std::optional<Bytes> KvStore::get(const std::string& key) const {
  std::lock_guard lock(mutex_);
  auto it = strings_.find(key);
  if (it == strings_.end()) return std::nullopt;
  return it->second;
}

bool KvStore::del(const std::string& key) {
  std::lock_guard lock(mutex_);
  log_op(OpCode::kDel, {to_bytes(key)});
  return strings_.erase(key) > 0;
}

bool KvStore::exists(const std::string& key) const {
  std::lock_guard lock(mutex_);
  return strings_.count(key) > 0;
}

void KvStore::hset(const std::string& key, const std::string& field, Bytes value) {
  std::lock_guard lock(mutex_);
  log_op(OpCode::kHset, {to_bytes(key), to_bytes(field), value});
  hashes_[key][field] = std::move(value);
}

std::optional<Bytes> KvStore::hget(const std::string& key, const std::string& field) const {
  std::lock_guard lock(mutex_);
  auto it = hashes_.find(key);
  if (it == hashes_.end()) return std::nullopt;
  auto jt = it->second.find(field);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

bool KvStore::hdel(const std::string& key, const std::string& field) {
  std::lock_guard lock(mutex_);
  log_op(OpCode::kHdel, {to_bytes(key), to_bytes(field)});
  auto it = hashes_.find(key);
  if (it == hashes_.end()) return false;
  return it->second.erase(field) > 0;
}

std::map<std::string, Bytes> KvStore::hgetall(const std::string& key) const {
  std::lock_guard lock(mutex_);
  auto it = hashes_.find(key);
  if (it == hashes_.end()) return {};
  return it->second;
}

void KvStore::sadd(const std::string& key, const std::string& member) {
  std::lock_guard lock(mutex_);
  log_op(OpCode::kSadd, {to_bytes(key), to_bytes(member)});
  sets_[key].insert(member);
}

bool KvStore::srem(const std::string& key, const std::string& member) {
  std::lock_guard lock(mutex_);
  log_op(OpCode::kSrem, {to_bytes(key), to_bytes(member)});
  auto it = sets_.find(key);
  if (it == sets_.end()) return false;
  return it->second.erase(member) > 0;
}

std::set<std::string> KvStore::smembers(const std::string& key) const {
  std::lock_guard lock(mutex_);
  auto it = sets_.find(key);
  if (it == sets_.end()) return {};
  return it->second;
}

std::size_t KvStore::scard(const std::string& key) const {
  std::lock_guard lock(mutex_);
  auto it = sets_.find(key);
  return it == sets_.end() ? 0 : it->second.size();
}

void KvStore::zadd(const std::string& key, const Bytes& score, const std::string& member) {
  std::lock_guard lock(mutex_);
  log_op(OpCode::kZadd, {to_bytes(key), score, to_bytes(member)});
  zsets_[key][score].insert(member);
}

bool KvStore::zrem(const std::string& key, const Bytes& score, const std::string& member) {
  std::lock_guard lock(mutex_);
  log_op(OpCode::kZrem, {to_bytes(key), score, to_bytes(member)});
  auto it = zsets_.find(key);
  if (it == zsets_.end()) return false;
  auto jt = it->second.find(score);
  if (jt == it->second.end()) return false;
  const bool erased = jt->second.erase(member) > 0;
  if (jt->second.empty()) it->second.erase(jt);
  return erased;
}

std::vector<std::string> KvStore::zrange(const std::string& key, const Bytes& lo,
                                         const Bytes& hi) const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  auto it = zsets_.find(key);
  if (it == zsets_.end()) return out;
  for (auto jt = it->second.lower_bound(lo);
       jt != it->second.end() && jt->first <= hi; ++jt) {
    out.insert(out.end(), jt->second.begin(), jt->second.end());
  }
  return out;
}

std::optional<std::pair<Bytes, std::string>> KvStore::zmin(const std::string& key) const {
  std::lock_guard lock(mutex_);
  auto it = zsets_.find(key);
  if (it == zsets_.end() || it->second.empty()) return std::nullopt;
  const auto& [score, members] = *it->second.begin();
  return std::make_pair(score, *members.begin());
}

std::optional<std::pair<Bytes, std::string>> KvStore::zmax(const std::string& key) const {
  std::lock_guard lock(mutex_);
  auto it = zsets_.find(key);
  if (it == zsets_.end() || it->second.empty()) return std::nullopt;
  const auto& [score, members] = *it->second.rbegin();
  return std::make_pair(score, *members.rbegin());
}

std::size_t KvStore::zcard(const std::string& key) const {
  std::lock_guard lock(mutex_);
  auto it = zsets_.find(key);
  if (it == zsets_.end()) return 0;
  std::size_t n = 0;
  for (const auto& [score, members] : it->second) n += members.size();
  return n;
}

std::int64_t KvStore::incr(const std::string& key, std::int64_t delta) {
  std::lock_guard lock(mutex_);
  log_op(OpCode::kIncr, {to_bytes(key), be64(static_cast<std::uint64_t>(delta))});
  return counters_[key] += delta;
}

std::size_t KvStore::storage_bytes() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [k, v] : strings_) n += k.size() + v.size();
  for (const auto& [k, h] : hashes_) {
    n += k.size();
    for (const auto& [f, v] : h) n += f.size() + v.size();
  }
  for (const auto& [k, s] : sets_) {
    n += k.size();
    for (const auto& m : s) n += m.size();
  }
  for (const auto& [k, z] : zsets_) {
    n += k.size();
    for (const auto& [score, members] : z) {
      n += score.size();
      for (const auto& m : members) n += m.size();
    }
  }
  n += counters_.size() * 16;
  return n;
}

std::uint64_t KvStore::fingerprint() const {
  std::lock_guard lock(mutex_);
  // Top-level maps are unordered: hash each key's full entry and combine
  // by sum, tagging each structure family so a string and a same-named
  // counter can never cancel out.
  std::uint64_t digest = 0;
  for (const auto& [k, v] : strings_) {
    std::uint64_t h = fnv1a(kFnvOffset, std::string("str"));
    h = fnv1a(fnv1a(h, k), v);
    digest += h;
  }
  for (const auto& [k, hash] : hashes_) {
    std::uint64_t h = fnv1a(kFnvOffset, std::string("hash"));
    h = fnv1a(h, k);
    for (const auto& [f, v] : hash) h = fnv1a(fnv1a(h, f), v);  // ordered map
    digest += h;
  }
  for (const auto& [k, set] : sets_) {
    std::uint64_t h = fnv1a(kFnvOffset, std::string("set"));
    h = fnv1a(h, k);
    for (const auto& m : set) h = fnv1a(h, m);  // ordered set
    digest += h;
  }
  for (const auto& [k, z] : zsets_) {
    std::uint64_t h = fnv1a(kFnvOffset, std::string("zset"));
    h = fnv1a(h, k);
    for (const auto& [score, members] : z) {
      h = fnv1a(h, score);
      for (const auto& m : members) h = fnv1a(h, m);
    }
    digest += h;
  }
  for (const auto& [k, c] : counters_) {
    std::uint64_t h = fnv1a(kFnvOffset, std::string("ctr"));
    h = fnv1a(fnv1a(h, k), static_cast<std::uint64_t>(c));
    digest += h;
  }
  return digest;
}

void KvStore::flush_all() {
  std::lock_guard lock(mutex_);
  log_op(OpCode::kFlush, {});
  strings_.clear();
  hashes_.clear();
  sets_.clear();
  zsets_.clear();
  counters_.clear();
}

}  // namespace datablinder::store
