// KvStore — the Redis-role substrate.
//
// The paper deploys Redis "in a semi-persistent durability mode" on both
// the gateway and the cloud to host custom secure indexes. This store
// offers the same building blocks: string keys, hashes, sets, counters and
// ordered maps (sorted sets keyed by byte strings — used by the OPE range
// index), plus an optional append-only persistence log replayed on open.
//
// Thread-safe: a single mutex guards all state (matching a single Redis
// instance's serialized command execution).
#pragma once

#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace datablinder::store {

class KvStore {
 public:
  /// Pure in-memory store.
  KvStore() = default;

  /// Semi-persistent mode: replays `aof_path` if it exists, then appends
  /// every mutation to it.
  explicit KvStore(const std::string& aof_path);

  ~KvStore();
  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  // --- string keys -------------------------------------------------------
  void set(const std::string& key, Bytes value);
  std::optional<Bytes> get(const std::string& key) const;
  bool del(const std::string& key);
  bool exists(const std::string& key) const;

  // --- hashes ------------------------------------------------------------
  void hset(const std::string& key, const std::string& field, Bytes value);
  std::optional<Bytes> hget(const std::string& key, const std::string& field) const;
  bool hdel(const std::string& key, const std::string& field);
  std::map<std::string, Bytes> hgetall(const std::string& key) const;

  // --- sets ----------------------------------------------------------------
  void sadd(const std::string& key, const std::string& member);
  bool srem(const std::string& key, const std::string& member);
  std::set<std::string> smembers(const std::string& key) const;
  std::size_t scard(const std::string& key) const;

  // --- ordered maps (score -> members), for range indexes -----------------
  void zadd(const std::string& key, const Bytes& score, const std::string& member);
  bool zrem(const std::string& key, const Bytes& score, const std::string& member);
  /// All members with score in [lo, hi] (inclusive), in score order.
  std::vector<std::string> zrange(const std::string& key, const Bytes& lo,
                                  const Bytes& hi) const;
  std::size_t zcard(const std::string& key) const;
  /// Lowest/highest (score, member); nullopt when empty.
  std::optional<std::pair<Bytes, std::string>> zmin(const std::string& key) const;
  std::optional<std::pair<Bytes, std::string>> zmax(const std::string& key) const;

  // --- counters ------------------------------------------------------------
  std::int64_t incr(const std::string& key, std::int64_t delta = 1);

  /// Approximate resident bytes across all structures (storage metric).
  std::size_t storage_bytes() const;

  /// Order-insensitive digest of the full contents; two stores that hold
  /// the same strings/hashes/sets/zsets/counters fingerprint identically
  /// regardless of hash-map iteration order (replica convergence checks).
  std::uint64_t fingerprint() const;

  /// Flushes buffered AOF records to the OS. The semi-persistent default
  /// buffers writes (matching the paper's Redis config); callers with a
  /// durability point — e.g. the insert intent journal, which must land
  /// before the first cloud mutation — call this explicitly. Trivially OK
  /// for in-memory stores. A failed buffered write since the last sync is
  /// reported here (sticky), so durability points cannot silently pass.
  Status sync();

  /// Drops everything (and truncates the AOF).
  void flush_all();

 private:
  enum class OpCode : std::uint8_t;
  void log_op(OpCode op, const std::vector<Bytes>& args);
  void replay(const std::string& path);
  void apply(OpCode op, const std::vector<Bytes>& args);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Bytes> strings_;
  std::unordered_map<std::string, std::map<std::string, Bytes>> hashes_;
  std::unordered_map<std::string, std::set<std::string>> sets_;
  std::unordered_map<std::string, std::map<Bytes, std::set<std::string>>> zsets_;
  std::unordered_map<std::string, std::int64_t> counters_;

  std::string aof_path_;
  std::FILE* aof_ = nullptr;
  bool replaying_ = false;
  bool aof_write_failed_ = false;  // sticky: a lost record leaves the AOF suspect
};

}  // namespace datablinder::store
