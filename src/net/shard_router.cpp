#include "net/shard_router.hpp"

#include <algorithm>
#include <deque>
#include <thread>

#include "common/status.hpp"
#include "doc/binary_codec.hpp"
#include "doc/value.hpp"
#include "net/message.hpp"

namespace datablinder::net {

namespace {

using bigint::BigInt;
using doc::Value;

// net/ sits below core/ in the layering, so these mirror the tiny
// core/wire.hpp payload helpers locally. The wire format is shared by
// construction: every payload is a binary-encoded doc::Object.
Bytes pack(doc::Object obj) { return doc::encode_value(Value(std::move(obj))); }

doc::Object unpack(BytesView b) {
  Value v = doc::decode_value(b);
  if (v.type() != doc::ValueType::kObject) {
    throw_error(ErrorCode::kProtocolError, "shard router: payload is not an object");
  }
  return v.as_object();
}

const Value& get(const doc::Object& obj, const std::string& key) {
  auto it = obj.find(key);
  if (it == obj.end()) {
    throw_error(ErrorCode::kProtocolError, "shard router: missing key '" + key + "'");
  }
  return it->second;
}

std::string get_str(const doc::Object& obj, const std::string& key) {
  return get(obj, key).as_string();
}

Bytes get_bin(const doc::Object& obj, const std::string& key) {
  return get(obj, key).as_binary();
}

std::int64_t get_int(const doc::Object& obj, const std::string& key) {
  return get(obj, key).as_int();
}

const doc::Array& get_arr(const doc::Object& obj, const std::string& key) {
  return get(obj, key).as_array();
}

std::string raw(const Bytes& b) { return std::string(b.begin(), b.end()); }

// splitmix64 finalizer: cheap, well-mixed, and fully deterministic — ring
// placement must be a pure function of (shards, virtual nodes, seed).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_key(std::string_view key) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return mix64(h);
}

/// Structure-wide reads/updates that fan out to every shard and merge.
bool is_broadcast(const std::string& method) {
  return method == "doc.list" || method == "plain.index" ||
         method == "plain.find_eq" || method == "plain.find_range" ||
         method == "plain.find_bool" || method == "plain.avg" ||
         method == "agg.setup" || method == "agg.sum" ||
         method == "admin.storage" || method == "admin.index_ops" ||
         method == "admin.digest";
}

}  // namespace

// --- HashRing ---------------------------------------------------------------

HashRing::HashRing(std::size_t shards, RingConfig config)
    : shards_(std::max<std::size_t>(1, shards)) {
  const std::size_t vnodes = std::max<std::size_t>(1, config.virtual_nodes);
  points_.reserve(shards_ * vnodes);
  for (std::size_t s = 0; s < shards_; ++s) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      const std::uint64_t point = mix64(config.seed ^
                                        mix64((s + 1) * 0x9E3779B97F4A7C15ULL) ^
                                        mix64((v + 1) * 0xC2B2AE3D27D4EB4FULL));
      points_.emplace_back(point, static_cast<std::uint32_t>(s));
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::size_t HashRing::shard_of(std::string_view key) const {
  if (shards_ == 1) return 0;
  const std::uint64_t h = hash_key(key);
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(h, std::uint32_t{0}));
  if (it == points_.end()) it = points_.begin();  // wrap around the ring
  return it->second;
}

// --- ShardRouter ------------------------------------------------------------

ShardRouter::ShardRouter(std::vector<ReplicaGroup*> shards, RingConfig ring)
    : shards_(std::move(shards)), ring_(shards_.size(), ring) {
  if (shards_.empty()) {
    throw_error(ErrorCode::kInvalidArgument, "shard router needs >= 1 backend");
  }
}

ShardRouter::~ShardRouter() {
  {
    std::lock_guard lock(pool_mutex_);
    pool_stop_ = true;
  }
  pool_cv_.notify_all();
  for (auto& t : pool_) t.join();
}

std::string ShardRouter::doc_key(const std::string& col, const std::string& id) {
  return "doc/" + col + "/" + id;
}

std::size_t ShardRouter::shard_of_doc(const std::string& col,
                                      const std::string& id) const {
  return ring_.shard_of(doc_key(col, id));
}

Bytes ShardRouter::call_shard(std::size_t i, const std::string& method,
                              const Bytes& wire) {
  return shards_[i]->call(method, wire);
}

Bytes ShardRouter::sub_request(const std::string& method, Bytes payload) {
  Request r;
  r.method = method;
  r.payload = std::move(payload);
  return r.serialize();
}

void ShardRouter::emit(const char* series, std::uint64_t value) const {
  MetricsHook hook;
  {
    std::lock_guard lock(hook_mutex_);
    hook = hook_;
  }
  if (hook) hook(series, value);
}

void ShardRouter::set_metrics_hook(MetricsHook hook) {
  {
    std::lock_guard lock(hook_mutex_);
    hook_ = hook;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (!hook) {
      shards_[i]->set_metrics_hook(nullptr);
      continue;
    }
    // Instance labeling: the aggregate series keeps its historical name,
    // and a bounded per-shard alias ("net.shard.<i>.replica.*") keeps
    // multi-instance counters distinct instead of colliding on one key.
    const std::string prefix = "net.shard." + std::to_string(i) + ".";
    shards_[i]->set_metrics_hook(
        [hook, prefix](const char* series, std::uint64_t value) {
          hook(series, value);
          std::string labeled(series);
          if (labeled.rfind("net.", 0) == 0) labeled.erase(0, 4);
          labeled.insert(0, prefix);
          hook(labeled.c_str(), value);
        });
  }
}

void ShardRouter::set_hedgeable(std::function<bool(const std::string&)> pred) {
  for (auto* shard : shards_) shard->set_hedgeable(pred);
}

// dblint:thread-root — persistent fan-out workers. Spawning a thread per
// sub-call would burn a pthread_create/join pair per shard per scatter
// (tens of microseconds each — comparable to the sub-call itself on a
// loaded host); the pool pays that cost once and every scatter after that
// is a condvar wake.
void ShardRouter::pool_worker() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(pool_mutex_);
      ++pool_idle_;
      pool_cv_.wait(lock, [this] { return pool_stop_ || !pool_queue_.empty(); });
      --pool_idle_;
      if (pool_stop_ && pool_queue_.empty()) return;
      task = std::move(pool_queue_.front());
      pool_queue_.pop_front();
    }
    // 'task' was moved OUT of the queue under the lock; the std::function
    // owns its state afterwards, nothing points back into pool_queue_.
    // dblint:allow(guard-escape): task owns its state after the move-out
    task();
  }
}

std::vector<Bytes> ShardRouter::fan_out(
    const std::string& method, const std::vector<std::pair<std::size_t, Bytes>>& calls) {
  std::vector<Bytes> out(calls.size());
  if (calls.empty()) return out;
  if (calls.size() == 1) {
    out[0] = call_shard(calls[0].first, method, calls[0].second);
    return out;
  }
  emit("net.shard.scatter");
  emit("net.shard.subcalls", calls.size());

  // Per-scatter completion latch; every sub-call writes its own slot, so
  // the result and error arrays need no lock of their own.
  struct Latch {
    std::mutex m;
    std::condition_variable cv;
    std::size_t pending;
  };
  auto latch = std::make_shared<Latch>();
  latch->pending = calls.size() - 1;
  std::vector<std::exception_ptr> errors(calls.size());
  auto run_one = [this, &method, &calls, &out, &errors](std::size_t k) {
    try {
      out[k] = call_shard(calls[k].first, method, calls[k].second);
    } catch (...) {
      errors[k] = std::current_exception();
    }
  };
  {
    std::lock_guard lock(pool_mutex_);
    for (std::size_t k = 1; k < calls.size(); ++k) {
      pool_queue_.emplace_back([&run_one, latch, k] {
        run_one(k);
        std::lock_guard done(latch->m);
        --latch->pending;
        latch->cv.notify_one();
      });
    }
    // Sub-calls BLOCK their worker for the whole channel exchange, so a
    // fixed-size pool would serialize concurrent scatters from different
    // gateway threads. Grow on demand (bounded) and keep idle workers
    // parked on the condvar for the next scatter.
    const std::size_t cap = std::max<std::size_t>(32, shards_.size() * 16);
    std::size_t want = pool_queue_.size() > pool_idle_ ? pool_queue_.size() - pool_idle_ : 0;
    while (want-- > 0 && pool_.size() < cap) {
      pool_.emplace_back([this] { pool_worker(); });
    }
  }
  pool_cv_.notify_all();
  run_one(0);
  {
    std::unique_lock lock(latch->m);
    latch->cv.wait(lock, [&latch] { return latch->pending == 0; });
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return out;
}

Bytes ShardRouter::route_single(std::size_t shard, const std::string& method,
                                const Bytes& wire) {
  emit("net.shard.route");
  return call_shard(shard, method, wire);
}

std::size_t ShardRouter::single_shard_of(const std::string& method,
                                         const Bytes& payload) const {
  const doc::Object obj = unpack(payload);
  // Documents shard by id; DET postings by keyword label; Mitra postings
  // by PRF-derived address; aggregate rows by id. Server-side structures
  // that cannot be split (OPE/ORE orderings, Sophos chains, Mitra-SL
  // counter coupling, IEX/ZMF boolean indexes) scope-route whole.
  if (method == "doc.put" || method == "doc.get" || method == "doc.del") {
    return ring_.shard_of(doc_key(get_str(obj, "col"), get_str(obj, "id")));
  }
  if (method == "plain.put") {
    const doc::Document d = doc::decode_document(get_bin(obj, "doc"));
    return ring_.shard_of(doc_key("plain:" + get_str(obj, "col"), d.id));
  }
  if (method == "plain.get" || method == "plain.del") {
    return ring_.shard_of(doc_key("plain:" + get_str(obj, "col"), get_str(obj, "id")));
  }
  if (method == "det.insert" || method == "det.remove" || method == "det.search") {
    return ring_.shard_of("det/" + get_str(obj, "col") + "/" + get_str(obj, "field") +
                          "/" + raw(get_bin(obj, "label")));
  }
  if (method == "mitra.update") {
    return ring_.shard_of("sse/" + get_str(obj, "scope") + "/" +
                          raw(get_bin(obj, "address")));
  }
  if (method == "agg.insert" || method == "agg.remove") {
    return ring_.shard_of("agg/" + get_str(obj, "scope") + "/" + get_str(obj, "id"));
  }
  const std::size_t dot = method.find('.');
  const std::string family = method.substr(0, dot == std::string::npos ? 0 : dot);
  if (family == "ope" || family == "ore") {
    return ring_.shard_of("scope/" + family + "/" + get_str(obj, "col") + "/" +
                          get_str(obj, "field"));
  }
  if (family == "mitrasl" || family == "sophos" || family == "iex" ||
      family == "zmf") {
    return ring_.shard_of("scope/" + family + "/" + get_str(obj, "scope"));
  }
  throw_error(ErrorCode::kProtocolError, "shard router: unroutable method " + method);
}

// --- scatter / merge --------------------------------------------------------

Bytes ShardRouter::scatter_mget(const std::string& method, const Bytes& payload) {
  const doc::Object obj = unpack(payload);
  const std::string col = get_str(obj, "col");
  const doc::Array& ids = get_arr(obj, "ids");

  std::vector<std::size_t> owner(ids.size());
  std::vector<doc::Array> per_shard(shards_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    owner[i] = ring_.shard_of(doc_key(col, ids[i].as_string()));
    per_shard[owner[i]].push_back(ids[i]);
  }

  std::vector<std::pair<std::size_t, Bytes>> calls;
  std::vector<std::size_t> call_shard_index;
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    if (per_shard[s].empty()) continue;
    calls.emplace_back(
        s, sub_request(method, pack({{"col", Value(col)},
                                     {"ids", Value(std::move(per_shard[s]))}})));
    call_shard_index.push_back(s);
  }
  const std::vector<Bytes> replies = fan_out(method, calls);

  // Per-shard id -> blob; the merged response preserves the original id
  // order and skips vanished ids, exactly like a single node's doc.mget.
  std::vector<std::map<std::string, Value>> found(shards_.size());
  for (std::size_t k = 0; k < replies.size(); ++k) {
    const doc::Object resp = unpack(replies[k]);
    for (const auto& entry : get_arr(resp, "docs")) {
      const doc::Object& e = entry.as_object();
      found[call_shard_index[k]][get_str(e, "id")] = get(e, "blob");
    }
  }
  doc::Array out;
  out.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& shard_found = found[owner[i]];
    auto it = shard_found.find(ids[i].as_string());
    if (it == shard_found.end()) continue;
    doc::Object entry;
    entry["id"] = ids[i];
    entry["blob"] = it->second;
    out.emplace_back(std::move(entry));
  }
  return pack({{"docs", Value(std::move(out))}});
}

Bytes ShardRouter::scatter_mitra_search(const std::string& method,
                                        const Bytes& payload) {
  const doc::Object obj = unpack(payload);
  const std::string scope = get_str(obj, "scope");
  const doc::Array& addresses = get_arr(obj, "addresses");

  std::vector<std::size_t> owner(addresses.size());
  std::vector<doc::Array> per_shard(shards_.size());
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    owner[i] = ring_.shard_of("sse/" + scope + "/" + raw(addresses[i].as_binary()));
    per_shard[owner[i]].push_back(addresses[i]);
  }

  std::vector<std::pair<std::size_t, Bytes>> calls;
  std::vector<std::size_t> call_shard_index;
  std::vector<std::size_t> requested(shards_.size(), 0);
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    if (per_shard[s].empty()) continue;
    requested[s] = per_shard[s].size();
    calls.emplace_back(
        s, sub_request(method,
                       pack({{"scope", Value(scope)},
                             {"addresses", Value(std::move(per_shard[s]))}})));
    call_shard_index.push_back(s);
  }
  const std::vector<Bytes> replies = fan_out(method, calls);

  // Positional merge: each shard answers its addresses in request order,
  // and Mitra's dictionary is append-only (deletions are delete-marker
  // entries), so every derived address 1..c resolves — a short reply
  // would silently misalign values, so it fails loudly instead.
  std::vector<std::deque<Value>> queues(shards_.size());
  for (std::size_t k = 0; k < replies.size(); ++k) {
    const doc::Object resp = unpack(replies[k]);
    const doc::Array& values = get_arr(resp, "values");
    const std::size_t s = call_shard_index[k];
    if (values.size() != requested[s]) {
      throw_error(ErrorCode::kInternal,
                  "shard router: short mitra reply (" + std::to_string(values.size()) +
                      "/" + std::to_string(requested[s]) + ")");
    }
    for (const auto& v : values) queues[s].push_back(v);
  }
  doc::Array out;
  out.reserve(addresses.size());
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    out.push_back(std::move(queues[owner[i]].front()));
    queues[owner[i]].pop_front();
  }
  return pack({{"values", Value(std::move(out))}});
}

Bytes ShardRouter::broadcast(const std::string& method, const Bytes& wire) {
  // agg.setup carries the Paillier public modulus: remember n^2 per scope
  // BEFORE fanning out, so a later agg.sum can merge partials even if it
  // races the setup acks.
  if (method == "agg.setup") {
    const Request req = Request::deserialize(wire);
    const doc::Object obj = unpack(req.payload);
    const BigInt n = BigInt::from_bytes(get_bin(obj, "n"));
    AggScope scope;
    scope.n_squared = n * n;
    if (scope.n_squared.is_odd()) {
      scope.mont = std::make_shared<const bigint::Montgomery>(scope.n_squared);
    }
    std::lock_guard lock(agg_mutex_);
    agg_scopes_[get_str(obj, "scope")] = std::move(scope);
  }

  emit("net.shard.broadcast");
  std::vector<std::pair<std::size_t, Bytes>> calls;
  calls.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) calls.emplace_back(s, wire);
  const std::vector<Bytes> replies = fan_out(method, calls);

  if (method == "doc.list") {
    doc::Array ids;
    for (const auto& reply : replies) {
      const doc::Object resp = unpack(reply);
      for (const auto& id : get_arr(resp, "ids")) ids.push_back(id);
    }
    return pack({{"ids", Value(std::move(ids))}});
  }
  if (method == "plain.find_eq" || method == "plain.find_range" ||
      method == "plain.find_bool") {
    doc::Array docs;
    for (const auto& reply : replies) {
      const doc::Object resp = unpack(reply);
      for (const auto& d : get_arr(resp, "docs")) docs.push_back(d);
    }
    return pack({{"docs", Value(std::move(docs))}});
  }
  if (method == "plain.avg") {
    double sum = 0.0;
    std::int64_t count = 0;
    for (const auto& reply : replies) {
      const doc::Object resp = unpack(reply);
      sum += get(resp, "sum").as_double();
      count += get_int(resp, "count");
    }
    return pack({{"sum", Value(sum)}, {"count", Value(count)}});
  }
  if (method == "agg.sum") {
    const Request req = Request::deserialize(wire);
    const std::string scope_name = get_str(unpack(req.payload), "scope");
    AggScope scope;
    {
      std::lock_guard lock(agg_mutex_);
      auto it = agg_scopes_.find(scope_name);
      if (it == agg_scopes_.end()) {
        throw_error(ErrorCode::kNotFound,
                    "shard router: agg scope not set up: " + scope_name);
      }
      scope = it->second;
    }
    // Homomorphic merge: the product of per-shard partial sums mod n^2 is
    // the Paillier encryption of the global sum.
    BigInt acc(1);
    std::int64_t count = 0;
    for (const auto& reply : replies) {
      const doc::Object resp = unpack(reply);
      const BigInt part = BigInt::from_bytes(get_bin(resp, "sum_ct"));
      acc = scope.mont ? acc.mul_mod(part, *scope.mont)
                       : acc.mul_mod(part, scope.n_squared);
      count += get_int(resp, "count");
    }
    return pack({{"sum_ct", Value(acc.to_bytes())}, {"count", Value(count)}});
  }
  if (method == "admin.storage" || method == "admin.index_ops" ||
      method == "admin.digest") {
    const char* key = method == "admin.storage"
                          ? "bytes"
                          : (method == "admin.index_ops" ? "ops" : "digest");
    // Sum as uint64 (digests combine by wrapping sum, mirroring
    // CloudNode::state_digest's per-scope combination).
    std::uint64_t total = 0;
    for (const auto& reply : replies) {
      total += static_cast<std::uint64_t>(get_int(unpack(reply), key));
    }
    return pack({{key, Value(static_cast<std::int64_t>(total))}});
  }
  // Identical empty acks (plain.index, agg.setup): forward the first.
  return replies[0];
}

Bytes ShardRouter::split_batch(const Bytes& payload) {
  // Decode the rpc.batch framing (count, then length-prefixed serialized
  // sub-requests), route every sub-request to its single shard, ship one
  // per-shard batch concurrently, and reassemble the sub-responses in
  // their original positions.
  std::size_t off = 0;
  auto take32 = [&](BytesView b) {
    if (off + 4 > b.size()) {
      throw_error(ErrorCode::kProtocolError, "shard batch: truncated");
    }
    const std::uint32_t v = read_be32(b.subspan(off));
    off += 4;
    return v;
  };
  const std::size_t n = take32(payload);
  std::vector<std::size_t> owner(n);
  std::vector<std::size_t> slot(n);  // position within the owner's batch
  std::vector<Bytes> shard_payloads(shards_.size());
  std::vector<std::size_t> shard_counts(shards_.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = take32(payload);
    if (off + len > payload.size()) {
      throw_error(ErrorCode::kProtocolError, "shard batch: truncated request");
    }
    const BytesView sub_wire = BytesView(payload).subspan(off, len);
    const Request sub = Request::deserialize(sub_wire);
    off += len;
    owner[i] = single_shard_of(sub.method, sub.payload);
    slot[i] = shard_counts[owner[i]]++;
    append(shard_payloads[owner[i]], be32(static_cast<std::uint32_t>(len)));
    shard_payloads[owner[i]].insert(shard_payloads[owner[i]].end(), sub_wire.begin(),
                                    sub_wire.end());
  }

  std::vector<std::pair<std::size_t, Bytes>> calls;
  std::vector<std::size_t> call_shard_index;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shard_counts[s] == 0) continue;
    Bytes body = be32(static_cast<std::uint32_t>(shard_counts[s]));
    append(body, shard_payloads[s]);
    calls.emplace_back(s, sub_request("rpc.batch", std::move(body)));
    call_shard_index.push_back(s);
  }
  const std::vector<Bytes> replies = fan_out("rpc.batch", calls);

  // Per-shard response queues, then original-order reassembly.
  std::vector<std::vector<Bytes>> responses(shards_.size());
  for (std::size_t k = 0; k < replies.size(); ++k) {
    const Bytes& reply = replies[k];
    std::size_t roff = 0;
    auto rtake32 = [&](BytesView b) {
      if (roff + 4 > b.size()) {
        throw_error(ErrorCode::kProtocolError, "shard batch: truncated response");
      }
      const std::uint32_t v = read_be32(b.subspan(roff));
      roff += 4;
      return v;
    };
    const std::size_t count = rtake32(reply);
    const std::size_t s = call_shard_index[k];
    if (count != shard_counts[s]) {
      throw_error(ErrorCode::kProtocolError, "shard batch: response count mismatch");
    }
    responses[s].reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t len = rtake32(reply);
      if (roff + len > reply.size()) {
        throw_error(ErrorCode::kProtocolError, "shard batch: truncated response");
      }
      responses[s].emplace_back(reply.begin() + static_cast<std::ptrdiff_t>(roff),
                                reply.begin() + static_cast<std::ptrdiff_t>(roff + len));
      roff += len;
    }
  }
  Bytes out = be32(static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const Bytes& r = responses[owner[i]][slot[i]];
    append(out, be32(static_cast<std::uint32_t>(r.size())));
    append(out, r);
  }
  return out;
}

Bytes ShardRouter::call(const std::string& method, const Bytes& wire_request) {
  if (shards_.size() == 1) return call_shard(0, method, wire_request);
  if (method == "doc.mget" || method == "mitra.search" || method == "rpc.batch" ||
      is_broadcast(method)) {
    const Request req = Request::deserialize(wire_request);
    if (method == "doc.mget") return scatter_mget(method, req.payload);
    if (method == "mitra.search") return scatter_mitra_search(method, req.payload);
    if (method == "rpc.batch") return split_batch(req.payload);
    return broadcast(method, wire_request);
  }
  const Request req = Request::deserialize(wire_request);
  return route_single(single_shard_of(method, req.payload), method, wire_request);
}

}  // namespace datablinder::net
