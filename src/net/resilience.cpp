#include "net/resilience.hpp"

#include <chrono>
#include <thread>

namespace datablinder::net {

namespace {
class SystemClock final : public RetryClock {
 public:
  std::uint64_t now_us() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  void sleep_us(std::uint64_t us) override {
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
};
}  // namespace

RetryClock& RetryClock::system() {
  static SystemClock clock;
  return clock;
}

bool RetryPolicy::retryable(const std::string& method) const {
  if (retryable_methods.count(method)) return true;
  for (const auto& prefix : retryable_prefixes) {
    if (method.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

RetryPolicy RetryPolicy::standard() {
  RetryPolicy p;
  p.enabled = true;
  p.retryable_methods = {
      // Reads: no server-side state change.
      "doc.get", "doc.mget", "doc.list", "det.search", "ope.range", "ope.extreme",
      "ore.range", "mitra.search", "mitrasl.search", "mitrasl.get_counter",
      "sophos.search", "iex.search", "zmf.search", "agg.sum", "admin.storage",
      "admin.index_ops", "admin.digest", "plain.get", "plain.find_eq",
      "plain.find_range", "plain.find_bool", "plain.avg",
      // Updates whose handlers are keyed overwrites (sadd / zadd / hset /
      // dict.put): a byte-identical replay re-writes the same key with the
      // same value, so at-least-once delivery yields exactly-once state.
      "doc.put", "doc.del", "det.insert", "det.remove", "ope.insert", "ope.remove",
      "ore.insert", "ore.remove", "mitra.update", "mitrasl.update", "sophos.update",
      "iex.update", "zmf.update", "agg.insert", "agg.remove", "plain.put",
      "plain.del", "plain.index",
      // Setup methods re-derive the same provisioning from recovered keys.
      "sophos.setup", "zmf.setup", "agg.setup",
      // The deferred-batch envelope only ever carries methods from the
      // update group above.
      "rpc.batch"};
  return p;
}

void CircuitBreaker::configure(const BreakerConfig& config) {
  std::lock_guard lock(mutex_);
  config_ = config;
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

bool CircuitBreaker::enabled() const {
  std::lock_guard lock(mutex_);
  return config_.enabled;
}

bool CircuitBreaker::try_admit(std::uint64_t now_us) {
  std::lock_guard lock(mutex_);
  if (!config_.enabled) return true;
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_us - opened_at_us_ >= config_.open_cooldown_us) {
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;
        probe_started_us_ = now_us;
        return true;  // this caller is the probe
      }
      ++rejections_;
      return false;
    case State::kHalfOpen:
      // Exactly one probe token per half-open window. If the token's owner
      // vanished without reporting (see rpc.cpp's catch-all), reclaim it
      // after a full cooldown so the breaker cannot wedge in half-open.
      if (probe_in_flight_ && now_us - probe_started_us_ >= config_.open_cooldown_us) {
        probe_in_flight_ = false;
      }
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        probe_started_us_ = now_us;
        return true;
      }
      ++rejections_;
      return false;
  }
  return true;
}

void CircuitBreaker::on_success() {
  std::lock_guard lock(mutex_);
  if (!config_.enabled) return;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  state_ = State::kClosed;
}

void CircuitBreaker::on_failure(std::uint64_t now_us) {
  std::lock_guard lock(mutex_);
  if (!config_.enabled) return;
  probe_in_flight_ = false;
  if (state_ == State::kHalfOpen) {
    // Failed probe: straight back to open, restarting the cooldown.
    state_ = State::kOpen;
    opened_at_us_ = now_us;
    ++trips_;
    return;
  }
  if (++consecutive_failures_ >= config_.failure_threshold &&
      state_ == State::kClosed) {
    state_ = State::kOpen;
    opened_at_us_ = now_us;
    ++trips_;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

std::uint64_t CircuitBreaker::trips() const {
  std::lock_guard lock(mutex_);
  return trips_;
}

std::uint64_t CircuitBreaker::rejections() const {
  std::lock_guard lock(mutex_);
  return rejections_;
}

std::string to_string(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace datablinder::net
