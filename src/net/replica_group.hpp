// ReplicaGroup — N cloud endpoints behind independent channels, with
// deterministic primary-backup replication, failure-accrual health, and
// hedged reads.
//
// The cloud node is a deterministic state machine over exact wire bytes
// (the intent journal proved this: byte-identical replay converges). The
// group exploits that: every state-mutating request is applied on the
// primary, appended to a gateway-side sequenced log of the exact wire
// bytes, and shipped byte-identically to each backup in log order. A
// backup that misses entries (fault, partition, crash) is demoted from the
// in-sync set and caught up later by replaying exactly the missing log
// suffix — each entry crosses each replica's channel at most once, so
// stateful SSE structures (Sophos chains, Mitra counters) stay consistent
// across replicas and duplicate application is structurally impossible.
//
// Acknowledgement rule: a write is acknowledged to the caller only once
// the primary AND every in-sync backup have applied it. A backup that
// faults during shipping is demoted before the ack, so "acknowledged"
// always means "applied on every replica currently counted healthy" — the
// invariant the chaos suite checks (no acknowledged write lost when any
// subset of replicas dies).
//
// Health is failure accrual, not binary: each replica carries a
// consecutive-transport-failure score blended with a latency EWMA
// (PerfSeries, the same statistic the adaptive cost model uses). Crossing
// the accrual threshold demotes the replica; a demoted primary triggers
// failover — the most caught-up in-sync replica is caught up to the log
// head (catch-up replay BEFORE promotion) and then takes over.
//
// Reads route to the healthiest in-sync replica. When hedging is enabled
// and the method is replay-idempotent (the retry whitelist — hedging IS a
// speculative retry), a hedge fires to the next-best replica after a
// p95-derived delay; first success wins and the loser is discarded.
// Methods outside the whitelist are never hedged and never re-sent after
// their request leg has shipped.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/perf_series.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"

namespace datablinder::net {

class RpcServer;

/// One replica: an RPC surface plus the (independently faultable) channel
/// leading to it. Both are non-owning; core::ReplicatedCloud owns them.
struct ReplicaEndpoint {
  RpcServer* server = nullptr;
  Channel* channel = nullptr;
};

/// Hedged-read tuning. The hedge delay is derived from the chosen
/// replica's recent p95 latency, clamped to [min_delay_us, max_delay_us]:
/// a hedge should fire only when this call is already slower than the
/// replica's own recent tail.
struct HedgeConfig {
  bool enabled = false;
  double p95_multiplier = 1.0;
  std::uint64_t min_delay_us = 200;
  std::uint64_t max_delay_us = 50000;
};

/// Failure-accrual tuning. A replica is suspected (demoted from the
/// in-sync set) at `suspect_threshold` consecutive transport failures;
/// its routing score is failures * failure_penalty_us + latency EWMA.
struct AccrualConfig {
  std::uint32_t suspect_threshold = 3;
  double failure_penalty_us = 10000.0;
};

/// Observability snapshot for one replica.
struct ReplicaHealth {
  std::size_t index = 0;
  bool is_primary = false;
  bool suspected = false;
  std::uint32_t consecutive_failures = 0;
  std::uint64_t applied_seq = 0;
  double latency_ewma_us = 0.0;
  double score = 0.0;
};

/// Server-side read methods: no cloud state change, so they may be served
/// by any in-sync replica (and hedged, if also replay-idempotent). Every
/// other method is treated as a state mutation and routed through the
/// primary + replication log.
bool is_read_method(const std::string& method);

class ReplicaGroup {
 public:
  using MetricsHook = std::function<void(const char* series, std::uint64_t value)>;

  /// At least one endpoint; endpoint 0 starts as primary. Endpoints are
  /// non-owning and must outlive the group.
  ReplicaGroup(std::vector<ReplicaEndpoint> endpoints, HedgeConfig hedge = {},
               AccrualConfig accrual = {});

  /// Drains in-flight hedge attempts before the endpoints can be torn down.
  ~ReplicaGroup();

  ReplicaGroup(const ReplicaGroup&) = delete;
  ReplicaGroup& operator=(const ReplicaGroup&) = delete;

  /// Routes one already-serialized request (reads -> healthiest in-sync
  /// replica, hedged when eligible; writes -> primary + replication).
  /// Throws Error(kUnavailable) when no replica can serve it.
  Bytes call(const std::string& method, const Bytes& wire_request);

  /// Counter events ("net.hedge.*", "net.replica.*"). Pass nullptr to clear.
  void set_metrics_hook(MetricsHook hook);

  /// Predicate gating hedges and post-send read failover: only methods the
  /// retry whitelist declares replay-idempotent may be re-sent after their
  /// request leg shipped. Installed by RpcClient from its RetryPolicy;
  /// defaults to "nothing is hedgeable".
  void set_hedgeable(std::function<bool(const std::string&)> pred);

  /// Ships the missing log suffix to every reachable replica (a healed
  /// replica rejoins without waiting for the next write). Returns how many
  /// replicas are fully caught up afterwards.
  std::size_t catch_up_all();

  // --- observability ------------------------------------------------------
  std::size_t size() const noexcept { return replicas_.size(); }
  std::size_t primary() const;
  std::uint64_t committed_seq() const noexcept {
    return committed_seq_.load(std::memory_order_acquire);
  }
  std::uint64_t log_entries() const;
  /// Sum of serialized request sizes of log entries [1, upto_seq] — the
  /// exact bytes a replica's channel must have carried for those writes
  /// (the chaos suite's duplicate-application check).
  std::uint64_t log_wire_bytes(std::uint64_t upto_seq) const;
  std::uint64_t applied_seq(std::size_t i) const;
  std::vector<ReplicaHealth> health() const;

  Channel& channel(std::size_t i) { return *replicas_[i]->endpoint.channel; }
  RpcServer& server(std::size_t i) { return *replicas_[i]->endpoint.server; }

 private:
  struct Replica {
    ReplicaEndpoint endpoint;
    PerfSeries latency;
    std::atomic<std::uint32_t> consecutive_failures{0};
    std::atomic<bool> suspected{false};
    std::atomic<std::uint64_t> applied_seq{0};
  };

  struct LogEntry {
    std::string method;
    Bytes wire;           // exact serialized Request bytes, as applied
    Bytes response;       // primary's response payload (for retry dedup)
  };

  // One request/response exchange with replica i. Sets *sent once the
  // request leg has shipped (the point past which only whitelisted methods
  // may be re-sent elsewhere). Records latency and resets the accrual
  // score on success; accrues a failure on kUnavailable.
  Bytes attempt(std::size_t i, const std::string& method, const Bytes& wire,
                bool* sent);

  Bytes call_read(const std::string& method, const Bytes& wire);
  Bytes call_write(const std::string& method, const Bytes& wire);
  Bytes hedged_read(const std::vector<std::size_t>& order, const std::string& method,
                    const Bytes& wire);

  /// Read-routing order: in-sync non-suspected first, by ascending score.
  std::vector<std::size_t> read_order() const;
  double score(const Replica& r) const;
  void accrue_failure(std::size_t i);
  void note_success(std::size_t i, std::uint64_t ns);

  /// Ships log entries (replica.applied_seq, log head] to replica i.
  /// Returns true when fully caught up; demotes on fault. Caller holds
  /// write_mutex_.
  bool catch_up_locked(std::size_t i);
  /// Demotes the primary and promotes the most caught-up in-sync replica,
  /// catching it up to the log head first. Caller holds write_mutex_.
  void failover_locked();
  /// Advances committed_seq_ past every entry applied on all non-suspected
  /// replicas. Caller holds write_mutex_.
  void advance_commit_locked();

  void emit(const char* series, std::uint64_t value = 1) const;

  // unique_ptr: Replica holds atomics/PerfSeries and must not move.
  std::vector<std::unique_ptr<Replica>> replicas_;
  HedgeConfig hedge_;
  AccrualConfig accrual_;

  mutable std::mutex write_mutex_;  // serializes log appends + replication
  std::vector<LogEntry> log_;
  std::vector<std::uint64_t> unacked_;  // applied-on-primary, not yet acked
  std::size_t primary_ = 0;
  std::atomic<std::uint64_t> committed_seq_{0};

  mutable std::mutex hook_mutex_;
  MetricsHook hook_;
  std::function<bool(const std::string&)> hedgeable_;

  // Hedge attempts run on detached threads; the destructor blocks until
  // every in-flight attempt has finished touching the endpoints.
  mutable std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::size_t inflight_ = 0;
};

}  // namespace datablinder::net
