// Wire messages between the gateway (trusted zone) and cloud nodes
// (untrusted zone).
//
// A request names a method and carries an opaque payload; a response is
// either a payload or a typed error. Framing is length-prefixed so the
// same bytes could run over a real socket unchanged.
#pragma once

#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace datablinder::net {

struct Request {
  std::string method;
  Bytes payload;

  Bytes serialize() const;
  static Request deserialize(BytesView b);
};

struct Response {
  bool ok = true;
  ErrorCode error = ErrorCode::kInternal;  // meaningful when !ok
  std::string error_message;               // meaningful when !ok
  Bytes payload;                           // meaningful when ok

  static Response success(Bytes payload);
  static Response failure(ErrorCode code, std::string message);

  Bytes serialize() const;
  static Response deserialize(BytesView b);
};

}  // namespace datablinder::net
