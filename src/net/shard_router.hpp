// ShardRouter — N shard backends (each a ReplicaGroup) behind a
// consistent-hash ring.
//
// The paper positions DataBlinder as *distributed* middleware; this is the
// horizontal half of that claim. Documents shard by id ("doc/<col>/<id>"),
// SSE postings by their PRF-derived address (a deterministic function of
// the keyword token, so a keyword's postings spread while update and
// search always agree on placement), DET labels by keyword token, and
// whole server-side structures that cannot be split (OPE/ORE orderings,
// Sophos chains, Mitra-SL counter coupling, IEX/ZMF boolean structures)
// scope-route to one shard. Aggregates shard by row id and merge
// homomorphically at the router (partial Paillier sums multiply mod n²).
//
// The ring uses virtual nodes with deterministic seeded placement: the
// mapping is a pure function of (shard count, virtual nodes, seed), so
// placement is stable across runs and resizing from N to N+1 shards moves
// only ~K/(N+1) of K keys.
//
// Placement leakage: routing happens entirely gateway-side. A shard
// observes only the requests routed to it — the same ciphertexts,
// labels and addresses a single node would see, restricted to its
// partition — and never learns the ring, the key→shard map, or sibling
// shards' traffic. No routing metadata is added to wire bytes
// (ChannelStats-asserted in shard_router_test).
//
// Every multi-shard operation (scatter, broadcast, batch split) fans its
// sub-calls out on a persistent worker pool so the per-shard channels
// overlap without paying a thread spawn per sub-call; merges are ordered
// and deterministic. Each backend is a full PR-7
// ReplicaGroup, so hedged reads, failure accrual and byte-exact
// replication apply per shard unchanged — one shard's failover never
// stalls its siblings.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/montgomery.hpp"
#include "common/bytes.hpp"
#include "net/replica_group.hpp"

namespace datablinder::net {

/// Ring shape: virtual nodes per shard plus the placement seed. The ring
/// is a pure function of (shards, virtual_nodes, seed) — deterministic
/// across runs and processes.
struct RingConfig {
  std::size_t virtual_nodes = 128;
  std::uint64_t seed = 0xDA7AB11D5EEDULL;
};

/// Consistent-hash ring over shard indexes [0, shards).
class HashRing {
 public:
  HashRing(std::size_t shards, RingConfig config = {});

  std::size_t shards() const noexcept { return shards_; }
  std::size_t shard_of(std::string_view key) const;

 private:
  std::size_t shards_;
  /// (point, shard) sorted by point; ties broken by shard index.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

class ShardRouter {
 public:
  using MetricsHook = std::function<void(const char* series, std::uint64_t value)>;

  /// Backends are non-owning (core::ShardedCloud owns them) and must
  /// outlive the router. At least one backend.
  explicit ShardRouter(std::vector<ReplicaGroup*> shards, RingConfig ring = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Routes one already-serialized request: single-key and scope-routed
  /// methods forward the exact wire bytes to one shard; array methods
  /// scatter per-shard sub-requests and merge ordered; structure-wide
  /// reads broadcast and merge (concatenation, sums, or homomorphic
  /// multiplication for Paillier partials). Returns the decoded response
  /// payload; server-side errors re-throw typed.
  Bytes call(const std::string& method, const Bytes& wire_request);

  const HashRing& ring() const noexcept { return ring_; }
  std::size_t shards() const noexcept { return shards_.size(); }

  /// Ring key for a document — shared with the exec Planner so plan-level
  /// scatter stages and router-level routing always agree on placement.
  static std::string doc_key(const std::string& col, const std::string& id);
  std::size_t shard_of_doc(const std::string& col, const std::string& id) const;

  /// Installs `hook` on the router and every shard group. Group series are
  /// emitted twice: once under their aggregate name ("net.replica.*",
  /// "net.hedge.*") and once instance-labeled ("net.shard.<i>.replica.*")
  /// so per-shard counters never collide; the label set is bounded by the
  /// shard count. Pass nullptr to clear.
  void set_metrics_hook(MetricsHook hook);

  /// Forwarded to every shard group (hedging gate; see ReplicaGroup).
  void set_hedgeable(std::function<bool(const std::string&)> pred);

  ReplicaGroup& group(std::size_t i) { return *shards_[i]; }

 private:
  Bytes call_shard(std::size_t i, const std::string& method, const Bytes& wire);
  /// Serializes (method, payload object) into Request wire bytes.
  static Bytes sub_request(const std::string& method, Bytes payload);

  /// Runs call_shard against every (shard, wire) pair concurrently — the
  /// caller runs the first pair, persistent pool workers run the rest —
  /// and returns the responses in pair order. Rethrows the first failure
  /// after all sub-calls finished touching the backends.
  std::vector<Bytes> fan_out(const std::string& method,
                             const std::vector<std::pair<std::size_t, Bytes>>& calls);
  /// Fan-out worker loop: parks on the condvar between scatters. Workers
  /// are spawned on demand (bounded) because a sub-call blocks its worker
  /// for the whole channel exchange.
  void pool_worker();

  Bytes route_single(std::size_t shard, const std::string& method, const Bytes& wire);
  Bytes scatter_mget(const std::string& method, const Bytes& wire);
  Bytes scatter_mitra_search(const std::string& method, const Bytes& wire);
  Bytes broadcast(const std::string& method, const Bytes& wire);
  Bytes split_batch(const Bytes& wire);
  /// Target shard for a request that must be servable by ONE shard
  /// (single-key or scope-routed); throws kProtocolError otherwise.
  std::size_t single_shard_of(const std::string& method, const Bytes& payload) const;

  void emit(const char* series, std::uint64_t value = 1) const;

  std::vector<ReplicaGroup*> shards_;
  HashRing ring_;

  /// Fan-out worker pool (lazily grown, joined by the destructor).
  std::mutex pool_mutex_;
  std::condition_variable pool_cv_;
  std::deque<std::function<void()>> pool_queue_;
  std::vector<std::thread> pool_;
  std::size_t pool_idle_ = 0;
  bool pool_stop_ = false;

  mutable std::mutex hook_mutex_;
  MetricsHook hook_;

  /// agg.setup's public modulus per scope: broadcast partial sums merge
  /// by multiplication mod n², which needs n gateway-side.
  struct AggScope {
    bigint::BigInt n_squared;
    std::shared_ptr<const bigint::Montgomery> mont;
  };
  mutable std::mutex agg_mutex_;
  std::map<std::string, AggScope> agg_scopes_;
};

}  // namespace datablinder::net
