#include "net/rpc.hpp"

#include <algorithm>
#include <random>

#include "common/rng.hpp"
#include "net/replica_group.hpp"
#include "net/shard_router.hpp"

namespace datablinder::net {

RpcClient::RpcClient(ReplicaGroup& group)
    : server_(group.server(0)), channel_(group.channel(0)), group_(&group) {}

RpcClient::RpcClient(ShardRouter& router)
    : server_(router.group(0).server(0)),
      channel_(router.group(0).channel(0)),
      router_(&router) {}

void RpcServer::register_method(const std::string& method, Handler handler) {
  std::lock_guard lock(mutex_);
  if (handlers_.count(method)) {
    throw_error(ErrorCode::kAlreadyExists, "rpc: duplicate method " + method);
  }
  handlers_.emplace(method, std::move(handler));
}

Response RpcServer::dispatch(const Request& request) const noexcept {
  Handler handler;
  {
    std::lock_guard lock(mutex_);
    auto it = handlers_.find(request.method);
    if (it == handlers_.end()) {
      return Response::failure(ErrorCode::kNotFound,
                               "rpc: unknown method " + request.method);
    }
    handler = it->second;
  }
  try {
    return Response::success(handler(request.payload));
  } catch (const Error& e) {
    return Response::failure(e.code(), e.what());
  } catch (const std::exception& e) {
    return Response::failure(ErrorCode::kInternal, e.what());
  }
}

std::size_t RpcServer::method_count() const {
  std::lock_guard lock(mutex_);
  return handlers_.size();
}

namespace {
// Per-(thread, client) deferred sections. Keyed by client so independent
// gateway stacks in one process never cross-contaminate.
thread_local std::unordered_map<const void*, std::unique_ptr<void, void (*)(void*)>>*
    t_deferred_erased = nullptr;
}  // namespace

RpcClient::Deferred* RpcClient::deferred_slot() const noexcept {
  if (t_deferred_erased == nullptr) return nullptr;
  auto it = t_deferred_erased->find(this);
  if (it == t_deferred_erased->end()) return nullptr;
  return static_cast<Deferred*>(it->second.get());
}

void RpcClient::begin_deferred(std::set<std::string> deferrable_methods) {
  if (deferred_slot() != nullptr) {
    throw_error(ErrorCode::kInvalidArgument, "rpc: deferred section already active");
  }
  if (t_deferred_erased == nullptr) {
    // Leaked intentionally at thread exit granularity: tiny and bounded by
    // the number of live RpcClient instances a thread batches against.
    t_deferred_erased =
        new std::unordered_map<const void*, std::unique_ptr<void, void (*)(void*)>>();
  }
  auto* d = new Deferred{std::move(deferrable_methods), {}};
  t_deferred_erased->emplace(
      this, std::unique_ptr<void, void (*)(void*)>(
                d, [](void* p) { delete static_cast<Deferred*>(p); }));
}

std::vector<Request> RpcClient::take_deferred() {
  Deferred* d = deferred_slot();
  if (d == nullptr) {
    throw_error(ErrorCode::kInvalidArgument, "rpc: no deferred section active");
  }
  // Move the queue out and end the section before anything else so error
  // paths can never leave a dangling section or stale queued requests.
  std::vector<Request> queue = std::move(d->queue);
  t_deferred_erased->erase(this);
  return queue;
}

std::size_t RpcClient::flush_deferred() { return send_batch(take_deferred()); }

std::size_t RpcClient::send_batch(const std::vector<Request>& queue) {
  if (queue.empty()) return 0;

  // Encode: count, then length-prefixed serialized sub-requests.
  Bytes payload = be32(static_cast<std::uint32_t>(queue.size()));
  for (const auto& request : queue) {
    const Bytes sub = request.serialize();
    append(payload, be32(static_cast<std::uint32_t>(sub.size())));
    append(payload, sub);
  }
  const Bytes reply = call("rpc.batch", payload);

  // Decode per-call responses; surface the first failure.
  std::size_t off = 0;
  auto take32 = [&](BytesView b) {
    if (off + 4 > b.size()) throw_error(ErrorCode::kProtocolError, "batch: truncated");
    const std::uint32_t v = read_be32(b.subspan(off));
    off += 4;
    return v;
  };
  const std::size_t n = take32(reply);
  if (n != queue.size()) {
    throw_error(ErrorCode::kProtocolError, "batch: response count mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = take32(reply);
    if (off + len > reply.size()) {
      throw_error(ErrorCode::kProtocolError, "batch: truncated response");
    }
    const Response r = Response::deserialize(BytesView(reply).subspan(off, len));
    off += len;
    if (!r.ok) {
      throw Error(r.error, "batch[" + queue[i].method + "]: " + r.error_message);
    }
  }
  return n;
}

void RpcClient::abandon_deferred() noexcept {
  if (t_deferred_erased != nullptr) t_deferred_erased->erase(this);
}

bool RpcClient::in_deferred_section() const noexcept {
  return deferred_slot() != nullptr;
}

RpcServer::Handler RpcClient::make_batch_handler(const RpcServer& server) {
  return [&server](BytesView payload) {
    std::size_t off = 0;
    auto take32 = [&](BytesView b) {
      if (off + 4 > b.size()) throw_error(ErrorCode::kProtocolError, "batch: truncated");
      const std::uint32_t v = read_be32(b.subspan(off));
      off += 4;
      return v;
    };
    const std::size_t n = take32(payload);
    Bytes out = be32(static_cast<std::uint32_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t len = take32(payload);
      if (off + len > payload.size()) {
        throw_error(ErrorCode::kProtocolError, "batch: truncated request");
      }
      const Request sub = Request::deserialize(payload.subspan(off, len));
      off += len;
      const Bytes sub_response = server.dispatch(sub).serialize();
      append(out, be32(static_cast<std::uint32_t>(sub_response.size())));
      append(out, sub_response);
    }
    return out;
  };
}

void RpcClient::set_retry_policy(RetryPolicy policy) {
  if (router_ != nullptr) {
    // Same hedging gate as group mode, forwarded to every shard's group.
    if (policy.enabled) {
      router_->set_hedgeable(
          [policy](const std::string& method) { return policy.retryable(method); });
    } else {
      router_->set_hedgeable(nullptr);
    }
  }
  if (group_ != nullptr) {
    // Hedging is a speculative retry: only methods the whitelist declares
    // replay-idempotent may be hedged or re-sent after their request leg
    // shipped. The group re-checks through this predicate on every read.
    if (policy.enabled) {
      group_->set_hedgeable(
          [policy](const std::string& method) { return policy.retryable(method); });
    } else {
      group_->set_hedgeable(nullptr);
    }
  }
  std::lock_guard lock(policy_mutex_);
  policy_ = std::move(policy);
}

RetryPolicy RpcClient::retry_policy() const {
  std::lock_guard lock(policy_mutex_);
  return policy_;
}

void RpcClient::set_clock(RetryClock* clock) {
  std::lock_guard lock(policy_mutex_);
  clock_ = clock;
}

void RpcClient::set_metrics_hook(MetricsHook hook) {
  if (router_ != nullptr) router_->set_metrics_hook(hook);
  if (group_ != nullptr) group_->set_metrics_hook(hook);
  std::lock_guard lock(policy_mutex_);
  hook_ = std::move(hook);
}

void RpcClient::emit(const char* series, std::uint64_t value) const {
  MetricsHook hook;
  {
    std::lock_guard lock(policy_mutex_);
    hook = hook_;
  }
  if (hook) hook(series, value);
}

Bytes RpcClient::dispatch_once(const std::string& method, const Bytes& wire_request) {
  channel_.transfer_request(wire_request.size(), method);
  // Both ends run in-process: the "cloud" executes here. The bytes still
  // went through full serialize/deserialize so nothing non-serializable
  // can leak across the trust boundary.
  const Response response = server_.dispatch(Request::deserialize(wire_request));
  const Bytes wire_response = response.serialize();
  channel_.transfer_response(wire_response.size(), method);

  Response decoded = Response::deserialize(wire_response);
  if (!decoded.ok) throw Error(decoded.error, decoded.error_message);
  return std::move(decoded.payload);
}

Bytes RpcClient::call(const std::string& method, BytesView payload) {
  if (Deferred* d = deferred_slot(); d != nullptr && d->methods.count(method)) {
    // Fire-and-forget method inside a deferred section: queue it. The
    // caller receives the empty payload these methods return by protocol.
    Request request;
    request.method = method;
    request.payload.assign(payload.begin(), payload.end());
    d->queue.push_back(std::move(request));
    static const Bytes kEmptyObject = [] {
      Bytes b;
      b.push_back(8);  // binary-codec object tag
      append(b, be32(0));
      return b;
    }();
    return kEmptyObject;
  }

  Request request;
  request.method = method;
  request.payload.assign(payload.begin(), payload.end());
  const Bytes wire_request = request.serialize();

  RetryPolicy policy;
  RetryClock* clock;
  {
    std::lock_guard lock(policy_mutex_);
    policy = policy_;
    clock = clock_ != nullptr ? clock_ : &RetryClock::system();
  }
  CircuitBreaker& breaker = channel_.breaker();
  if (!policy.enabled &&
      (group_ != nullptr || router_ != nullptr || !breaker.enabled())) {
    // Seed fast path: fail fast. In group/sharded mode the per-replica
    // accrual detector is the health authority, so the breaker never
    // gates calls.
    if (router_ != nullptr) return router_->call(method, wire_request);
    if (group_ != nullptr) return group_->call(method, wire_request);
    return dispatch_once(method, wire_request);
  }

  const std::uint64_t start_us = clock->now_us();
  std::uint64_t backoff_us = policy.initial_backoff_us;
  std::mt19937_64 jitter_rng(DetRng::seed_or_entropy(policy.jitter_seed));
  const std::uint32_t max_attempts =
      policy.enabled ? std::max<std::uint32_t>(1, policy.max_attempts) : 1;

  for (std::uint32_t attempt = 1;; ++attempt) {
    bool transport_failure;
    std::exception_ptr error;
    if (router_ != nullptr) {
      // Sharded mode: routing re-derives the same sub-requests on every
      // attempt (deterministic placement), so retries replay byte-exactly
      // into each shard's dedup log just like group mode.
      try {
        return router_->call(method, wire_request);
      } catch (const Error& e) {
        transport_failure = e.code() == ErrorCode::kUnavailable;
        error = std::current_exception();
      }
    } else if (group_ != nullptr) {
      // Group mode: the group already did per-replica routing/failover;
      // what escapes it is either a typed server error or "no replica
      // could serve this" — the latter retries under the normal budget
      // (re-sending the SAME bytes, which the group dedups for applied
      // writes whose ack was lost).
      try {
        return group_->call(method, wire_request);
      } catch (const Error& e) {
        transport_failure = e.code() == ErrorCode::kUnavailable;
        error = std::current_exception();
      }
    } else if (!breaker.try_admit(clock->now_us())) {
      emit("net.breaker.reject", 1);
      transport_failure = true;
      error = std::make_exception_ptr(
          Error(ErrorCode::kUnavailable, "circuit breaker open: " + method));
    } else {
      try {
        Bytes out = dispatch_once(method, wire_request);
        breaker.on_success();
        return out;
      } catch (const Error& e) {
        transport_failure = e.code() == ErrorCode::kUnavailable;
        if (transport_failure) {
          const auto before = breaker.state();
          breaker.on_failure(clock->now_us());
          if (breaker.state() == CircuitBreaker::State::kOpen &&
              before != CircuitBreaker::State::kOpen) {
            emit("net.breaker.open", 1);
          }
        } else {
          // A typed server error is a delivered response: endpoint healthy.
          breaker.on_success();
        }
        error = std::current_exception();
      } catch (...) {
        // Non-Error escape (allocation failure, codec logic bug): no
        // verdict on endpoint health, but the admission MUST be settled —
        // in half-open this admission holds the probe token, and leaving
        // it unsettled would lock the breaker in half-open forever.
        breaker.on_failure(clock->now_us());
        throw;
      }
    }

    // Retry only transport failures of whitelisted (replay-idempotent)
    // methods, within the attempt and deadline budgets. A retry re-sends
    // `wire_request` — the exact bytes of the first attempt.
    if (!policy.enabled || !transport_failure || !policy.retryable(method) ||
        attempt >= max_attempts) {
      if (policy.enabled && transport_failure && policy.retryable(method)) {
        emit("net.retry.giveup", 1);
      }
      std::rethrow_exception(error);
    }
    std::uint64_t sleep_us = backoff_us;
    if (policy.jitter > 0.0) {
      const double cut =
          std::uniform_real_distribution<double>(0.0, policy.jitter)(jitter_rng);
      sleep_us -= static_cast<std::uint64_t>(static_cast<double>(sleep_us) * cut);
    }
    if (policy.deadline_us != 0 &&
        clock->now_us() - start_us + sleep_us >= policy.deadline_us) {
      emit("net.retry.deadline", 1);
      std::rethrow_exception(error);
    }
    emit("net.retry.attempt", 1);
    emit("net.retry.backoff_us", sleep_us);
    clock->sleep_us(sleep_us);
    backoff_us = std::min(
        static_cast<std::uint64_t>(static_cast<double>(backoff_us) *
                                   policy.backoff_multiplier),
        policy.max_backoff_us);
  }
}

}  // namespace datablinder::net
