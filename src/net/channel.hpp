// Simulated network channel between the trusted gateway and an untrusted
// cloud endpoint.
//
// The paper's deployment runs the gateway on a private OpenStack cloud and
// the cloud mode on a public provider; SE tactics are inherently
// distributed, so every protocol step crosses this channel. The simulation
// preserves what the evaluation depends on: round-trip structure, byte
// volumes (a tactic performance metric in Fig. 1), configurable latency
// and bandwidth, and injectable faults for failure testing.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/bytes.hpp"

namespace datablinder::net {

struct ChannelConfig {
  /// One-way propagation delay, applied twice per round trip.
  std::uint64_t one_way_latency_us = 0;
  /// Bytes per second in each direction; 0 = unlimited.
  std::uint64_t bandwidth_bytes_per_sec = 0;
  /// Probability in [0,1] that a call fails with kUnavailable (fault
  /// injection for tests). Uses a cheap thread-local generator.
  double failure_probability = 0.0;
};

/// Byte/round-trip accounting — the "network overhead" performance metrics
/// of the tactic abstraction model (Fig. 1).
struct ChannelStats {
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> bytes_received{0};
  std::atomic<std::uint64_t> round_trips{0};

  void reset() {
    bytes_sent = 0;
    bytes_received = 0;
    round_trips = 0;
  }
};

class Channel {
 public:
  explicit Channel(ChannelConfig config = {}) : config_(config) {}

  /// Accounts for and delays one request/response exchange. Throws
  /// Error(kUnavailable) when a fault fires or the channel is closed.
  /// Called by the RPC client around the server dispatch.
  void transfer_request(std::size_t bytes);
  void transfer_response(std::size_t bytes);

  void close() noexcept { closed_ = true; }
  void reopen() noexcept { closed_ = false; }
  bool closed() const noexcept { return closed_; }

  void set_config(const ChannelConfig& config) { config_ = config; }
  const ChannelConfig& config() const noexcept { return config_; }

  ChannelStats& stats() noexcept { return stats_; }

 private:
  void simulate_delay(std::size_t bytes) const;
  void maybe_fail() const;

  ChannelConfig config_;
  ChannelStats stats_;
  std::atomic<bool> closed_{false};
};

}  // namespace datablinder::net
