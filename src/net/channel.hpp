// Simulated network channel between the trusted gateway and an untrusted
// cloud endpoint.
//
// The paper's deployment runs the gateway on a private OpenStack cloud and
// the cloud mode on a public provider; SE tactics are inherently
// distributed, so every protocol step crosses this channel. The simulation
// preserves what the evaluation depends on: round-trip structure, byte
// volumes (a tactic performance metric in Fig. 1), configurable latency
// and bandwidth, and injectable faults for failure testing.
//
// Fault injection is deterministic where it matters: beyond the legacy
// probabilistic mode (now seedable), a scripted FaultPlan can fail exact
// transfer ordinals, calls matching a method prefix, or a one-shot outage
// window — so failure tests reproduce instead of flaking.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "net/resilience.hpp"

namespace datablinder::net {

struct ChannelConfig {
  /// One-way propagation delay, applied twice per round trip.
  std::uint64_t one_way_latency_us = 0;
  /// Bytes per second in each direction; 0 = unlimited.
  std::uint64_t bandwidth_bytes_per_sec = 0;
  /// Serialized service time per request at the endpoint, in microseconds;
  /// 0 (default) disables the service model. Unlike latency and bandwidth
  /// delays — which overlap freely across concurrent callers — service
  /// reservations are serialized per channel: each request leg reserves
  /// the endpoint for service_time_us after the previous reservation ends,
  /// modeling a single-threaded shard node working through its queue. N
  /// shard channels are N independent service queues, which is what makes
  /// horizontal scale-out measurable even on a single-core host.
  std::uint64_t service_time_us = 0;
  /// Probability in [0,1] that a transfer fails with kUnavailable (fault
  /// injection for tests).
  double failure_probability = 0.0;
  /// Seed for the fault RNG; 0 draws from std::random_device. With a fixed
  /// seed, single-threaded probabilistic fault sequences are reproducible
  /// across runs.
  std::uint64_t fault_seed = 0;
};

/// Scripted, reproducible fault schedule. Transfers are numbered from 1 in
/// channel order, counting both request and response legs (so one RPC round
/// trip consumes two ordinals). All clauses compose; any match faults the
/// transfer.
struct FaultPlan {
  /// Fail these exact transfer ordinals.
  std::vector<std::uint64_t> fail_transfers;

  /// Fail request transfers whose method starts with `prefix`, after
  /// letting `skip` matches through, for at most `count` faults. Lets a
  /// test kill "the 3rd det.insert" without counting unrelated traffic.
  struct MethodFault {
    std::string prefix;
    std::uint64_t skip = 0;
    std::uint64_t count = 1;
  };
  std::vector<MethodFault> method_faults;

  /// One-shot outage window: every transfer with ordinal in
  /// [first, first + length) fails; the channel self-heals afterwards.
  struct Outage {
    std::uint64_t first = 0;
    std::uint64_t length = 0;
  };
  std::vector<Outage> outages;

  bool empty() const {
    return fail_transfers.empty() && method_faults.empty() && outages.empty();
  }
};

/// Byte/round-trip accounting — the "network overhead" performance metrics
/// of the tactic abstraction model (Fig. 1).
struct ChannelStats {
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> bytes_received{0};
  std::atomic<std::uint64_t> round_trips{0};
  std::atomic<std::uint64_t> faults_injected{0};

  void reset() {
    bytes_sent = 0;
    bytes_received = 0;
    round_trips = 0;
    faults_injected = 0;
  }
};

class Channel {
 public:
  explicit Channel(ChannelConfig config = {});

  /// Accounts for and delays one request/response exchange. Throws
  /// Error(kUnavailable) when a fault fires or the channel is closed.
  /// Called by the RPC client around the server dispatch; `method` feeds
  /// the FaultPlan's method-prefix matching.
  void transfer_request(std::size_t bytes, const std::string& method = {});
  void transfer_response(std::size_t bytes, const std::string& method = {});

  void close() noexcept { closed_ = true; }
  void reopen() noexcept { closed_ = false; }
  bool closed() const noexcept { return closed_; }

  /// Thread-safe: transfers running concurrently with a config change see
  /// either the old or the new config, never a torn mix.
  void set_config(const ChannelConfig& config);
  ChannelConfig config() const;

  /// Installs / clears the scripted fault schedule. The transfer ordinal
  /// counter keeps running across plan changes; arm_fault_plan() also
  /// resets it to 0 so plans can be written against a known origin.
  void set_fault_plan(FaultPlan plan);
  void arm_fault_plan(FaultPlan plan);
  void clear_fault_plan();

  /// Total transfers attempted so far (faulted ones included).
  std::uint64_t transfers() const;

  ChannelStats& stats() noexcept { return stats_; }

  /// Per-channel circuit breaker consulted by every RpcClient bound to
  /// this channel (disabled until configured).
  CircuitBreaker& breaker() noexcept { return breaker_; }

 private:
  void simulate_delay(std::uint64_t latency_us, std::uint64_t bandwidth,
                      std::size_t bytes) const;
  /// Evaluates fault clauses for one transfer and, for request legs under
  /// a service model, reserves the endpoint's next service slot (into
  /// *service_wait_us). Returns the latched config snapshot so the delay
  /// simulation runs outside the lock.
  ChannelConfig account_and_maybe_fail(const std::string& method, bool is_request,
                                       std::uint64_t* service_wait_us = nullptr);

  mutable std::mutex mutex_;  // guards config_, plan state, RNG, ordinal
  ChannelConfig config_;
  FaultPlan plan_;
  std::uint64_t transfer_seq_ = 0;
  std::uint64_t busy_until_us_ = 0;  // service-queue head (guarded by mutex_)
  std::mt19937_64 rng_;

  ChannelStats stats_;
  CircuitBreaker breaker_;
  std::atomic<bool> closed_{false};
};

}  // namespace datablinder::net
