// EventServer — event-driven, non-blocking server loop for the cloud-side
// front end.
//
// The simulated Channel gives every in-process client a function-call
// transport; this is the socket half the paper's deployment implies: a
// single poll(2)-driven reactor thread multiplexing thousands of
// concurrent client connections, with all request execution handed off to
// a worker pool (the exec Executor via the `submit` hook) so the loop
// never blocks on crypto or storage work.
//
// Protocol: length-prefixed frames (4-byte big-endian length, then the
// serialized net::Request / net::Response bytes) over TCP on loopback —
// the exact serialize()/deserialize() pair the in-process RPC path already
// exercises, so the same bytes run over a real socket unchanged.
//
// Per-connection state machine: a read buffer accumulates partial frames;
// complete frames are decoded and dispatched with a per-connection
// sequence number; responses may complete out of order on the pool, but
// are flushed strictly in request order (pipelining-safe). Write
// readiness is edge-managed: a connection polls POLLOUT only while its
// output buffer is non-empty.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "net/message.hpp"

namespace datablinder::net {

struct EventServerConfig {
  /// Frames larger than this are protocol errors (connection dropped).
  std::size_t max_frame_bytes = 16u << 20;
  int listen_backlog = 1024;
};

/// Counters are cumulative since construction; peak_connections is the
/// high-water mark of simultaneously open connections (the ">= 1000
/// concurrent clients" acceptance metric).
struct EventServerStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> frames_out{0};
  std::atomic<std::uint64_t> peak_connections{0};
  std::atomic<std::uint64_t> protocol_errors{0};
};

class EventServer {
 public:
  /// Executes one decoded request; runs on whatever thread `submit`
  /// provides (or inline on the loop thread without one). Must not throw —
  /// but is wrapped defensively: an escaping exception becomes a typed
  /// failure Response.
  using Dispatch = std::function<Response(const Request&)>;
  /// Worker-pool hand-off (e.g. core::exec::Executor::submit). The jobs
  /// are self-contained and never throw. nullptr = dispatch inline.
  using Submit = std::function<void(std::function<void()>)>;

  /// Binds 127.0.0.1 on an ephemeral port and starts the reactor thread.
  EventServer(Dispatch dispatch, Submit submit = nullptr,
              EventServerConfig config = {});

  /// Stops the loop, closes every connection, joins the thread. In-flight
  /// submitted jobs may still run afterwards; their completions are
  /// dropped safely.
  ~EventServer();

  EventServer(const EventServer&) = delete;
  EventServer& operator=(const EventServer&) = delete;

  std::uint16_t port() const noexcept { return port_; }
  const EventServerStats& stats() const noexcept { return stats_; }
  std::size_t open_connections() const noexcept {
    return open_connections_.load(std::memory_order_relaxed);
  }

 private:
  /// One connection's framed-message state machine.
  struct Conn {
    std::uint64_t id = 0;
    int fd = -1;
    Bytes in;                             // partial inbound frames
    Bytes out;                            // encoded outbound frames
    std::size_t out_offset = 0;           // flushed prefix of `out`
    std::uint64_t next_seq = 0;           // next request sequence to assign
    std::uint64_t next_flush = 0;         // next response sequence to emit
    std::map<std::uint64_t, Bytes> done;  // out-of-order completed frames
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    Bytes frame;  // serialized Response
  };

  void loop();
  void accept_ready();
  void read_ready(Conn& c);
  bool write_ready(Conn& c);  // false when the connection must close
  void drain_completions();
  void enqueue_completion(Completion completion);
  void dispatch_frame(const Conn& c, std::uint64_t seq, Bytes frame);
  void close_conn(int fd);
  void wake();

  Dispatch dispatch_;
  Submit submit_;
  EventServerConfig config_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] read end polled by the loop
  std::uint16_t port_ = 0;

  // Owned by the loop thread exclusively (no lock needed).
  std::unordered_map<int, Conn> conns_;              // by fd
  std::unordered_map<std::uint64_t, int> conn_fds_;  // id -> fd
  std::uint64_t next_conn_id_ = 1;

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;

  EventServerStats stats_;
  std::atomic<std::size_t> open_connections_{0};
  std::atomic<bool> stop_{false};
  std::thread loop_thread_;
};

/// Minimal blocking client for tests and benches: one TCP connection
/// speaking the framed Request/Response protocol.
class FramedClient {
 public:
  explicit FramedClient(std::uint16_t port);
  ~FramedClient();

  FramedClient(const FramedClient&) = delete;
  FramedClient& operator=(const FramedClient&) = delete;

  /// Writes one request frame (no response read — pipelining-friendly).
  void send(const Request& request);
  /// Blocks for the next response frame.
  Response recv();
  /// send() + recv(); throws the server-side Error on failure responses.
  Bytes call(const std::string& method, BytesView payload);

 private:
  int fd_ = -1;
};

}  // namespace datablinder::net
