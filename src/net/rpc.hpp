// Request/response RPC over a simulated channel.
//
// The server registers byte-in/byte-out handlers per method name; handler
// exceptions are converted into typed error responses so a DataBlinder
// error thrown cloud-side surfaces gateway-side with its original code —
// the serialization path is exercised end-to-end even though both ends run
// in one process.
//
// Resilience: with a RetryPolicy installed, transport failures
// (kUnavailable) on whitelisted methods are retried with exponential
// backoff + jitter under a per-call deadline budget, re-sending the SAME
// serialized request bytes (byte-identical replay — see resilience.hpp for
// why that preserves both exactly-once state and the leakage profile). The
// channel's circuit breaker, when enabled, sheds calls while the endpoint
// is down and probes it half-open after a cooldown.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/channel.hpp"
#include "net/message.hpp"
#include "net/resilience.hpp"

namespace datablinder::net {

class ReplicaGroup;
class ShardRouter;

class RpcServer {
 public:
  using Handler = std::function<Bytes(BytesView)>;

  /// Registers a handler; throws Error(kAlreadyExists) on duplicates.
  void register_method(const std::string& method, Handler handler);

  /// Dispatches a serialized request to its handler. Never throws: errors
  /// become failure responses.
  Response dispatch(const Request& request) const noexcept;

  std::size_t method_count() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Handler> handlers_;
};

class RpcClient {
 public:
  /// Both endpoint and channel must outlive the client.
  RpcClient(RpcServer& server, Channel& channel) : server_(server), channel_(channel) {}

  /// Group mode: every call routes through the replica group (reads to the
  /// healthiest in-sync replica, hedged when eligible; writes through the
  /// primary + replication log). Per-replica failure accrual replaces the
  /// single-channel circuit breaker. The retry loop still wraps the group:
  /// a kUnavailable from it (no replica reachable, or an applied write
  /// whose ack was lost) retries with the same backoff/whitelist/budget
  /// rules, and the group dedups replayed writes byte-exactly. The group
  /// must outlive the client.
  explicit RpcClient(ReplicaGroup& group);

  /// Sharded mode: every call routes through the consistent-hash router
  /// (single-key and scope methods to one shard, array methods scattered
  /// with ordered merges, structure-wide reads broadcast). Each shard is a
  /// ReplicaGroup, so the group-mode retry semantics apply per shard; the
  /// retry loop wraps the whole routed operation and re-sends the same
  /// top-level bytes, which re-derives byte-identical sub-requests (the
  /// routing is deterministic) that each shard's log dedups. The router
  /// must outlive the client.
  explicit RpcClient(ShardRouter& router);

  /// Full round trip: serialize, cross the channel, dispatch, cross back,
  /// deserialize. Throws the server-side Error on failure responses.
  /// Transport failures are retried per the installed RetryPolicy.
  Bytes call(const std::string& method, BytesView payload);

  // --- resilience -----------------------------------------------------------

  void set_retry_policy(RetryPolicy policy);
  RetryPolicy retry_policy() const;

  /// Overrides the clock used for backoff sleeps and breaker cooldowns
  /// (non-owning; nullptr restores the system steady clock). Test hook.
  void set_clock(RetryClock* clock);

  /// Observer for retry/breaker events. Series names: "net.retry.attempt",
  /// "net.retry.backoff_us", "net.retry.giveup", "net.retry.deadline",
  /// "net.breaker.open", "net.breaker.reject". The gateway bridges these
  /// into its PerfRegistry. Pass nullptr to clear.
  using MetricsHook = std::function<void(const char* series, std::uint64_t value)>;
  void set_metrics_hook(MetricsHook hook);

  // --- deferred batching ----------------------------------------------------
  //
  // Between begin_deferred() and flush_deferred(), calls *on this thread*
  // whose method is in the deferrable set are queued instead of sent and
  // return an empty payload immediately (only fire-and-forget update
  // methods qualify — their responses are empty by protocol). flush sends
  // the whole queue as ONE "rpc.batch" round trip; any sub-call failure
  // surfaces as the corresponding Error at flush time. Thread-local, so
  // concurrent callers on other threads are unaffected.
  //
  // Failure contract: flush_deferred()/take_deferred() END the section
  // before any network activity, so every failure path leaves no queued
  // requests behind and a fresh section can immediately be re-begun.

  /// Starts a deferred section. Throws kInvalidArgument if one is active.
  void begin_deferred(std::set<std::string> deferrable_methods);

  /// Sends all queued calls as one batch round trip; returns how many were
  /// sent. Always ends the deferred section, even on error.
  std::size_t flush_deferred();

  /// Ends the deferred section WITHOUT sending and hands the queued
  /// requests to the caller — the capture half of crash-consistent
  /// inserts: the gateway journals the exact bytes, then ships them with
  /// send_batch().
  std::vector<Request> take_deferred();

  /// Ships previously captured requests as ONE "rpc.batch" round trip;
  /// returns how many were sent. Safe to replay: the batch carries only
  /// keyed-overwrite updates, so re-sending the identical bytes converges
  /// to the same cloud state.
  std::size_t send_batch(const std::vector<Request>& queue);

  /// Discards a deferred section without sending (error-path cleanup).
  void abandon_deferred() noexcept;

  bool in_deferred_section() const noexcept;

  /// The server-side batch dispatcher; CloudNode (or any server) registers
  /// it as method "rpc.batch".
  static RpcServer::Handler make_batch_handler(const RpcServer& server);

  Channel& channel() noexcept { return channel_; }

  /// The shard router, or nullptr outside sharded mode (the exec Planner
  /// consults it to build per-shard scatter stages that agree with the
  /// router's placement).
  ShardRouter* shard_router() const noexcept { return router_; }

 private:
  struct Deferred {
    std::set<std::string> methods;
    std::vector<Request> queue;
  };
  Deferred* deferred_slot() const noexcept;

  /// One un-retried round trip of pre-serialized request bytes.
  Bytes dispatch_once(const std::string& method, const Bytes& wire_request);
  void emit(const char* series, std::uint64_t value) const;

  RpcServer& server_;
  Channel& channel_;
  ReplicaGroup* group_ = nullptr;   // non-null => group routing mode
  ShardRouter* router_ = nullptr;   // non-null => sharded routing mode

  mutable std::mutex policy_mutex_;  // guards policy_, clock_, hook_
  RetryPolicy policy_;
  RetryClock* clock_ = nullptr;
  MetricsHook hook_;
};

}  // namespace datablinder::net
