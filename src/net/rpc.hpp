// Request/response RPC over a simulated channel.
//
// The server registers byte-in/byte-out handlers per method name; handler
// exceptions are converted into typed error responses so a DataBlinder
// error thrown cloud-side surfaces gateway-side with its original code —
// the serialization path is exercised end-to-end even though both ends run
// in one process.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/channel.hpp"
#include "net/message.hpp"

namespace datablinder::net {

class RpcServer {
 public:
  using Handler = std::function<Bytes(BytesView)>;

  /// Registers a handler; throws Error(kAlreadyExists) on duplicates.
  void register_method(const std::string& method, Handler handler);

  /// Dispatches a serialized request to its handler. Never throws: errors
  /// become failure responses.
  Response dispatch(const Request& request) const noexcept;

  std::size_t method_count() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Handler> handlers_;
};

class RpcClient {
 public:
  /// Both endpoint and channel must outlive the client.
  RpcClient(RpcServer& server, Channel& channel) : server_(server), channel_(channel) {}

  /// Full round trip: serialize, cross the channel, dispatch, cross back,
  /// deserialize. Throws the server-side Error on failure responses.
  Bytes call(const std::string& method, BytesView payload);

  // --- deferred batching ----------------------------------------------------
  //
  // Between begin_deferred() and flush_deferred(), calls *on this thread*
  // whose method is in the deferrable set are queued instead of sent and
  // return an empty payload immediately (only fire-and-forget update
  // methods qualify — their responses are empty by protocol). flush sends
  // the whole queue as ONE "rpc.batch" round trip; any sub-call failure
  // surfaces as the corresponding Error at flush time. Thread-local, so
  // concurrent callers on other threads are unaffected.

  /// Starts a deferred section. Throws kInvalidArgument if one is active.
  void begin_deferred(std::set<std::string> deferrable_methods);

  /// Sends all queued calls as one batch round trip; returns how many were
  /// sent. Always ends the deferred section, even on error.
  std::size_t flush_deferred();

  /// Discards a deferred section without sending (error-path cleanup).
  void abandon_deferred() noexcept;

  bool in_deferred_section() const noexcept;

  /// The server-side batch dispatcher; CloudNode (or any server) registers
  /// it as method "rpc.batch".
  static RpcServer::Handler make_batch_handler(const RpcServer& server);

  Channel& channel() noexcept { return channel_; }

 private:
  struct Deferred {
    std::set<std::string> methods;
    std::vector<Request> queue;
  };
  Deferred* deferred_slot() const noexcept;

  RpcServer& server_;
  Channel& channel_;
};

}  // namespace datablinder::net
