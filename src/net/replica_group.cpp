#include "net/replica_group.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>
#include <tuple>

#include "common/status.hpp"
#include "net/rpc.hpp"

namespace datablinder::net {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

bool is_read_method(const std::string& method) {
  // Mirrors the "Reads" group of RetryPolicy::standard(): methods whose
  // cloud handlers never mutate state, so any in-sync replica may serve
  // them. Everything else routes through the primary + replication log.
  static const std::set<std::string> kReads = {
      "doc.get",        "doc.mget",          "doc.list",       "det.search",
      "ope.range",      "ope.extreme",       "ore.range",      "mitra.search",
      "mitrasl.search", "mitrasl.get_counter", "sophos.search", "iex.search",
      "zmf.search",     "agg.sum",           "admin.storage",  "admin.index_ops",
      "admin.digest",   "plain.get",         "plain.find_eq",  "plain.find_range",
      "plain.find_bool", "plain.avg"};
  return kReads.count(method) > 0;
}

ReplicaGroup::ReplicaGroup(std::vector<ReplicaEndpoint> endpoints, HedgeConfig hedge,
                           AccrualConfig accrual)
    : hedge_(hedge), accrual_(accrual) {
  if (endpoints.empty()) {
    throw_error(ErrorCode::kInvalidArgument, "replica group needs >= 1 endpoint");
  }
  replicas_.reserve(endpoints.size());
  for (const ReplicaEndpoint& e : endpoints) {
    if (e.server == nullptr || e.channel == nullptr) {
      throw_error(ErrorCode::kInvalidArgument, "replica endpoint needs server+channel");
    }
    auto r = std::make_unique<Replica>();
    r->endpoint = e;
    replicas_.push_back(std::move(r));
  }
}

ReplicaGroup::~ReplicaGroup() {
  std::unique_lock lock(drain_mutex_);
  drain_cv_.wait(lock, [this] { return inflight_ == 0; });
}

void ReplicaGroup::set_metrics_hook(MetricsHook hook) {
  std::lock_guard lock(hook_mutex_);
  hook_ = std::move(hook);
}

void ReplicaGroup::set_hedgeable(std::function<bool(const std::string&)> pred) {
  std::lock_guard lock(hook_mutex_);
  hedgeable_ = std::move(pred);
}

void ReplicaGroup::emit(const char* series, std::uint64_t value) const {
  MetricsHook hook;
  {
    std::lock_guard lock(hook_mutex_);
    hook = hook_;
  }
  if (hook) hook(series, value);
}

std::size_t ReplicaGroup::primary() const {
  std::lock_guard lock(write_mutex_);
  return primary_;
}

std::uint64_t ReplicaGroup::log_entries() const {
  std::lock_guard lock(write_mutex_);
  return log_.size();
}

std::uint64_t ReplicaGroup::log_wire_bytes(std::uint64_t upto_seq) const {
  std::lock_guard lock(write_mutex_);
  std::uint64_t n = 0;
  const std::uint64_t last = std::min<std::uint64_t>(upto_seq, log_.size());
  for (std::uint64_t seq = 1; seq <= last; ++seq) n += log_[seq - 1].wire.size();
  return n;
}

std::uint64_t ReplicaGroup::applied_seq(std::size_t i) const {
  return replicas_[i]->applied_seq.load(std::memory_order_acquire);
}

double ReplicaGroup::score(const Replica& r) const {
  return static_cast<double>(r.consecutive_failures.load(std::memory_order_relaxed)) *
             accrual_.failure_penalty_us +
         r.latency.ewma_us();
}

std::vector<ReplicaHealth> ReplicaGroup::health() const {
  std::lock_guard lock(write_mutex_);
  std::vector<ReplicaHealth> out;
  out.reserve(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const Replica& r = *replicas_[i];
    ReplicaHealth h;
    h.index = i;
    h.is_primary = i == primary_;
    h.suspected = r.suspected.load(std::memory_order_relaxed);
    h.consecutive_failures = r.consecutive_failures.load(std::memory_order_relaxed);
    h.applied_seq = r.applied_seq.load(std::memory_order_relaxed);
    h.latency_ewma_us = r.latency.ewma_us();
    h.score = score(r);
    out.push_back(h);
  }
  return out;
}

void ReplicaGroup::accrue_failure(std::size_t i) {
  Replica& r = *replicas_[i];
  const std::uint32_t n = r.consecutive_failures.fetch_add(1) + 1;
  if (n >= accrual_.suspect_threshold && !r.suspected.exchange(true)) {
    emit("net.replica.demote");
  }
}

void ReplicaGroup::note_success(std::size_t i, std::uint64_t ns) {
  Replica& r = *replicas_[i];
  r.latency.observe(ns);
  r.consecutive_failures.store(0, std::memory_order_relaxed);
  // Failure accrual is symmetric: a delivered response is proof of life,
  // so a healed endpoint rejoins on its first served call.
  if (r.suspected.exchange(false)) emit("net.replica.rejoin");
}

Bytes ReplicaGroup::attempt(std::size_t i, const std::string& method, const Bytes& wire,
                            bool* sent) {
  Replica& r = *replicas_[i];
  const auto t0 = std::chrono::steady_clock::now();
  try {
    r.endpoint.channel->transfer_request(wire.size(), method);
    *sent = true;
    const Response response = r.endpoint.server->dispatch(Request::deserialize(wire));
    const Bytes wire_response = response.serialize();
    r.endpoint.channel->transfer_response(wire_response.size(), method);
    Response decoded = Response::deserialize(wire_response);
    // A typed error is still a delivered response: the endpoint is alive.
    note_success(i, elapsed_ns(t0));
    if (!decoded.ok) throw Error(decoded.error, decoded.error_message);
    return std::move(decoded.payload);
  } catch (const Error& e) {
    if (e.code() == ErrorCode::kUnavailable) accrue_failure(i);
    throw;
  }
}

std::vector<std::size_t> ReplicaGroup::read_order() const {
  // Only in-sync replicas may serve reads: every acknowledged write is on
  // each of them, so read-your-writes holds on whichever one answers.
  const std::uint64_t committed = committed_seq();
  std::vector<std::tuple<int, double, std::size_t>> ranked;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const Replica& r = *replicas_[i];
    if (r.applied_seq.load(std::memory_order_acquire) < committed) continue;
    ranked.emplace_back(r.suspected.load(std::memory_order_relaxed) ? 1 : 0, score(r),
                        i);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<std::size_t> order;
  order.reserve(ranked.size());
  for (const auto& [suspected, s, i] : ranked) order.push_back(i);
  return order;
}

Bytes ReplicaGroup::call(const std::string& method, const Bytes& wire_request) {
  if (is_read_method(method)) return call_read(method, wire_request);
  return call_write(method, wire_request);
}

// --- reads -----------------------------------------------------------------

Bytes ReplicaGroup::call_read(const std::string& method, const Bytes& wire) {
  const std::vector<std::size_t> order = read_order();
  if (order.empty()) {
    throw_error(ErrorCode::kUnavailable, "replica group: no in-sync replica for " + method);
  }
  std::function<bool(const std::string&)> hedgeable;
  {
    std::lock_guard lock(hook_mutex_);
    hedgeable = hedgeable_;
  }
  const bool resendable = hedgeable && hedgeable(method);
  if (hedge_.enabled && resendable && order.size() >= 2) {
    return hedged_read(order, method, wire);
  }

  // Sequential fallback: walk replicas by health. Failing over after the
  // request leg shipped is itself a re-send, so it is gated on the same
  // whitelist as hedging.
  std::exception_ptr last;
  for (std::size_t k = 0; k < order.size(); ++k) {
    bool sent = false;
    try {
      return attempt(order[k], method, wire, &sent);
    } catch (const Error& e) {
      if (e.code() != ErrorCode::kUnavailable) throw;
      last = std::current_exception();
      if (sent && !resendable) break;
      if (k + 1 < order.size()) emit("net.replica.read_failover");
    }
  }
  std::rethrow_exception(last);
}

// dblint:thread-root — each hedged attempt below runs on a detached thread.
Bytes ReplicaGroup::hedged_read(const std::vector<std::size_t>& order,
                                const std::string& method, const Bytes& wire) {
  struct Shared {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;  // first success recorded
    std::size_t winner = 0;
    Bytes result;
    std::exception_ptr first_error;
    std::size_t finished = 0;
  };
  auto st = std::make_shared<Shared>();

  // Attempts run detached so the caller can return the moment the first
  // one succeeds; the group's drain counter keeps the endpoints alive
  // until every loser has finished touching them.
  auto spawn = [this, st](std::size_t idx, std::string m, Bytes w) {
    {
      std::lock_guard lock(drain_mutex_);
      ++inflight_;
    }
    std::thread([this, st, idx, m = std::move(m), w = std::move(w)] {
      Bytes out;
      std::exception_ptr err;
      bool sent = false;
      try {
        out = attempt(idx, m, w, &sent);
      } catch (...) {
        err = std::current_exception();
      }
      {
        std::lock_guard lock(st->m);
        if (err == nullptr && !st->done) {
          st->done = true;
          st->winner = idx;
          st->result = std::move(out);
        } else if (err != nullptr && st->first_error == nullptr) {
          st->first_error = err;
        }
        ++st->finished;
      }
      st->cv.notify_all();
      {
        std::lock_guard lock(drain_mutex_);
        --inflight_;
        // Notify while holding the mutex: the destructor's predicate
        // cannot observe inflight_ == 0 until this thread releases
        // drain_mutex_, so the group (and this condition variable)
        // cannot be destroyed while the notify is still in flight.
        drain_cv_.notify_all();
      }
    }).detach();
  };

  // Hedge delay: this call is "slow" once it exceeds the chosen replica's
  // own recent p95 (scaled); before any evidence exists, the floor.
  const OpStats s = replicas_[order[0]]->latency.stats();
  std::uint64_t delay_us =
      static_cast<std::uint64_t>(hedge_.p95_multiplier * s.p95_us);
  delay_us = std::clamp(delay_us, hedge_.min_delay_us, hedge_.max_delay_us);

  spawn(order[0], method, wire);
  bool primary_failed_fast = false;
  {
    std::unique_lock lock(st->m);
    st->cv.wait_for(lock, std::chrono::microseconds(delay_us),
                    [&] { return st->done || st->finished >= 1; });
    if (st->done) return std::move(st->result);
    primary_failed_fast = st->finished >= 1;
  }
  if (primary_failed_fast) {
    emit("net.replica.read_failover");
  } else {
    emit("net.hedge.fired");
    emit("net.hedge.delay_us", delay_us);
  }
  spawn(order[1], method, wire);
  std::unique_lock lock(st->m);
  st->cv.wait(lock, [&] { return st->done || st->finished >= 2; });
  if (st->done) {
    if (!primary_failed_fast && st->winner == order[1]) emit("net.hedge.won");
    return std::move(st->result);
  }
  std::rethrow_exception(st->first_error);
}

// --- writes ----------------------------------------------------------------

bool ReplicaGroup::catch_up_locked(std::size_t i) {
  Replica& r = *replicas_[i];
  const std::uint64_t head = log_.size();
  const bool was_suspected = r.suspected.load(std::memory_order_relaxed);
  bool shipped = false;
  while (r.applied_seq.load(std::memory_order_relaxed) < head) {
    const LogEntry& e = log_[r.applied_seq.load(std::memory_order_relaxed)];
    try {
      r.endpoint.channel->transfer_request(e.wire.size(), e.method);
    } catch (const Error&) {
      accrue_failure(i);
      return false;
    }
    const Response response = r.endpoint.server->dispatch(Request::deserialize(e.wire));
    const Bytes wire_response = response.serialize();
    // The replica HAS applied the entry once dispatch returns: count it
    // now, so a fault on the ack leg below can never cause a re-ship
    // (each log entry crosses each replica's channel exactly once).
    r.applied_seq.fetch_add(1, std::memory_order_release);
    shipped = true;
    if (!response.ok) {
      // Byte-identical replay rejected: the replica diverged. Demote hard;
      // it only rejoins through operator intervention (it is never elected
      // and never serves reads past the commit check).
      r.suspected.store(true, std::memory_order_relaxed);
      emit("net.replica.diverged");
      return false;
    }
    emit("net.replica.ship");
    try {
      r.endpoint.channel->transfer_response(wire_response.size(), e.method);
    } catch (const Error&) {
      accrue_failure(i);
      emit("net.replica.ack_lost");
      return false;
    }
  }
  if (shipped) {
    r.consecutive_failures.store(0, std::memory_order_relaxed);
    if (was_suspected && r.suspected.exchange(false)) emit("net.replica.rejoin");
  }
  return true;
}

void ReplicaGroup::failover_locked() {
  // Candidates by fitness: in-sync healthy replicas first, most caught-up
  // first. The incumbent (suspected) sorts last — it is only "re-elected"
  // when every replica is suspected, which keeps the group limping rather
  // than bricked until something heals.
  std::vector<std::tuple<int, std::uint64_t, std::size_t>> ranked;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const Replica& r = *replicas_[i];
    ranked.emplace_back(r.suspected.load(std::memory_order_relaxed) ? 1 : 0,
                        ~r.applied_seq.load(std::memory_order_relaxed), i);
  }
  std::sort(ranked.begin(), ranked.end());
  for (const auto& [suspected, inv_seq, i] : ranked) {
    // Catch-up replay BEFORE promotion: the new primary must hold every
    // log entry — including applied-but-unacknowledged ones the old
    // primary took — before it may accept writes.
    if (!catch_up_locked(i)) continue;
    if (i != primary_) {
      primary_ = i;
      emit("net.replica.failover");
    }
    return;
  }
  throw_error(ErrorCode::kUnavailable, "replica group: no replica electable as primary");
}

void ReplicaGroup::advance_commit_locked() {
  std::uint64_t min_applied = ~0ULL;
  bool any = false;
  for (const auto& r : replicas_) {
    if (r->suspected.load(std::memory_order_relaxed)) continue;
    min_applied = std::min(min_applied, r->applied_seq.load(std::memory_order_relaxed));
    any = true;
  }
  if (!any) min_applied = replicas_[primary_]->applied_seq.load(std::memory_order_relaxed);
  if (min_applied > committed_seq_.load(std::memory_order_relaxed)) {
    committed_seq_.store(min_applied, std::memory_order_release);
  }
  // Note: commitment does NOT clear unacked_ — an entry stays there until
  // its caller actually receives the response (normal return or dedup
  // replay), else a retry after an ack-lost commit would re-apply it.
}

// The write path must hold the sequencing lock across apply/catch-up to keep
// the replica log ordered; replicas are in-process, so no network wait occurs.
// dblint:allow-fn(lock-held-egress): in-process replay under the sequencing lock
Bytes ReplicaGroup::call_write(const std::string& method, const Bytes& wire) {
  std::lock_guard lock(write_mutex_);

  // Retry dedup: RpcClient re-sends the SAME serialized bytes, so a write
  // whose ack was lost (applied on the primary, response leg faulted) is
  // recognized byte-exactly and finished — replicated and acknowledged —
  // without a second application.
  for (const std::uint64_t seq : unacked_) {
    if (log_[seq - 1].wire != wire) continue;
    if (replicas_[primary_]->suspected.load(std::memory_order_relaxed)) {
      failover_locked();
    }
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (i != primary_) catch_up_locked(i);
    }
    advance_commit_locked();
    if (committed_seq_.load(std::memory_order_relaxed) >= seq) {
      unacked_.erase(std::remove(unacked_.begin(), unacked_.end(), seq),
                     unacked_.end());
      emit("net.replica.write_dedup");
      return log_[seq - 1].response;
    }
    throw_error(ErrorCode::kUnavailable,
                "replica group: write applied but not yet replicated");
  }

  // Apply on the primary. A fault before the request leg ships is safe to
  // re-route immediately: nothing reached any replica.
  Response response;
  std::uint64_t t0_elapsed = 0;
  const std::size_t max_routes =
      replicas_.size() * std::max<std::uint32_t>(1, accrual_.suspect_threshold);
  for (std::size_t attempts = 0;; ++attempts) {
    if (replicas_[primary_]->suspected.load(std::memory_order_relaxed)) {
      failover_locked();
    }
    Replica& p = *replicas_[primary_];
    const auto t0 = std::chrono::steady_clock::now();
    try {
      p.endpoint.channel->transfer_request(wire.size(), method);
    } catch (const Error&) {
      accrue_failure(primary_);
      // Re-route only when the failure just demoted the primary (the next
      // iteration fails over); otherwise surface it — the caller's retry
      // policy owns the backoff budget. The bound caps demote/re-elect
      // cycles when every replica is flapping.
      if (attempts + 1 >= max_routes ||
          !replicas_[primary_]->suspected.load(std::memory_order_relaxed)) {
        throw;
      }
      continue;
    }
    response = p.endpoint.server->dispatch(Request::deserialize(wire));
    t0_elapsed = elapsed_ns(t0);
    break;
  }
  Replica& p = *replicas_[primary_];
  const Bytes wire_response = response.serialize();

  if (!response.ok) {
    // Typed rejection: delivered, nothing mutated, nothing to replicate.
    note_success(primary_, t0_elapsed);
    p.endpoint.channel->transfer_response(wire_response.size(), method);
    throw Error(response.error, response.error_message);
  }

  LogEntry entry;
  entry.method = method;
  entry.wire = wire;
  entry.response = response.payload;
  log_.push_back(std::move(entry));
  const std::uint64_t seq = log_.size();
  p.applied_seq.store(seq, std::memory_order_release);

  bool ack_lost = false;
  try {
    p.endpoint.channel->transfer_response(wire_response.size(), method);
    note_success(primary_, t0_elapsed);
  } catch (const Error&) {
    accrue_failure(primary_);
    emit("net.replica.ack_lost");
    // Applied but unacknowledged: remember the entry so the caller's
    // byte-identical retry is recognized and deduped instead of re-applied.
    unacked_.push_back(seq);
    ack_lost = true;
  }

  // Replicate before acknowledging. Every backup is attempted — including
  // suspected ones, which doubles as the heal probe; a backup that faults
  // stays (or becomes) demoted and lagging, and is NOT required for the ack.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (i != primary_) catch_up_locked(i);
  }
  advance_commit_locked();

  if (ack_lost) {
    // The entry is applied (and now replicated), but this caller's
    // response was lost in flight: surface the transport failure so the
    // retry path re-converges through the dedup branch above.
    throw_error(ErrorCode::kUnavailable,
                "replica group: response lost after apply of " + method);
  }
  return response.payload;
}

// dblint:allow-fn(lock-held-egress): same in-process replay invariant as call_write.
std::size_t ReplicaGroup::catch_up_all() {
  std::lock_guard lock(write_mutex_);
  std::size_t in_sync = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (catch_up_locked(i)) ++in_sync;
  }
  advance_commit_locked();
  return in_sync;
}

}  // namespace datablinder::net
