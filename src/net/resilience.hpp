// Resilience primitives for the gateway<->cloud channel: retry policy with
// exponential backoff and deadline budgets, an idempotency whitelist, and a
// per-channel circuit breaker.
//
// The paper deploys the gateway in a trusted private zone talking to an
// untrusted public cloud (§4), so every SE tactic round trip crosses a WAN
// that can and will fail. The RPC client retries only calls that are safe
// to replay: reads always, index-update methods because a retry re-sends
// the SAME serialized request bytes (byte-identical replay), and every
// built-in update lands in a keyed overwrite cloud-side (dict.put / sadd /
// zadd / hset), so re-application is a no-op. Replaying recorded bytes —
// never re-encrypting — also keeps the leakage profile unchanged: the
// adversary sees a duplicate of a ciphertext it already had, not a second
// fresh encryption of the same plaintext.
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace datablinder::net {

/// Monotonic time source used by retry backoff and the circuit breaker.
/// Injectable so tests can assert backoff schedules and breaker cooldowns
/// against a fake clock instead of sleeping for real.
class RetryClock {
 public:
  virtual ~RetryClock() = default;
  virtual std::uint64_t now_us() = 0;
  virtual void sleep_us(std::uint64_t us) = 0;

  /// Process-wide steady-clock implementation.
  static RetryClock& system();
};

/// Retry policy for RpcClient::call. Disabled by default: the seed
/// behaviour (fail fast on the first kUnavailable) is preserved unless the
/// gateway opts in.
struct RetryPolicy {
  bool enabled = false;

  /// Total attempts including the first; >= 1.
  std::uint32_t max_attempts = 4;
  std::uint64_t initial_backoff_us = 1000;
  double backoff_multiplier = 2.0;
  std::uint64_t max_backoff_us = 200000;
  /// Fraction of each backoff randomized away (jitter in [0, jitter]
  /// subtracted), de-synchronizing concurrent retry storms.
  double jitter = 0.2;
  /// Per-call wall-clock budget across all attempts; a retry whose backoff
  /// would overrun the budget is abandoned instead. 0 = unbounded.
  std::uint64_t deadline_us = 0;
  /// Seed for the jitter RNG; 0 draws from std::random_device. Fixed seeds
  /// make backoff schedules reproducible in tests.
  std::uint64_t jitter_seed = 0;

  /// Idempotency whitelist: only these methods are ever retried. Methods
  /// absent from both the exact set and the prefix list fail fast — the
  /// safe default for third-party tactic providers whose update handlers
  /// might not be replay-idempotent.
  std::set<std::string> retryable_methods;
  std::vector<std::string> retryable_prefixes;

  bool retryable(const std::string& method) const;

  /// Whitelist covering every built-in method: reads trivially, update
  /// methods because their cloud handlers are keyed overwrites that absorb
  /// byte-identical replay (see file comment), and "rpc.batch" because the
  /// batch queue only ever carries such updates.
  static RetryPolicy standard();
};

/// Circuit-breaker tuning. Disabled by default.
struct BreakerConfig {
  bool enabled = false;
  /// Consecutive transport failures that trip the breaker open.
  std::uint32_t failure_threshold = 5;
  /// How long an open breaker rejects calls before admitting a half-open
  /// probe.
  std::uint64_t open_cooldown_us = 50000;
};

/// Per-channel circuit breaker: closed -> (threshold consecutive
/// kUnavailable) -> open -> (cooldown elapses) -> half-open, where exactly
/// one probe call is admitted; the probe's outcome closes or re-opens the
/// breaker. Open-state rejections fail fast without touching the channel,
/// shedding load from an endpoint that is already down.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  void configure(const BreakerConfig& config);
  bool enabled() const;

  /// Admission control. Returns false when the call must be rejected
  /// (breaker open, cooldown not elapsed). May transition open -> half-open
  /// when the cooldown has passed; the caller owning that admission is the
  /// probe.
  bool try_admit(std::uint64_t now_us);

  /// Outcome reporting for admitted calls. Only transport-level failures
  /// (kUnavailable) should be reported as failures; typed server errors are
  /// delivered responses and count as breaker successes.
  void on_success();
  void on_failure(std::uint64_t now_us);

  State state() const;
  /// Times the breaker transitioned closed/half-open -> open.
  std::uint64_t trips() const;
  /// Calls rejected while open.
  std::uint64_t rejections() const;

 private:
  mutable std::mutex mutex_;
  BreakerConfig config_;
  State state_ = State::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  std::uint64_t opened_at_us_ = 0;
  std::uint64_t trips_ = 0;
  std::uint64_t rejections_ = 0;
  bool probe_in_flight_ = false;
  // When the outstanding half-open probe was admitted. A probe whose owner
  // never reports an outcome (caller died between admission and reporting)
  // would otherwise hold the token forever; after a full cooldown the token
  // is reclaimed and a new probe admitted.
  std::uint64_t probe_started_us_ = 0;
};

std::string to_string(CircuitBreaker::State state);

}  // namespace datablinder::net
