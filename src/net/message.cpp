#include "net/message.hpp"

namespace datablinder::net {

namespace {
void put_str(Bytes& out, const std::string& s) {
  append(out, be32(static_cast<std::uint32_t>(s.size())));
  append(out, to_bytes(s));
}

std::string take_str(BytesView b, std::size_t& off) {
  if (off + 4 > b.size()) throw_error(ErrorCode::kProtocolError, "message: truncated");
  const std::size_t n = read_be32(b.subspan(off));
  off += 4;
  if (off + n > b.size()) throw_error(ErrorCode::kProtocolError, "message: truncated");
  std::string s(reinterpret_cast<const char*>(b.data() + off), n);
  off += n;
  return s;
}

Bytes take_bytes(BytesView b, std::size_t& off) {
  if (off + 4 > b.size()) throw_error(ErrorCode::kProtocolError, "message: truncated");
  const std::size_t n = read_be32(b.subspan(off));
  off += 4;
  if (off + n > b.size()) throw_error(ErrorCode::kProtocolError, "message: truncated");
  Bytes out(b.begin() + static_cast<std::ptrdiff_t>(off),
            b.begin() + static_cast<std::ptrdiff_t>(off + n));
  off += n;
  return out;
}
}  // namespace

Bytes Request::serialize() const {
  Bytes out;
  put_str(out, method);
  append(out, be32(static_cast<std::uint32_t>(payload.size())));
  append(out, payload);
  return out;
}

Request Request::deserialize(BytesView b) {
  std::size_t off = 0;
  Request r;
  r.method = take_str(b, off);
  r.payload = take_bytes(b, off);
  if (off != b.size()) throw_error(ErrorCode::kProtocolError, "request: trailing bytes");
  return r;
}

Response Response::success(Bytes payload) {
  Response r;
  r.ok = true;
  r.payload = std::move(payload);
  return r;
}

Response Response::failure(ErrorCode code, std::string message) {
  Response r;
  r.ok = false;
  r.error = code;
  r.error_message = std::move(message);
  return r;
}

Bytes Response::serialize() const {
  Bytes out;
  out.push_back(ok ? 1 : 0);
  if (ok) {
    append(out, be32(static_cast<std::uint32_t>(payload.size())));
    append(out, payload);
  } else {
    out.push_back(static_cast<std::uint8_t>(error));
    put_str(out, error_message);
  }
  return out;
}

Response Response::deserialize(BytesView b) {
  if (b.empty()) throw_error(ErrorCode::kProtocolError, "response: empty");
  std::size_t off = 1;
  Response r;
  r.ok = b[0] == 1;
  if (r.ok) {
    r.payload = take_bytes(b, off);
  } else {
    if (off >= b.size()) throw_error(ErrorCode::kProtocolError, "response: truncated");
    r.error = static_cast<ErrorCode>(b[off++]);
    r.error_message = take_str(b, off);
  }
  if (off != b.size()) throw_error(ErrorCode::kProtocolError, "response: trailing bytes");
  return r;
}

}  // namespace datablinder::net
