#include "net/event_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/status.hpp"

namespace datablinder::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_error(ErrorCode::kInternal, "fcntl O_NONBLOCK failed");
  }
}

Bytes frame_bytes(BytesView body) {
  Bytes out = be32(static_cast<std::uint32_t>(body.size()));
  append(out, body);
  return out;
}

}  // namespace

EventServer::EventServer(Dispatch dispatch, Submit submit,
                         EventServerConfig config)
    : dispatch_(std::move(dispatch)),
      submit_(std::move(submit)),
      config_(config) {
  if (!dispatch_) {
    throw_error(ErrorCode::kInvalidArgument, "EventServer needs a dispatcher");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_error(ErrorCode::kInternal, "socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, config_.listen_backlog) < 0) {
    ::close(listen_fd_);
    throw_error(ErrorCode::kInternal, "bind/listen on loopback failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(listen_fd_);
    throw_error(ErrorCode::kInternal, "getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  if (::pipe(wake_fds_) < 0) {
    ::close(listen_fd_);
    throw_error(ErrorCode::kInternal, "self-pipe failed");
  }
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);

  loop_thread_ = std::thread([this] { loop(); });
}

EventServer::~EventServer() {
  stop_.store(true, std::memory_order_release);
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  ::close(listen_fd_);
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
}

void EventServer::wake() {
  const char byte = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const auto n = ::write(wake_fds_[1], &byte, 1);
}

// dblint:thread-root
void EventServer::loop() {
  std::vector<pollfd> pfds;
  while (!stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns_) {
      short events = POLLIN;
      if (conn.out.size() > conn.out_offset) events |= POLLOUT;
      pfds.push_back({fd, events, 0});
    }

    const int ready = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/200);
    if (stop_.load(std::memory_order_acquire)) break;
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure: shut the reactor down
    }

    if (pfds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    drain_completions();
    if (pfds[1].revents & POLLIN) accept_ready();

    for (std::size_t i = 2; i < pfds.size(); ++i) {
      const int fd = pfds[i].fd;
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed by an earlier event
      if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        close_conn(fd);
        continue;
      }
      if (pfds[i].revents & POLLIN) {
        read_ready(it->second);
        it = conns_.find(fd);
        if (it == conns_.end()) continue;
      }
      if (pfds[i].revents & POLLOUT) {
        if (!write_ready(it->second)) close_conn(fd);
      }
    }
  }
}

void EventServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient accept failure
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    Conn c;
    c.id = next_conn_id_++;
    c.fd = fd;
    conn_fds_[c.id] = fd;
    conns_.emplace(fd, std::move(c));

    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    const std::size_t open =
        open_connections_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t peak = stats_.peak_connections.load(std::memory_order_relaxed);
    while (open > peak && !stats_.peak_connections.compare_exchange_weak(
                              peak, open, std::memory_order_relaxed)) {
    }
  }
}

// conns_/conn_fds_ are poll-loop confined: every caller (accept/read/write
// readiness, completion drain) runs on the single loop thread; workers only
// touch the mutex-guarded completion queue, and the destructor joins the
// loop before teardown.
// dblint:allow-fn(inconsistent-lockset): loop-thread-confined state
void EventServer::close_conn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  conn_fds_.erase(it->second.id);
  conns_.erase(it);
  ::close(fd);
  stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void EventServer::read_ready(Conn& c) {
  std::uint8_t buf[16384];
  for (;;) {
    const ssize_t n = ::read(c.fd, buf, sizeof(buf));
    if (n > 0) {
      c.in.insert(c.in.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_conn(c.fd);  // EOF or hard error
    return;
  }

  // Peel complete frames off the front of the read buffer.
  std::size_t offset = 0;
  while (c.in.size() - offset >= 4) {
    const std::uint32_t frame_len =
        read_be32(BytesView(c.in.data() + offset, 4));
    if (frame_len > config_.max_frame_bytes) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      close_conn(c.fd);
      return;
    }
    if (c.in.size() - offset - 4 < frame_len) break;  // incomplete
    Bytes frame(c.in.begin() + static_cast<std::ptrdiff_t>(offset + 4),
                c.in.begin() + static_cast<std::ptrdiff_t>(offset + 4 + frame_len));
    offset += 4 + frame_len;
    stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
    dispatch_frame(c, c.next_seq++, std::move(frame));
  }
  if (offset > 0) {
    c.in.erase(c.in.begin(), c.in.begin() + static_cast<std::ptrdiff_t>(offset));
  }
}

void EventServer::dispatch_frame(const Conn& c, std::uint64_t seq, Bytes frame) {
  const std::uint64_t conn_id = c.id;
  auto job = [this, conn_id, seq, frame = std::move(frame)]() {
    Response response;
    try {
      const Request request = Request::deserialize(frame);
      response = dispatch_(request);
    } catch (const Error& e) {
      response = Response::failure(e.code(), e.what());
    } catch (const std::exception& e) {
      response = Response::failure(ErrorCode::kInternal, e.what());
    }
    enqueue_completion({conn_id, seq, response.serialize()});
  };
  if (submit_) {
    submit_(std::move(job));
  } else {
    job();
  }
}

void EventServer::enqueue_completion(Completion completion) {
  {
    std::lock_guard lock(completions_mutex_);
    completions_.push_back(std::move(completion));
  }
  wake();
}

void EventServer::drain_completions() {
  std::vector<Completion> done;
  {
    std::lock_guard lock(completions_mutex_);
    done.swap(completions_);
  }
  for (auto& completion : done) {
    auto fd_it = conn_fds_.find(completion.conn_id);
    if (fd_it == conn_fds_.end()) continue;  // connection already closed
    Conn& c = conns_.at(fd_it->second);
    c.done.emplace(completion.seq, std::move(completion.frame));
    // Flush strictly in request order: pipelined clients match responses
    // to requests positionally.
    while (!c.done.empty() && c.done.begin()->first == c.next_flush) {
      const Bytes framed = frame_bytes(c.done.begin()->second);
      append(c.out, framed);
      c.done.erase(c.done.begin());
      ++c.next_flush;
      stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
    }
    if (!write_ready(c)) close_conn(c.fd);
  }
}

bool EventServer::write_ready(Conn& c) {
  while (c.out_offset < c.out.size()) {
    const ssize_t n = ::write(c.fd, c.out.data() + c.out_offset,
                              c.out.size() - c.out_offset);
    if (n > 0) {
      c.out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone
  }
  c.out.clear();
  c.out_offset = 0;
  return true;
}

// --- FramedClient ------------------------------------------------------------

FramedClient::FramedClient(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_error(ErrorCode::kInternal, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw_error(ErrorCode::kUnavailable, "connect to event server failed");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

FramedClient::~FramedClient() {
  if (fd_ >= 0) ::close(fd_);
}

void FramedClient::send(const Request& request) {
  const Bytes framed = frame_bytes(request.serialize());
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd_, framed.data() + off, framed.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw_error(ErrorCode::kUnavailable, "event server write failed");
    }
    off += static_cast<std::size_t>(n);
  }
}

Response FramedClient::recv() {
  auto read_exact = [this](std::uint8_t* dst, std::size_t want) {
    std::size_t got = 0;
    while (got < want) {
      const ssize_t n = ::read(fd_, dst + got, want - got);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        throw_error(ErrorCode::kUnavailable, "event server read failed");
      }
      got += static_cast<std::size_t>(n);
    }
  };
  std::uint8_t len_buf[4];
  read_exact(len_buf, sizeof(len_buf));
  const std::uint32_t frame_len = read_be32(BytesView(len_buf, 4));
  Bytes frame(frame_len);
  read_exact(frame.data(), frame.size());
  return Response::deserialize(frame);
}

Bytes FramedClient::call(const std::string& method, BytesView payload) {
  send(Request{method, Bytes(payload.begin(), payload.end())});
  Response response = recv();
  if (!response.ok) throw_error(response.error, response.error_message);
  return std::move(response.payload);
}

}  // namespace datablinder::net
