#include "net/channel.hpp"

#include <chrono>
#include <random>
#include <thread>

#include "common/status.hpp"

namespace datablinder::net {

void Channel::simulate_delay(std::size_t bytes) const {
  std::uint64_t delay_us = config_.one_way_latency_us;
  if (config_.bandwidth_bytes_per_sec > 0) {
    delay_us += static_cast<std::uint64_t>(bytes) * 1000000ULL /
                config_.bandwidth_bytes_per_sec;
  }
  if (delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
}

void Channel::maybe_fail() const {
  if (closed_) throw_error(ErrorCode::kUnavailable, "channel closed");
  if (config_.failure_probability > 0.0) {
    thread_local std::mt19937_64 rng{std::random_device{}()};
    if (std::uniform_real_distribution<double>(0.0, 1.0)(rng) <
        config_.failure_probability) {
      throw_error(ErrorCode::kUnavailable, "injected channel fault");
    }
  }
}

void Channel::transfer_request(std::size_t bytes) {
  maybe_fail();
  stats_.bytes_sent += bytes;
  stats_.round_trips += 1;
  simulate_delay(bytes);
}

void Channel::transfer_response(std::size_t bytes) {
  maybe_fail();
  stats_.bytes_received += bytes;
  simulate_delay(bytes);
}

}  // namespace datablinder::net
