#include "net/channel.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace datablinder::net {

Channel::Channel(ChannelConfig config)
    : config_(config), rng_(DetRng::seed_or_entropy(config.fault_seed)) {}

void Channel::set_config(const ChannelConfig& config) {
  std::lock_guard lock(mutex_);
  if (config.fault_seed != config_.fault_seed || config.fault_seed != 0) {
    rng_.seed(DetRng::seed_or_entropy(config.fault_seed));
  }
  config_ = config;
}

ChannelConfig Channel::config() const {
  std::lock_guard lock(mutex_);
  return config_;
}

void Channel::set_fault_plan(FaultPlan plan) {
  std::lock_guard lock(mutex_);
  plan_ = std::move(plan);
}

void Channel::arm_fault_plan(FaultPlan plan) {
  std::lock_guard lock(mutex_);
  plan_ = std::move(plan);
  transfer_seq_ = 0;
}

void Channel::clear_fault_plan() {
  std::lock_guard lock(mutex_);
  plan_ = {};
}

std::uint64_t Channel::transfers() const {
  std::lock_guard lock(mutex_);
  return transfer_seq_;
}

void Channel::simulate_delay(std::uint64_t latency_us, std::uint64_t bandwidth,
                             std::size_t bytes) const {
  std::uint64_t delay_us = latency_us;
  if (bandwidth > 0) {
    delay_us += static_cast<std::uint64_t>(bytes) * 1000000ULL / bandwidth;
  }
  if (delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
}

namespace {
std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ChannelConfig Channel::account_and_maybe_fail(const std::string& method,
                                              bool is_request,
                                              std::uint64_t* service_wait_us) {
  if (closed_) throw_error(ErrorCode::kUnavailable, "channel closed");
  std::lock_guard lock(mutex_);
  const std::uint64_t seq = ++transfer_seq_;

  auto fault = [&](const std::string& why) {
    stats_.faults_injected += 1;
    throw_error(ErrorCode::kUnavailable,
                "injected channel fault (" + why + ") at transfer #" +
                    std::to_string(seq) +
                    (method.empty() ? std::string() : " [" + method + "]"));
  };

  for (const auto& n : plan_.fail_transfers) {
    if (n == seq) fault("scripted transfer");
  }
  for (const auto& outage : plan_.outages) {
    if (seq >= outage.first && seq < outage.first + outage.length) {
      fault("outage window");
    }
  }
  if (is_request && !method.empty()) {
    for (auto& mf : plan_.method_faults) {
      if (mf.count == 0) continue;
      if (method.compare(0, mf.prefix.size(), mf.prefix) != 0) continue;
      if (mf.skip > 0) {
        --mf.skip;
        continue;
      }
      --mf.count;
      fault("method " + mf.prefix);
    }
  }
  if (config_.failure_probability > 0.0 &&
      std::uniform_real_distribution<double>(0.0, 1.0)(rng_) <
          config_.failure_probability) {
    fault("probabilistic");
  }
  if (is_request && service_wait_us != nullptr && config_.service_time_us > 0) {
    // Reserve the endpoint's next service slot: requests queue behind each
    // other (serialized per channel), but the wait itself happens outside
    // the lock so concurrent transfers on OTHER channels overlap freely.
    const std::uint64_t now = steady_now_us();
    const std::uint64_t start = std::max(now, busy_until_us_);
    busy_until_us_ = start + config_.service_time_us;
    *service_wait_us = busy_until_us_ - now;
  }
  return config_;
}

void Channel::transfer_request(std::size_t bytes, const std::string& method) {
  std::uint64_t service_wait_us = 0;
  const ChannelConfig cfg =
      account_and_maybe_fail(method, /*is_request=*/true, &service_wait_us);
  stats_.bytes_sent += bytes;
  stats_.round_trips += 1;
  if (service_wait_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(service_wait_us));
  }
  simulate_delay(cfg.one_way_latency_us, cfg.bandwidth_bytes_per_sec, bytes);
}

void Channel::transfer_response(std::size_t bytes, const std::string& method) {
  const ChannelConfig cfg = account_and_maybe_fail(method, /*is_request=*/false);
  stats_.bytes_received += bytes;
  simulate_delay(cfg.one_way_latency_us, cfg.bandwidth_bytes_per_sec, bytes);
}

}  // namespace datablinder::net
