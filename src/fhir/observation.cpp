#include "fhir/observation.hpp"

#include <array>

namespace datablinder::fhir {

using doc::Document;
using doc::Value;
using schema::Aggregate;
using schema::FieldAnnotation;
using schema::FieldType;
using schema::Operation;
using schema::ProtectionClass;
using schema::Schema;

namespace {
constexpr std::array<const char*, 4> kStatuses = {"final", "preliminary", "amended",
                                                  "corrected"};
constexpr std::array<const char*, 8> kCodes = {
    "glucose",    "cholesterol", "heart-rate", "blood-pressure",
    "hemoglobin", "creatinine",  "sodium",     "potassium"};
constexpr std::array<const char*, 16> kSubjects = {
    "John Doe",      "Jane Roe",     "Alice Martin",  "Bob Janssens",
    "Carla Peeters", "David Maes",   "Emma Jacobs",   "Frank Willems",
    "Grace Claes",   "Henry Goossens", "Iris Wouters", "Jack Mertens",
    "Karen Dubois",  "Leo Lambert",  "Mia Dupont",    "Noah Simon"};
constexpr std::array<const char*, 6> kPerformers = {
    "Dr. Smith", "Dr. Garcia", "Dr. Chen", "Nurse Adams", "Nurse Brown", "Dr. Yilmaz"};
constexpr std::array<const char*, 3> kInterpretations = {"Low", "Normal", "High"};

// The paper's example uses Unix timestamps around 2013.
constexpr std::int64_t kEffectiveBase = 1356998400;   // 2013-01-01
constexpr std::int64_t kEffectiveSpan = 2 * 365 * 24 * 3600;
}  // namespace

Document ObservationGenerator::next() {
  Document d;
  d.set("identifier", Value(rng_.range(1000, 999999)));
  d.set("status", Value(kStatuses[rng_.uniform(kStatuses.size())]));
  d.set("code", Value(kCodes[rng_.uniform(kCodes.size())]));
  d.set("subject", Value(kSubjects[rng_.uniform(kSubjects.size())]));
  const std::int64_t effective = kEffectiveBase + rng_.range(0, kEffectiveSpan);
  d.set("effective", Value(effective));
  d.set("issued", Value(effective + rng_.range(3600, 30 * 24 * 3600)));
  d.set("performer", Value(kPerformers[rng_.uniform(kPerformers.size())]));
  // Glucose-like magnitude with one decimal.
  d.set("value", Value(static_cast<double>(rng_.range(35, 120)) / 10.0));
  d.set("interpretation", Value(kInterpretations[rng_.uniform(kInterpretations.size())]));
  return d;
}

Value ObservationGenerator::random_status() {
  return Value(kStatuses[rng_.uniform(kStatuses.size())]);
}

Value ObservationGenerator::random_code() {
  return Value(kCodes[rng_.uniform(kCodes.size())]);
}

Value ObservationGenerator::random_subject() {
  return Value(kSubjects[rng_.uniform(kSubjects.size())]);
}

Value ObservationGenerator::random_performer() {
  return Value(kPerformers[rng_.uniform(kPerformers.size())]);
}

std::pair<Value, Value> ObservationGenerator::random_effective_range() {
  const std::int64_t start = kEffectiveBase + rng_.range(0, kEffectiveSpan - 1);
  const std::int64_t width = rng_.range(24 * 3600, 60 * 24 * 3600);
  return {Value(start), Value(start + width)};
}

Schema observation_schema(const std::string& name) {
  Schema s(name);
  s.plain_field("identifier", FieldType::kInt);
  s.plain_field("interpretation", FieldType::kString);

  FieldAnnotation status;
  status.type = FieldType::kString;
  status.sensitive = true;
  status.protection = ProtectionClass::kClass3;
  status.operations = {Operation::kInsert, Operation::kEquality, Operation::kBoolean};
  s.field("status", status);

  FieldAnnotation code = status;  // C3, op [I, EQ, BL]
  s.field("code", code);

  FieldAnnotation subject;
  subject.type = FieldType::kString;
  subject.sensitive = true;
  subject.protection = ProtectionClass::kClass2;
  subject.operations = {Operation::kInsert, Operation::kEquality};
  s.field("subject", subject);

  FieldAnnotation effective;
  effective.type = FieldType::kInt;
  effective.sensitive = true;
  effective.protection = ProtectionClass::kClass5;
  effective.operations = {Operation::kInsert, Operation::kEquality,
                          Operation::kBoolean, Operation::kRange};
  s.field("effective", effective);

  FieldAnnotation issued = effective;  // C5, op [I, EQ, BL, RG]
  s.field("issued", issued);

  FieldAnnotation performer;
  performer.type = FieldType::kString;
  performer.sensitive = true;
  performer.protection = ProtectionClass::kClass1;
  performer.operations = {Operation::kInsert};
  s.field("performer", performer);

  FieldAnnotation value;
  value.type = FieldType::kDouble;
  value.sensitive = true;
  value.protection = ProtectionClass::kClass3;
  value.operations = {Operation::kInsert, Operation::kEquality, Operation::kBoolean};
  value.aggregates = {Aggregate::kAverage};
  s.field("value", value);

  return s;
}

Schema benchmark_schema(const std::string& name) {
  // §5.2: "8 tactics ... namely Mitra, RND, Paillier, and five times DET".
  Schema s(name);
  s.plain_field("identifier", FieldType::kInt);
  s.plain_field("interpretation", FieldType::kString);

  auto det_field = [&](const std::string& field, FieldType type) {
    FieldAnnotation ann;
    ann.type = type;
    ann.sensitive = true;
    ann.protection = ProtectionClass::kClass4;  // DET-level
    ann.operations = {Operation::kInsert, Operation::kEquality};
    s.field(field, ann);
  };
  det_field("status", FieldType::kString);
  det_field("code", FieldType::kString);
  det_field("effective", FieldType::kInt);
  det_field("issued", FieldType::kInt);

  FieldAnnotation subject;
  subject.type = FieldType::kString;
  subject.sensitive = true;
  subject.protection = ProtectionClass::kClass2;  // Mitra-level
  subject.operations = {Operation::kInsert, Operation::kEquality};
  s.field("subject", subject);

  FieldAnnotation performer;
  performer.type = FieldType::kString;
  performer.sensitive = true;
  performer.protection = ProtectionClass::kClass1;  // RND-level
  performer.operations = {Operation::kInsert};
  s.field("performer", performer);

  FieldAnnotation value;
  value.type = FieldType::kDouble;
  value.sensitive = true;
  value.protection = ProtectionClass::kClass4;  // 5th DET
  value.operations = {Operation::kInsert, Operation::kEquality};
  value.aggregates = {Aggregate::kAverage};     // + Paillier
  s.field("value", value);

  return s;
}

}  // namespace datablinder::fhir
