// FHIR-style Observation documents (paper §5.1).
//
// Synthetic generator for the industry-standard FHIR Observation resource
// the paper validates with (glucose measurement example): identifier,
// status, code, subject, effective, issued, performer, value,
// interpretation. Two annotated schemas are provided:
//   * observation_schema()  — the §5.1 example annotations (BIEX-2Lev,
//     Mitra, DET+OPE, RND, Paillier selection), and
//   * benchmark_schema()    — the §5.2 performance-evaluation policy whose
//     selection yields exactly the paper's 8 tactic instances: Mitra, RND,
//     Paillier and five DETs.
#pragma once

#include "common/rng.hpp"
#include "doc/value.hpp"
#include "schema/schema.hpp"

namespace datablinder::fhir {

/// Deterministic generator of realistic Observation documents.
class ObservationGenerator {
 public:
  explicit ObservationGenerator(std::uint64_t seed) : rng_(seed) {}

  /// Fresh random observation (no id; the middleware assigns one).
  doc::Document next();

  // Random *existing-ish* query values, drawn from the same pools the
  // generator uses so searches hit real data.
  doc::Value random_status();
  doc::Value random_code();
  doc::Value random_subject();
  doc::Value random_performer();
  /// Random [lo, hi] window over the `effective` timestamp domain.
  std::pair<doc::Value, doc::Value> random_effective_range();

  DetRng& rng() { return rng_; }

 private:
  DetRng rng_;
};

/// The §5.1 annotation example (protection classes C1..C5, ops, aggregates).
schema::Schema observation_schema(const std::string& name = "observations");

/// The §5.2 benchmark policy: 8 tactics — Mitra, RND, Paillier, 5x DET.
schema::Schema benchmark_schema(const std::string& name = "observations");

}  // namespace datablinder::fhir
