#include "bigint/montgomery.hpp"

#include "common/status.hpp"

namespace datablinder::bigint {

namespace {
using U128 = unsigned __int128;
constexpr unsigned kLimbBits = 64;

/// m^{-1} mod 2^64 for odd m, by Hensel lifting: each Newton step
/// x <- x * (2 - m*x) doubles the number of correct low bits, and x = m
/// is already correct mod 2^3.
std::uint64_t word_inverse(std::uint64_t m) {
  std::uint64_t x = m;
  for (int i = 0; i < 5; ++i) x *= 2 - m * x;
  return x;
}
}  // namespace

Montgomery::Montgomery(const BigInt& m) : modulus_(m) {
  require(!m.is_negative() && m > BigInt(1), "Montgomery: modulus must be > 1");
  require(m.is_odd(), "Montgomery: modulus must be odd");
  mod_ = m.limbs_;
  n_ = mod_.size();
  n0_ = ~word_inverse(mod_[0]) + 1;  // -m^{-1} mod 2^64

  // R^2 mod m and R mod m via one division each — the precomputation every
  // later mul/pow amortizes away.
  BigInt r2 = (BigInt(1) << (2 * kLimbBits * n_)).mod(modulus_);
  r2_ = std::move(r2.limbs_);
  r2_.resize(n_, 0);
  BigInt r1 = (BigInt(1) << (kLimbBits * n_)).mod(modulus_);
  one_mont_ = std::move(r1.limbs_);
  one_mont_.resize(n_, 0);
}

Montgomery::Limbs Montgomery::residue(const BigInt& a) const {
  Limbs out = a.mod(modulus_).limbs_;
  out.resize(n_, 0);
  return out;
}

BigInt Montgomery::from_residue(const Limbs& a) const {
  BigInt out;
  out.limbs_ = a;
  out.trim();
  return out;
}

// CIOS: interleaves multiplication by b with word-by-word Montgomery
// reduction; t never grows beyond n_+2 limbs (Koç, Acar & Kaliski 1996).
void Montgomery::cios(const Limbs& a, const Limbs& b, Limbs& out) const {
  const std::size_t n = n_;
  Limbs t(n + 2, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // t += a[i] * b
    const U128 ai = a[i];
    U128 carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const U128 s = t[j] + ai * b[j] + carry;
      t[j] = static_cast<Limb>(s);
      carry = s >> kLimbBits;
    }
    U128 s = t[n] + carry;
    t[n] = static_cast<Limb>(s);
    t[n + 1] = static_cast<Limb>(s >> kLimbBits);

    // One reduction word: make t divisible by 2^64 and shift it out.
    const Limb mfactor = t[0] * n0_;
    const U128 mf = mfactor;
    s = t[0] + mf * mod_[0];
    carry = s >> kLimbBits;  // low word is zero by construction
    for (std::size_t j = 1; j < n; ++j) {
      s = t[j] + mf * mod_[j] + carry;
      t[j - 1] = static_cast<Limb>(s);
      carry = s >> kLimbBits;
    }
    s = t[n] + carry;
    t[n - 1] = static_cast<Limb>(s);
    t[n] = t[n + 1] + static_cast<Limb>(s >> kLimbBits);
    t[n + 1] = 0;
  }

  // Conditional final subtraction: t in [0, 2m).
  bool ge = t[n] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = n; i-- > 0;) {
      if (t[i] != mod_[i]) {
        ge = t[i] > mod_[i];
        break;
      }
    }
  }
  out.assign(n, 0);
  if (ge) {
    Limb borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Limb d = t[i] - mod_[i] - borrow;
      borrow = (t[i] < mod_[i]) || (t[i] == mod_[i] && borrow) ? 1 : 0;
      out[i] = d;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = t[i];
  }
}

BigInt Montgomery::mul(const BigInt& a, const BigInt& b) const {
  // cios(a, b) = a*b*R^-1; a second pass against R^2 restores the factor.
  Limbs t, result;
  cios(residue(a), residue(b), t);
  cios(t, r2_, result);
  return from_residue(result);
}

BigInt Montgomery::pow(const BigInt& base, const BigInt& exp) const {
  require(!exp.is_negative(), "Montgomery::pow: negative exponent");
  if (exp.is_zero()) return BigInt(1).mod(modulus_);

  // Montgomery form of the base and the 16-entry window table.
  Limbs base_m;
  cios(residue(base), r2_, base_m);
  std::vector<Limbs> table(16);
  table[0] = one_mont_;
  table[1] = base_m;
  for (std::size_t i = 2; i < 16; ++i) cios(table[i - 1], base_m, table[i]);

  const std::size_t bits = exp.bit_length();
  const std::size_t windows = (bits + 3) / 4;
  auto window_digit = [&](std::size_t w) {
    unsigned d = 0;
    for (unsigned k = 0; k < 4; ++k) {
      if (exp.bit(4 * w + k)) d |= 1u << k;
    }
    return d;
  };

  Limbs acc = table[window_digit(windows - 1)];
  Limbs tmp;
  for (std::size_t w = windows - 1; w-- > 0;) {
    for (int s = 0; s < 4; ++s) {
      cios(acc, acc, tmp);
      acc.swap(tmp);
    }
    // Unconditional table multiply (digit 0 hits the Montgomery one), so
    // the CIOS sequence depends only on the exponent's bit-length.
    cios(acc, table[window_digit(w)], tmp);
    acc.swap(tmp);
  }

  Limbs one(n_, 0);
  one[0] = 1;
  cios(acc, one, tmp);  // leave the residue domain
  return from_residue(tmp);
}

}  // namespace datablinder::bigint
