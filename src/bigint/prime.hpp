// Probabilistic primality testing and prime generation for Paillier and
// Sophos (RSA trapdoor permutation) key generation.
#pragma once

#include "bigint/bigint.hpp"

namespace datablinder::bigint {

/// Miller–Rabin with `rounds` random bases (error < 4^-rounds).
bool is_probable_prime(const BigInt& n, int rounds = 24);

/// Generates a random prime with exactly `bits` bits.
BigInt generate_prime(std::size_t bits, int rounds = 24);

/// Generates a *safe-ish* RSA/Paillier prime pair (p, q) of `bits` bits each
/// with p != q and gcd(pq, (p-1)(q-1)) == 1 (required by Paillier when using
/// g = n + 1).
std::pair<BigInt, BigInt> generate_prime_pair(std::size_t bits);

}  // namespace datablinder::bigint
