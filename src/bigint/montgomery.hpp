// Montgomery modular arithmetic context (Montgomery, 1985).
//
// Precomputes, once per odd modulus m of n 64-bit limbs:
//   * n0'  = -m^{-1} mod 2^64          (word-inverse, Hensel lifting)
//   * R^2 mod m, where R = 2^(64 n)    (one Knuth-D division, amortized)
// after which every modular multiplication is a single CIOS
// (Coarsely-Integrated Operand Scanning) pass — no division at all — and
// modular exponentiation runs a fixed 4-bit-window ladder over CIOS steps.
//
// This is the kernel under every public-key hot path in the library:
// Paillier encrypt/decrypt (mod n^2, and mod p^2/q^2 under CRT), the
// Sophos RSA trapdoor permutation, and ElGamal's four exponentiations.
// Callers hold one context per long-lived modulus; `BigInt::pow_mod`
// builds a transient context for one-shot odd-modulus calls.
//
// The window ladder multiplies unconditionally by the table entry (the
// zero digit multiplies by the Montgomery one), so the CIOS sequence per
// exponent bit-length is fixed — square-and-multiply's value-dependent
// multiply pattern does not reappear here.
#pragma once

#include <cstdint>
#include <vector>

#include "bigint/bigint.hpp"

namespace datablinder::bigint {

class Montgomery {
 public:
  /// Requires m odd and > 1; throws Error(kInvalidArgument) otherwise.
  /// (Even moduli cannot be Montgomery-reduced — callers keep the generic
  /// `BigInt::pow_mod_generic` path for those.)
  explicit Montgomery(const BigInt& m);

  const BigInt& modulus() const noexcept { return modulus_; }
  std::size_t limb_count() const noexcept { return n_; }

  /// (a * b) mod m — two CIOS passes (into and out of the residue domain).
  BigInt mul(const BigInt& a, const BigInt& b) const;

  /// base^exp mod m — fixed 4-bit-window exponentiation. Requires exp >= 0.
  BigInt pow(const BigInt& base, const BigInt& exp) const;

 private:
  using Limb = BigInt::Limb;
  using Limbs = std::vector<Limb>;

  /// Fixed-width (n_-limb) residue from a reduced BigInt.
  Limbs residue(const BigInt& a) const;
  BigInt from_residue(const Limbs& a) const;

  /// out = (a * b * R^-1) mod m, all fixed n_-limb vectors.
  void cios(const Limbs& a, const Limbs& b, Limbs& out) const;

  BigInt modulus_;
  Limbs mod_;       // modulus, exactly n_ limbs
  Limbs r2_;        // R^2 mod m
  Limbs one_mont_;  // R mod m (Montgomery form of 1)
  Limb n0_ = 0;     // -m^{-1} mod 2^64
  std::size_t n_ = 0;
};

}  // namespace datablinder::bigint
