// Arbitrary-precision integers.
//
// Sign-magnitude representation over 64-bit limbs (little-endian) with
// `__uint128_t` accumulation in the inner loops. Provides everything the
// Paillier cryptosystem and the Sophos RSA trapdoor permutation need:
// schoolbook/Knuth-D arithmetic, modular exponentiation, modular inverse,
// gcd/lcm, and random sampling.
//
// Modular exponentiation has two paths:
//  * `pow_mod` — for odd moduli, delegates to a `Montgomery` reduction
//    context (montgomery.hpp) built on the fly; even moduli fall back to
//    the generic square-and-multiply below.
//  * `pow_mod_generic` — the reference square-and-multiply over Knuth-D
//    division, kept as the differential-testing baseline and the even-
//    modulus fallback.
// Callers exponentiating repeatedly under one modulus (Paillier, RSA,
// ElGamal) should construct a `Montgomery` context once and use the
// context-taking overloads to amortize the precomputation.
//
// This is a from-scratch replacement for the Java BigInteger the paper's
// prototype inherited from Javallier/Bouncy Castle.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace datablinder::bigint {

class Montgomery;

class BigInt {
 public:
  using Limb = std::uint64_t;

  BigInt() = default;
  BigInt(std::int64_t v);   // NOLINT(google-explicit-constructor) — numeric literal ergonomics
  BigInt(std::uint64_t v);  // NOLINT(google-explicit-constructor)
  BigInt(int v) : BigInt(static_cast<std::int64_t>(v)) {}  // NOLINT

  /// Parses a decimal string with optional leading '-'.
  static BigInt from_decimal(std::string_view s);

  /// Parses a hex string (no 0x prefix, case-insensitive).
  static BigInt from_hex(std::string_view s);

  /// Interprets big-endian bytes as a non-negative integer.
  static BigInt from_bytes(BytesView b);

  /// Big-endian byte encoding (minimal length; empty for zero unless
  /// `min_len` pads). Requires *this >= 0.
  Bytes to_bytes(std::size_t min_len = 0) const;

  std::string to_decimal() const;
  std::string to_hex() const;

  bool is_zero() const noexcept { return limbs_.empty(); }
  bool is_negative() const noexcept { return negative_; }
  bool is_odd() const noexcept { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_even() const noexcept { return !is_odd(); }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const noexcept;

  /// Value of bit i (0 = least significant).
  bool bit(std::size_t i) const noexcept;

  /// Converts to uint64; requires the value to fit and be non-negative.
  std::uint64_t to_u64() const;
  /// Converts to int64; requires the magnitude to fit.
  std::int64_t to_i64() const;

  BigInt operator-() const;
  BigInt operator+(const BigInt& rhs) const;
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  BigInt operator/(const BigInt& rhs) const;
  /// Remainder with the sign of the dividend (C++ semantics).
  BigInt operator%(const BigInt& rhs) const;

  BigInt& operator+=(const BigInt& rhs) { return *this = *this + rhs; }
  BigInt& operator-=(const BigInt& rhs) { return *this = *this - rhs; }
  BigInt& operator*=(const BigInt& rhs) { return *this = *this * rhs; }
  BigInt& operator%=(const BigInt& rhs) { return *this = *this % rhs; }

  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  std::strong_ordering operator<=>(const BigInt& rhs) const noexcept;
  bool operator==(const BigInt& rhs) const noexcept = default;

  /// Euclidean (always non-negative) remainder mod m. Requires m > 0.
  BigInt mod(const BigInt& m) const;

  /// (this + rhs) mod m, inputs assumed already reduced.
  BigInt add_mod(const BigInt& rhs, const BigInt& m) const;

  /// (this * rhs) mod m.
  BigInt mul_mod(const BigInt& rhs, const BigInt& m) const;

  /// (this * rhs) mod ctx.modulus() through a Montgomery context —
  /// amortizes the per-modulus precomputation across calls.
  BigInt mul_mod(const BigInt& rhs, const Montgomery& ctx) const;

  /// this^exp mod m. Requires exp >= 0, m > 0. Odd moduli route through a
  /// transient Montgomery context; even moduli use the generic path.
  BigInt pow_mod(const BigInt& exp, const BigInt& m) const;

  /// this^exp mod ctx.modulus() through a caller-held Montgomery context.
  BigInt pow_mod(const BigInt& exp, const Montgomery& ctx) const;

  /// Reference square-and-multiply over Knuth-D division. Works for any
  /// modulus; the differential suite pins `pow_mod` against this.
  BigInt pow_mod_generic(const BigInt& exp, const BigInt& m) const;

  /// Modular inverse; throws Error(kInvalidArgument) if gcd(this, m) != 1.
  BigInt inv_mod(const BigInt& m) const;

  static BigInt gcd(const BigInt& a, const BigInt& b);
  static BigInt lcm(const BigInt& a, const BigInt& b);

  /// Uniform random integer in [0, bound) using cryptographic randomness.
  static BigInt random_below(const BigInt& bound);

  /// Random integer with exactly `bits` bits (MSB set).
  static BigInt random_bits(std::size_t bits);

  /// Both quotient and remainder in one pass (truncated semantics).
  static void div_mod(const BigInt& num, const BigInt& den, BigInt& quot, BigInt& rem);

 private:
  friend class Montgomery;

  // Magnitude comparison ignoring sign.
  static int cmp_mag(const std::vector<Limb>& a, const std::vector<Limb>& b) noexcept;
  static std::vector<Limb> add_mag(const std::vector<Limb>& a, const std::vector<Limb>& b);
  // Requires |a| >= |b|.
  static std::vector<Limb> sub_mag(const std::vector<Limb>& a, const std::vector<Limb>& b);
  static std::vector<Limb> mul_mag(const std::vector<Limb>& a, const std::vector<Limb>& b);
  static void div_mag(const std::vector<Limb>& num, const std::vector<Limb>& den,
                      std::vector<Limb>& quot, std::vector<Limb>& rem);

  void trim() noexcept;

  // Little-endian limbs; empty means zero. negative_ is false for zero.
  std::vector<Limb> limbs_;
  bool negative_ = false;
};

}  // namespace datablinder::bigint
