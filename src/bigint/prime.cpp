#include "bigint/prime.hpp"

#include <array>

#include "common/status.hpp"

namespace datablinder::bigint {

namespace {
// Small primes for cheap trial division before Miller–Rabin.
constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};
}  // namespace

bool is_probable_prime(const BigInt& n, int rounds) {
  if (n < BigInt(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    const BigInt bp(static_cast<std::uint64_t>(p));
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }

  // Write n-1 = d * 2^r with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (d.is_even()) {
    d = d >> 1;
    ++r;
  }

  const BigInt two(2);
  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2].
    const BigInt a = BigInt(2) + BigInt::random_below(n - BigInt(4));
    BigInt x = a.pow_mod(d, n);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = x.mul_mod(x, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt generate_prime(std::size_t bits, int rounds) {
  require(bits >= 8, "generate_prime: need at least 8 bits");
  for (;;) {
    BigInt candidate = BigInt::random_bits(bits);
    if (candidate.is_even()) candidate += BigInt(1);
    if (is_probable_prime(candidate, rounds)) return candidate;
  }
}

std::pair<BigInt, BigInt> generate_prime_pair(std::size_t bits) {
  for (;;) {
    BigInt p = generate_prime(bits);
    BigInt q = generate_prime(bits);
    if (p == q) continue;
    const BigInt n = p * q;
    const BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    if (BigInt::gcd(n, phi) == BigInt(1)) return {std::move(p), std::move(q)};
  }
}

}  // namespace datablinder::bigint
