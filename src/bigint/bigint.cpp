#include "bigint/bigint.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "bigint/montgomery.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace datablinder::bigint {

namespace {
using U128 = unsigned __int128;
using I128 = __int128;
constexpr std::uint64_t kLimbMask = ~0ULL;
constexpr unsigned kLimbBits = 64;
}  // namespace

BigInt::BigInt(std::int64_t v) {
  negative_ = v < 0;
  // Avoid UB on INT64_MIN by negating in unsigned space.
  const std::uint64_t mag = negative_ ? ~static_cast<std::uint64_t>(v) + 1
                                      : static_cast<std::uint64_t>(v);
  if (mag != 0) limbs_.push_back(mag);
  if (limbs_.empty()) negative_ = false;
}

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void BigInt::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::from_decimal(std::string_view s) {
  require(!s.empty(), "BigInt::from_decimal: empty string");
  bool neg = false;
  std::size_t i = 0;
  if (s[0] == '-') {
    neg = true;
    i = 1;
    require(s.size() > 1, "BigInt::from_decimal: lone '-'");
  }
  BigInt out;
  for (; i < s.size(); ++i) {
    require(s[i] >= '0' && s[i] <= '9', "BigInt::from_decimal: bad digit");
    out = out * BigInt(10) + BigInt(static_cast<std::int64_t>(s[i] - '0'));
  }
  out.negative_ = neg && !out.is_zero();
  return out;
}

BigInt BigInt::from_hex(std::string_view s) {
  require(!s.empty(), "BigInt::from_hex: empty string");
  BigInt out;
  for (char c : s) {
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else { throw_error(ErrorCode::kInvalidArgument, "BigInt::from_hex: bad digit"); }
    out = (out << 4) + BigInt(static_cast<std::int64_t>(v));
  }
  return out;
}

BigInt BigInt::from_bytes(BytesView b) {
  BigInt out;
  const std::size_t n = b.size();
  out.limbs_.resize((n + 7) / 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // b[0] is the most significant byte.
    const std::size_t byte_index = n - 1 - i;  // position from LSB
    out.limbs_[byte_index / 8] |= static_cast<Limb>(b[i]) << (8 * (byte_index % 8));
  }
  out.trim();
  return out;
}

Bytes BigInt::to_bytes(std::size_t min_len) const {
  require(!negative_, "BigInt::to_bytes: negative value");
  const std::size_t bits = bit_length();
  std::size_t n = (bits + 7) / 8;
  if (n < min_len) n = min_len;
  Bytes out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t byte_index = i;  // from LSB
    const std::size_t limb = byte_index / 8;
    if (limb < limbs_.size()) {
      out[n - 1 - i] = static_cast<std::uint8_t>(limbs_[limb] >> (8 * (byte_index % 8)));
    }
  }
  return out;
}

std::string BigInt::to_decimal() const {
  if (is_zero()) return "0";
  // Repeated division by 1e9 for fewer iterations.
  std::vector<std::uint32_t> chunks;
  BigInt tmp = *this;
  tmp.negative_ = false;
  const BigInt billion(static_cast<std::int64_t>(1000000000));
  while (!tmp.is_zero()) {
    BigInt q, r;
    div_mod(tmp, billion, q, r);
    chunks.push_back(static_cast<std::uint32_t>(r.is_zero() ? 0 : r.to_u64()));
    tmp = q;
  }
  std::string out = negative_ ? "-" : "";
  out += std::to_string(chunks.back());
  for (auto it = chunks.rbegin() + 1; it != chunks.rend(); ++it) {
    std::string part = std::to_string(*it);
    out += std::string(9 - part.size(), '0') + part;
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out = negative_ ? "-" : "";
  bool leading = true;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      const unsigned nib = (*it >> shift) & 0xf;
      if (leading && nib == 0) continue;
      leading = false;
      out.push_back(kDigits[nib]);
    }
  }
  return out;
}

std::size_t BigInt::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  return kLimbBits * (limbs_.size() - 1) +
         (kLimbBits - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool BigInt::bit(std::size_t i) const noexcept {
  const std::size_t limb = i / kLimbBits;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % kLimbBits)) & 1;
}

std::uint64_t BigInt::to_u64() const {
  require(!negative_, "BigInt::to_u64: negative");
  require(limbs_.size() <= 1, "BigInt::to_u64: overflow");
  return limbs_.empty() ? 0 : limbs_[0];
}

std::int64_t BigInt::to_i64() const {
  require(limbs_.size() <= 1, "BigInt::to_i64: overflow");
  const std::uint64_t mag = limbs_.empty() ? 0 : limbs_[0];
  if (negative_) {
    require(mag <= static_cast<std::uint64_t>(INT64_MAX) + 1, "BigInt::to_i64: overflow");
    return -static_cast<std::int64_t>(mag - 1) - 1;
  }
  require(mag <= static_cast<std::uint64_t>(INT64_MAX), "BigInt::to_i64: overflow");
  return static_cast<std::int64_t>(mag);
}

int BigInt::cmp_mag(const std::vector<Limb>& a, const std::vector<Limb>& b) noexcept {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<BigInt::Limb> BigInt::add_mag(const std::vector<Limb>& a,
                                          const std::vector<Limb>& b) {
  const auto& big = a.size() >= b.size() ? a : b;
  const auto& small = a.size() >= b.size() ? b : a;
  std::vector<Limb> out(big.size() + 1, 0);
  U128 carry = 0;
  for (std::size_t i = 0; i < big.size(); ++i) {
    const U128 sum = carry + big[i] + (i < small.size() ? small[i] : 0);
    out[i] = static_cast<Limb>(sum);
    carry = sum >> kLimbBits;
  }
  out[big.size()] = static_cast<Limb>(carry);
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<BigInt::Limb> BigInt::sub_mag(const std::vector<Limb>& a,
                                          const std::vector<Limb>& b) {
  assert(cmp_mag(a, b) >= 0);
  std::vector<Limb> out(a.size(), 0);
  Limb borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Limb bi = i < b.size() ? b[i] : 0;
    const Limb ai = a[i];
    const Limb diff = ai - bi - borrow;
    // Borrow iff a < b + borrow in full precision.
    borrow = (ai < bi) || (ai == bi && borrow) ? 1 : 0;
    out[i] = diff;
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<BigInt::Limb> BigInt::mul_mag(const std::vector<Limb>& a,
                                          const std::vector<Limb>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<Limb> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    U128 carry = 0;
    const U128 ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      const U128 cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<Limb>(cur);
      carry = cur >> kLimbBits;
    }
    out[i + b.size()] += static_cast<Limb>(carry);
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

// Knuth TAOCP vol. 2, Algorithm 4.3.1 D, over 64-bit limbs with 128-bit
// intermediates.
void BigInt::div_mag(const std::vector<Limb>& num, const std::vector<Limb>& den,
                     std::vector<Limb>& quot, std::vector<Limb>& rem) {
  quot.clear();
  rem.clear();
  if (den.empty()) throw_error(ErrorCode::kInvalidArgument, "BigInt: division by zero");
  if (cmp_mag(num, den) < 0) {
    rem = num;
    return;
  }

  // Single-limb fast path.
  if (den.size() == 1) {
    const Limb d = den[0];
    quot.assign(num.size(), 0);
    Limb r = 0;
    for (std::size_t i = num.size(); i-- > 0;) {
      const U128 cur = (static_cast<U128>(r) << kLimbBits) | num[i];
      quot[i] = static_cast<Limb>(cur / d);
      r = static_cast<Limb>(cur % d);
    }
    while (!quot.empty() && quot.back() == 0) quot.pop_back();
    if (r != 0) rem.push_back(r);
    return;
  }

  const std::size_t n = den.size();
  const std::size_t m = num.size() - n;

  // D1: normalize so the divisor's top limb has its high bit set.
  const unsigned shift = static_cast<unsigned>(std::countl_zero(den.back()));
  std::vector<Limb> v(n);
  for (std::size_t i = n; i-- > 0;) {
    v[i] = den[i] << shift;
    if (shift && i > 0) v[i] |= den[i - 1] >> (kLimbBits - shift);
  }
  std::vector<Limb> u(num.size() + 1, 0);
  u[num.size()] = shift ? (num.back() >> (kLimbBits - shift)) : 0;
  for (std::size_t i = num.size(); i-- > 0;) {
    u[i] = num[i] << shift;
    if (shift && i > 0) u[i] |= num[i - 1] >> (kLimbBits - shift);
  }

  quot.assign(m + 1, 0);
  const Limb v_top = v[n - 1];
  const Limb v_second = v[n - 2];

  // D2..D7: main loop.
  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate q_hat. The `q_hat >= base` disjunct short-circuits, so
    // the 64x64 products below never see a q_hat wider than one limb.
    const U128 numerator = (static_cast<U128>(u[j + n]) << kLimbBits) | u[j + n - 1];
    U128 q_hat = numerator / v_top;
    U128 r_hat = numerator % v_top;
    while (q_hat > kLimbMask ||
           static_cast<U128>(static_cast<Limb>(q_hat)) * v_second >
               ((r_hat << kLimbBits) | u[j + n - 2])) {
      --q_hat;
      r_hat += v_top;
      if (r_hat > kLimbMask) break;
    }

    // D4: multiply and subtract u[j..j+n] -= q_hat * v.
    const Limb qh = static_cast<Limb>(q_hat);
    Limb mul_carry = 0;
    Limb borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const U128 p = static_cast<U128>(qh) * v[i] + mul_carry;
      mul_carry = static_cast<Limb>(p >> kLimbBits);
      const Limb pl = static_cast<Limb>(p);
      const Limb ui = u[i + j];
      const Limb diff = ui - pl - borrow;
      borrow = (ui < pl) || (ui == pl && borrow) ? 1 : 0;
      u[i + j] = diff;
    }
    I128 top = static_cast<I128>(u[j + n]) - static_cast<I128>(mul_carry) -
               static_cast<I128>(borrow);

    // D5/D6: if we subtracted too much, add back one divisor.
    if (top < 0) {
      --q_hat;
      U128 c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const U128 sum = static_cast<U128>(u[i + j]) + v[i] + c;
        u[i + j] = static_cast<Limb>(sum);
        c = sum >> kLimbBits;
      }
      top += static_cast<I128>(c);
    }
    u[j + n] = static_cast<Limb>(top);
    quot[j] = static_cast<Limb>(q_hat);
  }

  while (!quot.empty() && quot.back() == 0) quot.pop_back();

  // D8: denormalize the remainder.
  rem.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    rem[i] = u[i] >> shift;
    if (shift && i + 1 < u.size()) rem[i] |= u[i + 1] << (kLimbBits - shift);
  }
  while (!rem.empty() && rem.back() == 0) rem.pop_back();
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  BigInt out;
  if (negative_ == rhs.negative_) {
    out.limbs_ = add_mag(limbs_, rhs.limbs_);
    out.negative_ = negative_;
  } else {
    const int c = cmp_mag(limbs_, rhs.limbs_);
    if (c == 0) return BigInt();
    if (c > 0) {
      out.limbs_ = sub_mag(limbs_, rhs.limbs_);
      out.negative_ = negative_;
    } else {
      out.limbs_ = sub_mag(rhs.limbs_, limbs_);
      out.negative_ = rhs.negative_;
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& rhs) const { return *this + (-rhs); }

BigInt BigInt::operator*(const BigInt& rhs) const {
  BigInt out;
  out.limbs_ = mul_mag(limbs_, rhs.limbs_);
  out.negative_ = !out.limbs_.empty() && (negative_ != rhs.negative_);
  return out;
}

void BigInt::div_mod(const BigInt& num, const BigInt& den, BigInt& quot, BigInt& rem) {
  BigInt q, r;
  div_mag(num.limbs_, den.limbs_, q.limbs_, r.limbs_);
  q.negative_ = !q.limbs_.empty() && (num.negative_ != den.negative_);
  r.negative_ = !r.limbs_.empty() && num.negative_;
  quot = std::move(q);
  rem = std::move(r);
}

BigInt BigInt::operator/(const BigInt& rhs) const {
  BigInt q, r;
  div_mod(*this, rhs, q, r);
  return q;
}

BigInt BigInt::operator%(const BigInt& rhs) const {
  BigInt q, r;
  div_mod(*this, rhs, q, r);
  return r;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / kLimbBits;
  const unsigned bit_shift = bits % kLimbBits;
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift) out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (kLimbBits - bit_shift);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / kLimbBits;
  const unsigned bit_shift = bits % kLimbBits;
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (kLimbBits - bit_shift);
    }
  }
  out.trim();
  return out;
}

std::strong_ordering BigInt::operator<=>(const BigInt& rhs) const noexcept {
  if (negative_ != rhs.negative_) {
    return negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  const int c = cmp_mag(limbs_, rhs.limbs_);
  const int signed_c = negative_ ? -c : c;
  if (signed_c < 0) return std::strong_ordering::less;
  if (signed_c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

BigInt BigInt::mod(const BigInt& m) const {
  require(!m.is_negative() && !m.is_zero(), "BigInt::mod: modulus must be positive");
  BigInt r = *this % m;
  if (r.is_negative()) r += m;
  return r;
}

BigInt BigInt::add_mod(const BigInt& rhs, const BigInt& m) const {
  BigInt s = *this + rhs;
  if (s >= m) s -= m;
  if (s.is_negative()) s += m;
  return s;
}

BigInt BigInt::mul_mod(const BigInt& rhs, const BigInt& m) const {
  return (*this * rhs).mod(m);
}

BigInt BigInt::mul_mod(const BigInt& rhs, const Montgomery& ctx) const {
  return ctx.mul(*this, rhs);
}

BigInt BigInt::pow_mod_generic(const BigInt& exp, const BigInt& m) const {
  require(!exp.is_negative(), "BigInt::pow_mod: negative exponent");
  require(!m.is_zero() && !m.is_negative(), "BigInt::pow_mod: bad modulus");
  if (m == BigInt(1)) return BigInt();
  BigInt base = this->mod(m);
  BigInt result(1);
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = result.mul_mod(result, m);
    if (exp.bit(i)) result = result.mul_mod(base, m);
  }
  return result;
}

BigInt BigInt::pow_mod(const BigInt& exp, const BigInt& m) const {
  require(!exp.is_negative(), "BigInt::pow_mod: negative exponent");
  require(!m.is_zero() && !m.is_negative(), "BigInt::pow_mod: bad modulus");
  if (m == BigInt(1)) return BigInt();
  // Odd moduli (every cryptographic modulus: RSA/Paillier n, safe primes)
  // take the Montgomery path; a transient context still wins for any
  // multi-squaring exponent. Even moduli cannot be Montgomery-reduced.
  if (m.is_odd() && exp.bit_length() > 1) {
    return Montgomery(m).pow(*this, exp);
  }
  return pow_mod_generic(exp, m);
}

BigInt BigInt::pow_mod(const BigInt& exp, const Montgomery& ctx) const {
  return ctx.pow(*this, exp);
}

BigInt BigInt::inv_mod(const BigInt& m) const {
  require(!m.is_zero() && !m.is_negative(), "BigInt::inv_mod: bad modulus");
  // Extended Euclid on (a, m).
  BigInt a = this->mod(m);
  BigInt r0 = m, r1 = a;
  BigInt t0(0), t1(1);
  while (!r1.is_zero()) {
    BigInt q, r2;
    div_mod(r0, r1, q, r2);
    BigInt t2 = t0 - q * t1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  if (r0 != BigInt(1)) {
    throw_error(ErrorCode::kInvalidArgument, "BigInt::inv_mod: not invertible");
  }
  return t0.mod(m);
}

BigInt BigInt::gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a, y = b;
  x.negative_ = false;
  y.negative_ = false;
  while (!y.is_zero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

BigInt BigInt::lcm(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt();
  BigInt g = gcd(a, b);
  BigInt out = (a / g) * b;
  out.negative_ = false;
  return out;
}

BigInt BigInt::random_below(const BigInt& bound) {
  require(!bound.is_zero() && !bound.is_negative(), "random_below: bound must be > 0");
  const std::size_t bits = bound.bit_length();
  const std::size_t nbytes = (bits + 7) / 8;
  for (;;) {
    Bytes raw = SecureRng::bytes(nbytes);
    // Mask excess high bits to make rejection efficient.
    const unsigned excess = static_cast<unsigned>(nbytes * 8 - bits);
    raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
    BigInt candidate = from_bytes(raw);
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::random_bits(std::size_t bits) {
  require(bits > 0, "random_bits: bits must be > 0");
  const std::size_t nbytes = (bits + 7) / 8;
  Bytes raw = SecureRng::bytes(nbytes);
  const unsigned excess = static_cast<unsigned>(nbytes * 8 - bits);
  raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
  raw[0] |= static_cast<std::uint8_t>(0x80 >> excess);  // force MSB
  return from_bytes(raw);
}

}  // namespace datablinder::bigint
