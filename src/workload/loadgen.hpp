// Locust-style closed-loop load generator (paper §5.2 set-up).
//
// N concurrent "users" issue a balanced mix of write (insert + secure
// indexing), read (equality search) and aggregate (homomorphic average)
// operations against an abstract scenario API. The three scenarios of the
// evaluation — S_A plaintext, S_B hard-coded tactics, S_C DataBlinder —
// implement the same API, so Figure 5's per-operation and overall
// throughput comparison falls out of one runner.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "doc/value.hpp"
#include "workload/stats.hpp"

namespace datablinder::workload {

/// What a benchmark scenario must provide. Implementations are
/// thread-safe: users call concurrently.
class ScenarioApi {
 public:
  virtual ~ScenarioApi() = default;

  virtual std::string name() const = 0;

  /// Stores one observation (no id; the scenario assigns one).
  virtual void insert_document(doc::Document d) = 0;

  /// Equality search; returns the number of matching documents.
  virtual std::size_t equality_search(const std::string& field,
                                      const doc::Value& value) = 0;

  /// Cloud-side average of the `value` field.
  virtual double aggregate_average(const std::string& field) = 0;
};

enum class OpKind { kWrite = 0, kRead = 1, kAggregate = 2 };

struct LoadConfig {
  std::size_t users = 16;            // concurrent closed-loop users
  std::size_t total_requests = 3000; // across all users
  std::size_t preload_documents = 500;  // inserted before the clock starts
  // Mix weights (normalized): the paper balances read/write/aggregate.
  double write_weight = 1.0;
  double read_weight = 1.0;
  double aggregate_weight = 1.0;
  std::uint64_t seed = 42;
};

struct OpResult {
  std::uint64_t count = 0;
  double throughput_rps = 0;  // ops/sec over the run's wall-clock
  LatencySummary latency;
};

struct RunResult {
  std::string scenario;
  double duration_s = 0;
  std::uint64_t total_requests = 0;
  double overall_throughput_rps = 0;
  LatencySummary overall_latency;
  OpResult write;
  OpResult read;
  OpResult aggregate;

  std::string to_report() const;
};

/// Runs the configured workload against the scenario and returns the
/// Figure 5 measurements.
RunResult run_load(ScenarioApi& api, const LoadConfig& config);

}  // namespace datablinder::workload
