// The three evaluation scenarios of paper §5.2:
//   S_A — the application stores plaintext documents, no middleware, no
//         tactics (upper throughput bound);
//   S_B — the data protection tactics are hard-coded into the application
//         (concrete tactic classes wired by hand, no schema validation, no
//         policy engine, no registry indirection);
//   S_C — the application uses DataBlinder (full Gateway).
// All three talk to a fresh CloudNode over the same simulated channel, so
// the differences isolate (a) the tactics' cost and (b) the middleware's
// own overhead — the 44% / 1.4% decomposition of Figure 5.
#pragma once

#include <memory>
#include <shared_mutex>

#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/sharding.hpp"
#include "core/tactics/det_tactic.hpp"
#include "core/tactics/mitra_tactic.hpp"
#include "core/tactics/paillier_tactic.hpp"
#include "core/tactics/rnd_tactic.hpp"
#include "workload/loadgen.hpp"

namespace datablinder::workload {

/// Everything one scenario run needs: an isolated cloud, channel and
/// gateway-side resources. With shards = 1 (default) the cloud collapses
/// to the classic single node + single channel (byte-identical wire
/// behaviour); with more, the scenarios run unchanged against the
/// consistent-hash-sharded cluster — the scale-out benchmark's whole
/// point is that the workload code cannot tell the difference.
struct ScenarioHarness {
  explicit ScenarioHarness(net::ChannelConfig channel_config = {},
                           std::size_t shards = 1);

  core::ShardedCloud cloud;
  net::RpcClient& rpc;          // cloud.client()
  core::CloudNode& cloud_node;  // shard 0, replica 0 (legacy accessors)
  net::Channel& channel;        // shard 0, replica 0
  kms::KeyManager kms;
  store::KvStore local_store;
};

/// S_A — plaintext baseline over the same store and channel.
class ScenarioA final : public ScenarioApi {
 public:
  explicit ScenarioA(ScenarioHarness& h);

  std::string name() const override { return "S_A (plaintext)"; }
  void insert_document(doc::Document d) override;
  std::size_t equality_search(const std::string& field, const doc::Value& value) override;
  double aggregate_average(const std::string& field) override;

 private:
  ScenarioHarness& h_;
};

/// S_B — the §5.2 tactic set (Mitra, RND, Paillier, 5x DET) wired by hand.
class ScenarioB final : public ScenarioApi {
 public:
  explicit ScenarioB(ScenarioHarness& h);

  std::string name() const override { return "S_B (hard-coded)"; }
  void insert_document(doc::Document d) override;
  std::size_t equality_search(const std::string& field, const doc::Value& value) override;
  double aggregate_average(const std::string& field) override;

 private:
  core::GatewayContext ctx(const std::string& field) const;

  ScenarioHarness& h_;
  crypto::AesGcm doc_cipher_;
  // Hard-coded tactic instances — exactly the 8 of the paper's benchmark.
  core::DetTactic det_status_, det_code_, det_effective_, det_issued_, det_value_;
  core::MitraTactic mitra_subject_;
  core::RndTactic rnd_performer_;
  core::PaillierTactic paillier_value_;
  mutable std::shared_mutex mutex_;
};

/// S_C — the same policy enforced through DataBlinder.
class ScenarioC final : public ScenarioApi {
 public:
  ScenarioC(ScenarioHarness& h, const core::TacticRegistry& registry);

  std::string name() const override { return "S_C (DataBlinder)"; }
  void insert_document(doc::Document d) override;
  std::size_t equality_search(const std::string& field, const doc::Value& value) override;
  double aggregate_average(const std::string& field) override;

  core::Gateway& gateway() { return gateway_; }

 private:
  core::Gateway gateway_;
};

}  // namespace datablinder::workload
