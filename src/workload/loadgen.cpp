#include "workload/loadgen.hpp"

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/stopwatch.hpp"
#include "fhir/observation.hpp"

namespace datablinder::workload {

namespace {
/// Query field rotation for equality searches (matches the §5.2 bench
/// policy: DET on status/code/effective-ish fields, Mitra on subject).
const char* kSearchFields[] = {"status", "code", "subject"};
}  // namespace

// dblint:thread-root — user_fn below runs on config.users concurrent threads.
RunResult run_load(ScenarioApi& api, const LoadConfig& config) {
  // Preload a corpus so searches and aggregates hit real data.
  {
    fhir::ObservationGenerator gen(config.seed);
    for (std::size_t i = 0; i < config.preload_documents; ++i) {
      api.insert_document(gen.next());
    }
  }

  const double total_weight =
      config.write_weight + config.read_weight + config.aggregate_weight;
  const double write_cut = config.write_weight / total_weight;
  const double read_cut = write_cut + config.read_weight / total_weight;

  // Signed on purpose: several threads race fetch_sub past zero, and an
  // unsigned counter would wrap and keep the losers looping forever.
  std::atomic<std::int64_t> remaining{static_cast<std::int64_t>(config.total_requests)};
  std::vector<LatencyRecorder> recorders(config.users * 3);

  auto user_fn = [&](std::size_t user_index) {
    fhir::ObservationGenerator gen(config.seed * 7919 + user_index + 1);
    LatencyRecorder& write_rec = recorders[user_index * 3 + 0];
    LatencyRecorder& read_rec = recorders[user_index * 3 + 1];
    LatencyRecorder& agg_rec = recorders[user_index * 3 + 2];

    while (remaining.fetch_sub(1) > 0) {
      const double roll = gen.rng().real();
      Stopwatch sw;
      if (roll < write_cut) {
        api.insert_document(gen.next());
        write_rec.record_ns(sw.elapsed_ns());
      } else if (roll < read_cut) {
        const char* field = kSearchFields[gen.rng().uniform(3)];
        doc::Value value = (field == std::string("status")) ? gen.random_status()
                           : (field == std::string("code")) ? gen.random_code()
                                                            : gen.random_subject();
        api.equality_search(field, value);
        read_rec.record_ns(sw.elapsed_ns());
      } else {
        api.aggregate_average("value");
        agg_rec.record_ns(sw.elapsed_ns());
      }
    }
  };

  Stopwatch run_clock;
  std::vector<std::thread> threads;
  threads.reserve(config.users);
  for (std::size_t u = 0; u < config.users; ++u) threads.emplace_back(user_fn, u);
  for (auto& t : threads) t.join();
  const double duration_s = run_clock.elapsed_s();

  LatencyRecorder write_all, read_all, agg_all, overall;
  for (std::size_t u = 0; u < config.users; ++u) {
    write_all.merge(recorders[u * 3 + 0]);
    read_all.merge(recorders[u * 3 + 1]);
    agg_all.merge(recorders[u * 3 + 2]);
  }
  overall.merge(write_all);
  overall.merge(read_all);
  overall.merge(agg_all);

  auto summarize = [&](const LatencyRecorder& rec) {
    OpResult r;
    r.count = rec.count();
    r.latency = rec.summarize();
    r.throughput_rps = duration_s > 0 ? static_cast<double>(r.count) / duration_s : 0;
    return r;
  };

  RunResult result;
  result.scenario = api.name();
  result.duration_s = duration_s;
  result.total_requests = overall.count();
  result.overall_latency = overall.summarize();
  result.overall_throughput_rps =
      duration_s > 0 ? static_cast<double>(result.total_requests) / duration_s : 0;
  result.write = summarize(write_all);
  result.read = summarize(read_all);
  result.aggregate = summarize(agg_all);
  return result;
}

std::string RunResult::to_report() const {
  char buf[720];
  std::snprintf(
      buf, sizeof(buf),
      "%-18s %8.1f req/s overall (%llu reqs in %.2fs)\n"
      "  write:     %8.1f req/s  %s\n"
      "  read:      %8.1f req/s  %s\n"
      "  aggregate: %8.1f req/s  %s\n"
      "  overall:   %s\n",
      scenario.c_str(), overall_throughput_rps,
      static_cast<unsigned long long>(total_requests), duration_s,
      write.throughput_rps, to_string(write.latency).c_str(), read.throughput_rps,
      to_string(read.latency).c_str(), aggregate.throughput_rps,
      to_string(aggregate.latency).c_str(), to_string(overall_latency).c_str());
  return buf;
}

}  // namespace datablinder::workload
