#include "workload/scenarios.hpp"

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "core/tactics/builtin.hpp"
#include "core/wire.hpp"
#include "doc/binary_codec.hpp"
#include "fhir/observation.hpp"

namespace datablinder::workload {

using core::wire::pack;
using core::wire::unpack;
using doc::Document;
using doc::Value;

namespace {
core::GatewayConfig harness_cloud_config(std::size_t shards) {
  core::GatewayConfig config;
  config.shards = shards;
  return config;
}
}  // namespace

ScenarioHarness::ScenarioHarness(net::ChannelConfig channel_config, std::size_t shards)
    : cloud(harness_cloud_config(shards), channel_config),
      rpc(cloud.client()),
      cloud_node(cloud.node(0, 0)),
      channel(cloud.channel(0, 0)) {}

// --- S_A ------------------------------------------------------------------

ScenarioA::ScenarioA(ScenarioHarness& h) : h_(h) {
  // A plaintext application would index its searchable fields.
  for (const char* field : {"status", "code", "subject", "effective"}) {
    h_.rpc.call("plain.index",
                pack({{"col", Value("observations")}, {"field", Value(field)}}));
  }
}

void ScenarioA::insert_document(Document d) {
  if (d.id.empty()) d.id = hex_encode(SecureRng::bytes(12));
  h_.rpc.call("plain.put", pack({{"col", Value("observations")},
                                 {"doc", Value(doc::encode_document(d))}}));
}

std::size_t ScenarioA::equality_search(const std::string& field, const Value& value) {
  const Bytes reply = h_.rpc.call(
      "plain.find_eq",
      pack({{"col", Value("observations")}, {"field", Value(field)}, {"value", value}}));
  return core::wire::get_arr(unpack(reply), "docs").size();
}

double ScenarioA::aggregate_average(const std::string& field) {
  const Bytes reply = h_.rpc.call(
      "plain.avg", pack({{"col", Value("observations")}, {"field", Value(field)}}));
  const doc::Object obj = unpack(reply);
  const double sum = core::wire::get(obj, "sum").as_double();
  const auto count = core::wire::get_int(obj, "count");
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

// --- S_B ------------------------------------------------------------------

core::GatewayContext ScenarioB::ctx(const std::string& field) const {
  core::GatewayContext c;
  c.cloud = &h_.rpc;
  c.local_store = &h_.local_store;
  c.kms = &h_.kms;
  c.collection = "observations";
  c.field = field;
  c.params = {{"paillier_modulus_bits", "512"}};
  return c;
}

ScenarioB::ScenarioB(ScenarioHarness& h)
    : h_(h),
      doc_cipher_(h.kms.derive("doc/observations", 32)),
      det_status_(ctx("status")),
      det_code_(ctx("code")),
      det_effective_(ctx("effective")),
      det_issued_(ctx("issued")),
      det_value_(ctx("value")),
      mitra_subject_(ctx("subject")),
      rnd_performer_(ctx("performer")),
      paillier_value_(ctx("value")) {
  det_status_.setup();
  det_code_.setup();
  det_effective_.setup();
  det_issued_.setup();
  det_value_.setup();
  mitra_subject_.setup();
  rnd_performer_.setup();
  paillier_value_.setup();
}

void ScenarioB::insert_document(Document d) {
  if (d.id.empty()) d.id = hex_encode(SecureRng::bytes(12));
  std::unique_lock lock(mutex_);
  const Bytes blob =
      doc_cipher_.seal_random_nonce(doc::encode_document(d), to_bytes(d.id));
  h_.rpc.call("doc.put", pack({{"col", Value("observations")},
                               {"id", Value(d.id)},
                               {"blob", Value(blob)}}));
  // Hand-wired routing — the inflexibility DataBlinder removes.
  det_status_.on_insert(d.id, d.at("status"));
  det_code_.on_insert(d.id, d.at("code"));
  det_effective_.on_insert(d.id, d.at("effective"));
  det_issued_.on_insert(d.id, d.at("issued"));
  det_value_.on_insert(d.id, d.at("value"));
  mitra_subject_.on_insert(d.id, d.at("subject"));
  rnd_performer_.on_insert(d.id, d.at("performer"));
  paillier_value_.on_insert(d.id, d.at("value"));
}

std::size_t ScenarioB::equality_search(const std::string& field, const Value& value) {
  std::shared_lock lock(mutex_);
  std::vector<std::string> ids;
  if (field == "status") ids = det_status_.equality_search(value);
  else if (field == "code") ids = det_code_.equality_search(value);
  else if (field == "effective") ids = det_effective_.equality_search(value);
  else if (field == "issued") ids = det_issued_.equality_search(value);
  else if (field == "value") ids = det_value_.equality_search(value);
  else if (field == "subject") ids = mitra_subject_.equality_search(value);
  else throw_error(ErrorCode::kInvalidArgument, "S_B: unsupported search field " + field);

  // Retrieval + SecureEnc: fetch and decrypt the matches like a real app.
  std::size_t count = 0;
  for (const auto& id : ids) {
    const Bytes reply = h_.rpc.call(
        "doc.get", pack({{"col", Value("observations")}, {"id", Value(id)}}));
    const Bytes blob = core::wire::get_bin(unpack(reply), "blob");
    if (doc_cipher_.open_with_nonce(blob, to_bytes(id))) ++count;
  }
  return count;
}

double ScenarioB::aggregate_average(const std::string& field) {
  require(field == "value", "S_B: only 'value' has an aggregate tactic");
  std::shared_lock lock(mutex_);
  return paillier_value_.aggregate(schema::Aggregate::kAverage).value;
}

// --- S_C ------------------------------------------------------------------

namespace {
core::GatewayConfig scenario_c_config() {
  core::GatewayConfig config;
  config.tactic_params = {{"paillier_modulus_bits", "512"}};
  return config;
}
}  // namespace

ScenarioC::ScenarioC(ScenarioHarness& h, const core::TacticRegistry& registry)
    : gateway_(h.rpc, h.kms, h.local_store, registry, scenario_c_config()) {
  gateway_.register_schema(fhir::benchmark_schema("observations"));
}

void ScenarioC::insert_document(Document d) {
  gateway_.insert("observations", std::move(d));
}

std::size_t ScenarioC::equality_search(const std::string& field, const Value& value) {
  return gateway_.equality_search("observations", field, value).size();
}

double ScenarioC::aggregate_average(const std::string& field) {
  return gateway_.aggregate("observations", field, schema::Aggregate::kAverage).value;
}

}  // namespace datablinder::workload
