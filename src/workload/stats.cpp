#include "workload/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace datablinder::workload {

void LatencyRecorder::merge(const LatencyRecorder& other) {
  samples_ns_.insert(samples_ns_.end(), other.samples_ns_.begin(),
                     other.samples_ns_.end());
}

LatencySummary LatencyRecorder::summarize() const {
  LatencySummary s;
  if (samples_ns_.empty()) return s;
  std::vector<std::uint64_t> sorted = samples_ns_;
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  double sum = 0;
  for (auto v : sorted) sum += static_cast<double>(v);
  s.mean_us = sum / static_cast<double>(sorted.size()) / 1e3;
  auto pct = [&](double p) {
    // Nearest-rank-up: p99 must capture the tail even when outliers are
    // rare (one 10 ms spike among 99 fast requests belongs in the p99).
    const auto idx = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(sorted.size() - 1)));
    return static_cast<double>(sorted[idx]) / 1e3;
  };
  s.p50_us = pct(0.50);
  s.p75_us = pct(0.75);
  s.p99_us = pct(0.99);
  s.max_us = static_cast<double>(sorted.back()) / 1e3;
  return s;
}

std::string to_string(const LatencySummary& s) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2fms p50=%.2fms p75=%.2fms p99=%.2fms",
                static_cast<unsigned long long>(s.count), s.mean_us / 1e3,
                s.p50_us / 1e3, s.p75_us / 1e3, s.p99_us / 1e3);
  return buf;
}

}  // namespace datablinder::workload
