// Latency/throughput statistics for the Locust-style load generator.
//
// Collects raw per-request latencies and computes the mean and the
// 50th/75th/99th percentiles the paper's §5.2 latency table reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace datablinder::workload {

struct LatencySummary {
  std::uint64_t count = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p75_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

class LatencyRecorder {
 public:
  void record_ns(std::uint64_t ns) { samples_ns_.push_back(ns); }

  void merge(const LatencyRecorder& other);

  LatencySummary summarize() const;

  std::uint64_t count() const noexcept { return samples_ns_.size(); }

 private:
  std::vector<std::uint64_t> samples_ns_;
};

/// Renders "count=..., mean=..., p50=..., p75=..., p99=..." in ms.
std::string to_string(const LatencySummary& s);

}  // namespace datablinder::workload
