// JSON text codec for the document model.
//
// Binary values round-trip as {"$bin": "<hex>"} wrapper objects, mirroring
// how BSON-style stores extend JSON. Used by examples, the FHIR generator
// and debugging; the wire protocol uses the binary codec instead.
#pragma once

#include <string>
#include <string_view>

#include "doc/value.hpp"

namespace datablinder::doc {

/// Serializes a value as compact JSON.
std::string to_json(const Value& v);

/// Serializes a document as {"id": ..., ...fields}.
std::string to_json(const Document& d);

/// Parses JSON text. Throws Error(kInvalidArgument) on malformed input.
Value parse_json(std::string_view text);

/// Parses a document: a JSON object whose "id" member (string) is split out.
Document parse_document_json(std::string_view text);

}  // namespace datablinder::doc
