// Order-preserving numeric normalization shared by the OPE/ORE tactics and
// the onion baseline (lives in doc/ so lower layers need not reach into core/).
//
// Field values (int or double) map to uint64 keys whose unsigned order
// equals the numeric order, using the IEEE-754 total-order bit trick. The
// mapping is invertible so the gateway can decode OPE min/max results.
#pragma once

#include <bit>
#include <cstdint>

#include "common/status.hpp"
#include "doc/value.hpp"

namespace datablinder::doc {

inline std::uint64_t ordered_key(const doc::Value& v) {
  if (v.type() != doc::ValueType::kInt && v.type() != doc::ValueType::kDouble) {
    throw_error(ErrorCode::kInvalidArgument,
                "range tactics require numeric fields, got " + v.to_display());
  }
  const double d = v.as_double();
  const auto bits = std::bit_cast<std::uint64_t>(d);
  constexpr std::uint64_t kMsb = 1ULL << 63;
  return (bits & kMsb) ? ~bits : (bits | kMsb);
}

inline double ordered_key_inverse(std::uint64_t key) {
  constexpr std::uint64_t kMsb = 1ULL << 63;
  const std::uint64_t bits = (key & kMsb) ? (key & ~kMsb) : ~key;
  return std::bit_cast<double>(bits);
}

}  // namespace datablinder::doc
