#include "doc/value.hpp"

#include "common/hex.hpp"
#include "common/status.hpp"

namespace datablinder::doc {

ValueType Value::type() const noexcept {
  return static_cast<ValueType>(data_.index());
}

bool Value::as_bool() const {
  require(std::holds_alternative<bool>(data_), "Value: not a bool");
  return std::get<bool>(data_);
}

std::int64_t Value::as_int() const {
  require(std::holds_alternative<std::int64_t>(data_), "Value: not an int");
  return std::get<std::int64_t>(data_);
}

double Value::as_double() const {
  if (std::holds_alternative<std::int64_t>(data_)) {
    return static_cast<double>(std::get<std::int64_t>(data_));
  }
  require(std::holds_alternative<double>(data_), "Value: not a double");
  return std::get<double>(data_);
}

const std::string& Value::as_string() const {
  require(std::holds_alternative<std::string>(data_), "Value: not a string");
  return std::get<std::string>(data_);
}

const Bytes& Value::as_binary() const {
  require(std::holds_alternative<Bytes>(data_), "Value: not binary");
  return std::get<Bytes>(data_);
}

const Array& Value::as_array() const {
  require(std::holds_alternative<Array>(data_), "Value: not an array");
  return std::get<Array>(data_);
}

const Object& Value::as_object() const {
  require(std::holds_alternative<Object>(data_), "Value: not an object");
  return std::get<Object>(data_);
}

Array& Value::as_array() {
  require(std::holds_alternative<Array>(data_), "Value: not an array");
  return std::get<Array>(data_);
}

Object& Value::as_object() {
  require(std::holds_alternative<Object>(data_), "Value: not an object");
  return std::get<Object>(data_);
}

Bytes Value::scalar_bytes() const {
  Bytes out;
  switch (type()) {
    case ValueType::kNull:
      out.push_back(0x00);
      return out;
    case ValueType::kBool:
      out.push_back(0x01);
      out.push_back(as_bool() ? 1 : 0);
      return out;
    case ValueType::kInt:
      out.push_back(0x02);
      append(out, be64(static_cast<std::uint64_t>(as_int())));
      return out;
    case ValueType::kDouble: {
      out.push_back(0x03);
      const double d = std::get<double>(data_);
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      append(out, be64(bits));
      return out;
    }
    case ValueType::kString:
      out.push_back(0x04);
      append(out, to_bytes(as_string()));
      return out;
    case ValueType::kBinary:
      out.push_back(0x05);
      append(out, as_binary());
      return out;
    case ValueType::kArray:
    case ValueType::kObject:
      throw_error(ErrorCode::kInvalidArgument, "Value::scalar_bytes: not a scalar");
  }
  throw_error(ErrorCode::kInternal, "Value::scalar_bytes: unreachable");
}

std::string Value::to_display() const {
  switch (type()) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return as_bool() ? "true" : "false";
    case ValueType::kInt: return std::to_string(as_int());
    case ValueType::kDouble: return std::to_string(std::get<double>(data_));
    case ValueType::kString: return '"' + as_string() + '"';
    case ValueType::kBinary: return "0x" + hex_encode(as_binary());
    case ValueType::kArray: {
      std::string out = "[";
      const auto& arr = as_array();
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i) out += ",";
        out += arr[i].to_display();
      }
      return out + "]";
    }
    case ValueType::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : as_object()) {
        if (!first) out += ",";
        first = false;
        out += '"' + k + "\":" + v.to_display();
      }
      return out + "}";
    }
  }
  return "?";
}

const Value& Document::at(const std::string& field) const {
  auto it = fields.find(field);
  if (it == fields.end()) {
    throw_error(ErrorCode::kNotFound, "Document: missing field '" + field + "'");
  }
  return it->second;
}

}  // namespace datablinder::doc
