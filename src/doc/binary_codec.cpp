#include "doc/binary_codec.hpp"

#include "common/status.hpp"

namespace datablinder::doc {

namespace {
enum Tag : std::uint8_t {
  kTagNull = 0,
  kTagFalse = 1,
  kTagTrue = 2,
  kTagInt = 3,
  kTagDouble = 4,
  kTagString = 5,
  kTagBinary = 6,
  kTagArray = 7,
  kTagObject = 8,
};

void encode_len(Bytes& out, std::size_t n) {
  append(out, be32(static_cast<std::uint32_t>(n)));
}

std::size_t decode_len(BytesView b, std::size_t& offset) {
  if (offset + 4 > b.size()) {
    throw_error(ErrorCode::kProtocolError, "binary_codec: truncated length");
  }
  const std::size_t n = read_be32(b.subspan(offset));
  offset += 4;
  return n;
}

void need(BytesView b, std::size_t offset, std::size_t n) {
  if (offset + n > b.size()) {
    throw_error(ErrorCode::kProtocolError, "binary_codec: truncated payload");
  }
}
}  // namespace

void encode_value(Bytes& out, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      out.push_back(kTagNull);
      return;
    case ValueType::kBool:
      out.push_back(v.as_bool() ? kTagTrue : kTagFalse);
      return;
    case ValueType::kInt:
      out.push_back(kTagInt);
      append(out, be64(static_cast<std::uint64_t>(v.as_int())));
      return;
    case ValueType::kDouble: {
      out.push_back(kTagDouble);
      const double d = v.as_double();
      std::uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      append(out, be64(bits));
      return;
    }
    case ValueType::kString: {
      out.push_back(kTagString);
      const auto& s = v.as_string();
      encode_len(out, s.size());
      append(out, to_bytes(s));
      return;
    }
    case ValueType::kBinary: {
      out.push_back(kTagBinary);
      encode_len(out, v.as_binary().size());
      append(out, v.as_binary());
      return;
    }
    case ValueType::kArray: {
      out.push_back(kTagArray);
      encode_len(out, v.as_array().size());
      for (const auto& e : v.as_array()) encode_value(out, e);
      return;
    }
    case ValueType::kObject: {
      out.push_back(kTagObject);
      encode_len(out, v.as_object().size());
      for (const auto& [k, val] : v.as_object()) {
        encode_len(out, k.size());
        append(out, to_bytes(k));
        encode_value(out, val);
      }
      return;
    }
  }
}

Bytes encode_value(const Value& v) {
  Bytes out;
  encode_value(out, v);
  return out;
}

Value decode_value(BytesView b, std::size_t& offset) {
  need(b, offset, 1);
  const auto tag = static_cast<Tag>(b[offset++]);
  switch (tag) {
    case kTagNull: return Value(nullptr);
    case kTagFalse: return Value(false);
    case kTagTrue: return Value(true);
    case kTagInt: {
      need(b, offset, 8);
      const auto v = static_cast<std::int64_t>(read_be64(b.subspan(offset)));
      offset += 8;
      return Value(v);
    }
    case kTagDouble: {
      need(b, offset, 8);
      const std::uint64_t bits = read_be64(b.subspan(offset));
      offset += 8;
      double d;
      __builtin_memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case kTagString: {
      const std::size_t n = decode_len(b, offset);
      need(b, offset, n);
      std::string s(reinterpret_cast<const char*>(b.data() + offset), n);
      offset += n;
      return Value(std::move(s));
    }
    case kTagBinary: {
      const std::size_t n = decode_len(b, offset);
      need(b, offset, n);
      Bytes bin(b.begin() + static_cast<std::ptrdiff_t>(offset),
                b.begin() + static_cast<std::ptrdiff_t>(offset + n));
      offset += n;
      return Value(std::move(bin));
    }
    case kTagArray: {
      const std::size_t n = decode_len(b, offset);
      // Each element occupies at least one byte: reject forged counts
      // before reserving (a hostile length field must not drive allocation).
      need(b, offset, n);
      Array arr;
      arr.reserve(n);
      for (std::size_t i = 0; i < n; ++i) arr.push_back(decode_value(b, offset));
      return Value(std::move(arr));
    }
    case kTagObject: {
      const std::size_t n = decode_len(b, offset);
      need(b, offset, n);  // >= 1 byte per member: bounds the loop up front
      Object obj;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t klen = decode_len(b, offset);
        need(b, offset, klen);
        std::string key(reinterpret_cast<const char*>(b.data() + offset), klen);
        offset += klen;
        obj[std::move(key)] = decode_value(b, offset);
      }
      return Value(std::move(obj));
    }
  }
  throw_error(ErrorCode::kProtocolError, "binary_codec: unknown tag");
}

Value decode_value(BytesView b) {
  std::size_t offset = 0;
  Value v = decode_value(b, offset);
  if (offset != b.size()) {
    throw_error(ErrorCode::kProtocolError, "binary_codec: trailing bytes");
  }
  return v;
}

Bytes encode_document(const Document& d) {
  Bytes out;
  encode_len(out, d.id.size());
  append(out, to_bytes(d.id));
  encode_value(out, Value(d.fields));
  return out;
}

Document decode_document(BytesView b) {
  std::size_t offset = 0;
  const std::size_t idlen = decode_len(b, offset);
  need(b, offset, idlen);
  Document d;
  d.id.assign(reinterpret_cast<const char*>(b.data() + offset), idlen);
  offset += idlen;
  Value fields = decode_value(b, offset);
  if (offset != b.size()) {
    throw_error(ErrorCode::kProtocolError, "binary_codec: trailing bytes");
  }
  d.fields = fields.as_object();
  return d;
}

}  // namespace datablinder::doc
