// Document value model.
//
// DataBlinder operates on schemaless-looking documents (the paper stores
// FHIR JSON in MongoDB); `Value` is a JSON-superset variant — it adds a
// first-class binary type so ciphertexts embed without base64 overhead on
// the in-process path. `Document` is an ordered field map with an `id`.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"

namespace datablinder::doc {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

enum class ValueType { kNull, kBool, kInt, kDouble, kString, kBinary, kArray, kObject };

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}                     // NOLINT
  Value(bool b) : data_(b) {}                                   // NOLINT
  Value(std::int64_t i) : data_(i) {}                           // NOLINT
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}         // NOLINT
  Value(double d) : data_(d) {}                                 // NOLINT
  Value(std::string s) : data_(std::move(s)) {}                 // NOLINT
  Value(const char* s) : data_(std::string(s)) {}               // NOLINT
  Value(Bytes b) : data_(std::move(b)) {}                       // NOLINT
  Value(Array a) : data_(std::move(a)) {}                       // NOLINT
  Value(Object o) : data_(std::move(o)) {}                      // NOLINT

  ValueType type() const noexcept;
  bool is_null() const noexcept { return type() == ValueType::kNull; }

  /// Typed accessors; each throws Error(kInvalidArgument) on type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;   // accepts int too (widening)
  const std::string& as_string() const;
  const Bytes& as_binary() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Canonical byte encoding of a scalar for encryption/keyword derivation.
  /// Type-tagged so int 5 and string "5" never collide.
  Bytes scalar_bytes() const;

  /// Human-readable rendering (JSON-ish) for logs and examples.
  std::string to_display() const;

  bool operator==(const Value& rhs) const = default;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Bytes, Array,
               Object>
      data_;
};

/// A stored document: id plus fields. Field order is stable (std::map) so
/// serialization is canonical.
struct Document {
  std::string id;
  Object fields;

  bool has(const std::string& field) const { return fields.count(field) > 0; }

  /// Throws Error(kNotFound) if absent.
  const Value& at(const std::string& field) const;

  void set(std::string field, Value v) { fields[std::move(field)] = std::move(v); }

  bool operator==(const Document& rhs) const = default;
};

}  // namespace datablinder::doc
