// Binary codec for the document model — the wire format between the
// gateway and the cloud node (compact, lossless, including binary values).
#pragma once

#include "doc/value.hpp"

namespace datablinder::doc {

/// Appends the encoded value to `out`.
void encode_value(Bytes& out, const Value& v);

/// Encoded form as a fresh buffer.
Bytes encode_value(const Value& v);

/// Decodes one value starting at `offset`; advances `offset` past it.
/// Throws Error(kProtocolError) on malformed input.
Value decode_value(BytesView b, std::size_t& offset);

/// Decodes a buffer that contains exactly one value.
Value decode_value(BytesView b);

Bytes encode_document(const Document& d);
Document decode_document(BytesView b);

}  // namespace datablinder::doc
