#include "doc/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

#include "common/hex.hpp"
#include "common/status.hpp"

namespace datablinder::doc {

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void serialize_into(std::string& out, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: out += "null"; return;
    case ValueType::kBool: out += v.as_bool() ? "true" : "false"; return;
    case ValueType::kInt: out += std::to_string(v.as_int()); return;
    case ValueType::kDouble: {
      const double d = v.as_double();
      if (std::isfinite(d)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      return;
    }
    case ValueType::kString: escape_into(out, v.as_string()); return;
    case ValueType::kBinary:
      out += "{\"$bin\":\"" + hex_encode(v.as_binary()) + "\"}";
      return;
    case ValueType::kArray: {
      out += '[';
      const auto& arr = v.as_array();
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i) out += ',';
        serialize_into(out, arr[i]);
      }
      out += ']';
      return;
    }
    case ValueType::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, val] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        escape_into(out, k);
        out += ':';
        serialize_into(out, val);
      }
      out += '}';
      return;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    require(pos_ == text_.size(), "json: trailing data");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    require(pos_ < text_.size(), "json: unexpected end");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    require(take() == c, std::string("json: expected '") + c + "'");
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value(nullptr);
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      require(pos_ < text_.size(), "json: unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        require(pos_ < text_.size(), "json: bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            require(pos_ + 4 <= text_.size(), "json: bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else throw_error(ErrorCode::kInvalidArgument, "json: bad hex in \\u");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default:
            throw_error(ErrorCode::kInvalidArgument, "json: unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // '-' only valid after e/E; the from_chars below validates fully.
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        if (c == '+' || c == '-') {
          const char prev = text_[pos_ - 1];
          if (prev != 'e' && prev != 'E') break;
        }
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view num = text_.substr(start, pos_ - start);
    require(!num.empty() && num != "-", "json: bad number");
    if (!is_double) {
      std::int64_t i = 0;
      const auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), i);
      if (ec == std::errc() && p == num.data() + num.size()) return Value(i);
    }
    double d = 0;
    const auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), d);
    require(ec == std::errc() && p == num.data() + num.size(), "json: bad number");
    return Value(d);
  }

  Value parse_array() {
    expect('[');
    Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(out));
    }
    for (;;) {
      out.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return Value(std::move(out));
      require(c == ',', "json: expected ',' in array");
    }
  }

  Value parse_object() {
    expect('{');
    Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(out));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out[std::move(key)] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') break;
      require(c == ',', "json: expected ',' in object");
    }
    // Unwrap the binary convention {"$bin": "<hex>"}.
    if (out.size() == 1) {
      auto it = out.find("$bin");
      if (it != out.end() && it->second.type() == ValueType::kString) {
        return Value(hex_decode(it->second.as_string()));
      }
    }
    return Value(std::move(out));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_json(const Value& v) {
  std::string out;
  serialize_into(out, v);
  return out;
}

std::string to_json(const Document& d) {
  Object obj = d.fields;
  obj["id"] = Value(d.id);
  return to_json(Value(std::move(obj)));
}

Value parse_json(std::string_view text) { return Parser(text).parse(); }

Document parse_document_json(std::string_view text) {
  Value v = parse_json(text);
  require(v.type() == ValueType::kObject, "document: not a JSON object");
  Document d;
  Object obj = v.as_object();
  auto it = obj.find("id");
  if (it != obj.end()) {
    require(it->second.type() == ValueType::kString, "document: id must be a string");
    d.id = it->second.as_string();
    obj.erase(it);
  }
  d.fields = std::move(obj);
  return d;
}

}  // namespace datablinder::doc
