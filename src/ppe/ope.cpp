#include "ppe/ope.hpp"

#include "common/status.hpp"
#include "crypto/prf.hpp"

namespace datablinder::ppe {

namespace {
using U128 = unsigned __int128;

U128 to_u128(const Ope128& c) { return (static_cast<U128>(c.hi) << 64) | c.lo; }

Ope128 from_u128(U128 v) {
  return Ope128{static_cast<std::uint64_t>(v >> 64), static_cast<std::uint64_t>(v)};
}
}  // namespace

Bytes Ope128::to_bytes() const {
  Bytes out = be64(hi);
  append(out, be64(lo));
  return out;
}

Ope128 Ope128::from_bytes(BytesView b) {
  require(b.size() == 16, "Ope128::from_bytes: need 16 bytes");
  return Ope128{read_be64(b.first(8)), read_be64(b.subspan(8))};
}

OpeCipher::OpeCipher(BytesView key, std::string_view context)
    : key_(crypto::prf_labeled(key, "ope-key", to_bytes(context))) {}

OpeCipher::OpeCipher(const SecretBytes& key, std::string_view context)
    : OpeCipher(key.expose_secret(), context) {}

Ope128 OpeCipher::encrypt(std::uint64_t plaintext) const {
  // Ciphertext interval [lo, hi) starts as the full 128-bit space.
  U128 lo = 0;
  U128 hi = static_cast<U128>(-1);  // 2^128 - 1; treat as exclusive-ish upper bound
  // Descend the plaintext bits MSB-first. Before consuming bit i there are
  // r = 64 - i bits left, so each half must keep room for 2^(r-1) leaves.
  Bytes path;
  path.reserve(72);
  for (int i = 0; i < 64; ++i) {
    const int remaining = 64 - i;             // bits still to place (incl. this)
    const U128 min_half = static_cast<U128>(1) << (remaining - 1);
    const U128 span = hi - lo;
    // Split point s in [lo + min_half, hi - min_half]; the PRF picks the
    // offset within that window deterministically from the path walked.
    const U128 window = span - 2 * min_half + 1;
    const Bytes tag = crypto::prf_labeled(key_, "ope-split", path);
    // Derive a 128-bit pseudorandom value from the 32-byte PRF output.
    U128 rnd = 0;
    for (int b = 0; b < 16; ++b) rnd = (rnd << 8) | tag[static_cast<std::size_t>(b)];
    const U128 s = lo + min_half + (window == 0 ? 0 : rnd % window);

    const bool bit = (plaintext >> (63 - i)) & 1;
    if (bit) {
      lo = s;
    } else {
      hi = s;
    }
    path.push_back(bit ? 1 : 0);
  }
  return from_u128(lo);
}

std::uint64_t OpeCipher::decrypt(const Ope128& ciphertext) const {
  const U128 target = to_u128(ciphertext);
  std::uint64_t lo = 0;
  std::uint64_t hi = UINT64_MAX;
  // encrypt() is monotone, so binary search recovers the unique preimage.
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (to_u128(encrypt(mid)) < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (to_u128(encrypt(lo)) != target) {
    throw_error(ErrorCode::kCryptoFailure, "OpeCipher::decrypt: not a valid ciphertext");
  }
  return lo;
}

}  // namespace datablinder::ppe
