// ORE — order-revealing encryption, Lewi–Wu (CCS 2016) left/right block
// construction over 4-bit blocks.
//
// A *right* ciphertext (stored server-side) encodes for every block a
// permuted table of padded comparison trits. A *left* ciphertext (the query
// token) carries, per block, the PRF key that unpads exactly one table slot.
// `compare(left, right)` reveals only the order of the two plaintexts —
// nothing is comparable between two stored (right) ciphertexts, which is
// the "best possible" semantic-security-with-comparison notion the scheme
// targets. DataBlinder's range tactic stores right ciphertexts and issues
// left ciphertexts for the range endpoints.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/secret.hpp"

namespace datablinder::ppe {

enum class OreResult { kLess = 0, kEqual = 1, kGreater = 2 };

struct OreLeft {
  // Per block: PRF-derived unpad key (16 bytes) and permuted slot index.
  struct Block {
    Bytes pad_key;
    std::uint8_t slot;
  };
  std::vector<Block> blocks;

  Bytes serialize() const;
  static OreLeft deserialize(BytesView b);
};

struct OreRight {
  Bytes nonce;                           // per-ciphertext randomness
  std::vector<std::array<std::uint8_t, 16>> tables;  // one 16-slot trit table per block

  Bytes serialize() const;
  static OreRight deserialize(BytesView b);
};

class OreCipher {
 public:
  static constexpr std::size_t kBlockBits = 4;
  static constexpr std::size_t kSlots = 1u << kBlockBits;

  /// `bits` is the plaintext domain width (must be a multiple of 4, <= 64).
  OreCipher(BytesView key, std::string_view context, std::size_t bits = 64);
  OreCipher(const SecretBytes& key, std::string_view context, std::size_t bits = 64);

  /// Query-side token for `plaintext`.
  OreLeft encrypt_left(std::uint64_t plaintext) const;

  /// Storage-side ciphertext for `plaintext` (probabilistic).
  OreRight encrypt_right(std::uint64_t plaintext) const;

  /// Order of the left plaintext relative to the right plaintext.
  static OreResult compare(const OreLeft& left, const OreRight& right);

  std::size_t num_blocks() const noexcept { return bits_ / kBlockBits; }

 private:
  std::uint8_t permute(std::size_t block, std::uint8_t value) const;
  Bytes block_pad_key(std::size_t block, std::uint64_t prefix, std::uint8_t value) const;

  SecretBytes prf_key_;  // pads comparison trits
  SecretBytes prp_key_;  // permutes table slots
  std::size_t bits_;
};

}  // namespace datablinder::ppe
