#include "ppe/rnd.hpp"

namespace datablinder::ppe {

RndCipher::RndCipher(BytesView key, std::string_view context)
    : gcm_(key), context_(to_bytes(context)) {}

RndCipher::RndCipher(const SecretBytes& key, std::string_view context)
    : gcm_(key), context_(to_bytes(context)) {}

Bytes RndCipher::encrypt(BytesView plaintext) const {
  return gcm_.seal_random_nonce(plaintext, context_);
}

std::optional<Bytes> RndCipher::decrypt(BytesView ciphertext) const {
  return gcm_.open_with_nonce(ciphertext, context_);
}

}  // namespace datablinder::ppe
