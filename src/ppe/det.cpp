#include "ppe/det.hpp"

namespace datablinder::ppe {

DetCipher::DetCipher(BytesView key, std::string_view context)
    : siv_(key), context_(to_bytes(context)) {}

DetCipher::DetCipher(const SecretBytes& key, std::string_view context)
    : siv_(key), context_(to_bytes(context)) {}

Bytes DetCipher::encrypt(BytesView plaintext) const {
  return siv_.seal(plaintext, context_);
}

std::optional<Bytes> DetCipher::decrypt(BytesView ciphertext) const {
  return siv_.open(ciphertext, context_);
}

}  // namespace datablinder::ppe
