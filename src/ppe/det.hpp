// DET — deterministic encryption tactic primitive (Bellare et al. 2006 style,
// instantiated with AES-SIV).
//
// Equal plaintexts map to equal ciphertexts, so the cloud can match
// equality predicates directly on ciphertexts. Protection Class 4 (leaks
// equalities). The per-field `context` string domain-separates ciphertexts
// so the same value in different fields does not correlate.
#pragma once

#include <optional>
#include <string_view>

#include "common/bytes.hpp"
#include "common/secret.hpp"
#include "crypto/siv.hpp"

namespace datablinder::ppe {

class DetCipher {
 public:
  /// Key must be 32 bytes. `context` scopes ciphertexts (e.g. "obs.status").
  DetCipher(BytesView key, std::string_view context);
  DetCipher(const SecretBytes& key, std::string_view context);

  /// Deterministic: same plaintext -> same ciphertext within this context.
  Bytes encrypt(BytesView plaintext) const;

  /// Returns nullopt if the ciphertext fails authentication.
  std::optional<Bytes> decrypt(BytesView ciphertext) const;

 private:
  crypto::AesSiv siv_;
  Bytes context_;
};

}  // namespace datablinder::ppe
