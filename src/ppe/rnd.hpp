// RND — probabilistic (semantically secure) encryption tactic primitive.
//
// AES-GCM with a fresh random nonce per encryption: ciphertexts reveal
// nothing but length (protection Class 1, "structure" leakage). Equality
// search over RND data is only possible by gateway-side scan-and-decrypt,
// which the paper explicitly lists as this tactic's inefficiency.
#pragma once

#include <optional>
#include <string_view>

#include "common/bytes.hpp"
#include "common/secret.hpp"
#include "crypto/gcm.hpp"

namespace datablinder::ppe {

class RndCipher {
 public:
  /// Key must be 16/24/32 bytes. `context` is bound as associated data.
  RndCipher(BytesView key, std::string_view context);
  RndCipher(const SecretBytes& key, std::string_view context);

  /// Probabilistic: repeated calls on the same plaintext differ.
  Bytes encrypt(BytesView plaintext) const;

  std::optional<Bytes> decrypt(BytesView ciphertext) const;

 private:
  crypto::AesGcm gcm_;
  Bytes context_;
};

}  // namespace datablinder::ppe
