#include "ppe/ore.hpp"

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "crypto/prf.hpp"

namespace datablinder::ppe {

namespace {
constexpr std::size_t kPadKeySize = 16;

std::uint8_t trit_pad(BytesView pad_key, BytesView nonce) {
  return static_cast<std::uint8_t>(crypto::prf_mod(pad_key, nonce, 3));
}
}  // namespace

Bytes OreLeft::serialize() const {
  Bytes out = be32(static_cast<std::uint32_t>(blocks.size()));
  for (const auto& b : blocks) {
    append(out, b.pad_key);
    out.push_back(b.slot);
  }
  return out;
}

OreLeft OreLeft::deserialize(BytesView b) {
  require(b.size() >= 4, "OreLeft: truncated");
  const std::size_t n = read_be32(b);
  require(b.size() == 4 + n * (kPadKeySize + 1), "OreLeft: bad length");
  OreLeft out;
  out.blocks.resize(n);
  std::size_t off = 4;
  for (auto& blk : out.blocks) {
    blk.pad_key.assign(b.begin() + static_cast<std::ptrdiff_t>(off),
                       b.begin() + static_cast<std::ptrdiff_t>(off + kPadKeySize));
    off += kPadKeySize;
    blk.slot = b[off++];
  }
  return out;
}

Bytes OreRight::serialize() const {
  Bytes out = be32(static_cast<std::uint32_t>(tables.size()));
  append(out, nonce);
  for (const auto& t : tables) append(out, BytesView(t.data(), t.size()));
  return out;
}

OreRight OreRight::deserialize(BytesView b) {
  require(b.size() >= 4 + 16, "OreRight: truncated");
  const std::size_t n = read_be32(b);
  require(b.size() == 4 + 16 + n * OreCipher::kSlots, "OreRight: bad length");
  OreRight out;
  out.nonce.assign(b.begin() + 4, b.begin() + 20);
  out.tables.resize(n);
  std::size_t off = 20;
  for (auto& t : out.tables) {
    std::copy_n(b.begin() + static_cast<std::ptrdiff_t>(off), OreCipher::kSlots, t.begin());
    off += OreCipher::kSlots;
  }
  return out;
}

OreCipher::OreCipher(BytesView key, std::string_view context, std::size_t bits)
    : bits_(bits) {
  require(bits > 0 && bits <= 64 && bits % kBlockBits == 0,
          "OreCipher: bits must be a positive multiple of 4, <= 64");
  prf_key_ = SecretBytes(crypto::prf_labeled(key, "ore-prf", to_bytes(context)));
  prp_key_ = SecretBytes(crypto::prf_labeled(key, "ore-prp", to_bytes(context)));
}

OreCipher::OreCipher(const SecretBytes& key, std::string_view context, std::size_t bits)
    : OreCipher(key.expose_secret(), context, bits) {}

std::uint8_t OreCipher::permute(std::size_t block, std::uint8_t value) const {
  // Keyed Fisher–Yates over the 16 slots, seeded per block. Deterministic
  // for a given key, so the left encryptor can compute the same table.
  std::array<std::uint8_t, kSlots> perm;
  std::iota(perm.begin(), perm.end(), 0);
  const Bytes seed = crypto::prf_labeled(prp_key_, "slot-perm", be64(block));
  // The PRF output seeds the shuffle, so this stays a keyed PRP — the
  // generator is a deterministic expander here, not an entropy source.
  DetRng rng(read_be64(seed));  // dblint:allow(rng): PRF-seeded keyed permutation
  for (std::size_t i = kSlots - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.uniform(i + 1)]);
  }
  return perm[value];
}

Bytes OreCipher::block_pad_key(std::size_t block, std::uint64_t prefix,
                               std::uint8_t value) const {
  Bytes input = be64(block);
  append(input, be64(prefix));
  input.push_back(value);
  return crypto::prf_n(prf_key_, input, kPadKeySize);
}

OreLeft OreCipher::encrypt_left(std::uint64_t plaintext) const {
  const std::size_t nblocks = num_blocks();
  OreLeft out;
  out.blocks.resize(nblocks);
  std::uint64_t prefix = 0;
  for (std::size_t i = 0; i < nblocks; ++i) {
    const unsigned shift = static_cast<unsigned>(bits_ - kBlockBits * (i + 1));
    const std::uint8_t xi = static_cast<std::uint8_t>((plaintext >> shift) & 0xf);
    out.blocks[i].pad_key = block_pad_key(i, prefix, xi);
    out.blocks[i].slot = permute(i, xi);
    prefix = (prefix << kBlockBits) | xi;
  }
  return out;
}

OreRight OreCipher::encrypt_right(std::uint64_t plaintext) const {
  const std::size_t nblocks = num_blocks();
  OreRight out;
  out.nonce = SecureRng::bytes(16);
  out.tables.resize(nblocks);
  std::uint64_t prefix = 0;
  for (std::size_t i = 0; i < nblocks; ++i) {
    const unsigned shift = static_cast<unsigned>(bits_ - kBlockBits * (i + 1));
    const std::uint8_t yi = static_cast<std::uint8_t>((plaintext >> shift) & 0xf);
    for (std::uint8_t j = 0; j < kSlots; ++j) {
      std::uint8_t cmp;
      if (j < yi) cmp = static_cast<std::uint8_t>(OreResult::kLess);
      else if (j == yi) cmp = static_cast<std::uint8_t>(OreResult::kEqual);
      else cmp = static_cast<std::uint8_t>(OreResult::kGreater);
      const Bytes pad = block_pad_key(i, prefix, j);
      out.tables[i][permute(i, j)] =
          static_cast<std::uint8_t>((cmp + trit_pad(pad, out.nonce)) % 3);
    }
    prefix = (prefix << kBlockBits) | yi;
  }
  return out;
}

OreResult OreCipher::compare(const OreLeft& left, const OreRight& right) {
  require(left.blocks.size() == right.tables.size(), "OreCipher::compare: size mismatch");
  for (std::size_t i = 0; i < left.blocks.size(); ++i) {
    const std::uint8_t padded = right.tables[i][left.blocks[i].slot];
    const std::uint8_t pad = trit_pad(left.blocks[i].pad_key, right.nonce);
    const auto v = static_cast<OreResult>((padded + 3 - pad) % 3);
    // The first non-equal block decides; beyond it the prefixes diverge and
    // the remaining trits are pseudorandom noise by construction.
    if (v != OreResult::kEqual) return v;
  }
  return OreResult::kEqual;
}

}  // namespace datablinder::ppe
