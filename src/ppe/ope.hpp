// OPE — order-preserving encryption (Boldyreva et al. style).
//
// Stateless, deterministic keyed monotone injection from 64-bit plaintexts
// into a 128-bit ciphertext space. Instead of the original hypergeometric
// sampling we descend a binary tree over the plaintext bits, choosing each
// split point pseudorandomly (PRF-keyed on the path) while keeping both
// subintervals large enough to host every remaining leaf. This preserves
// the construction's essential properties: order preservation, determinism,
// statelessness, and "order" leakage (protection Class 5) — the properties
// the DataBlinder range-query tactic and its evaluation depend on.
#pragma once

#include <compare>
#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"
#include "common/secret.hpp"

namespace datablinder::ppe {

/// 128-bit ciphertext with numeric ordering.
struct Ope128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  auto operator<=>(const Ope128&) const = default;

  /// 16-byte big-endian encoding (sorts identically to numeric order).
  Bytes to_bytes() const;
  static Ope128 from_bytes(BytesView b);
};

class OpeCipher {
 public:
  /// Key length arbitrary (hashed); `context` domain-separates fields.
  OpeCipher(BytesView key, std::string_view context);
  OpeCipher(const SecretBytes& key, std::string_view context);

  /// Order-preserving: x < y implies encrypt(x) < encrypt(y).
  Ope128 encrypt(std::uint64_t plaintext) const;

  /// Recovers the plaintext by binary search over the encryption function
  /// (OPE is a monotone injection, so inversion needs no separate key
  /// material). O(64) encryptions.
  std::uint64_t decrypt(const Ope128& ciphertext) const;

 private:
  SecretBytes key_;
};

}  // namespace datablinder::ppe
