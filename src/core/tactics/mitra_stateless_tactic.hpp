// Mitra-Stateless tactic — equality search with a fully stateless gateway
// (this library's implementation of the paper's concluding future-work
// direction: stateless SE for cloud-native deployment).
//
// Compared to Mitra (Table 2 row 2): same Class 2 / identifiers query
// leakage and same search protocol, but the keyword counter is outsourced
// encrypted to the cloud, so
//   + any gateway replica can serve any request with zero local state and
//     zero state synchronization (no "Local storage" challenge),
//   - every update and search pays one extra round trip to fetch the
//     counter slot, and
//   - the fixed counter-slot label leaks which updates concern the same
//     keyword (update-pattern keyword equality), a leakage plain Mitra's
//     forward privacy avoids.
//
// Not registered by default: register_mitra_stateless_tactic() adds it,
// and the crypto-agility machinery (preference ranking) selects it — see
// tests/stateless_test.cpp and bench_ablation_stateless.
#pragma once

#include <optional>

#include "core/registry.hpp"
#include "core/spi.hpp"
#include "sse/mitra_stateless.hpp"

namespace datablinder::core {

class MitraStatelessTactic final : public FieldTactic {
 public:
  explicit MitraStatelessTactic(GatewayContext ctx) : ctx_(std::move(ctx)) {}

  static const TacticDescriptor& static_descriptor();
  const TacticDescriptor& descriptor() const override { return static_descriptor(); }

  void setup() override;
  void on_insert(const DocId& id, const doc::Value& value) override;
  void on_delete(const DocId& id, const doc::Value& value) override;
  std::vector<DocId> equality_search(const doc::Value& value) override;

 private:
  /// Round 1 of both protocols: fetch and decrypt the keyword's counter.
  std::uint64_t fetch_counter(const std::string& keyword) const;
  void send_update(sse::MitraOp op, const std::string& keyword, const DocId& id);

  GatewayContext ctx_;
  std::optional<sse::MitraStatelessClient> client_;
};

void register_mitra_stateless_tactic(TacticRegistry& r);

}  // namespace datablinder::core
