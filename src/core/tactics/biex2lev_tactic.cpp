#include "core/tactics/biex2lev_tactic.hpp"

#include <unordered_set>

#include "core/tactics/builtin.hpp"
#include "core/wire.hpp"

namespace datablinder::core {

using doc::Value;

const TacticDescriptor& Biex2LevTactic::static_descriptor() {
  static const TacticDescriptor d = [] {
    TacticDescriptor t;
    t.name = "BIEX-2Lev";
    t.protection_class = schema::ProtectionClass::kClass3;
    // Note: equality is NOT served standalone — a field wanting only EQ
    // should get a dedicated equality tactic. Equality folds into boolean
    // queries only when the field also requests BL (§5.1 status/code/value).
    t.serves_operations = {schema::Operation::kInsert, schema::Operation::kBoolean};
    t.boolean_covers_equality = true;
    t.operations = {
        {TacticOperation::kInit, {LeakageLevel::kStructure, "O(1)", 0}},
        {TacticOperation::kInsert,
         {LeakageLevel::kStructure, "O(|W|^2) pair-expanded dict inserts", 1}},
        {TacticOperation::kDelete,
         {LeakageLevel::kStructure, "O(|W|^2) lazy delete entries", 1}},
        {TacticOperation::kBooleanSearch,
         {LeakageLevel::kPredicates, "O(sum c) lookups per conjunction", 1}},
    };
    t.gateway_interfaces = {SpiInterface::kSetup,     SpiInterface::kInsertion,
                            SpiInterface::kDocIdGen,  SpiInterface::kSecureEnc,
                            SpiInterface::kUpdate,    SpiInterface::kDeletion,
                            SpiInterface::kBoolQuery, SpiInterface::kBoolResolution};
    t.cloud_interfaces = {SpiInterface::kInsertion, SpiInterface::kUpdate,
                          SpiInterface::kDeletion, SpiInterface::kBoolQuery,
                          SpiInterface::kRetrieval};
    t.challenge = "Storage impl. complexity";
    t.preference = 10;  // read-optimized default over BIEX-ZMF
    // Calibration: pair-expanded updates (|W|^2 dict writes per document);
    // queries pay per-candidate fetch/open like every SSE tactic.
    t.cost.ops = {
        {TacticOperation::kInsert, {CostShape::kConstant, 180.0, 0.0}},
        {TacticOperation::kDelete, {CostShape::kConstant, 180.0, 0.0}},
        {TacticOperation::kBooleanSearch, {CostShape::kLogNPlusK, 120.0, 50.0}},
    };
    return t;
  }();
  return d;
}

void Biex2LevTactic::setup() {
  client_.emplace(ctx_.kms->derive(ctx_.scope("biex2lev"), 32));
}

void Biex2LevTactic::send_tokens(sse::IexOp op, const std::vector<std::string>& keywords,
                                 const DocId& id) {
  for (const auto& token : client_->update(op, keywords, id)) {
    ctx_.cloud->call("iex.update",
                     wire::pack({{"scope", Value(ctx_.scope("biex2lev"))},
                                 {"address", Value(token.address)},
                                 {"value", Value(token.value)}}));
  }
}

void Biex2LevTactic::on_insert(const DocId& id, const std::vector<std::string>& keywords) {
  send_tokens(sse::IexOp::kAdd, keywords, id);
}

void Biex2LevTactic::on_delete(const DocId& id, const std::vector<std::string>& keywords) {
  send_tokens(sse::IexOp::kDelete, keywords, id);
}

std::vector<DocId> Biex2LevTactic::query(const sse::BoolQuery& q) {
  std::vector<DocId> out;
  std::unordered_set<DocId> seen;
  for (const auto& conj : q.dnf) {
    const sse::IexConjToken token = client_->conj_token(conj);
    doc::Array lists;
    lists.reserve(token.lists.size());
    for (const auto& addresses : token.lists) {
      doc::Array inner;
      inner.reserve(addresses.size());
      for (const auto& a : addresses) inner.emplace_back(a);
      lists.emplace_back(std::move(inner));
    }
    const Bytes reply = ctx_.cloud->call(
        "iex.search", wire::pack({{"scope", Value(ctx_.scope("biex2lev"))},
                                  {"lists", Value(std::move(lists))}}));
    const doc::Object obj = wire::unpack(reply);
    std::vector<std::vector<Bytes>> value_lists;
    for (const auto& list : wire::get_arr(obj, "lists")) {
      std::vector<Bytes> values;
      for (const auto& v : list.as_array()) values.push_back(v.as_binary());
      value_lists.push_back(std::move(values));
    }
    for (auto& id : client_->resolve_conj(conj, value_lists)) {
      if (seen.insert(id).second) out.push_back(std::move(id));
    }
  }
  return out;
}

void register_biex2lev_tactic(TacticRegistry& r) {
  r.register_boolean_tactic(Biex2LevTactic::static_descriptor(),
                            [](const GatewayContext& ctx) {
                              return std::make_unique<Biex2LevTactic>(ctx);
                            });
}

}  // namespace datablinder::core
