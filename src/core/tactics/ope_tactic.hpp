// OPE tactic — range queries on an order-preserving index (Table 2: Class
// 5, order leakage, 3 gateway / 3 cloud interfaces). Ciphertexts live in a
// cloud-side ordered map, so range queries are index scans — the efficient,
// high-leakage end of the trade-off. Also serves min/max aggregates by
// decoding the index extremes at the gateway.
#pragma once

#include <optional>

#include "core/spi.hpp"
#include "ppe/ope.hpp"

namespace datablinder::core {

class OpeTactic final : public FieldTactic {
 public:
  explicit OpeTactic(GatewayContext ctx) : ctx_(std::move(ctx)) {}

  static const TacticDescriptor& static_descriptor();
  const TacticDescriptor& descriptor() const override { return static_descriptor(); }

  void setup() override;
  void on_insert(const DocId& id, const doc::Value& value) override;
  void on_delete(const DocId& id, const doc::Value& value) override;
  std::vector<DocId> range_search(const doc::Value& lo, const doc::Value& hi) override;
  AggregateResult aggregate(schema::Aggregate agg) override;

 private:
  Bytes score(const doc::Value& value) const;

  GatewayContext ctx_;
  std::optional<ppe::OpeCipher> cipher_;
};

}  // namespace datablinder::core
