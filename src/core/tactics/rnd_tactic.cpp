#include "core/tactics/rnd_tactic.hpp"

#include "core/tactics/builtin.hpp"
#include "core/wire.hpp"

namespace datablinder::core {

using doc::Value;

const TacticDescriptor& RndTactic::static_descriptor() {
  static const TacticDescriptor d = [] {
    TacticDescriptor t;
    t.name = "RND";
    t.protection_class = schema::ProtectionClass::kClass1;
    t.serves_operations = {schema::Operation::kInsert, schema::Operation::kEquality};
    t.operations = {
        {TacticOperation::kInit, {LeakageLevel::kStructure, "O(1)", 0}},
        {TacticOperation::kInsert, {LeakageLevel::kStructure, "O(1)", 0}},
        {TacticOperation::kEqualitySearch,
         {LeakageLevel::kStructure, "O(N) scan + decrypt at gateway", 1}},
    };
    t.gateway_interfaces = {SpiInterface::kSetup,     SpiInterface::kInsertion,
                            SpiInterface::kDocIdGen,  SpiInterface::kSecureEnc,
                            SpiInterface::kRetrieval, SpiInterface::kEqResolution};
    t.cloud_interfaces = {SpiInterface::kInsertion, SpiInterface::kRetrieval,
                          SpiInterface::kEqQuery, SpiInterface::kSetup};
    t.challenge = "Inefficiency";
    t.preference = 10;
    // RND's equality IS the retrieve-and-post-filter shape: every document
    // travels and is AEAD-opened at the gateway (~45us each + mget share).
    t.cost.ops = {
        {TacticOperation::kInsert, {CostShape::kConstant, 1.0, 0.0}},
        {TacticOperation::kEqualitySearch, {CostShape::kLinear, 120.0, 55.0}},
    };
    return t;
  }();
  return d;
}

void RndTactic::on_insert(const DocId&, const Value&) {
  // The document blob (AES-GCM, random nonce) already covers the value;
  // deliberately no index entry is created.
}

void RndTactic::on_delete(const DocId&, const Value&) {}

std::vector<DocId> RndTactic::equality_search(const Value&) {
  const Bytes reply =
      ctx_.cloud->call("doc.list", wire::pack({{"col", Value(ctx_.collection)}}));
  const doc::Object obj = wire::unpack(reply);
  std::vector<DocId> ids;
  for (const auto& v : wire::get_arr(obj, "ids")) ids.push_back(v.as_string());
  return ids;
}

void register_rnd_tactic(TacticRegistry& r) {
  r.register_field_tactic(RndTactic::static_descriptor(), [](const GatewayContext& ctx) {
    return std::make_unique<RndTactic>(ctx);
  });
}

}  // namespace datablinder::core
