// BIEX-ZMF tactic — boolean search via matryoshka (Bloom) filters (Table 2:
// Class 3, predicates leakage, 8 gateway / 5 cloud interfaces). Space-
// efficient counterpart to BIEX-2Lev: no quadratic pair index, at the cost
// of candidate false positives that the middleware core re-verifies after
// decryption.
#pragma once

#include <optional>

#include "core/spi.hpp"
#include "sse/iexzmf.hpp"

namespace datablinder::core {

class BiexZmfTactic final : public BooleanTactic {
 public:
  explicit BiexZmfTactic(GatewayContext ctx) : ctx_(std::move(ctx)) {}

  static const TacticDescriptor& static_descriptor();
  const TacticDescriptor& descriptor() const override { return static_descriptor(); }

  void setup() override;
  void on_insert(const DocId& id, const std::vector<std::string>& keywords) override;
  void on_delete(const DocId& id, const std::vector<std::string>& keywords) override;
  std::vector<DocId> query(const sse::BoolQuery& q) override;
  bool approximate() const override { return true; }

 private:
  void send_tokens(sse::IexOp op, const std::vector<std::string>& keywords,
                   const DocId& id);

  GatewayContext ctx_;
  std::optional<sse::IexZmfClient> client_;
};

}  // namespace datablinder::core
