// Built-in tactic plugins — the constructions of Table 2, each implemented
// against the SPI (paper §5: "We implemented and integrated several tactics
// using the proposed architecture based on the SPI pattern").
//
// Every header exposes the concrete gateway-side class so applications can
// also hard-code a tactic without the middleware (scenario S_B of the
// evaluation) — the Figure 5 bench relies on that to isolate the
// middleware's own overhead.
#pragma once

#include "core/registry.hpp"

namespace datablinder::core {

void register_det_tactic(TacticRegistry& r);
void register_rnd_tactic(TacticRegistry& r);
void register_mitra_tactic(TacticRegistry& r);
void register_sophos_tactic(TacticRegistry& r);
void register_biex2lev_tactic(TacticRegistry& r);
void register_biexzmf_tactic(TacticRegistry& r);
void register_ope_tactic(TacticRegistry& r);
void register_rangebrc_tactic(TacticRegistry& r);
void register_ore_tactic(TacticRegistry& r);
void register_paillier_tactic(TacticRegistry& r);

/// Registers all of the above (the default DataBlinder tactic set).
void register_builtin_tactics(TacticRegistry& r);

}  // namespace datablinder::core
