#include "core/tactics/biexzmf_tactic.hpp"

#include <unordered_set>

#include "core/tactics/builtin.hpp"
#include "core/wire.hpp"

namespace datablinder::core {

using doc::Value;

const TacticDescriptor& BiexZmfTactic::static_descriptor() {
  static const TacticDescriptor d = [] {
    TacticDescriptor t;
    t.name = "BIEX-ZMF";
    t.protection_class = schema::ProtectionClass::kClass3;
    // Note: equality is NOT served standalone — a field wanting only EQ
    // should get a dedicated equality tactic. Equality folds into boolean
    // queries only when the field also requests BL (§5.1 status/code/value).
    t.serves_operations = {schema::Operation::kInsert, schema::Operation::kBoolean};
    t.boolean_covers_equality = true;
    t.operations = {
        {TacticOperation::kInit, {LeakageLevel::kStructure, "O(1)", 0}},
        {TacticOperation::kInsert,
         {LeakageLevel::kStructure, "O(|W|) filter builds + dict inserts", 1}},
        {TacticOperation::kDelete,
         {LeakageLevel::kStructure, "O(|W|) lazy delete entries", 1}},
        {TacticOperation::kBooleanSearch,
         {LeakageLevel::kPredicates,
          "O(c_w1 * t) filter probes; candidates re-verified at gateway", 1}},
    };
    t.gateway_interfaces = {SpiInterface::kSetup,     SpiInterface::kInsertion,
                            SpiInterface::kDocIdGen,  SpiInterface::kSecureEnc,
                            SpiInterface::kUpdate,    SpiInterface::kDeletion,
                            SpiInterface::kBoolQuery, SpiInterface::kBoolResolution};
    t.cloud_interfaces = {SpiInterface::kInsertion, SpiInterface::kUpdate,
                          SpiInterface::kDeletion, SpiInterface::kBoolQuery,
                          SpiInterface::kRetrieval};
    t.challenge = "Storage impl. complexity";
    t.preference = 5;  // space-optimized alternative; 2Lev is the default
    // Calibration: per-keyword filter builds on update; probe-heavy
    // queries with gateway re-verification of false positives.
    t.cost.ops = {
        {TacticOperation::kInsert, {CostShape::kConstant, 220.0, 0.0}},
        {TacticOperation::kDelete, {CostShape::kConstant, 220.0, 0.0}},
        {TacticOperation::kBooleanSearch, {CostShape::kLinear, 150.0, 12.0}},
    };
    return t;
  }();
  return d;
}

void BiexZmfTactic::setup() {
  sse::ZmfFilterParams params;
  params.filter_bits =
      static_cast<std::size_t>(ctx_.param_int("zmf_filter_bits", 256));
  params.num_hashes = static_cast<std::size_t>(ctx_.param_int("zmf_num_hashes", 4));
  client_.emplace(ctx_.kms->derive(ctx_.scope("biexzmf"), 32), params);
  ctx_.cloud->call(
      "zmf.setup",
      wire::pack({{"scope", Value(ctx_.scope("biexzmf"))},
                  {"filter_bits", Value(static_cast<std::int64_t>(params.filter_bits))},
                  {"num_hashes", Value(static_cast<std::int64_t>(params.num_hashes))}}));
}

void BiexZmfTactic::send_tokens(sse::IexOp op, const std::vector<std::string>& keywords,
                                const DocId& id) {
  for (const auto& token : client_->update(op, keywords, id)) {
    ctx_.cloud->call("zmf.update", wire::pack({{"scope", Value(ctx_.scope("biexzmf"))},
                                               {"address", Value(token.address)},
                                               {"value", Value(token.value)},
                                               {"salt", Value(token.salt)},
                                               {"filter", Value(token.filter)}}));
  }
}

void BiexZmfTactic::on_insert(const DocId& id, const std::vector<std::string>& keywords) {
  send_tokens(sse::IexOp::kAdd, keywords, id);
}

void BiexZmfTactic::on_delete(const DocId& id, const std::vector<std::string>& keywords) {
  send_tokens(sse::IexOp::kDelete, keywords, id);
}

std::vector<DocId> BiexZmfTactic::query(const sse::BoolQuery& q) {
  std::vector<DocId> out;
  std::unordered_set<DocId> seen;
  for (const auto& conj : q.dnf) {
    const sse::ZmfConjToken token = client_->conj_token(conj);
    doc::Array addresses, tokens;
    addresses.reserve(token.addresses.size());
    for (const auto& a : token.addresses) addresses.emplace_back(a);
    for (const auto& kt : token.keyword_tokens) tokens.emplace_back(kt);
    const Bytes reply = ctx_.cloud->call(
        "zmf.search", wire::pack({{"scope", Value(ctx_.scope("biexzmf"))},
                                  {"addresses", Value(std::move(addresses))},
                                  {"tokens", Value(std::move(tokens))}}));
    const doc::Object obj = wire::unpack(reply);
    std::vector<Bytes> values;
    for (const auto& v : wire::get_arr(obj, "values")) values.push_back(v.as_binary());
    for (auto& id : client_->resolve_conj(conj, values)) {
      if (seen.insert(id).second) out.push_back(std::move(id));
    }
  }
  return out;
}

void register_biexzmf_tactic(TacticRegistry& r) {
  r.register_boolean_tactic(BiexZmfTactic::static_descriptor(),
                            [](const GatewayContext& ctx) {
                              return std::make_unique<BiexZmfTactic>(ctx);
                            });
}

}  // namespace datablinder::core
