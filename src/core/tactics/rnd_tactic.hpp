// RND tactic — probabilistic encryption, strongest protection (Class 1),
// equality answered by gateway-side scan-and-decrypt (Table 2: challenge
// "Inefficiency", 6 gateway / 4 cloud interfaces).
#pragma once

#include "core/spi.hpp"

namespace datablinder::core {

class RndTactic final : public FieldTactic {
 public:
  explicit RndTactic(GatewayContext ctx) : ctx_(std::move(ctx)) {}

  static const TacticDescriptor& static_descriptor();
  const TacticDescriptor& descriptor() const override { return static_descriptor(); }

  void setup() override {}
  // Nothing to index: the value is protected inside the AEAD document blob.
  void on_insert(const DocId& id, const doc::Value& value) override;
  void on_delete(const DocId& id, const doc::Value& value) override;
  /// Returns every document id (candidates); the middleware core decrypts
  /// and filters — RND's declared inefficiency.
  std::vector<DocId> equality_search(const doc::Value& value) override;
  bool approximate() const override { return true; }

 private:
  GatewayContext ctx_;
};

}  // namespace datablinder::core
