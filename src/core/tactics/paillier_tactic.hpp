// Paillier tactic — cloud-side SUM / AVERAGE / COUNT over additively
// homomorphic ciphertexts (Table 2 rows "Sum" and "Average": 3 gateway /
// 3 cloud interfaces, challenge = key management). Values are fixed-point
// encoded (x100) before encryption; the private key never leaves the
// gateway (persisted in the gateway's local KvStore).
#pragma once

#include <optional>

#include "core/spi.hpp"
#include "phe/paillier.hpp"

namespace datablinder::core {

class PaillierTactic final : public FieldTactic {
 public:
  static constexpr std::int64_t kFixedPointScale = 100;

  explicit PaillierTactic(GatewayContext ctx) : ctx_(std::move(ctx)) {}

  static const TacticDescriptor& static_descriptor();
  const TacticDescriptor& descriptor() const override { return static_descriptor(); }

  /// Loads (or generates; param "paillier_modulus_bits", default 512 for
  /// simulation — use >= 2048 in production) the keypair and ships the
  /// public key to the cloud.
  void setup() override;
  void on_insert(const DocId& id, const doc::Value& value) override;
  void on_delete(const DocId& id, const doc::Value& value) override;
  AggregateResult aggregate(schema::Aggregate agg) override;

 private:
  GatewayContext ctx_;
  std::optional<phe::PaillierKeyPair> keys_;
};

}  // namespace datablinder::core
