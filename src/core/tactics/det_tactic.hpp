// DET tactic — equality search on deterministic ciphertexts (Table 2 row 1:
// Class 4, leaks equalities, 9 gateway / 6 cloud interfaces, implemented
// from scratch by the paper's authors, as here).
#pragma once

#include <optional>

#include "core/spi.hpp"
#include "ppe/det.hpp"

namespace datablinder::core {

class DetTactic final : public FieldTactic {
 public:
  explicit DetTactic(GatewayContext ctx) : ctx_(std::move(ctx)) {}

  static const TacticDescriptor& static_descriptor();
  const TacticDescriptor& descriptor() const override { return static_descriptor(); }

  void setup() override;
  void on_insert(const DocId& id, const doc::Value& value) override;
  void on_delete(const DocId& id, const doc::Value& value) override;
  std::vector<DocId> equality_search(const doc::Value& value) override;

 private:
  Bytes label(const doc::Value& value) const;

  GatewayContext ctx_;
  std::optional<ppe::DetCipher> cipher_;
};

}  // namespace datablinder::core
