#include "core/tactics/mitra_stateless_tactic.hpp"

#include "core/wire.hpp"

namespace datablinder::core {

using doc::Value;

const TacticDescriptor& MitraStatelessTactic::static_descriptor() {
  static const TacticDescriptor d = [] {
    TacticDescriptor t;
    t.name = "Mitra-SL";
    t.protection_class = schema::ProtectionClass::kClass2;
    t.serves_operations = {schema::Operation::kInsert, schema::Operation::kEquality};
    t.operations = {
        {TacticOperation::kInit, {LeakageLevel::kStructure, "O(1)", 0}},
        {TacticOperation::kInsert,
         {LeakageLevel::kEqualities,  // update-pattern keyword equality leaks
          "2 round trips: counter fetch + entry write", 2}},
        {TacticOperation::kDelete,
         {LeakageLevel::kEqualities, "2 round trips, lazy delete entry", 2}},
        {TacticOperation::kEqualitySearch,
         {LeakageLevel::kIdentifiers, "counter fetch + O(c_w) lookups", 2}},
    };
    t.gateway_interfaces = {SpiInterface::kInsertion, SpiInterface::kDocIdGen,
                            SpiInterface::kSecureEnc, SpiInterface::kUpdate,
                            SpiInterface::kDeletion,  SpiInterface::kEqQuery,
                            SpiInterface::kEqResolution};
    t.cloud_interfaces = {SpiInterface::kInsertion, SpiInterface::kUpdate,
                          SpiInterface::kDeletion, SpiInterface::kEqQuery,
                          SpiInterface::kRetrieval};
    t.challenge = "Update-pattern leakage";  // the stateless trade-off
    t.preference = 3;  // below Mitra unless explicitly promoted
    // Calibration: every update pays an extra counter-fetch round trip.
    t.cost.ops = {
        {TacticOperation::kInsert, {CostShape::kConstant, 120.0, 0.0}},
        {TacticOperation::kDelete, {CostShape::kConstant, 120.0, 0.0}},
        {TacticOperation::kEqualitySearch, {CostShape::kLinear, 100.0, 6.0}},
    };
    return t;
  }();
  return d;
}

void MitraStatelessTactic::setup() {
  client_.emplace(ctx_.kms->derive(ctx_.scope("mitrasl"), 32));
  // Deliberately nothing else: no local state, no recovery step.
}

std::uint64_t MitraStatelessTactic::fetch_counter(const std::string& keyword) const {
  const Bytes reply = ctx_.cloud->call(
      "mitrasl.get_counter",
      wire::pack({{"scope", Value(ctx_.scope("mitrasl"))},
                  {"label", Value(client_->counter_label(keyword))}}));
  const doc::Object obj = wire::unpack(reply);
  if (!wire::get(obj, "found").as_bool()) return 0;
  return client_->decode_counter(keyword, wire::get_bin(obj, "blob"));
}

void MitraStatelessTactic::send_update(sse::MitraOp op, const std::string& keyword,
                                       const DocId& id) {
  const std::uint64_t current = fetch_counter(keyword);
  const sse::MitraUpdateToken token = client_->update(op, keyword, id, current);
  ctx_.cloud->call(
      "mitrasl.update",
      wire::pack({{"scope", Value(ctx_.scope("mitrasl"))},
                  {"label", Value(client_->counter_label(keyword))},
                  {"counter", Value(client_->encode_counter(keyword, current + 1))},
                  {"address", Value(token.address)},
                  {"value", Value(token.value)}}));
}

void MitraStatelessTactic::on_insert(const DocId& id, const Value& value) {
  send_update(sse::MitraOp::kAdd, field_keyword(ctx_.field, value), id);
}

void MitraStatelessTactic::on_delete(const DocId& id, const Value& value) {
  send_update(sse::MitraOp::kDelete, field_keyword(ctx_.field, value), id);
}

std::vector<DocId> MitraStatelessTactic::equality_search(const Value& value) {
  const std::string keyword = field_keyword(ctx_.field, value);
  const std::uint64_t count = fetch_counter(keyword);
  if (count == 0) return {};
  const sse::MitraSearchToken token = client_->search_token(keyword, count);
  doc::Array addresses;
  addresses.reserve(token.addresses.size());
  for (const auto& a : token.addresses) addresses.emplace_back(a);
  const Bytes reply = ctx_.cloud->call(
      "mitrasl.search", wire::pack({{"scope", Value(ctx_.scope("mitrasl"))},
                                    {"addresses", Value(std::move(addresses))}}));
  const doc::Object obj = wire::unpack(reply);
  std::vector<Bytes> values;
  for (const auto& v : wire::get_arr(obj, "values")) values.push_back(v.as_binary());
  return client_->resolve(keyword, values);
}

void register_mitra_stateless_tactic(TacticRegistry& r) {
  r.register_field_tactic(MitraStatelessTactic::static_descriptor(),
                          [](const GatewayContext& ctx) {
                            return std::make_unique<MitraStatelessTactic>(ctx);
                          });
}

}  // namespace datablinder::core
