#include "core/tactics/rangebrc_tactic.hpp"

#include <unordered_set>

#include "doc/numeric.hpp"
#include "core/wire.hpp"

namespace datablinder::core {

using doc::Value;

const TacticDescriptor& RangeBrcTactic::static_descriptor() {
  static const TacticDescriptor d = [] {
    TacticDescriptor t;
    t.name = "RangeBRC";
    t.protection_class = schema::ProtectionClass::kClass3;
    t.serves_operations = {schema::Operation::kInsert, schema::Operation::kRange};
    t.operations = {
        {TacticOperation::kInit, {LeakageLevel::kStructure, "O(1)", 0}},
        {TacticOperation::kInsert,
         {LeakageLevel::kStructure, "64 dyadic dict inserts (forward private)", 1}},
        {TacticOperation::kDelete,
         {LeakageLevel::kStructure, "64 lazy delete entries", 1}},
        {TacticOperation::kRangeQuery,
         {LeakageLevel::kPredicates,
          "O(log D) cover-node searches; no stored-value order revealed", 1}},
    };
    t.gateway_interfaces = {SpiInterface::kInsertion, SpiInterface::kDocIdGen,
                            SpiInterface::kSecureEnc, SpiInterface::kUpdate,
                            SpiInterface::kDeletion,  SpiInterface::kRangeQuery,
                            SpiInterface::kRangeResolution};
    t.cloud_interfaces = {SpiInterface::kInsertion, SpiInterface::kUpdate,
                          SpiInterface::kDeletion, SpiInterface::kRangeQuery,
                          SpiInterface::kRetrieval};
    t.challenge = "Storage amplification";
    // Below OPE/ORE on preference: within the same admissible class the
    // policy still prefers leakier-but-cheaper; RangeBRC wins only when
    // the class bound excludes order leakage.
    t.preference = 2;
    // Calibration: 64 dyadic-level SSE updates per insert; queries issue
    // O(log n) cover-node searches plus selectivity-scaled fetch/open.
    t.cost.ops = {
        {TacticOperation::kInsert, {CostShape::kConstant, 1300.0, 0.0}},
        {TacticOperation::kDelete, {CostShape::kConstant, 1300.0, 0.0}},
        {TacticOperation::kRangeQuery, {CostShape::kLogNPlusK, 100.0, 50.0}},
    };
    return t;
  }();
  return d;
}

void RangeBrcTactic::setup() {
  client_.emplace(ctx_.kms->derive(ctx_.scope("rangebrc"), 32),
                  ctx_.collection + "." + ctx_.field);
  state_key_ = "rangebrc-counters:" + ctx_.scope("rangebrc");
  for (const auto& [keyword, count_bytes] : ctx_.local_store->hgetall(state_key_)) {
    client_->restore_counter(keyword, read_be64(count_bytes));
  }
}

void RangeBrcTactic::send_updates(sse::MitraOp op, const Value& value, const DocId& id) {
  const std::uint64_t x = doc::ordered_key(value);
  for (const auto& token : client_->update(op, x, id)) {
    ctx_.cloud->call("mitra.update",
                     wire::pack({{"scope", Value(ctx_.scope("rangebrc"))},
                                 {"address", Value(token.address)},
                                 {"value", Value(token.value)}}));
  }
  // Persist the 64 touched counters (one per dyadic level).
  for (const auto& node : sse::dyadic_path(x)) {
    const std::string kw = node.keyword(ctx_.collection + "." + ctx_.field);
    ctx_.local_store->hset(state_key_, kw, be64(client_->counter(kw)));
  }
}

void RangeBrcTactic::on_insert(const DocId& id, const Value& value) {
  send_updates(sse::MitraOp::kAdd, value, id);
}

void RangeBrcTactic::on_delete(const DocId& id, const Value& value) {
  send_updates(sse::MitraOp::kDelete, value, id);
}

std::vector<DocId> RangeBrcTactic::range_search(const Value& lo, const Value& hi) {
  const auto query =
      client_->range_query(doc::ordered_key(lo), doc::ordered_key(hi));
  std::vector<DocId> out;
  std::unordered_set<DocId> seen;
  for (std::size_t i = 0; i < query.tokens.size(); ++i) {
    if (query.tokens[i].addresses.empty()) continue;  // empty bucket
    doc::Array addresses;
    addresses.reserve(query.tokens[i].addresses.size());
    for (const auto& a : query.tokens[i].addresses) addresses.emplace_back(a);
    const Bytes reply = ctx_.cloud->call(
        "mitra.search", wire::pack({{"scope", Value(ctx_.scope("rangebrc"))},
                                    {"addresses", Value(std::move(addresses))}}));
    const doc::Object obj = wire::unpack(reply);
    std::vector<Bytes> values;
    for (const auto& v : wire::get_arr(obj, "values")) values.push_back(v.as_binary());
    for (auto& id : client_->resolve(query.keywords[i], values)) {
      if (seen.insert(id).second) out.push_back(std::move(id));
    }
  }
  return out;
}

void register_rangebrc_tactic(TacticRegistry& r) {
  r.register_field_tactic(RangeBrcTactic::static_descriptor(),
                          [](const GatewayContext& ctx) {
                            return std::make_unique<RangeBrcTactic>(ctx);
                          });
}

}  // namespace datablinder::core
