#include "core/tactics/ore_tactic.hpp"

#include "core/tactics/builtin.hpp"
#include "doc/numeric.hpp"
#include "core/wire.hpp"

namespace datablinder::core {

using doc::Value;

const TacticDescriptor& OreTactic::static_descriptor() {
  static const TacticDescriptor d = [] {
    TacticDescriptor t;
    t.name = "ORE";
    t.protection_class = schema::ProtectionClass::kClass5;
    t.serves_operations = {schema::Operation::kInsert, schema::Operation::kRange};
    t.operations = {
        {TacticOperation::kInit, {LeakageLevel::kStructure, "O(1)", 0}},
        {TacticOperation::kInsert,
         {LeakageLevel::kStructure, "O(blocks * slots) right-ct build", 1}},
        {TacticOperation::kDelete, {LeakageLevel::kStructure, "O(1) hash remove", 1}},
        {TacticOperation::kRangeQuery,
         {LeakageLevel::kOrder, "O(N) token-vs-right comparisons server-side", 1}},
    };
    t.gateway_interfaces = {SpiInterface::kInsertion, SpiInterface::kRangeQuery,
                            SpiInterface::kRangeResolution};
    t.cloud_interfaces = {SpiInterface::kInsertion, SpiInterface::kRangeQuery,
                          SpiInterface::kDeletion};
    t.challenge = "-";
    t.preference = 5;
    // Calibration: right-ciphertext build is block*slot PRF work (~200us);
    // queries pay one comparison per stored row server-side plus the
    // selectivity-scaled fetch/open cost folded into per_unit.
    t.cost.ops = {
        {TacticOperation::kInsert, {CostShape::kConstant, 220.0, 0.0}},
        {TacticOperation::kDelete, {CostShape::kConstant, 30.0, 0.0}},
        {TacticOperation::kRangeQuery, {CostShape::kLinear, 80.0, 6.0}},
    };
    return t;
  }();
  return d;
}

void OreTactic::setup() {
  cipher_.emplace(ctx_.kms->derive(ctx_.scope("ore"), 32),
                  ctx_.collection + "." + ctx_.field, 64);
}

void OreTactic::on_insert(const DocId& id, const Value& value) {
  const auto right = cipher_->encrypt_right(doc::ordered_key(value));
  ctx_.cloud->call("ore.insert", wire::pack({{"col", Value(ctx_.collection)},
                                             {"field", Value(ctx_.field)},
                                             {"id", Value(id)},
                                             {"right", Value(right.serialize())}}));
}

void OreTactic::on_delete(const DocId& id, const Value&) {
  ctx_.cloud->call("ore.remove", wire::pack({{"col", Value(ctx_.collection)},
                                             {"field", Value(ctx_.field)},
                                             {"id", Value(id)}}));
}

std::vector<DocId> OreTactic::range_search(const Value& lo, const Value& hi) {
  const auto left_lo = cipher_->encrypt_left(doc::ordered_key(lo));
  const auto left_hi = cipher_->encrypt_left(doc::ordered_key(hi));
  const Bytes reply =
      ctx_.cloud->call("ore.range", wire::pack({{"col", Value(ctx_.collection)},
                                                {"field", Value(ctx_.field)},
                                                {"left_lo", Value(left_lo.serialize())},
                                                {"left_hi", Value(left_hi.serialize())}}));
  const doc::Object obj = wire::unpack(reply);
  std::vector<DocId> ids;
  for (const auto& v : wire::get_arr(obj, "ids")) ids.push_back(v.as_string());
  return ids;
}

void register_ore_tactic(TacticRegistry& r) {
  r.register_field_tactic(OreTactic::static_descriptor(), [](const GatewayContext& ctx) {
    return std::make_unique<OreTactic>(ctx);
  });
}

}  // namespace datablinder::core
