// Mitra tactic — forward-private equality search (Table 2: Class 2,
// identifiers leakage, 7 gateway / 5 cloud interfaces, challenge = local
// storage: the per-keyword counters persist in the gateway's KvStore).
#pragma once

#include <optional>

#include "core/spi.hpp"
#include "sse/mitra.hpp"

namespace datablinder::core {

class MitraTactic final : public FieldTactic {
 public:
  explicit MitraTactic(GatewayContext ctx) : ctx_(std::move(ctx)) {}

  static const TacticDescriptor& static_descriptor();
  const TacticDescriptor& descriptor() const override { return static_descriptor(); }

  void setup() override;
  void on_insert(const DocId& id, const doc::Value& value) override;
  void on_delete(const DocId& id, const doc::Value& value) override;
  std::vector<DocId> equality_search(const doc::Value& value) override;

 private:
  void send_update(sse::MitraOp op, const std::string& keyword, const DocId& id);

  GatewayContext ctx_;
  std::optional<sse::MitraClient> client_;
  std::string state_key_;  // gateway KvStore hash holding keyword counters
};

}  // namespace datablinder::core
