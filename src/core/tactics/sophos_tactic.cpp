#include "core/tactics/sophos_tactic.hpp"

#include "core/metrics.hpp"
#include "core/tactics/builtin.hpp"
#include "core/wire.hpp"

namespace datablinder::core {

using doc::Value;

const TacticDescriptor& SophosTactic::static_descriptor() {
  static const TacticDescriptor d = [] {
    TacticDescriptor t;
    t.name = "Sophos";
    t.protection_class = schema::ProtectionClass::kClass2;
    t.serves_operations = {schema::Operation::kInsert, schema::Operation::kEquality};
    t.operations = {
        {TacticOperation::kInit, {LeakageLevel::kStructure, "RSA keygen", 1}},
        {TacticOperation::kInsert,
         {LeakageLevel::kStructure, "1 RSA private op + dict insert", 1}},
        {TacticOperation::kEqualitySearch,
         {LeakageLevel::kIdentifiers, "c_w RSA public ops server-side", 1}},
    };
    t.gateway_interfaces = {SpiInterface::kSetup,     SpiInterface::kInsertion,
                            SpiInterface::kDocIdGen,  SpiInterface::kSecureEnc,
                            SpiInterface::kEqQuery,   SpiInterface::kEqResolution};
    t.cloud_interfaces = {SpiInterface::kSetup, SpiInterface::kInsertion,
                          SpiInterface::kEqQuery, SpiInterface::kRetrieval};
    t.challenge = "Key management";
    t.preference = 5;  // below Mitra: no deletions, heavier updates
    // Calibration: one RSA private op per update (~600us at 768 bits with
    // the Montgomery/CRT fast path, BENCH_crypto BM_SophosUpdate).
    t.cost.ops = {
        {TacticOperation::kInsert, {CostShape::kConstant, 650.0, 0.0}},
        {TacticOperation::kEqualitySearch, {CostShape::kLinear, 300.0, 10.0}},
    };
    return t;
  }();
  return d;
}

void SophosTactic::setup() {
  const SecretBytes prf_key = ctx_.kms->derive(ctx_.scope("sophos"), 32);
  const int modulus_bits = ctx_.param_int("sophos_modulus_bits", 768);
  client_.emplace(prf_key, static_cast<std::size_t>(modulus_bits));
  const sse::SophosPublicParams params = client_->public_params();
  ctx_.cloud->call("sophos.setup", wire::pack({{"scope", Value(ctx_.scope("sophos"))},
                                               {"n", Value(params.n.to_bytes())},
                                               {"e", Value(params.e.to_bytes())}}));
}

void SophosTactic::on_insert(const DocId& id, const Value& value) {
  const sse::SophosUpdateToken token =
      client_->update(field_keyword(ctx_.field, value), id);
  if (ctx_.perf) ctx_.perf->incr("core.crypto.sophos.trapdoor");
  ctx_.cloud->call("sophos.update", wire::pack({{"scope", Value(ctx_.scope("sophos"))},
                                                {"ut", Value(token.ut)},
                                                {"value", Value(token.value)}}));
}

void SophosTactic::on_delete(const DocId&, const Value&) {
  throw_error(ErrorCode::kInvalidArgument,
              "Sophos is append-only: deletion is not part of the construction");
}

std::vector<DocId> SophosTactic::equality_search(const Value& value) {
  const auto token = client_->search_token(field_keyword(ctx_.field, value));
  if (!token) return {};  // keyword never inserted
  if (ctx_.perf) ctx_.perf->incr("core.crypto.sophos.search_steps", token->count);
  const Bytes reply = ctx_.cloud->call(
      "sophos.search",
      wire::pack({{"scope", Value(ctx_.scope("sophos"))},
                  {"kw_token", Value(token->kw_token)},
                  {"st", Value(token->st_current)},
                  {"count", Value(static_cast<std::int64_t>(token->count))}}));
  const doc::Object obj = wire::unpack(reply);
  std::vector<DocId> ids;
  for (const auto& v : wire::get_arr(obj, "ids")) ids.push_back(v.as_string());
  return ids;
}

void register_sophos_tactic(TacticRegistry& r) {
  r.register_field_tactic(SophosTactic::static_descriptor(),
                          [](const GatewayContext& ctx) {
                            return std::make_unique<SophosTactic>(ctx);
                          });
}

}  // namespace datablinder::core
