#include "core/tactics/mitra_tactic.hpp"

#include "core/hot_cache.hpp"
#include "core/tactics/builtin.hpp"
#include "core/wire.hpp"

namespace datablinder::core {

using doc::Value;

const TacticDescriptor& MitraTactic::static_descriptor() {
  static const TacticDescriptor d = [] {
    TacticDescriptor t;
    t.name = "Mitra";
    t.protection_class = schema::ProtectionClass::kClass2;
    t.serves_operations = {schema::Operation::kInsert, schema::Operation::kEquality};
    t.operations = {
        {TacticOperation::kInit, {LeakageLevel::kStructure, "O(1)", 0}},
        {TacticOperation::kInsert,
         {LeakageLevel::kStructure, "O(1) PRF + dict insert (forward private)", 1}},
        {TacticOperation::kDelete,
         {LeakageLevel::kStructure, "O(1) lazy delete entry", 1}},
        {TacticOperation::kEqualitySearch,
         {LeakageLevel::kIdentifiers, "O(c_w) address derivations + lookups", 1}},
    };
    t.gateway_interfaces = {SpiInterface::kInsertion, SpiInterface::kDocIdGen,
                            SpiInterface::kSecureEnc, SpiInterface::kUpdate,
                            SpiInterface::kDeletion,  SpiInterface::kEqQuery,
                            SpiInterface::kEqResolution};
    t.cloud_interfaces = {SpiInterface::kInsertion, SpiInterface::kUpdate,
                          SpiInterface::kDeletion, SpiInterface::kEqQuery,
                          SpiInterface::kRetrieval};
    t.challenge = "Local storage";
    t.preference = 10;
    // Calibration: one PRF-derived address + dict write per update; search
    // derives c_w addresses (keyword frequency scales with n).
    t.cost.ops = {
        {TacticOperation::kInsert, {CostShape::kConstant, 40.0, 0.0}},
        {TacticOperation::kDelete, {CostShape::kConstant, 40.0, 0.0}},
        {TacticOperation::kEqualitySearch, {CostShape::kLinear, 60.0, 5.0}},
    };
    return t;
  }();
  return d;
}

void MitraTactic::setup() {
  const SecretBytes key = ctx_.kms->derive(ctx_.scope("mitra"), 32);
  client_.emplace(key);
  state_key_ = "mitra-counters:" + ctx_.scope("mitra");
  // Recover persisted keyword counters (the tactic's "local storage").
  for (const auto& [keyword, count_bytes] : ctx_.local_store->hgetall(state_key_)) {
    client_->restore_counter(keyword, read_be64(count_bytes));
  }
}

void MitraTactic::send_update(sse::MitraOp op, const std::string& keyword,
                              const DocId& id) {
  const sse::MitraUpdateToken token = client_->update(op, keyword, id);
  // The keyword counter advanced (on add AND delete): any cached search
  // trapdoor for it now misses the newest entry. Keyed invalidation —
  // exactly this keyword, nothing else.
  if (ctx_.cache != nullptr) {
    ctx_.cache->erase("mitra/" + ctx_.scope("mitra") + "/" + keyword);
  }
  ctx_.local_store->hset(state_key_, keyword, be64(client_->counter(keyword)));
  ctx_.cloud->call("mitra.update",
                   wire::pack({{"scope", Value(ctx_.scope("mitra"))},
                               {"address", Value(token.address)},
                               {"value", Value(token.value)}}));
}

void MitraTactic::on_insert(const DocId& id, const Value& value) {
  send_update(sse::MitraOp::kAdd, field_keyword(ctx_.field, value), id);
}

void MitraTactic::on_delete(const DocId& id, const Value& value) {
  send_update(sse::MitraOp::kDelete, field_keyword(ctx_.field, value), id);
}

std::vector<DocId> MitraTactic::equality_search(const Value& value) {
  const std::string keyword = field_keyword(ctx_.field, value);
  // Trapdoor cache: deriving c_w PRF addresses is the gateway-side cost of
  // a Mitra search. Cached under a per-keyword key (state-dependent:
  // send_update erases it whenever the counter advances).
  const std::string cache_key = "mitra/" + ctx_.scope("mitra") + "/" + keyword;
  std::vector<Bytes> addrs;
  bool have = false;
  if (ctx_.cache != nullptr) {
    if (auto blob = ctx_.cache->get(cache_key)) {
      const BytesView v(*blob);
      const std::uint32_t count = read_be32(v);
      std::size_t off = 4;
      addrs.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t len = read_be32(v.subspan(off));
        off += 4;
        const BytesView a = v.subspan(off, len);
        off += len;
        addrs.emplace_back(a.begin(), a.end());
      }
      have = true;
    }
  }
  if (!have) {
    sse::MitraSearchToken token = client_->search_token(keyword);
    addrs = std::move(token.addresses);
    if (ctx_.cache != nullptr) {
      Bytes blob = be32(static_cast<std::uint32_t>(addrs.size()));
      for (const auto& a : addrs) {
        append(blob, be32(static_cast<std::uint32_t>(a.size())));
        append(blob, a);
      }
      ctx_.cache->put(cache_key, blob);
    }
  }
  doc::Array addresses;
  addresses.reserve(addrs.size());
  for (const auto& a : addrs) addresses.emplace_back(a);
  const Bytes reply = ctx_.cloud->call(
      "mitra.search", wire::pack({{"scope", Value(ctx_.scope("mitra"))},
                                  {"addresses", Value(std::move(addresses))}}));
  const doc::Object obj = wire::unpack(reply);
  std::vector<Bytes> values;
  for (const auto& v : wire::get_arr(obj, "values")) values.push_back(v.as_binary());
  return client_->resolve(keyword, values);
}

void register_mitra_tactic(TacticRegistry& r) {
  r.register_field_tactic(MitraTactic::static_descriptor(), [](const GatewayContext& ctx) {
    return std::make_unique<MitraTactic>(ctx);
  });
}

}  // namespace datablinder::core
