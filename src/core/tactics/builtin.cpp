#include "core/tactics/builtin.hpp"

namespace datablinder::core {

void register_builtin_tactics(TacticRegistry& r) {
  register_det_tactic(r);
  register_rnd_tactic(r);
  register_mitra_tactic(r);
  register_sophos_tactic(r);
  register_biex2lev_tactic(r);
  register_biexzmf_tactic(r);
  register_ope_tactic(r);
  register_rangebrc_tactic(r);
  register_ore_tactic(r);
  register_paillier_tactic(r);
}

}  // namespace datablinder::core
