// ORE tactic — range queries via Lewi–Wu left/right order-revealing
// encryption (Table 2: Class 5, order leakage, 3 gateway / 3 cloud
// interfaces). Stored ciphertexts (right) are incomparable to each other;
// only query tokens (left) reveal order, so the resting index leaks less
// than OPE — at the price of a linear comparison scan per range query.
#pragma once

#include <optional>

#include "core/spi.hpp"
#include "ppe/ore.hpp"

namespace datablinder::core {

class OreTactic final : public FieldTactic {
 public:
  explicit OreTactic(GatewayContext ctx) : ctx_(std::move(ctx)) {}

  static const TacticDescriptor& static_descriptor();
  const TacticDescriptor& descriptor() const override { return static_descriptor(); }

  void setup() override;
  void on_insert(const DocId& id, const doc::Value& value) override;
  void on_delete(const DocId& id, const doc::Value& value) override;
  std::vector<DocId> range_search(const doc::Value& lo, const doc::Value& hi) override;

 private:
  GatewayContext ctx_;
  std::optional<ppe::OreCipher> cipher_;
};

}  // namespace datablinder::core
