// Sophos tactic — forward-private equality search from an RSA trapdoor
// permutation (Table 2: Class 2, identifiers leakage, 6 gateway / 4 cloud
// interfaces, challenge = key management). Append-only: the construction
// has no deletion protocol, so delete attempts fail loudly. The per-keyword
// token-chain state lives at the gateway — the very statefulness the
// paper's conclusion flags as the obstacle to cloud-native deployment.
#pragma once

#include <optional>

#include "core/spi.hpp"
#include "sse/sophos.hpp"

namespace datablinder::core {

class SophosTactic final : public FieldTactic {
 public:
  explicit SophosTactic(GatewayContext ctx) : ctx_(std::move(ctx)) {}

  static const TacticDescriptor& static_descriptor();
  const TacticDescriptor& descriptor() const override { return static_descriptor(); }

  /// Generates the RSA trapdoor (param "sophos_modulus_bits", default 768)
  /// and ships the public permutation to the cloud.
  void setup() override;
  void on_insert(const DocId& id, const doc::Value& value) override;
  /// Throws: Sophos is append-only.
  void on_delete(const DocId& id, const doc::Value& value) override;
  std::vector<DocId> equality_search(const doc::Value& value) override;

 private:
  GatewayContext ctx_;
  std::optional<sse::SophosClient> client_;
};

}  // namespace datablinder::core
