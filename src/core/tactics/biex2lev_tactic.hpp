// BIEX-2Lev tactic — boolean & cross-field search via IEX-2Lev (Table 2:
// Class 3, predicates leakage, 8 gateway / 5 cloud interfaces, challenge =
// storage implementation complexity). Collection-scoped: all boolean-
// annotated fields of a collection share one cross-keyword index.
#pragma once

#include <optional>

#include "core/spi.hpp"
#include "sse/iex2lev.hpp"

namespace datablinder::core {

class Biex2LevTactic final : public BooleanTactic {
 public:
  explicit Biex2LevTactic(GatewayContext ctx) : ctx_(std::move(ctx)) {}

  static const TacticDescriptor& static_descriptor();
  const TacticDescriptor& descriptor() const override { return static_descriptor(); }

  void setup() override;
  void on_insert(const DocId& id, const std::vector<std::string>& keywords) override;
  void on_delete(const DocId& id, const std::vector<std::string>& keywords) override;
  std::vector<DocId> query(const sse::BoolQuery& q) override;

 private:
  void send_tokens(sse::IexOp op, const std::vector<std::string>& keywords,
                   const DocId& id);

  GatewayContext ctx_;
  std::optional<sse::Iex2LevClient> client_;
};

}  // namespace datablinder::core
