// RangeBRC tactic — range queries WITHOUT order leakage (Class 3).
//
// Fills the policy gap between the paper's Table 2 range tactics (OPE/ORE,
// both Class 5 "order") and fields whose annotation forbids order leakage:
// a C3 field annotated with RG now resolves to this tactic instead of
// failing. Construction: dyadic-interval SSE with best-range-cover queries
// (the "rich queries" line of work the paper cites as [22]), riding on the
// Mitra encrypted index — so updates are forward-private and the cloud
// handlers are the existing mitra.* methods under a dedicated scope.
//
// Trade-off vs OPE (measured by bench_ablation_ranges): 64 index entries
// per value and O(log D) interval searches per query, against OPE's single
// ordered-index entry and one scan — protection bought with storage and
// round trips, exactly the knob the protection-class annotation turns.
// Like Mitra, the tactic is stateful: dyadic counters live at the gateway
// (persisted in the local KvStore). OPE stays the stateless option; a
// RangeBRC-over-Mitra-SL composition would trade further round trips for
// statelessness.
#pragma once

#include <optional>

#include "core/registry.hpp"
#include "core/spi.hpp"
#include "sse/range_brc.hpp"

namespace datablinder::core {

class RangeBrcTactic final : public FieldTactic {
 public:
  explicit RangeBrcTactic(GatewayContext ctx) : ctx_(std::move(ctx)) {}

  static const TacticDescriptor& static_descriptor();
  const TacticDescriptor& descriptor() const override { return static_descriptor(); }

  void setup() override;
  void on_insert(const DocId& id, const doc::Value& value) override;
  void on_delete(const DocId& id, const doc::Value& value) override;
  std::vector<DocId> range_search(const doc::Value& lo, const doc::Value& hi) override;

 private:
  void send_updates(sse::MitraOp op, const doc::Value& value, const DocId& id);

  GatewayContext ctx_;
  std::optional<sse::RangeBrcClient> client_;
  std::string state_key_;
};

void register_rangebrc_tactic(TacticRegistry& r);

}  // namespace datablinder::core
