#include "core/tactics/det_tactic.hpp"

#include "common/hex.hpp"
#include "core/hot_cache.hpp"
#include "core/tactics/builtin.hpp"
#include "core/wire.hpp"

namespace datablinder::core {

using doc::Value;

const TacticDescriptor& DetTactic::static_descriptor() {
  static const TacticDescriptor d = [] {
    TacticDescriptor t;
    t.name = "DET";
    t.protection_class = schema::ProtectionClass::kClass4;
    t.serves_operations = {schema::Operation::kInsert, schema::Operation::kEquality,
                           schema::Operation::kBoolean};
    t.operations = {
        {TacticOperation::kInit, {LeakageLevel::kStructure, "O(1)", 0}},
        {TacticOperation::kInsert, {LeakageLevel::kEqualities, "O(1) set insert", 1}},
        {TacticOperation::kDelete, {LeakageLevel::kEqualities, "O(1) set remove", 1}},
        {TacticOperation::kEqualitySearch,
         {LeakageLevel::kEqualities, "O(1) set lookup", 1}},
        {TacticOperation::kBooleanSearch,
         {LeakageLevel::kEqualities, "O(t) lookups, gateway combination", 1}},
    };
    t.gateway_interfaces = {
        SpiInterface::kSetup,      SpiInterface::kInsertion,
        SpiInterface::kDocIdGen,   SpiInterface::kSecureEnc,
        SpiInterface::kUpdate,     SpiInterface::kRetrieval,
        SpiInterface::kDeletion,   SpiInterface::kEqQuery,
        SpiInterface::kEqResolution};
    t.cloud_interfaces = {SpiInterface::kInsertion, SpiInterface::kUpdate,
                          SpiInterface::kRetrieval, SpiInterface::kDeletion,
                          SpiInterface::kEqQuery,   SpiInterface::kSetup};
    t.challenge = "-";
    t.preference = 10;
    // Calibration: one AES-SIV label (~10us) + round trip; equality hits
    // pay mget + AES-GCM open (~45us) per matching document.
    t.cost.ops = {
        {TacticOperation::kInsert, {CostShape::kConstant, 35.0, 0.0}},
        {TacticOperation::kDelete, {CostShape::kConstant, 35.0, 0.0}},
        {TacticOperation::kEqualitySearch, {CostShape::kLogNPlusK, 60.0, 45.0}},
        {TacticOperation::kBooleanSearch, {CostShape::kLogNPlusK, 90.0, 45.0}},
    };
    return t;
  }();
  return d;
}

void DetTactic::setup() {
  const SecretBytes key = ctx_.kms->derive(ctx_.scope("det"), 32);
  cipher_.emplace(key, ctx_.collection + "." + ctx_.field);
}

Bytes DetTactic::label(const Value& value) const {
  // Deterministic: equal values -> equal labels within this field scope.
  // Labels are pure functions of key material + value, so cached entries
  // (no epoch domain) never go stale.
  if (ctx_.cache != nullptr) {
    const std::string key =
        "det/" + ctx_.scope("det") + "/" + hex_encode(value.scalar_bytes());
    if (auto cached = ctx_.cache->get(key)) return std::move(*cached);
    Bytes l = cipher_->encrypt(value.scalar_bytes());
    ctx_.cache->put(key, l);
    return l;
  }
  return cipher_->encrypt(value.scalar_bytes());
}

void DetTactic::on_insert(const DocId& id, const Value& value) {
  ctx_.cloud->call("det.insert", wire::pack({{"col", Value(ctx_.collection)},
                                             {"field", Value(ctx_.field)},
                                             {"label", Value(label(value))},
                                             {"id", Value(id)}}));
}

void DetTactic::on_delete(const DocId& id, const Value& value) {
  ctx_.cloud->call("det.remove", wire::pack({{"col", Value(ctx_.collection)},
                                             {"field", Value(ctx_.field)},
                                             {"label", Value(label(value))},
                                             {"id", Value(id)}}));
}

std::vector<DocId> DetTactic::equality_search(const Value& value) {
  const Bytes reply =
      ctx_.cloud->call("det.search", wire::pack({{"col", Value(ctx_.collection)},
                                                 {"field", Value(ctx_.field)},
                                                 {"label", Value(label(value))}}));
  const doc::Object obj = wire::unpack(reply);
  std::vector<DocId> ids;
  for (const auto& v : wire::get_arr(obj, "ids")) ids.push_back(v.as_string());
  return ids;
}

void register_det_tactic(TacticRegistry& r) {
  r.register_field_tactic(DetTactic::static_descriptor(), [](const GatewayContext& ctx) {
    return std::make_unique<DetTactic>(ctx);
  });
}

}  // namespace datablinder::core
