#include "core/tactics/ope_tactic.hpp"

#include "common/hex.hpp"
#include "core/hot_cache.hpp"
#include "core/tactics/builtin.hpp"
#include "doc/numeric.hpp"
#include "core/wire.hpp"

namespace datablinder::core {

using doc::Value;

const TacticDescriptor& OpeTactic::static_descriptor() {
  static const TacticDescriptor d = [] {
    TacticDescriptor t;
    t.name = "OPE";
    t.protection_class = schema::ProtectionClass::kClass5;
    t.serves_operations = {schema::Operation::kInsert, schema::Operation::kRange};
    t.serves_aggregates = {schema::Aggregate::kMin, schema::Aggregate::kMax};
    t.operations = {
        {TacticOperation::kInit, {LeakageLevel::kStructure, "O(1)", 0}},
        {TacticOperation::kInsert, {LeakageLevel::kOrder, "O(log N) index insert", 1}},
        {TacticOperation::kDelete, {LeakageLevel::kOrder, "O(log N) index remove", 1}},
        {TacticOperation::kRangeQuery,
         {LeakageLevel::kOrder, "O(log N + K) ordered index scan", 1}},
    };
    t.gateway_interfaces = {SpiInterface::kInsertion, SpiInterface::kRangeQuery,
                            SpiInterface::kRangeResolution};
    t.cloud_interfaces = {SpiInterface::kInsertion, SpiInterface::kRangeQuery,
                          SpiInterface::kDeletion};
    t.challenge = "-";
    t.preference = 10;  // index-backed scans beat ORE's linear compare
    // Calibration: OPE encrypt is one AES-SIV pass (~10us, BENCH_crypto
    // BM_OpeEncrypt); per-result work is an mget share + AES-GCM open
    // (~45us, BM_AesGcmOpen).
    t.cost.ops = {
        {TacticOperation::kInsert, {CostShape::kLogN, 25.0, 1.5}},
        {TacticOperation::kDelete, {CostShape::kLogN, 25.0, 1.5}},
        {TacticOperation::kRangeQuery, {CostShape::kLogNPlusK, 60.0, 45.0}},
    };
    return t;
  }();
  return d;
}

void OpeTactic::setup() {
  cipher_.emplace(ctx_.kms->derive(ctx_.scope("ope"), 32),
                  ctx_.collection + "." + ctx_.field);
}

Bytes OpeTactic::score(const Value& value) const {
  // Scores are pure functions of key material + value (deterministic
  // monotone injection): cacheable without an epoch domain.
  if (ctx_.cache != nullptr) {
    const std::string key =
        "ope/" + ctx_.scope("ope") + "/" + hex_encode(value.scalar_bytes());
    if (auto cached = ctx_.cache->get(key)) return std::move(*cached);
    Bytes s = cipher_->encrypt(doc::ordered_key(value)).to_bytes();
    ctx_.cache->put(key, s);
    return s;
  }
  return cipher_->encrypt(doc::ordered_key(value)).to_bytes();
}

void OpeTactic::on_insert(const DocId& id, const Value& value) {
  ctx_.cloud->call("ope.insert", wire::pack({{"col", Value(ctx_.collection)},
                                             {"field", Value(ctx_.field)},
                                             {"score", Value(score(value))},
                                             {"id", Value(id)}}));
}

void OpeTactic::on_delete(const DocId& id, const Value& value) {
  ctx_.cloud->call("ope.remove", wire::pack({{"col", Value(ctx_.collection)},
                                             {"field", Value(ctx_.field)},
                                             {"score", Value(score(value))},
                                             {"id", Value(id)}}));
}

std::vector<DocId> OpeTactic::range_search(const Value& lo, const Value& hi) {
  const Bytes reply =
      ctx_.cloud->call("ope.range", wire::pack({{"col", Value(ctx_.collection)},
                                                {"field", Value(ctx_.field)},
                                                {"lo", Value(score(lo))},
                                                {"hi", Value(score(hi))}}));
  const doc::Object obj = wire::unpack(reply);
  std::vector<DocId> ids;
  for (const auto& v : wire::get_arr(obj, "ids")) ids.push_back(v.as_string());
  return ids;
}

AggregateResult OpeTactic::aggregate(schema::Aggregate agg) {
  require(agg == schema::Aggregate::kMin || agg == schema::Aggregate::kMax,
          "OPE serves only min/max aggregates");
  const Bytes reply = ctx_.cloud->call(
      "ope.extreme",
      wire::pack({{"col", Value(ctx_.collection)},
                  {"field", Value(ctx_.field)},
                  {"max", Value(agg == schema::Aggregate::kMax ? 1 : 0)}}));
  const doc::Object obj = wire::unpack(reply);
  AggregateResult out;
  if (!wire::get(obj, "found").as_bool()) return out;
  // Decode the extreme: OPE is an invertible monotone injection, so the
  // gateway recovers the plaintext from the ciphertext alone.
  const auto ct = ppe::Ope128::from_bytes(wire::get_bin(obj, "score"));
  out.value = doc::ordered_key_inverse(cipher_->decrypt(ct));
  out.count = 1;
  return out;
}

void register_ope_tactic(TacticRegistry& r) {
  r.register_field_tactic(OpeTactic::static_descriptor(), [](const GatewayContext& ctx) {
    return std::make_unique<OpeTactic>(ctx);
  });
}

}  // namespace datablinder::core
