#include "core/tactics/paillier_tactic.hpp"

#include <cmath>

#include "core/hot_cache.hpp"
#include "core/metrics.hpp"
#include "core/tactics/builtin.hpp"
#include "core/wire.hpp"

namespace datablinder::core {

using bigint::BigInt;
using doc::Value;

const TacticDescriptor& PaillierTactic::static_descriptor() {
  static const TacticDescriptor d = [] {
    TacticDescriptor t;
    t.name = "Paillier";
    // Semantically secure ciphertexts: nothing beyond structure leaks.
    t.protection_class = schema::ProtectionClass::kClass1;
    t.serves_operations = {schema::Operation::kInsert};
    t.serves_aggregates = {schema::Aggregate::kSum, schema::Aggregate::kAverage,
                           schema::Aggregate::kCount};
    t.operations = {
        {TacticOperation::kInit, {LeakageLevel::kStructure, "Paillier keygen", 1}},
        {TacticOperation::kInsert,
         {LeakageLevel::kStructure, "1 Paillier encryption (2 modexp)", 1}},
        {TacticOperation::kSum,
         {LeakageLevel::kStructure, "O(N) modmul fold cloud-side + 1 decrypt", 1}},
        {TacticOperation::kAverage,
         {LeakageLevel::kStructure, "sum protocol + gateway division", 1}},
    };
    t.gateway_interfaces = {SpiInterface::kSetup, SpiInterface::kInsertion,
                            SpiInterface::kAggFunctionResolution};
    t.cloud_interfaces = {SpiInterface::kSetup, SpiInterface::kInsertion,
                          SpiInterface::kAggFunction};
    t.challenge = "Key management";
    t.preference = 10;
    // Calibration: Paillier encrypt with the Montgomery randomizer pool
    // (~700us at 2048-bit n^2, BENCH_crypto BM_PaillierEncrypt); aggregates
    // fold server-side and pay one CRT decrypt at the gateway.
    t.cost.ops = {
        {TacticOperation::kInsert, {CostShape::kConstant, 700.0, 0.0}},
        {TacticOperation::kSum, {CostShape::kLinear, 500.0, 2.0}},
        {TacticOperation::kAverage, {CostShape::kLinear, 500.0, 2.0}},
    };
    return t;
  }();
  return d;
}

void PaillierTactic::setup() {
  const std::string key_slot = "paillier-keys:" + ctx_.scope("paillier");
  if (auto stored = ctx_.local_store->get(key_slot)) {
    // Recover a previously generated keypair: n || lambda || mu [|| p || q],
    // each length-prefixed. The factor fields are absent in blobs persisted
    // before CRT decryption existed — those keys simply stay on the
    // lambda/mu path.
    std::size_t off = 0;
    auto take = [&]() {
      const std::size_t n = read_be32(BytesView(*stored).subspan(off));
      off += 4;
      BigInt v = BigInt::from_bytes(BytesView(*stored).subspan(off, n));
      off += n;
      return v;
    };
    phe::PaillierKeyPair kp;
    kp.pub.n = take();
    kp.pub.n_squared = kp.pub.n * kp.pub.n;
    kp.priv.lambda = take();
    kp.priv.mu = take();
    if (off < stored->size()) {
      kp.priv.p = take();
      kp.priv.q = take();
    }
    kp.priv.pub = kp.pub;
    keys_ = std::move(kp);
  } else {
    const int bits = ctx_.param_int("paillier_modulus_bits", 512);
    keys_ = phe::paillier_generate(static_cast<std::size_t>(bits));
    Bytes blob;
    auto put = [&](const BigInt& v) {
      const Bytes b = v.to_bytes();
      append(blob, be32(static_cast<std::uint32_t>(b.size())));
      append(blob, b);
    };
    put(keys_->pub.n);
    put(keys_->priv.lambda);
    put(keys_->priv.mu);
    put(keys_->priv.p);
    put(keys_->priv.q);
    ctx_.local_store->set(key_slot, std::move(blob));
  }
  // Montgomery contexts + optional randomizer pool ("paillier_pool" = pool
  // low-water mark, 0 disables) + CRT residue system when p/q are known.
  // The keypair is persisted, so re-registrations see the same modulus:
  // draw the contexts from the gateway's shared per-modulus store when a
  // hot cache is wired, and let init_fast_paths keep them (idempotent).
  if (ctx_.cache != nullptr) {
    if (keys_->pub.n_squared.is_zero()) {
      keys_->pub.n_squared = keys_->pub.n * keys_->pub.n;
    }
    keys_->pub.mont_n = ctx_.cache->montgomery(keys_->pub.n);
    keys_->pub.mont_n2 = ctx_.cache->montgomery(keys_->pub.n_squared);
  }
  const int pool = ctx_.param_int("paillier_pool", 0);
  keys_->pub.init_fast_paths(pool > 0 ? static_cast<std::size_t>(pool) : 0);
  keys_->priv.pub = keys_->pub;
  keys_->priv.init_fast_paths();
  ctx_.cloud->call("agg.setup", wire::pack({{"scope", Value(ctx_.scope("paillier"))},
                                            {"n", Value(keys_->pub.n.to_bytes())}}));
}

void PaillierTactic::on_insert(const DocId& id, const Value& value) {
  const auto fixed = static_cast<std::int64_t>(
      std::llround(value.as_double() * static_cast<double>(kFixedPointScale)));
  const BigInt ct = keys_->pub.encrypt_i64(fixed);
  if (ctx_.perf) {
    ctx_.perf->incr("core.crypto.paillier.encrypt");
    if (const auto& pool = keys_->pub.pool) {
      // Published as totals: hit-rate = hits / (hits + misses).
      ctx_.perf->incr("core.crypto.paillier.pool.hit",
                      pool->hits() - ctx_.perf->counter("core.crypto.paillier.pool.hit"));
      ctx_.perf->incr(
          "core.crypto.paillier.pool.miss",
          pool->misses() - ctx_.perf->counter("core.crypto.paillier.pool.miss"));
    }
  }
  ctx_.cloud->call("agg.insert", wire::pack({{"scope", Value(ctx_.scope("paillier"))},
                                             {"id", Value(id)},
                                             {"ct", Value(ct.to_bytes())}}));
}

void PaillierTactic::on_delete(const DocId& id, const Value&) {
  ctx_.cloud->call("agg.remove", wire::pack({{"scope", Value(ctx_.scope("paillier"))},
                                             {"id", Value(id)}}));
}

AggregateResult PaillierTactic::aggregate(schema::Aggregate agg) {
  const Bytes reply = ctx_.cloud->call(
      "agg.sum", wire::pack({{"scope", Value(ctx_.scope("paillier"))}}));
  const doc::Object obj = wire::unpack(reply);
  AggregateResult out;
  out.count = static_cast<std::uint64_t>(wire::get_int(obj, "count"));
  if (agg == schema::Aggregate::kCount) {
    out.value = static_cast<double>(out.count);
    return out;
  }
  if (out.count == 0) return out;
  const BigInt sum_ct = BigInt::from_bytes(wire::get_bin(obj, "sum_ct"));
  if (ctx_.perf) ctx_.perf->incr("core.crypto.paillier.decrypt");
  const double sum = static_cast<double>(keys_->priv.decrypt(sum_ct).to_i64()) /
                     static_cast<double>(kFixedPointScale);
  out.value = (agg == schema::Aggregate::kAverage)
                  ? sum / static_cast<double>(out.count)
                  : sum;
  return out;
}

void register_paillier_tactic(TacticRegistry& r) {
  r.register_field_tactic(PaillierTactic::static_descriptor(),
                          [](const GatewayContext& ctx) {
                            return std::make_unique<PaillierTactic>(ctx);
                          });
}

}  // namespace datablinder::core
