#include "core/cost_model.hpp"

#include <algorithm>
#include <limits>

#include "core/hot_cache.hpp"

namespace datablinder::core {

const CostProfile& post_filter_cost_profile() {
  static const CostProfile p = [] {
    CostProfile c;
    // base: doc.list round trip + plan overhead; per_unit: one mget share +
    // AES-GCM open (BENCH_crypto BM_AesGcmOpen ≈ 39.5us) + predicate per
    // document in the collection.
    c.ops[TacticOperation::kRangeQuery] = {CostShape::kLinear, 120.0, 55.0};
    return c;
  }();
  return p;
}

CostModel::CostModel(PerfRegistry& perf, Config config, const HotCache* cache)
    : perf_(perf), config_(config), cache_(cache) {}

const PerfSeries* CostModel::observed(const std::string& name, TacticOperation op) {
  std::lock_guard lock(mutex_);
  auto& slot = handles_[{name, op}];
  if (slot == nullptr) slot = perf_.handle(name, op);
  return slot;
}

double CostModel::predict_us(const CostCandidate& candidate, TacticOperation op,
                             std::uint64_t n) {
  double prior = candidate.profile == nullptr
                     ? 0.0
                     : candidate.profile->predict_us(op, n, config_.default_selectivity);
  // Cache feedback: when the decrypted-document cache is running hot, the
  // dominant per-document cost of the post-filter shape (fetch + AEAD
  // open) is mostly skipped — discount the prior accordingly. Live EWMA
  // evidence already embodies the effect, so only the prior is scaled.
  if (cache_ != nullptr && candidate.name == kPostFilterTactic) {
    prior *= 1.0 - 0.7 * cache_->hit_ratio();
  }
  const PerfSeries* series = observed(plan_series(candidate.name), op);
  const double recent = static_cast<double>(series->recent_count());
  if (recent == 0.0) return prior;
  const double w = recent / (recent + config_.prior_weight);
  return w * series->ewma_us() + (1.0 - w) * prior;
}

CostDecision CostModel::choose(const std::string& decision_key,
                               const std::string& static_choice,
                               const std::vector<CostCandidate>& candidates,
                               TacticOperation op, std::uint64_t n) {
  CostDecision out;
  out.chosen = static_choice;
  if (candidates.empty()) return out;

  std::string best;
  double best_us = std::numeric_limits<double>::infinity();
  std::map<std::string, double> predicted;
  for (const CostCandidate& c : candidates) {
    const double us = predict_us(c, op, n);
    predicted[c.name] = us;
    if (us < best_us) {
      best = c.name;
      best_us = us;
    }
  }

  std::lock_guard lock(mutex_);
  State& st = state_[decision_key];
  if (st.incumbent.empty() || !predicted.count(st.incumbent)) {
    st.incumbent = predicted.count(static_choice) ? static_choice : best;
    st.challenger.clear();
    st.streak = 0;
  }

  if (best == st.incumbent) {
    // Incumbent still (predicted) cheapest: any pending challenge dies.
    st.challenger.clear();
    st.streak = 0;
  } else if (best_us < predicted[st.incumbent] * (1.0 - config_.hysteresis_margin)) {
    // Sustained-win accounting: the streak survives only while the SAME
    // challenger keeps beating the incumbent by the margin.
    st.streak = (st.challenger == best) ? st.streak + 1 : 1;
    st.challenger = best;
    if (st.streak >= config_.hysteresis_windows) {
      st.incumbent = best;
      st.challenger.clear();
      st.streak = 0;
    }
  } else {
    // Cheaper, but not by enough to count as a win.
    st.challenger.clear();
    st.streak = 0;
  }

  out.chosen = st.incumbent;
  out.predicted_us = predicted[st.incumbent];
  if (st.incumbent != static_choice) {
    out.chosen_by = "cost-model";
  } else if (!st.challenger.empty()) {
    out.chosen_by = "hysteresis-hold";
  } else {
    out.chosen_by = "static";
  }
  return out;
}

}  // namespace datablinder::core
