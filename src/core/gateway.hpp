// Gateway — the trusted-zone data protection gateway (Fig. 3, Fig. 4).
//
// Exposes the three application-facing interfaces of the deployment view:
//   * Schema   — register annotated schemas; the policy engine resolves
//                them to tactic plans and the registry instantiates the
//                gateway-side implementations at runtime.
//   * Entities — CRUD plus equality / boolean / range search and
//                aggregates. Every operation is compiled by the exec
//                Planner into an OperationPlan (index fan-out, batched
//                candidate retrieval, exact re-verification) and run by
//                the exec Executor; the gateway itself is a thin wrapper
//                that validates input, builds the plan, and runs it.
//   * Keys     — access to the key manager (HSM integration point).
//
// Concurrency: one reader/writer lock per tactic instance (see
// exec/runtime.hpp) — index mutations are exclusive per tactic, so writes
// to distinct fields proceed in parallel, while queries run shared.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/exec/executor.hpp"
#include "core/exec/intent_journal.hpp"
#include "core/exec/plan.hpp"
#include "core/exec/runtime.hpp"
#include "core/hot_cache.hpp"
#include "core/metrics.hpp"
#include "core/policy.hpp"
#include "core/registry.hpp"
#include "doc/value.hpp"
#include "net/replica_group.hpp"
#include "net/shard_router.hpp"

namespace datablinder::core {

struct GatewayConfig {
  /// Forwarded to every tactic's GatewayContext (e.g.
  /// "paillier_modulus_bits", "sophos_modulus_bits", "zmf_filter_bits").
  std::map<std::string, std::string> tactic_params;

  /// Worker threads for the executor's per-stage fan-out; 0 = auto (a
  /// small pool derived from the hardware concurrency).
  std::size_t index_workers = 0;

  /// Retry policy installed on the cloud RPC client when .enabled (default
  /// off: the seed fails fast). See net::RetryPolicy::standard().
  net::RetryPolicy retry;

  /// Circuit-breaker configuration applied to the cloud channel when
  /// .enabled (default off).
  net::BreakerConfig breaker;

  /// Crash-consistent inserts: when true, every insert/insert_many runs in
  /// RPC-capture mode, journals the exact cloud mutations into the local
  /// KvStore AOF before the first byte ships, and marks the intent
  /// complete after the batch lands (see exec::IntentJournal). Default off
  /// to keep the seed's per-call round-trip profile.
  bool journal_inserts = false;

  /// Adaptive cost-based range selection: when true, every admissible
  /// range candidate is instantiated alongside the static choice and the
  /// planner re-ranks them per query by predicted cost (CostModel). When
  /// false (default) selection is byte-identical to the static §5.1 table.
  bool adaptive_selection = false;

  /// Tuning knobs for the adaptive cost model (ignored unless
  /// adaptive_selection is on).
  CostModel::Config cost;

  /// Entry capacity of the gateway hot cache (trapdoors, deterministic
  /// labels, Montgomery contexts, decrypted documents). 0 (default)
  /// disables the cache entirely.
  std::size_t hot_cache_capacity = 0;

  /// Cloud replica count for ReplicatedCloud (core/replication.hpp).
  /// With replicas = 1 and hedged_reads off, no replication layer is built
  /// at all and the wire behaviour is byte-identical to a single-node
  /// stack. With > 1, writes are applied on the primary and replayed
  /// byte-identically to every backup before acknowledgement; reads route
  /// to the healthiest in-sync replica.
  std::size_t replicas = 1;

  /// Hedged reads: replay-idempotent reads fire a speculative duplicate to
  /// the next-best replica after a p95-derived delay; first success wins.
  /// A hedge is a speculative retry, so it is gated on the retry
  /// whitelist: enable `retry` too or nothing will ever hedge.
  bool hedged_reads = false;

  /// Hedge tuning (the enabled flag is derived from hedged_reads).
  net::HedgeConfig hedge;

  /// Failure-accrual tuning for per-replica health / failover.
  net::AccrualConfig accrual;

  /// Shard count for ShardedCloud (core/sharding.hpp). With shards = 1
  /// (default) no router is built and the stack degrades to the
  /// ReplicatedCloud shapes (byte-identical wire behaviour). With > 1,
  /// each shard is its own replica set (`replicas` nodes) and a
  /// consistent-hash router scatters keys across them: documents by id,
  /// SSE postings by keyword token, scope-coupled structures whole.
  std::size_t shards = 1;

  /// Consistent-hash ring tuning (virtual nodes, placement seed) for the
  /// shard router; ignored unless shards > 1.
  net::RingConfig shard_ring;
};

class Gateway {
 public:
  Gateway(net::RpcClient& cloud, kms::KeyManager& kms, store::KvStore& local_store,
          const TacticRegistry& registry, GatewayConfig config = {});

  /// Uninstalls the metrics hook from the shared RpcClient. Destroy a
  /// gateway before constructing its successor on the same client.
  ~Gateway();

  // --- Schema interface --------------------------------------------------
  /// Registers a schema: runs policy selection, instantiates and sets up
  /// every selected tactic. Throws kAlreadyExists for duplicate names and
  /// kPolicyViolation when annotations cannot be satisfied.
  void register_schema(schema::Schema s);

  const CollectionPlan& plan(const std::string& collection) const;
  const schema::Schema& schema_of(const std::string& collection) const;

  // --- Entities interface --------------------------------------------------
  /// Validates, encrypts and stores the document; indexes every sensitive
  /// field through its tactics. Generates an id when d.id is empty
  /// (DocIDGen); returns the document id.
  DocId insert(const std::string& collection, doc::Document d);

  /// Bulk ingest: like insert() per document, but all fire-and-forget
  /// index updates of the whole batch travel in ONE cloud round trip
  /// (deferred RPC batching) — the WAN-facing fast path for initial data
  /// outsourcing. Tactics whose update protocol requires intermediate
  /// server reads (Mitra-SL) are automatically excluded from deferral and
  /// keep their per-update round trips.
  std::vector<DocId> insert_many(const std::string& collection,
                                 std::vector<doc::Document> docs);

  /// Fetches and decrypts one document. Throws kNotFound.
  doc::Document read(const std::string& collection, const DocId& id);

  /// Removes the document and all of its index entries.
  void remove(const std::string& collection, const DocId& id);

  /// Replace semantics: remove(d.id) + insert(d).
  void update(const std::string& collection, doc::Document d);

  /// Equality search on one field; returns full decrypted documents.
  std::vector<doc::Document> equality_search(const std::string& collection,
                                             const std::string& field,
                                             const doc::Value& value);

  /// Boolean (conjunctive/disjunctive, cross-field) search.
  std::vector<doc::Document> boolean_search(const std::string& collection,
                                            const FieldBoolQuery& query);

  /// Inclusive range search on one numeric field.
  std::vector<doc::Document> range_search(const std::string& collection,
                                          const std::string& field,
                                          const doc::Value& lo, const doc::Value& hi);

  /// Aggregate over one field (sum / average / count / min / max).
  AggregateResult aggregate(const std::string& collection, const std::string& field,
                            schema::Aggregate agg);

  // --- Recovery ----------------------------------------------------------
  /// Replays every pending insert intent left by a crash or fault (no-op
  /// unless journal_inserts is on). Call after constructing a gateway over
  /// a semi-persistent local store. Returns how many intents completed.
  std::size_t recover_pending_inserts();

  /// The intent journal, or nullptr when journal_inserts is off.
  exec::IntentJournal* journal() noexcept { return journal_.get(); }

  // --- Keys interface --------------------------------------------------------
  kms::KeyManager& keys() noexcept { return kms_; }

  // --- Observability -----------------------------------------------------------
  /// Per-(tactic, operation) latency series recorded around every tactic
  /// protocol invocation, plus "core.<stage>" series for every pipeline
  /// stage (the Fig. 1 performance-metrics reification).
  const PerfRegistry& perf() const noexcept { return perf_; }
  PerfRegistry& perf() noexcept { return perf_; }

  /// The gateway hot cache, or nullptr when hot_cache_capacity is 0.
  const HotCache* cache() const noexcept { return cache_.get(); }
  HotCache* cache() noexcept { return cache_.get(); }

  /// The adaptive cost model, or nullptr when adaptive_selection is off.
  const CostModel* cost_model() const noexcept { return cost_model_.get(); }

 private:
  exec::CollectionRuntime& runtime(const std::string& collection);
  const exec::CollectionRuntime& runtime(const std::string& collection) const;

  GatewayContext make_context(const std::string& collection,
                              const std::string& field);

  static DocId generate_doc_id();

  /// Runs `body` in RPC-capture mode, journals the captured mutations for
  /// `ids`, ships them as one batch, then completes the intent.
  void journaled_run(const std::string& collection,
                     const std::vector<std::string>& ids,
                     const std::function<void()>& body);

  net::RpcClient& cloud_;
  kms::KeyManager& kms_;
  store::KvStore& local_store_;
  const TacticRegistry& registry_;
  GatewayConfig config_;
  PolicyEngine policy_;
  PerfRegistry perf_;
  std::unique_ptr<HotCache> cache_;      // before planner_: planner holds the pointer
  std::unique_ptr<CostModel> cost_model_;
  exec::Planner planner_;
  exec::Executor executor_;
  std::unique_ptr<exec::IntentJournal> journal_;

  mutable std::mutex collections_mutex_;
  std::map<std::string, std::unique_ptr<exec::CollectionRuntime>> collections_;
};

}  // namespace datablinder::core
