// Gateway — the trusted-zone data protection gateway (Fig. 3, Fig. 4).
//
// Exposes the three application-facing interfaces of the deployment view:
//   * Schema   — register annotated schemas; the policy engine resolves
//                them to tactic plans and the registry instantiates the
//                gateway-side implementations at runtime.
//   * Entities — CRUD plus equality / boolean / range search and
//                aggregates; the middleware core validates documents,
//                encrypts them (AES-GCM, per-collection key), routes every
//                sensitive field through its selected tactics, and resolves
//                query results (Retrieval + SecureEnc + *Resolution SPI
//                roles) including exact re-verification of approximate
//                candidates.
//   * Keys     — access to the key manager (HSM integration point).
//
// Concurrency: one reader/writer lock per collection — mutations are
// exclusive (SSE client state advances), queries run shared.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/policy.hpp"
#include "core/registry.hpp"
#include "crypto/gcm.hpp"
#include "doc/value.hpp"

namespace datablinder::core {

struct GatewayConfig {
  /// Forwarded to every tactic's GatewayContext (e.g.
  /// "paillier_modulus_bits", "sophos_modulus_bits", "zmf_filter_bits").
  std::map<std::string, std::string> tactic_params;
};

/// One predicate of a boolean query: field == value.
struct FieldTerm {
  std::string field;
  doc::Value value;
};

/// Boolean query in DNF over field terms: OR over AND-lists.
struct FieldBoolQuery {
  std::vector<std::vector<FieldTerm>> dnf;
};

class Gateway {
 public:
  Gateway(net::RpcClient& cloud, kms::KeyManager& kms, store::KvStore& local_store,
          const TacticRegistry& registry, GatewayConfig config = {});

  // --- Schema interface --------------------------------------------------
  /// Registers a schema: runs policy selection, instantiates and sets up
  /// every selected tactic. Throws kAlreadyExists for duplicate names and
  /// kPolicyViolation when annotations cannot be satisfied.
  void register_schema(schema::Schema s);

  const CollectionPlan& plan(const std::string& collection) const;
  const schema::Schema& schema_of(const std::string& collection) const;

  // --- Entities interface --------------------------------------------------
  /// Validates, encrypts and stores the document; indexes every sensitive
  /// field through its tactics. Generates an id when d.id is empty
  /// (DocIDGen); returns the document id.
  DocId insert(const std::string& collection, doc::Document d);

  /// Bulk ingest: like insert() per document, but all fire-and-forget
  /// index updates of the whole batch travel in ONE cloud round trip
  /// (deferred RPC batching) — the WAN-facing fast path for initial data
  /// outsourcing. Tactics whose update protocol requires intermediate
  /// server reads (Mitra-SL) are automatically excluded from deferral and
  /// keep their per-update round trips.
  std::vector<DocId> insert_many(const std::string& collection,
                                 std::vector<doc::Document> docs);

  /// Fetches and decrypts one document. Throws kNotFound.
  doc::Document read(const std::string& collection, const DocId& id);

  /// Removes the document and all of its index entries.
  void remove(const std::string& collection, const DocId& id);

  /// Replace semantics: remove(d.id) + insert(d).
  void update(const std::string& collection, doc::Document d);

  /// Equality search on one field; returns full decrypted documents.
  std::vector<doc::Document> equality_search(const std::string& collection,
                                             const std::string& field,
                                             const doc::Value& value);

  /// Boolean (conjunctive/disjunctive, cross-field) search.
  std::vector<doc::Document> boolean_search(const std::string& collection,
                                            const FieldBoolQuery& query);

  /// Inclusive range search on one numeric field.
  std::vector<doc::Document> range_search(const std::string& collection,
                                          const std::string& field,
                                          const doc::Value& lo, const doc::Value& hi);

  /// Aggregate over one field (sum / average / count / min / max).
  AggregateResult aggregate(const std::string& collection, const std::string& field,
                            schema::Aggregate agg);

  // --- Keys interface --------------------------------------------------------
  kms::KeyManager& keys() noexcept { return kms_; }

  // --- Observability -----------------------------------------------------------
  /// Per-(tactic, operation) latency series recorded around every tactic
  /// protocol invocation (the Fig. 1 performance-metrics reification).
  const PerfRegistry& perf() const noexcept { return perf_; }
  PerfRegistry& perf() noexcept { return perf_; }

 private:
  struct CollectionState {
    schema::Schema schema;
    CollectionPlan plan;
    std::unique_ptr<crypto::AesGcm> doc_cipher;  // whole-document AEAD
    std::unique_ptr<BooleanTactic> boolean;
    std::map<std::string, std::unique_ptr<FieldTactic>> eq;
    std::map<std::string, std::unique_ptr<FieldTactic>> range;
    std::map<std::string, std::unique_ptr<FieldTactic>> agg;
    mutable std::shared_mutex op_mutex;
  };

  CollectionState& state(const std::string& collection);
  const CollectionState& state(const std::string& collection) const;

  GatewayContext make_context(const std::string& collection,
                              const std::string& field) const;

  Bytes seal_document(const CollectionState& cs, const doc::Document& d) const;
  doc::Document open_document(const CollectionState& cs, const DocId& id,
                              BytesView blob) const;

  /// Fetches + decrypts a batch of ids; silently skips ids whose document
  /// has vanished (races with deletions).
  std::vector<doc::Document> fetch_documents(const CollectionState& cs,
                                             const std::vector<DocId>& ids);

  /// Cross-field keyword set of the document's boolean-member fields.
  std::vector<std::string> boolean_keywords(const CollectionState& cs,
                                            const doc::Document& d) const;

  /// Index mutation fan-out shared by insert/remove.
  void dispatch_update(CollectionState& cs, const doc::Document& d, bool is_insert);

  static DocId generate_doc_id();

  net::RpcClient& cloud_;
  kms::KeyManager& kms_;
  store::KvStore& local_store_;
  const TacticRegistry& registry_;
  GatewayConfig config_;
  PolicyEngine policy_;
  PerfRegistry perf_;

  mutable std::mutex collections_mutex_;
  std::map<std::string, std::unique_ptr<CollectionState>> collections_;
};

}  // namespace datablinder::core
