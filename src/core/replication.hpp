// ReplicatedCloud — the untrusted zone as a replica set.
//
// Owns N in-process CloudNodes, each behind its own independently
// faultable Channel, assembled into a net::ReplicaGroup and fronted by a
// single group-routing RpcClient the Gateway binds to exactly like a
// single-node client. Chaos tests script per-replica FaultPlans through
// channel(i) and drive failures while asserting the group invariants.
//
// Fidelity contract: with GatewayConfig{replicas = 1, hedged_reads =
// false} no group is built at all — the client is a plain
// RpcClient(node.rpc(), channel), i.e. the exact pre-replication code
// path, byte-identical on the wire to a hand-assembled single-node stack.
#pragma once

#include <memory>
#include <vector>

#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "net/channel.hpp"
#include "net/replica_group.hpp"
#include "net/rpc.hpp"

namespace datablinder::core {

class ReplicatedCloud {
 public:
  /// Builds config.replicas nodes (minimum 1), every channel starting from
  /// `channel_config`. A group (and group-mode client) is built unless the
  /// config describes the legacy single-node shape.
  explicit ReplicatedCloud(const GatewayConfig& config = {},
                           net::ChannelConfig channel_config = {});

  /// The client the Gateway should be constructed over.
  net::RpcClient& client() noexcept { return *client_; }

  /// The replica group, or nullptr in legacy single-node mode.
  net::ReplicaGroup* group() noexcept { return group_.get(); }

  std::size_t size() const noexcept { return nodes_.size(); }
  CloudNode& node(std::size_t i) { return *nodes_[i]; }
  net::Channel& channel(std::size_t i) { return *channels_[i]; }

  /// Replays the missing log suffix to every reachable replica (heal
  /// probe); no-op in legacy mode. Returns replicas fully in sync.
  std::size_t catch_up();

 private:
  std::vector<std::unique_ptr<CloudNode>> nodes_;
  std::vector<std::unique_ptr<net::Channel>> channels_;
  std::unique_ptr<net::ReplicaGroup> group_;  // before client_: client holds it
  std::unique_ptr<net::RpcClient> client_;
};

}  // namespace datablinder::core
