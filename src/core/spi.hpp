// Service Provider Interface (SPI) — the tactic abstraction model of
// paper §3.1 (Fig. 1) and the pluggable architecture of §4.2 (Table 1).
//
// A *tactic* packages one or more distributed protocol operations; each
// operation is reified with a leakage profile (Fuller et al. taxonomy) and
// performance metrics. Tactic providers implement the gateway-side
// strategy classes below (and register cloud-side RPC handlers); the
// middleware core loads the right implementation at runtime via the
// TacticRegistry (strategy pattern).
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "doc/value.hpp"
#include "kms/key_manager.hpp"
#include "net/rpc.hpp"
#include "schema/schema.hpp"
#include "sse/iex2lev.hpp"  // sse::BoolQuery
#include "sse/index_common.hpp"
#include "store/kvstore.hpp"

namespace datablinder::core {

using sse::DocId;

/// The leakage lattice (LeakageLevel, TacticOperation and the per-class
/// ceiling table) lives in schema/leakage.hpp — the single definition site
/// shared with the policy engine and dblint's leakage-conformance pass.
using schema::LeakageLevel;
using schema::TacticOperation;
using schema::to_string;  // to_string(LeakageLevel) / to_string(TacticOperation)

/// The concrete service interfaces of Table 1. Tactics advertise which they
/// implement on each side; the Table 2 bench prints these counts.
enum class SpiInterface : std::uint8_t {
  kInsertion,
  kDocIdGen,
  kSecureEnc,
  kUpdate,
  kRetrieval,
  kDeletion,
  kEqQuery,
  kEqResolution,
  kBoolQuery,
  kBoolResolution,
  kRangeQuery,
  kRangeResolution,
  kAggFunction,
  kAggFunctionResolution,
  kSetup,
};

std::string to_string(SpiInterface spi);

/// Per-operation reification (Fig. 1): leakage + performance metrics.
struct OperationProfile {
  LeakageLevel leakage = LeakageLevel::kStructure;
  /// Algorithmic cost descriptor, e.g. "O(c_w) dict lookups".
  std::string complexity;
  /// Protocol round trips between gateway and cloud per call.
  int round_trips = 1;
};

/// Asymptotic shape of an operation's predicted cost in the observed
/// collection cardinality n (the machine-readable twin of the
/// OperationProfile::complexity prose).
enum class CostShape : std::uint8_t {
  kConstant,   // base
  kLogN,       // base + per_unit * log2(1 + n)
  kLinear,     // base + per_unit * n
  kLogNPlusK,  // base + per_unit * (log2(1+n) + selectivity * n)  — index
               // descent plus K = selectivity*n per-result work
};

struct OpCostPrior {
  CostShape shape = CostShape::kConstant;
  /// Fixed per-call cost: crypto + one round trip. Calibration constants
  /// are seeded from BENCH_crypto.json (see each tactic's table).
  double base_us = 0.0;
  /// Cost per scale unit under `shape`.
  double per_unit_us = 0.0;
};

/// Static cost priors, one per operation — what the cost model falls back
/// on for a tactic that has never executed (and blends with live EWMA
/// evidence once it has).
struct CostProfile {
  std::map<TacticOperation, OpCostPrior> ops;

  double predict_us(TacticOperation op, std::uint64_t n, double selectivity) const {
    auto it = ops.find(op);
    if (it == ops.end()) return 0.0;
    const OpCostPrior& p = it->second;
    const double nn = static_cast<double>(n);
    switch (p.shape) {
      case CostShape::kConstant: return p.base_us;
      case CostShape::kLogN: return p.base_us + p.per_unit_us * std::log2(1.0 + nn);
      case CostShape::kLinear: return p.base_us + p.per_unit_us * nn;
      case CostShape::kLogNPlusK:
        return p.base_us +
               p.per_unit_us * (std::log2(1.0 + nn) + selectivity * nn);
    }
    return p.base_us;
  }
};

/// Static description of a tactic — everything the policy engine and the
/// Table 2 reproduction need.
struct TacticDescriptor {
  std::string name;
  /// Protection class this tactic provides when applied to a field
  /// (weakest-link input, §3.2). Aggregate-only tactics (Paillier) are
  /// semantically secure: Class 1.
  schema::ProtectionClass protection_class = schema::ProtectionClass::kClass1;
  /// Which schema-level operations the tactic can serve.
  std::set<schema::Operation> serves_operations;
  std::set<schema::Aggregate> serves_aggregates;
  /// Per-operation leakage/perf reification.
  std::map<TacticOperation, OperationProfile> operations;
  /// SPI coverage (Table 1 / Table 2 interface counts).
  std::set<SpiInterface> gateway_interfaces;
  std::set<SpiInterface> cloud_interfaces;
  /// Table 2 "challenge" column.
  std::string challenge;
  /// Tie-break preference when several tactics qualify (higher wins).
  int preference = 0;
  /// Static cost priors for the adaptive cost model (cost_model.hpp).
  /// Empty profiles predict 0 — the model then leans entirely on observed
  /// evidence for this tactic.
  CostProfile cost;
  /// True when equality predicates can be folded into this tactic's
  /// boolean queries (the paper's §5.1 selects only BIEX for [EQ, BL]).
  bool boolean_covers_equality = false;
};

class PerfRegistry;
class HotCache;

/// Everything a gateway-side tactic implementation receives (the "tactic
/// commonalities" of §4.2: cloud channel, key management, local repository,
/// field scope).
struct GatewayContext {
  net::RpcClient* cloud = nullptr;         // communication channel to the cloud
  store::KvStore* local_store = nullptr;   // gateway-side repository (Redis role)
  kms::KeyManager* kms = nullptr;          // key management integration
  PerfRegistry* perf = nullptr;            // gateway metrics (null in bare tests)
  HotCache* cache = nullptr;               // hot-path cache (null = caching off)
  std::string collection;
  std::string field;  // empty for collection-scoped (boolean) tactics

  /// Free-form tactic parameters from the gateway configuration (e.g.
  /// "paillier_modulus_bits"). Tactics read them with param_int().
  std::map<std::string, std::string> params;

  std::string scope(const std::string& tactic) const {
    return tactic + "/" + collection + "/" + field;
  }

  /// Reads an integer tactic parameter. Malformed values surface as
  /// Error(kInvalidArgument) naming the parameter, never as raw std::stoi
  /// exceptions.
  int param_int(const std::string& name, int fallback) const {
    auto it = params.find(name);
    if (it == params.end()) return fallback;
    try {
      std::size_t consumed = 0;
      const int value = std::stoi(it->second, &consumed);
      if (consumed != it->second.size()) {
        throw_error(ErrorCode::kInvalidArgument,
                    "tactic param '" + name + "': trailing garbage in '" +
                        it->second + "'");
      }
      return value;
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {  // std::stoi invalid_argument/out_of_range
      throw_error(ErrorCode::kInvalidArgument,
                  "tactic param '" + name + "': not an integer: '" + it->second + "'");
    }
  }
};

/// Aggregate protocol result (gateway-side, after AggFunctionResolution).
struct AggregateResult {
  double value = 0.0;
  std::uint64_t count = 0;
};

/// Gateway-side strategy for a field-scoped tactic. Unsupported operations
/// throw Error(kInvalidArgument) from the defaults; the policy engine never
/// routes an operation to a tactic that does not serve it.
class FieldTactic {
 public:
  virtual ~FieldTactic() = default;

  virtual const TacticDescriptor& descriptor() const = 0;

  /// Mandatory for all tactics (§4.2): key material + index provisioning.
  virtual void setup() = 0;

  /// Update-protocol hooks, invoked by the middleware core per document.
  virtual void on_insert(const DocId& id, const doc::Value& value);
  virtual void on_delete(const DocId& id, const doc::Value& value);

  /// Query protocols.
  virtual std::vector<DocId> equality_search(const doc::Value& value);
  virtual std::vector<DocId> range_search(const doc::Value& lo, const doc::Value& hi);
  virtual AggregateResult aggregate(schema::Aggregate agg);

  /// True when search results are candidates that the middleware core must
  /// re-verify after document decryption (e.g. RND's scan-everything).
  virtual bool approximate() const { return false; }
};

/// Gateway-side strategy for a collection-scoped boolean tactic (BIEX
/// family): indexes the cross-field keyword set of each document.
class BooleanTactic {
 public:
  virtual ~BooleanTactic() = default;

  virtual const TacticDescriptor& descriptor() const = 0;
  virtual void setup() = 0;

  virtual void on_insert(const DocId& id, const std::vector<std::string>& keywords) = 0;
  virtual void on_delete(const DocId& id, const std::vector<std::string>& keywords) = 0;

  /// DNF over opaque keywords; may return false positives when the
  /// underlying structure is probabilistic (IEX-ZMF) — the middleware core
  /// re-verifies after decryption.
  virtual std::vector<DocId> query(const sse::BoolQuery& q) = 0;

  /// True when results can contain false positives.
  virtual bool approximate() const { return false; }
};

/// Canonical keyword encoding for SSE tactics: "<field>:<hex(scalar)>".
std::string field_keyword(const std::string& field, const doc::Value& value);

}  // namespace datablinder::core
