#include "core/hot_cache.hpp"

#include "common/hex.hpp"
#include "core/metrics.hpp"

namespace datablinder::core {

HotCache::HotCache(PerfRegistry* perf, Config config)
    : config_(config), perf_(perf) {}

bool HotCache::stale(const Entry& e) const {
  if (e.domain.empty()) return false;
  auto it = epochs_.find(e.domain);
  return it != epochs_.end() && it->second != e.epoch;
}

void HotCache::erase_locked(std::unordered_map<std::string, Entry>::iterator it) {
  lru_.erase(it->second.lru_it);
  entries_.erase(it);  // SecretBytes destructor wipes the value
}

void HotCache::note(const char* series, std::atomic<std::uint64_t>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);
  if (perf_ != nullptr) perf_->incr(series);
}

void HotCache::put(const std::string& key, BytesView value,
                   const std::string& epoch_domain) {
  if (config_.capacity == 0) return;
  std::lock_guard lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) erase_locked(it);
  while (entries_.size() >= config_.capacity) {
    auto victim = entries_.find(lru_.back());
    erase_locked(victim);
    note("core.cache.evictions", evictions_);
  }
  lru_.push_front(key);
  Entry e;
  e.value = SecretBytes::from_view(value);
  e.domain = epoch_domain;
  if (!epoch_domain.empty()) e.epoch = epochs_[epoch_domain];
  e.lru_it = lru_.begin();
  entries_.emplace(key, std::move(e));
}

std::optional<Bytes> HotCache::get(const std::string& key) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    note("core.cache.misses", misses_);
    return std::nullopt;
  }
  if (stale(it->second)) {
    erase_locked(it);
    note("core.cache.misses", misses_);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  note("core.cache.hits", hits_);
  // The cache is the sanctioned wipe-disciplined holder of secret-derived
  // values; this unwrap hands the caller a transient working copy.
  // dblint:allow(expose): sanctioned unwrap — the cache is the wipe-disciplined holder
  const BytesView v = it->second.value.expose_secret();
  return Bytes(v.begin(), v.end());
}

void HotCache::erase(const std::string& key) {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  erase_locked(it);
  note("core.cache.invalidations", invalidations_);
}

void HotCache::bump_epoch(const std::string& domain) {
  std::lock_guard lock(mutex_);
  ++epochs_[domain];
  note("core.cache.invalidations", invalidations_);
}

std::shared_ptr<const bigint::Montgomery> HotCache::montgomery(
    const bigint::BigInt& modulus) {
  const std::string key = hex_encode(modulus.to_bytes());
  std::lock_guard lock(mutex_);
  auto& slot = montgomery_[key];
  if (!slot) slot = std::make_shared<const bigint::Montgomery>(modulus);
  return slot;
}

std::size_t HotCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

double HotCache::hit_ratio() const noexcept {
  const std::uint64_t h = hits();
  const std::uint64_t m = misses();
  return (h + m) == 0 ? 0.0 : static_cast<double>(h) / static_cast<double>(h + m);
}

}  // namespace datablinder::core
