// Payload helpers for the gateway<->cloud RPC protocol: every request and
// response body is a binary-encoded doc::Object.
#pragma once

#include "common/status.hpp"
#include "doc/binary_codec.hpp"
#include "doc/value.hpp"

namespace datablinder::core::wire {

inline Bytes pack(doc::Object obj) { return doc::encode_value(doc::Value(std::move(obj))); }

inline doc::Object unpack(BytesView b) {
  doc::Value v = doc::decode_value(b);
  if (v.type() != doc::ValueType::kObject) {
    throw_error(ErrorCode::kProtocolError, "wire: payload is not an object");
  }
  return v.as_object();
}

inline const doc::Value& get(const doc::Object& obj, const std::string& key) {
  auto it = obj.find(key);
  if (it == obj.end()) {
    throw_error(ErrorCode::kProtocolError, "wire: missing key '" + key + "'");
  }
  return it->second;
}

inline std::string get_str(const doc::Object& obj, const std::string& key) {
  return get(obj, key).as_string();
}

inline Bytes get_bin(const doc::Object& obj, const std::string& key) {
  return get(obj, key).as_binary();
}

inline std::int64_t get_int(const doc::Object& obj, const std::string& key) {
  return get(obj, key).as_int();
}

inline const doc::Array& get_arr(const doc::Object& obj, const std::string& key) {
  return get(obj, key).as_array();
}

}  // namespace datablinder::core::wire
