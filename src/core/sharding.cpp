#include "core/sharding.hpp"

#include <algorithm>

namespace datablinder::core {

ShardedCloud::ShardedCloud(const GatewayConfig& config,
                           net::ChannelConfig channel_config) {
  const std::size_t s = std::max<std::size_t>(1, config.shards);
  const std::size_t r = std::max<std::size_t>(1, config.replicas);

  net::HedgeConfig hedge = config.hedge;
  hedge.enabled = config.hedged_reads;

  shards_.resize(s);
  for (auto& shard : shards_) {
    shard.nodes.reserve(r);
    shard.channels.reserve(r);
    for (std::size_t i = 0; i < r; ++i) {
      shard.nodes.push_back(std::make_unique<CloudNode>());
      shard.channels.push_back(std::make_unique<net::Channel>(channel_config));
    }
  }

  if (s == 1 && r == 1 && !config.hedged_reads) {
    // Legacy plain shape: byte-identical to the pre-replication build.
    client_ = std::make_unique<net::RpcClient>(shards_[0].nodes[0]->rpc(),
                                               *shards_[0].channels[0]);
    return;
  }

  for (auto& shard : shards_) {
    std::vector<net::ReplicaEndpoint> endpoints;
    endpoints.reserve(r);
    for (std::size_t i = 0; i < r; ++i) {
      endpoints.push_back({&shard.nodes[i]->rpc(), shard.channels[i].get()});
    }
    shard.group = std::make_unique<net::ReplicaGroup>(std::move(endpoints),
                                                      hedge, config.accrual);
  }

  if (s == 1) {
    // ReplicatedCloud shape: one group-mode client, byte-identical to PR-7.
    client_ = std::make_unique<net::RpcClient>(*shards_[0].group);
    return;
  }

  std::vector<net::ReplicaGroup*> groups;
  groups.reserve(s);
  for (auto& shard : shards_) groups.push_back(shard.group.get());
  router_ = std::make_unique<net::ShardRouter>(std::move(groups),
                                               config.shard_ring);
  client_ = std::make_unique<net::RpcClient>(*router_);
}

std::size_t ShardedCloud::catch_up() {
  std::size_t in_sync = 0;
  for (auto& shard : shards_) {
    in_sync += shard.group ? shard.group->catch_up_all() : shard.nodes.size();
  }
  return in_sync;
}

std::uint64_t ShardedCloud::index_ops() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& node : shard.nodes) total += node->index_ops();
  }
  return total;
}

std::size_t ShardedCloud::storage_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& node : shard.nodes) total += node->storage_bytes();
  }
  return total;
}

}  // namespace datablinder::core
