#include "core/exec/intent_journal.hpp"

#include <algorithm>
#include <cstdio>

#include "common/status.hpp"

namespace datablinder::core::exec {

namespace {

constexpr char kPendingKey[] = "intent/pending";
constexpr char kSeqKey[] = "intent/seq";
constexpr std::uint32_t kVersion = 1;

void put_str(Bytes& out, const std::string& s) {
  append(out, be32(static_cast<std::uint32_t>(s.size())));
  out.insert(out.end(), s.begin(), s.end());
}

struct Cursor {
  BytesView b;
  std::size_t off = 0;

  std::uint32_t u32() {
    if (off + 4 > b.size()) {
      throw_error(ErrorCode::kInternal, "intent journal: truncated record");
    }
    const std::uint32_t v = read_be32(b.subspan(off));
    off += 4;
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    if (off + len > b.size()) {
      throw_error(ErrorCode::kInternal, "intent journal: truncated record");
    }
    std::string s(reinterpret_cast<const char*>(b.data()) + off, len);
    off += len;
    return s;
  }
  BytesView raw(std::size_t len) {
    if (off + len > b.size()) {
      throw_error(ErrorCode::kInternal, "intent journal: truncated record");
    }
    BytesView v = b.subspan(off, len);
    off += len;
    return v;
  }
};

Bytes encode(const std::string& collection, const std::vector<std::string>& ids,
             const std::vector<net::Request>& rpcs) {
  Bytes out = be32(kVersion);
  put_str(out, collection);
  append(out, be32(static_cast<std::uint32_t>(ids.size())));
  for (const auto& id : ids) put_str(out, id);
  append(out, be32(static_cast<std::uint32_t>(rpcs.size())));
  for (const auto& r : rpcs) {
    const Bytes sub = r.serialize();
    append(out, be32(static_cast<std::uint32_t>(sub.size())));
    append(out, sub);
  }
  return out;
}

IntentJournal::Intent decode(std::string token, BytesView record) {
  Cursor c{record};
  if (c.u32() != kVersion) {
    throw_error(ErrorCode::kInternal, "intent journal: unknown record version");
  }
  IntentJournal::Intent intent;
  intent.token = std::move(token);
  intent.collection = c.str();
  const std::uint32_t n_ids = c.u32();
  intent.ids.reserve(n_ids);
  for (std::uint32_t i = 0; i < n_ids; ++i) intent.ids.push_back(c.str());
  const std::uint32_t n_rpcs = c.u32();
  intent.rpcs.reserve(n_rpcs);
  for (std::uint32_t i = 0; i < n_rpcs; ++i) {
    const std::uint32_t len = c.u32();
    intent.rpcs.push_back(net::Request::deserialize(c.raw(len)));
  }
  return intent;
}

}  // namespace

std::string IntentJournal::begin(const std::string& collection,
                                 const std::vector<std::string>& ids,
                                 const std::vector<net::Request>& rpcs) {
  // Zero-padded sequence prefix so the pending map iterates oldest first.
  char seq[24];
  std::snprintf(seq, sizeof(seq), "%012lld",
                static_cast<long long>(store_.incr(kSeqKey)));
  std::string token = std::string(seq) + "/" + collection +
                      (ids.empty() ? "" : "/" + ids.front());
  store_.hset(kPendingKey, token, encode(collection, ids, rpcs));
  // Durability point: the intent must hit the AOF before the first cloud
  // mutation ships, or a crash could leave partial cloud state with no
  // record to resume from. A failed flush therefore aborts the insert
  // before anything reaches the cloud.
  store_.sync().throw_if_error();
  return token;
}

void IntentJournal::complete(const std::string& token) {
  store_.hdel(kPendingKey, token);
  // Not a durability point: if the completion record is lost, the intent
  // merely replays on recovery, and replay is byte-identical + idempotent.
  // dblint:allow(unchecked-status): completion loss only re-runs an idempotent replay
  (void)store_.sync();
}

std::vector<IntentJournal::Intent> IntentJournal::pending() const {
  std::vector<Intent> out;
  for (const auto& [token, record] : store_.hgetall(kPendingKey)) {
    out.push_back(decode(token, record));
  }
  return out;
}

std::size_t IntentJournal::pending_count() const {
  return store_.hgetall(kPendingKey).size();
}

std::optional<IntentJournal::Intent> IntentJournal::find(
    const std::string& collection, const std::string& id) const {
  for (auto& intent : pending()) {
    if (intent.collection != collection) continue;
    if (std::find(intent.ids.begin(), intent.ids.end(), id) != intent.ids.end()) {
      return std::move(intent);
    }
  }
  return std::nullopt;
}

void IntentJournal::resume(const Intent& intent) {
  // Byte-identical replay of the captured mutations, as one batch — the
  // same envelope the original attempt used. Transport failures propagate
  // with the intent still pending.
  cloud_.send_batch(intent.rpcs);
  complete(intent.token);
}

std::size_t IntentJournal::resume_all() {
  std::size_t completed = 0;
  for (const auto& intent : pending()) {
    resume(intent);
    ++completed;
  }
  return completed;
}

}  // namespace datablinder::core::exec
