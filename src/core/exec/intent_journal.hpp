// IntentJournal — crash-consistent insert intents in the gateway's local
// semi-persistent KvStore (the Redis role of §4).
//
// An insert plan fans out over several cloud mutations (doc.put + one
// index update per routed tactic). A WAN fault or gateway crash between
// them would leave some field indexes updated and others not. The journal
// closes that window with a write-ahead intent:
//
//   1. The gateway executes the plan in RPC-capture mode (the deferred
//      section): every cloud mutation is computed — advancing gateway-side
//      tactic state — but queued instead of sent.
//   2. The exact wire bytes of the whole queue are recorded here, durably
//      (KvStore AOF + sync), BEFORE the first cloud mutation ships.
//   3. The queue ships as one "rpc.batch" round trip.
//   4. The intent is marked complete.
//
// A fault between 3 and 4 (or a crash any time after 2) leaves a pending
// intent whose recorded ciphertexts are resumed by BYTE-IDENTICAL replay —
// never by re-running tactics. Replay is idempotent because every built-in
// update handler is a keyed overwrite, and it preserves the leakage
// profile because the adversary only ever sees duplicates of ciphertexts
// it already held, never a second fresh encryption of the same plaintext.
// A crash between 1 and 2 loses only the local tactic-state advance (e.g.
// a skipped Mitra counter slot); nothing reached the cloud, so no partial
// visible state exists.
//
// Record layout (hash "intent/pending", field = token):
//   be32 version | str collection | be32 n_ids | ids... |
//   be32 n_rpcs | (be32 len | serialized net::Request)...
// where str = be32 length + bytes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/rpc.hpp"
#include "store/kvstore.hpp"

namespace datablinder::core::exec {

class IntentJournal {
 public:
  /// Both must outlive the journal.
  IntentJournal(store::KvStore& store, net::RpcClient& cloud)
      : store_(store), cloud_(cloud) {}

  struct Intent {
    std::string token;  // journal hash field
    std::string collection;
    std::vector<std::string> ids;            // document ids the intent covers
    std::vector<net::Request> rpcs;          // exact captured cloud mutations
  };

  /// Durably records a pending intent (flushes the AOF) and returns its
  /// token. Must be called before any of `rpcs` is sent.
  std::string begin(const std::string& collection,
                    const std::vector<std::string>& ids,
                    const std::vector<net::Request>& rpcs);

  /// Marks an intent complete (removes it from the pending set).
  void complete(const std::string& token);

  /// All pending (crash-interrupted) intents, oldest first.
  std::vector<Intent> pending() const;
  std::size_t pending_count() const;

  /// The pending intent covering (collection, id), if any — the retried-
  /// insert fast path.
  std::optional<Intent> find(const std::string& collection,
                             const std::string& id) const;

  /// Replays one intent's recorded RPCs byte-identically as one batch and
  /// marks it complete. On failure the intent stays pending and the error
  /// propagates (a later resume picks it up).
  void resume(const Intent& intent);

  /// Replays every pending intent; returns how many completed. Stops at
  /// the first transport failure (the rest stay pending).
  std::size_t resume_all();

 private:
  store::KvStore& store_;
  net::RpcClient& cloud_;
};

}  // namespace datablinder::core::exec
