#include "core/exec/executor.hpp"

#include <algorithm>

namespace datablinder::core::exec {

namespace {
std::size_t default_workers() {
  const std::size_t hw = std::thread::hardware_concurrency();
  // Small by design: index fan-out width is bounded by tactics-per-document
  // (single digits); the calling thread participates too.
  return std::clamp<std::size_t>(hw == 0 ? 2 : hw / 2, 2, 4);
}
}  // namespace

Executor::Executor(PerfRegistry& perf, std::size_t workers) : perf_(perf) {
  const std::size_t n = workers == 0 ? default_workers() : workers;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard lock(queue_mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void Executor::run_locked(const PlanStep& step) {
  if (step.lock == nullptr) {
    step.run();
  } else if (step.exclusive) {
    std::unique_lock lock(*step.lock);
    step.run();
  } else {
    std::shared_lock lock(*step.lock);
    step.run();
  }
}

void Executor::execute_claimed(StageBatch& batch) {
  const std::size_t total = batch.total;
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= total) return;
    std::exception_ptr error;
    try {
      run_locked((*batch.steps)[i]);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard lock(batch.done_mutex);
    if (error && !batch.error) batch.error = error;
    if (++batch.done == total) batch.done_cv.notify_all();
  }
}

void Executor::run_stage_pooled(PlanStage& stage) {
  auto batch = std::make_shared<StageBatch>(stage.steps);
  {
    std::lock_guard lock(queue_mutex_);
    queue_.push_back(batch);
  }
  work_cv_.notify_all();

  // The submitting thread works its own batch instead of idling.
  execute_claimed(*batch);

  std::unique_lock lock(batch->done_mutex);
  batch->done_cv.wait(lock, [&] { return batch->done == batch->total; });
  if (batch->error) std::rethrow_exception(batch->error);
}

void Executor::submit(std::function<void()> job) {
  auto owner = std::make_shared<DetachedJob>(std::move(job));
  // Aliasing shared_ptr: the queue holds a StageBatch* whose refcount pins
  // the whole DetachedJob (batch AND the steps it points into).
  std::shared_ptr<StageBatch> batch(owner, &owner->batch);
  if (workers_.empty()) {
    execute_claimed(*batch);
    return;
  }
  {
    std::lock_guard lock(queue_mutex_);
    queue_.push_back(std::move(batch));
  }
  work_cv_.notify_one();
}

void Executor::run(OperationPlan& plan) {
  for (auto& stage : plan.stages) {
    if (stage.steps.empty()) continue;
    const ScopedPerf perf(perf_, "core." + stage.name, plan.op);
    if (plan.inline_only || stage.steps.size() == 1 || workers_.empty()) {
      // Sequential fast path: single-step stages and deferred-RPC sections
      // (deferral is thread-local). Exceptions propagate immediately.
      for (const auto& step : stage.steps) run_locked(step);
    } else {
      run_stage_pooled(stage);
    }
  }
}

// dblint:thread-root
void Executor::worker_loop() {
  for (;;) {
    std::shared_ptr<StageBatch> batch;
    {
      std::unique_lock lock(queue_mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to help with
      batch = queue_.front();
      if (batch->next.load(std::memory_order_relaxed) >= batch->total) {
        // Fully claimed: retire it from the queue and look again.
        queue_.pop_front();
        continue;
      }
    }
    // dblint:allow(guard-escape): 'batch' is a shared_ptr copy; refcount keeps it alive
    execute_claimed(*batch);
  }
}

}  // namespace datablinder::core::exec
