// Executor — the execute half of the middleware core's plan/execute split.
//
// Runs an OperationPlan stage by stage. Within a stage, steps are
// independent by construction (the Planner only groups invocations of
// distinct tactic instances), so the Executor fans them out across a small
// shared worker pool; the calling thread participates, so even a
// single-worker pool yields two-way parallelism. Per-step locks (the
// per-tactic reader/writer locks of CollectionRuntime) are acquired by the
// Executor in the mode the step requests.
//
// Every stage is timed into the PerfRegistry under "core.<stage>" keyed by
// the plan's operation — the Fig. 1 performance-metrics reification
// extended from individual tactic calls to the core pipeline itself.
//
// Plans flagged inline_only (built inside a deferred-RPC section, which is
// thread-local) run entirely on the calling thread.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/exec/plan.hpp"

namespace datablinder::core::exec {

class Executor {
 public:
  /// `workers` = 0 picks a small default from the hardware concurrency.
  explicit Executor(PerfRegistry& perf, std::size_t workers = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Executes the plan's stages in order, fanning each stage's steps out
  /// across the pool (plus the calling thread). If any step throws, the
  /// remaining steps of the stage still run, then the first exception is
  /// rethrown on the calling thread.
  void run(OperationPlan& plan);

  /// Enqueues a detached one-off job on the worker pool and returns
  /// immediately — the hand-off the event-driven server front end uses to
  /// multiplex connection dispatch onto the same pool that runs plan
  /// stages. No completion is waited on, so the job must catch its own
  /// exceptions (EventServer's dispatch wrapper does). Jobs enqueued
  /// before destruction drain before the workers join; with an empty pool
  /// the job runs inline.
  void submit(std::function<void()> job);

  std::size_t worker_count() const noexcept { return workers_.size(); }

 private:
  /// One stage in flight: workers and the submitting thread claim step
  /// indexes from `next` until exhausted.
  /// `total` is cached so retirement checks never dereference `steps`: the
  /// steps vector lives in the caller's plan and dies once the submitting
  /// thread observes done == total, while workers may hold the batch
  /// (shared_ptr) a little longer.
  struct StageBatch {
    explicit StageBatch(std::vector<PlanStep>& s) : steps(&s), total(s.size()) {}
    std::vector<PlanStep>* steps;
    const std::size_t total;
    std::atomic<std::size_t> next{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t done = 0;
    std::exception_ptr error;  // first failure, guarded by done_mutex
  };

  /// Owner block for a detached submit(): the single-step batch and the
  /// steps vector it points into share one lifetime, kept alive by the
  /// aliasing shared_ptr in the queue until the job retires.
  struct DetachedJob {
    explicit DetachedJob(std::function<void()> job)
        : steps{{"submit", nullptr, false, std::move(job)}}, batch(steps) {}
    std::vector<PlanStep> steps;
    StageBatch batch;
  };

  static void run_locked(const PlanStep& step);
  static void execute_claimed(StageBatch& batch);
  void run_stage_pooled(PlanStage& stage);
  void worker_loop();

  PerfRegistry& perf_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<StageBatch>> queue_;
  bool stop_ = false;
};

}  // namespace datablinder::core::exec
