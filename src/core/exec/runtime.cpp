#include "core/exec/runtime.hpp"

#include "doc/binary_codec.hpp"

namespace datablinder::core::exec {

using doc::Document;

Bytes CollectionRuntime::seal_document(const Document& d) const {
  return doc_cipher->seal_random_nonce(doc::encode_document(d), to_bytes(d.id));
}

Document CollectionRuntime::open_document(const DocId& id, BytesView blob) const {
  auto plain = doc_cipher->open_with_nonce(blob, to_bytes(id));
  if (!plain) {
    throw_error(ErrorCode::kCryptoFailure,
                "document blob failed authentication for id " + id);
  }
  return doc::decode_document(*plain);
}

std::vector<std::string> CollectionRuntime::boolean_keywords(const Document& d) const {
  std::vector<std::string> keywords;
  for (const auto& [field, fp] : plan.fields) {
    if (fp.boolean_member && d.has(field)) {
      keywords.push_back(field_keyword(field, d.at(field)));
    }
  }
  return keywords;
}

}  // namespace datablinder::core::exec
