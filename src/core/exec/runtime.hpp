// CollectionRuntime — the instantiated per-collection execution state of
// the middleware core (§4.2, Fig. 4): the resolved tactic plan, the
// gateway-side tactic instances the registry created for it, the
// whole-document AEAD cipher, and the locks the Executor takes around
// tactic invocations.
//
// Locking model: one reader/writer lock PER TACTIC INSTANCE (not per
// collection). Index mutations (on_insert/on_delete advance SSE client
// state) take the tactic's lock exclusively; queries take it shared.
// Writes to distinct fields — and the distinct tactic slots of one field —
// therefore index concurrently, while two updates of the same tactic
// still serialize. No code path ever holds two tactic locks at once, so
// the model is deadlock-free by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "core/registry.hpp"
#include "crypto/gcm.hpp"
#include "doc/value.hpp"

namespace datablinder::core::exec {

/// A tactic instance plus its reader/writer lock. Stored in node-stable
/// maps so PlanSteps can hold pointers across the plan's lifetime.
struct TacticSlot {
  std::unique_ptr<FieldTactic> tactic;
  mutable std::shared_mutex mutex;
};

struct CollectionRuntime {
  schema::Schema schema;
  CollectionPlan plan;
  std::unique_ptr<crypto::AesGcm> doc_cipher;  // whole-document AEAD

  std::unique_ptr<BooleanTactic> boolean;
  mutable std::shared_mutex boolean_mutex;

  // field -> slot, one map per operation family (eq / range / agg).
  std::map<std::string, TacticSlot> eq;
  std::map<std::string, TacticSlot> range;
  std::map<std::string, TacticSlot> agg;

  /// Alternative range candidates (field -> tactic name -> slot), present
  /// only under adaptive selection: every admissible candidate keeps its
  /// index current (update plans fan out to them too) so the cost model
  /// can switch the query path without a rebuild.
  std::map<std::string, std::map<std::string, TacticSlot>> range_alts;

  /// Observed collection cardinality — the n the cost model evaluates
  /// priors at. Maintained by the gateway on insert/remove; approximate
  /// under crash recovery, which only flattens the predictions.
  std::atomic<std::uint64_t> doc_count{0};

  /// Guards the live annotation fields of `plan` (FieldPlan range_last_*):
  /// the adaptive planner writes them per query while to_table() readers
  /// may render concurrently.
  mutable std::mutex plan_mutex;

  /// SecureEnc SPI role: the whole document is AEAD-protected and bound to
  /// its id, so the cloud can neither read nor swap blobs between ids.
  Bytes seal_document(const doc::Document& d) const;

  /// Decrypts + authenticates one blob. Throws kCryptoFailure.
  doc::Document open_document(const DocId& id, BytesView blob) const;

  /// Cross-field keyword set of the document's boolean-member fields.
  std::vector<std::string> boolean_keywords(const doc::Document& d) const;
};

}  // namespace datablinder::core::exec
