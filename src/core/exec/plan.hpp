// OperationPlan / Planner — the plan half of the middleware core's
// plan/execute split (§4.2, Fig. 4).
//
// The paper's core is conceptually a pipeline: policy-driven tactic
// selection (done once per schema, producing the CollectionPlan), then per
// operation an index-protocol fan-out, candidate retrieval, and exact
// re-verification. The Planner reifies that pipeline: it compiles one
// gateway operation against a CollectionRuntime into an OperationPlan — a
// layered DAG of stages whose steps are independent tactic invocations —
// and the Executor runs it. Keeping the plan explicit is what lets the
// Executor fan independent per-field index updates across a worker pool
// and batch candidate retrieval into a single round trip.
#pragma once

#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/exec/runtime.hpp"
#include "core/metrics.hpp"

namespace datablinder::core {

class CostModel;
class HotCache;

/// One predicate of a boolean query: field == value.
struct FieldTerm {
  std::string field;
  doc::Value value;
};

/// Boolean query in DNF over field terms: OR over AND-lists.
struct FieldBoolQuery {
  std::vector<std::vector<FieldTerm>> dnf;
};

namespace exec {

/// One node of the plan DAG: a single tactic (or store) invocation. The
/// Executor acquires `lock` in the requested mode around run(); steps that
/// need finer-grained locking (multi-term conjunctions) leave it null and
/// lock internally, one tactic at a time.
struct PlanStep {
  std::string label;                 // diagnostic, e.g. "eq:DET:subject"
  std::shared_mutex* lock = nullptr;
  bool exclusive = false;
  std::function<void()> run;
};

/// Steps within a stage are mutually independent — the Executor may run
/// them concurrently. Stages run strictly in order (the DAG is layered).
struct PlanStage {
  std::string name;  // PerfRegistry key suffix: "store", "index", ...
  std::vector<PlanStep> steps;
};

/// Mutable scratchpad threaded through the stages of one query plan:
/// the index stage fills id_slots, the resolve stage turns them into
/// decrypted documents, the verify stage filters in place.
struct QueryScratch {
  std::vector<std::vector<DocId>> id_slots;  // one per index-query step
  bool approximate = false;                  // any candidate set approximate
  std::vector<doc::Document> docs;
  AggregateResult agg;

  /// Sharded-resolve scratch (used only when the cloud client routes
  /// through a ShardRouter): the gather stage partitions the candidate
  /// ids by shard, the resolve stage's per-shard steps fill shard_blobs
  /// in parallel, and the merge stage decrypts and re-emits in the
  /// original candidate order.
  struct ShardScatter {
    std::vector<DocId> order;                        // candidate emit order
    std::unordered_map<DocId, doc::Document> docs;   // cache hits + decrypted
    std::vector<std::vector<DocId>> shard_ids;       // per-shard missing ids
    std::vector<std::vector<std::pair<DocId, Bytes>>> shard_blobs;
  };
  ShardScatter shard;
};

/// A compiled gateway operation. Plans capture references to the caller's
/// arguments and runtime — they must be executed before those die (the
/// gateway builds and runs them in one frame).
struct OperationPlan {
  std::string collection;
  TacticOperation op;          // stage-timing perf key
  /// True when the plan was built inside a deferred-RPC section: the
  /// Executor must stay on the calling thread, because deferral is
  /// thread-local (worker threads would bypass the batch queue).
  bool inline_only = false;
  std::vector<PlanStage> stages;
  std::shared_ptr<QueryScratch> scratch;  // null for pure mutations

  /// Non-empty under adaptive selection: the "plan.<candidate>" series the
  /// gateway records this plan's whole-run latency into — the live
  /// evidence the cost model blends against the static priors.
  std::string cost_series;
};

/// Compiles gateway operations into OperationPlans. Stateless apart from
/// its wiring (cloud channel + perf registry + optional cache/cost model);
/// one instance per gateway.
///
/// With a cost model attached, range queries re-plan PER QUERY: the
/// leakage-admissible candidate set (static slot + range_alts + the
/// retrieve-and-post-filter shape) is ranked by predicted cost at the
/// observed cardinality, and the winning plan is emitted. Without one,
/// planning is byte-identical to the static §5.1 behaviour.
class Planner {
 public:
  Planner(net::RpcClient& cloud, PerfRegistry& perf, HotCache* cache = nullptr,
          CostModel* cost_model = nullptr)
      : cloud_(cloud), perf_(perf), cache_(cache), cost_model_(cost_model) {}

  OperationPlan insert(CollectionRuntime& rt, const doc::Document& d) const;
  OperationPlan remove(CollectionRuntime& rt, const DocId& id) const;
  OperationPlan read(CollectionRuntime& rt, const DocId& id) const;
  OperationPlan equality_search(CollectionRuntime& rt, const std::string& field,
                                const doc::Value& value) const;
  OperationPlan boolean_search(CollectionRuntime& rt,
                               const FieldBoolQuery& query) const;
  OperationPlan range_search(CollectionRuntime& rt, const std::string& field,
                             const doc::Value& lo, const doc::Value& hi) const;
  OperationPlan aggregate(CollectionRuntime& rt, const std::string& field,
                          schema::Aggregate agg) const;

  /// Batched candidate retrieval (Retrieval SPI role): ONE doc.mget round
  /// trip for the whole id set; ids whose document has vanished (races
  /// with deletions) are silently skipped. Returns docs in id order.
  std::vector<doc::Document> fetch_documents(const CollectionRuntime& rt,
                                             const std::vector<DocId>& ids) const;

 private:
  /// Holds the document an update plan indexes. Insert plans point at the
  /// caller's document; remove plans fill `owned` in their retrieve stage.
  struct DocHolder {
    const doc::Document* doc = nullptr;
    doc::Document owned;
  };

  /// Appends the candidate-resolution stage(s) shared by every search
  /// plan. Non-sharded: ONE "resolve" stage — candidates() then one
  /// batched doc.mget (byte-identical to the pre-sharding plans, same
  /// step label). Sharded (the cloud client routes through a ShardRouter
  /// with > 1 shards): a "gather" stage partitions candidates by shard
  /// using the router's own ring, a "resolve" stage fans one doc.mget
  /// per shard out as parallel steps, and a "merge" stage decrypts and
  /// reorders — so a k-candidate search stays two logical round trips
  /// regardless of the shard count. Emits "core.shard.scatter" /
  /// "core.shard.subcalls" when a query actually scatters.
  void append_resolve_stages(OperationPlan& p, const CollectionRuntime& rt,
                             std::shared_ptr<QueryScratch> scratch,
                             std::function<std::vector<DocId>()> candidates,
                             const char* label) const;

  /// The index fan-out stage shared by insert/remove: one step per
  /// (field, tactic-slot) the plan routes, plus one for the boolean
  /// tactic. Steps re-check field presence at run time (the remove path
  /// does not know the document until its retrieve stage ran).
  PlanStage update_stage(CollectionRuntime& rt, std::shared_ptr<DocHolder> holder,
                         bool is_insert) const;

  net::RpcClient& cloud_;
  PerfRegistry& perf_;
  HotCache* cache_;          // decrypted-document cache (null = off)
  CostModel* cost_model_;    // adaptive range selection (null = static)
};

}  // namespace exec
}  // namespace datablinder::core
