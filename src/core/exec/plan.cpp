#include "core/exec/plan.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "core/cost_model.hpp"
#include "core/hot_cache.hpp"
#include "core/wire.hpp"
#include "doc/binary_codec.hpp"
#include "net/shard_router.hpp"
#include "store/docstore.hpp"  // compare_values for post-verification

namespace datablinder::core::exec {

using doc::Document;
using doc::Value;

namespace {

bool term_matches(const Document& d, const std::string& field, const Value& value) {
  if (!d.has(field)) return false;
  try {
    return store::compare_values(d.at(field), value) == 0;
  } catch (const Error&) {
    return false;
  }
}

bool in_range(const Document& d, const std::string& field, const Value& lo,
              const Value& hi) {
  if (!d.has(field)) return false;
  try {
    return store::compare_values(d.at(field), lo) >= 0 &&
           store::compare_values(d.at(field), hi) <= 0;
  } catch (const Error&) {
    return false;
  }
}

TacticOperation op_of(schema::Aggregate a) {
  switch (a) {
    case schema::Aggregate::kSum: return TacticOperation::kSum;
    case schema::Aggregate::kAverage: return TacticOperation::kAverage;
    case schema::Aggregate::kCount: return TacticOperation::kCount;
    case schema::Aggregate::kMin: return TacticOperation::kMin;
    case schema::Aggregate::kMax: return TacticOperation::kMax;
  }
  return TacticOperation::kSum;
}

}  // namespace

std::vector<Document> Planner::fetch_documents(const CollectionRuntime& rt,
                                               const std::vector<DocId>& ids) const {
  std::vector<Document> out;
  if (ids.empty()) return out;

  // Hot-path cache: repeated retrievals of the same candidate hit the
  // decrypted-document cache instead of paying a round trip + AEAD open.
  // Entries live in the collection's epoch domain — any remove/update
  // bumps the epoch and drops the whole collection's cached documents.
  std::unordered_map<DocId, Document> ready;
  std::vector<DocId> missing;
  if (cache_ != nullptr) {
    for (const auto& id : ids) {
      if (ready.count(id)) continue;
      if (auto blob = cache_->get("doc/" + rt.schema.name() + "/" + id)) {
        ready.emplace(id, doc::decode_document(*blob));
      } else {
        missing.push_back(id);
      }
    }
  } else {
    missing = ids;
  }

  if (!missing.empty()) {
    doc::Array arr;
    arr.reserve(missing.size());
    for (const auto& id : missing) arr.emplace_back(id);
    const Bytes reply = cloud_.call(
        "doc.mget",
        wire::pack({{"col", Value(rt.schema.name())}, {"ids", Value(std::move(arr))}}));
    const doc::Object resp = wire::unpack(reply);
    const doc::Array& found = wire::get_arr(resp, "docs");
    // The cloud returns only the ids that still exist, in request order —
    // index entries pointing at concurrently removed documents are skipped.
    for (const auto& entry : found) {
      const doc::Object& e = entry.as_object();
      Document d = rt.open_document(wire::get_str(e, "id"), wire::get_bin(e, "blob"));
      if (cache_ != nullptr) {
        cache_->put("doc/" + rt.schema.name() + "/" + d.id, doc::encode_document(d),
                    rt.schema.name());
      }
      ready.emplace(d.id, std::move(d));
    }
  }

  // Emit in id order; ids absent from `ready` vanished concurrently.
  out.reserve(ids.size());
  for (const auto& id : ids) {
    if (auto it = ready.find(id); it != ready.end()) out.push_back(it->second);
  }
  return out;
}

void Planner::append_resolve_stages(OperationPlan& p, const CollectionRuntime& rt,
                                    std::shared_ptr<QueryScratch> scratch,
                                    std::function<std::vector<DocId>()> candidates,
                                    const char* label) const {
  const CollectionRuntime* rtp = &rt;
  net::ShardRouter* router = cloud_.shard_router();
  if (router == nullptr || router->shards() <= 1) {
    // Pre-sharding shape, byte-identical: one batched doc.mget.
    p.stages.push_back(
        {"resolve",
         {{label, nullptr, false, [this, rtp, scratch, candidates = std::move(candidates)] {
             scratch->docs = fetch_documents(*rtp, candidates());
           }}}});
    return;
  }

  const std::size_t nshards = router->shards();

  // Gather: candidate ids -> cache hits + per-shard missing-id partitions,
  // using the router's own ring so plan-level scatter and router-level
  // routing always agree on placement.
  p.stages.push_back(
      {"gather",
       {{std::string(label) + ":partition", nullptr, false,
         [this, rtp, scratch, router, nshards, candidates = std::move(candidates)] {
           auto& sh = scratch->shard;
           sh.order = candidates();
           sh.shard_ids.assign(nshards, {});
           sh.shard_blobs.assign(nshards, {});
           std::unordered_set<DocId> seen;
           for (const auto& id : sh.order) {
             if (!seen.insert(id).second) continue;
             if (cache_ != nullptr) {
               if (auto blob = cache_->get("doc/" + rtp->schema.name() + "/" + id)) {
                 sh.docs.emplace(id, doc::decode_document(*blob));
                 continue;
               }
             }
             sh.shard_ids[router->shard_of_doc(rtp->schema.name(), id)].push_back(id);
           }
           std::size_t subcalls = 0;
           for (const auto& ids : sh.shard_ids) {
             if (!ids.empty()) ++subcalls;
           }
           perf_.incr("core.shard.scatter");
           perf_.incr("core.shard.subcalls", subcalls);
         }}}});

  // Resolve: one step per shard — the Executor fans them out, so the
  // whole scatter costs one round-trip time, not one per shard.
  PlanStage resolve{"resolve", {}};
  for (std::size_t s = 0; s < nshards; ++s) {
    resolve.steps.push_back(
        {std::string(label) + ":shard" + std::to_string(s), nullptr, false,
         [this, rtp, scratch, s] {
           auto& sh = scratch->shard;
           const auto& ids = sh.shard_ids[s];
           if (ids.empty()) return;
           doc::Array arr;
           arr.reserve(ids.size());
           for (const auto& id : ids) arr.emplace_back(id);
           const Bytes reply = cloud_.call(
               "doc.mget", wire::pack({{"col", Value(rtp->schema.name())},
                                       {"ids", Value(std::move(arr))}}));
           const doc::Object resp = wire::unpack(reply);
           for (const auto& entry : wire::get_arr(resp, "docs")) {
             const doc::Object& e = entry.as_object();
             sh.shard_blobs[s].emplace_back(wire::get_str(e, "id"),
                                            wire::get_bin(e, "blob"));
           }
         }});
  }
  p.stages.push_back(std::move(resolve));

  // Merge: decrypt, warm the cache, and re-emit in candidate order (ids
  // vanished under a concurrent remove are skipped — same semantics as
  // the single doc.mget path).
  p.stages.push_back(
      {"merge", {{std::string(label) + ":merge", nullptr, false, [this, rtp, scratch] {
                    auto& sh = scratch->shard;
                    for (auto& per_shard : sh.shard_blobs) {
                      for (auto& [id, blob] : per_shard) {
                        Document d = rtp->open_document(id, blob);
                        if (cache_ != nullptr) {
                          cache_->put("doc/" + rtp->schema.name() + "/" + d.id,
                                      doc::encode_document(d), rtp->schema.name());
                        }
                        sh.docs.emplace(d.id, std::move(d));
                      }
                    }
                    scratch->docs.reserve(sh.order.size());
                    for (const auto& id : sh.order) {
                      if (auto it = sh.docs.find(id); it != sh.docs.end()) {
                        scratch->docs.push_back(it->second);
                      }
                    }
                  }}}});
}

PlanStage Planner::update_stage(CollectionRuntime& rt, std::shared_ptr<DocHolder> holder,
                                bool is_insert) const {
  PlanStage stage{is_insert ? "index" : "unindex", {}};
  const TacticOperation op =
      is_insert ? TacticOperation::kInsert : TacticOperation::kDelete;
  // Insert plans know the document at plan time: prune steps (and their
  // lock acquisitions) for fields the document does not carry, so writers
  // touching disjoint fields never contend. Remove plans learn the
  // document only in their retrieve stage, so they keep every step and
  // rely on the run-time has() check.
  const Document* known = is_insert ? holder->doc : nullptr;
  for (const auto& [field, fp] : rt.plan.fields) {
    if (known && !known->has(field)) continue;
    auto add_slot = [&, this](TacticSlot* slot, const char* kind) {
      const std::string f = field;
      stage.steps.push_back(
          {std::string(kind) + ":" + slot->tactic->descriptor().name + ":" + f,
           &slot->mutex, /*exclusive=*/true,
           [this, slot, f, holder, is_insert, op] {
             const Document& d = *holder->doc;
             if (!d.has(f)) return;
             const ScopedPerf perf(perf_, slot->tactic->descriptor().name, op);
             if (is_insert) {
               slot->tactic->on_insert(d.id, d.at(f));
             } else {
               slot->tactic->on_delete(d.id, d.at(f));
             }
           }});
    };
    auto add = [&](std::map<std::string, TacticSlot>& slots, const char* kind) {
      auto it = slots.find(field);
      if (it != slots.end()) add_slot(&it->second, kind);
    };
    add(rt.eq, "eq");
    add(rt.range, "range");
    add(rt.agg, "agg");
    // Adaptive alternates keep their indexes current too — the cost model
    // may route the next query through any of them without a rebuild, and
    // removals must clean every index that saw the insert.
    if (auto ait = rt.range_alts.find(field); ait != rt.range_alts.end()) {
      for (auto& [alt_name, alt_slot] : ait->second) add_slot(&alt_slot, "range-alt");
    }
  }
  if (rt.boolean && !(known && rt.boolean_keywords(*known).empty())) {
    CollectionRuntime* rtp = &rt;
    stage.steps.push_back(
        {"bool:" + rt.boolean->descriptor().name, &rt.boolean_mutex, /*exclusive=*/true,
         [this, rtp, holder, is_insert, op] {
           const auto keywords = rtp->boolean_keywords(*holder->doc);
           if (keywords.empty()) return;
           const ScopedPerf perf(perf_, rtp->boolean->descriptor().name, op);
           if (is_insert) {
             rtp->boolean->on_insert(holder->doc->id, keywords);
           } else {
             rtp->boolean->on_delete(holder->doc->id, keywords);
           }
         }});
  }
  return stage;
}

OperationPlan Planner::insert(CollectionRuntime& rt, const Document& d) const {
  OperationPlan p;
  p.collection = rt.schema.name();
  p.op = TacticOperation::kInsert;
  p.inline_only = cloud_.in_deferred_section();

  auto holder = std::make_shared<DocHolder>();
  holder->doc = &d;

  CollectionRuntime* rtp = &rt;
  p.stages.push_back({"store",
                      {{"doc.put", nullptr, false, [this, rtp, &d] {
                          cloud_.call("doc.put",
                                      wire::pack({{"col", Value(rtp->schema.name())},
                                                  {"id", Value(d.id)},
                                                  {"blob", Value(rtp->seal_document(d))}}));
                        }}}});
  p.stages.push_back(update_stage(rt, std::move(holder), /*is_insert=*/true));
  return p;
}

OperationPlan Planner::remove(CollectionRuntime& rt, const DocId& id) const {
  OperationPlan p;
  p.collection = rt.schema.name();
  p.op = TacticOperation::kDelete;
  p.inline_only = cloud_.in_deferred_section();

  auto holder = std::make_shared<DocHolder>();
  CollectionRuntime* rtp = &rt;
  // Retrieval first: index removal needs the field values.
  p.stages.push_back(
      {"retrieve", {{"doc.get", nullptr, false, [this, rtp, holder, id] {
                       const Bytes reply = cloud_.call(
                           "doc.get", wire::pack({{"col", Value(rtp->schema.name())},
                                                  {"id", Value(id)}}));
                       holder->owned = rtp->open_document(
                           id, wire::get_bin(wire::unpack(reply), "blob"));
                       holder->doc = &holder->owned;
                     }}}});
  p.stages.push_back(update_stage(rt, holder, /*is_insert=*/false));
  p.stages.push_back({"delete", {{"doc.del", nullptr, false, [this, rtp, id] {
                                    cloud_.call("doc.del",
                                                wire::pack({{"col", Value(rtp->schema.name())},
                                                            {"id", Value(id)}}));
                                  }}}});
  return p;
}

OperationPlan Planner::read(CollectionRuntime& rt, const DocId& id) const {
  OperationPlan p;
  p.collection = rt.schema.name();
  p.op = TacticOperation::kRead;
  p.inline_only = cloud_.in_deferred_section();
  p.scratch = std::make_shared<QueryScratch>();

  auto scratch = p.scratch;
  CollectionRuntime* rtp = &rt;
  p.stages.push_back(
      {"retrieve", {{"doc.get", nullptr, false, [this, rtp, scratch, id] {
                       const Bytes reply = cloud_.call(
                           "doc.get", wire::pack({{"col", Value(rtp->schema.name())},
                                                  {"id", Value(id)}}));
                       scratch->docs.push_back(rtp->open_document(
                           id, wire::get_bin(wire::unpack(reply), "blob")));
                     }}}});
  return p;
}

OperationPlan Planner::equality_search(CollectionRuntime& rt, const std::string& field,
                                       const Value& value) const {
  const auto fit = rt.plan.fields.find(field);
  if (fit == rt.plan.fields.end()) {
    throw_error(ErrorCode::kPolicyViolation,
                "equality_search: field '" + field + "' is not protected/searchable");
  }
  const FieldPlan& fp = fit->second;

  OperationPlan p;
  p.collection = rt.schema.name();
  p.op = TacticOperation::kEqualitySearch;
  p.inline_only = cloud_.in_deferred_section();
  p.scratch = std::make_shared<QueryScratch>();
  p.scratch->id_slots.resize(1);
  auto scratch = p.scratch;

  PlanStage query{"index", {}};
  if (auto it = rt.eq.find(field); it != rt.eq.end()) {
    TacticSlot* slot = &it->second;
    query.steps.push_back(
        {"eq:" + slot->tactic->descriptor().name + ":" + field, &slot->mutex,
         /*exclusive=*/false, [this, slot, scratch, &value] {
           const ScopedPerf perf(perf_, slot->tactic->descriptor().name,
                                 TacticOperation::kEqualitySearch);
           scratch->id_slots[0] = slot->tactic->equality_search(value);
           scratch->approximate = slot->tactic->approximate();
         }});
  } else if (fp.boolean_member && rt.boolean) {
    // Equality folded into the boolean tactic: single-term conjunction.
    CollectionRuntime* rtp = &rt;
    const std::string kw = field_keyword(field, value);
    query.steps.push_back(
        {"bool-eq:" + rt.boolean->descriptor().name, &rt.boolean_mutex,
         /*exclusive=*/false, [this, rtp, scratch, kw] {
           const ScopedPerf perf(perf_, rtp->boolean->descriptor().name,
                                 TacticOperation::kEqualitySearch);
           sse::BoolQuery q;
           q.dnf.push_back({kw});
           scratch->id_slots[0] = rtp->boolean->query(q);
           scratch->approximate = rtp->boolean->approximate();
         }});
  } else {
    throw_error(ErrorCode::kPolicyViolation,
                "equality_search: field '" + field + "' has no equality tactic (op EQ "
                "not annotated?)");
  }
  p.stages.push_back(std::move(query));

  append_resolve_stages(p, rt, scratch,
                        [scratch] { return scratch->id_slots[0]; }, "doc.mget");

  // EqResolution: exact post-filtering after decryption. Unconditional —
  // required for approximate tactics, and under per-tactic locking it also
  // shields exact tactics from candidates replaced by a concurrent update
  // between index query and retrieval.
  const std::string f = field;
  p.stages.push_back({"verify", {{"eq-resolution", nullptr, false, [scratch, f, &value] {
                                    std::erase_if(scratch->docs, [&](const Document& d) {
                                      return !term_matches(d, f, value);
                                    });
                                  }}}});
  return p;
}

OperationPlan Planner::boolean_search(CollectionRuntime& rt,
                                      const FieldBoolQuery& query) const {
  require(!query.dnf.empty(), "boolean_search: empty query");

  // Plan time: split every conjunction — terms on boolean-member fields go
  // to the collection's boolean tactic as one sub-conjunction; the rest
  // resolve through their per-field equality tactics and intersect at the
  // gateway (BoolResolution).
  struct ConjRoute {
    std::vector<std::string> sse_terms;
    std::vector<const FieldTerm*> eq_terms;
  };
  std::vector<ConjRoute> routes;
  routes.reserve(query.dnf.size());
  for (const auto& conj : query.dnf) {
    require(!conj.empty(), "boolean_search: empty conjunction");
    ConjRoute route;
    for (const auto& term : conj) {
      const auto fit = rt.plan.fields.find(term.field);
      if (fit == rt.plan.fields.end()) {
        throw_error(ErrorCode::kPolicyViolation,
                    "boolean_search: field '" + term.field + "' is not searchable");
      }
      if (fit->second.boolean_member && rt.boolean) {
        route.sse_terms.push_back(field_keyword(term.field, term.value));
      } else if (rt.eq.count(term.field)) {
        route.eq_terms.push_back(&term);
      } else {
        throw_error(ErrorCode::kPolicyViolation,
                    "boolean_search: field '" + term.field +
                        "' supports neither boolean nor equality search");
      }
    }
    routes.push_back(std::move(route));
  }

  OperationPlan p;
  p.collection = rt.schema.name();
  p.op = TacticOperation::kBooleanSearch;
  p.inline_only = cloud_.in_deferred_section();
  p.scratch = std::make_shared<QueryScratch>();
  p.scratch->id_slots.resize(routes.size());
  auto scratch = p.scratch;
  CollectionRuntime* rtp = &rt;

  // One step per disjunct: conjunctions are independent, so they fan out.
  // Each step locks its tactics one at a time (shared), never holding two
  // locks together.
  PlanStage query_stage{"index", {}};
  for (std::size_t i = 0; i < routes.size(); ++i) {
    query_stage.steps.push_back(
        {"conj#" + std::to_string(i), nullptr, false,
         [this, rtp, scratch, i, route = routes[i]] {
           std::optional<std::vector<DocId>> ids;
           if (!route.sse_terms.empty()) {
             std::shared_lock lock(rtp->boolean_mutex);
             const ScopedPerf perf(perf_, rtp->boolean->descriptor().name,
                                   TacticOperation::kBooleanSearch);
             sse::BoolQuery q;
             q.dnf.push_back(route.sse_terms);
             ids = rtp->boolean->query(q);
           }
           for (const FieldTerm* term : route.eq_terms) {
             TacticSlot& slot = rtp->eq.at(term->field);
             std::shared_lock lock(slot.mutex);
             const ScopedPerf perf(perf_, slot.tactic->descriptor().name,
                                   TacticOperation::kEqualitySearch);
             auto term_ids = slot.tactic->equality_search(term->value);
             if (!ids) {
               ids = std::move(term_ids);
             } else {
               const std::unordered_set<DocId> keep(term_ids.begin(), term_ids.end());
               std::erase_if(*ids, [&](const DocId& id) { return !keep.count(id); });
             }
           }
           scratch->id_slots[i] = std::move(*ids);
         }});
  }
  p.stages.push_back(std::move(query_stage));

  // Merge the per-disjunct candidate sets in disjunct order (stable dedup,
  // matching sequential evaluation), then resolve in one round trip.
  append_resolve_stages(p, rt, scratch,
                        [scratch] {
                          std::vector<DocId> result_ids;
                          std::unordered_set<DocId> seen;
                          for (auto& slot_ids : scratch->id_slots) {
                            for (const auto& id : slot_ids) {
                              if (seen.insert(id).second) result_ids.push_back(id);
                            }
                          }
                          return result_ids;
                        },
                        "merge+doc.mget");

  // BoolResolution: decrypt candidates and re-evaluate the DNF exactly —
  // needed for ZMF false positives and RND full scans, and harmless
  // otherwise.
  const FieldBoolQuery* qp = &query;
  p.stages.push_back(
      {"verify", {{"bool-resolution", nullptr, false, [scratch, qp] {
                     std::erase_if(scratch->docs, [&](const Document& d) {
                       for (const auto& conj : qp->dnf) {
                         const bool all = std::all_of(
                             conj.begin(), conj.end(), [&](const FieldTerm& t) {
                               return term_matches(d, t.field, t.value);
                             });
                         if (all) return false;  // matches this disjunct: keep
                       }
                       return true;
                     });
                   }}}});
  return p;
}

OperationPlan Planner::range_search(CollectionRuntime& rt, const std::string& field,
                                    const Value& lo, const Value& hi) const {
  auto it = rt.range.find(field);
  if (it == rt.range.end()) {
    throw_error(ErrorCode::kPolicyViolation,
                "range_search: field '" + field + "' has no range tactic (op RG "
                "not annotated?)");
  }
  TacticSlot* slot = &it->second;

  OperationPlan p;
  p.collection = rt.schema.name();
  p.op = TacticOperation::kRangeQuery;
  p.inline_only = cloud_.in_deferred_section();
  p.scratch = std::make_shared<QueryScratch>();
  p.scratch->id_slots.resize(1);
  auto scratch = p.scratch;

  // Adaptive re-planning: rank the leakage-admissible candidates — the
  // static choice, its instantiated alternates, and the
  // retrieve-and-post-filter shape (leaks structure only, so admissible at
  // every class) — by predicted cost at the observed cardinality.
  bool post_filter = false;
  if (cost_model_ != nullptr) {
    const std::string static_name = slot->tactic->descriptor().name;
    std::vector<CostCandidate> cands;
    cands.push_back({static_name, &slot->tactic->descriptor().cost});
    auto ait = rt.range_alts.find(field);
    if (ait != rt.range_alts.end()) {
      for (const auto& [alt_name, alt_slot] : ait->second) {
        cands.push_back({alt_name, &alt_slot.tactic->descriptor().cost});
      }
    }
    cands.push_back({kPostFilterTactic, &post_filter_cost_profile()});

    const CostDecision dec = cost_model_->choose(
        rt.schema.name() + "/" + field + "/range", static_name, cands,
        TacticOperation::kRangeQuery, rt.doc_count.load(std::memory_order_relaxed));
    if (dec.chosen == kPostFilterTactic) {
      post_filter = true;
    } else if (dec.chosen != static_name) {
      slot = &ait->second.at(dec.chosen);
    }
    p.cost_series = CostModel::plan_series(dec.chosen);

    std::lock_guard<std::mutex> lock(rt.plan_mutex);
    FieldPlan& fp = rt.plan.fields.at(field);
    fp.range_last_choice = dec.chosen;
    fp.range_chosen_by = dec.chosen_by;
    fp.range_predicted_us = dec.predicted_us;
  }

  if (post_filter) {
    // Post-filter shape: enumerate every id, let the shared resolve stage
    // bulk-retrieve (through the document cache when present) and the
    // shared verify stage apply the range predicate after decryption.
    CollectionRuntime* rtp = &rt;
    p.stages.push_back(
        {"index", {{"range:PostFilter:" + field, nullptr,
                    /*exclusive=*/false, [this, rtp, scratch] {
                      const ScopedPerf perf(perf_, kPostFilterTactic,
                                            TacticOperation::kRangeQuery);
                      const Bytes reply = cloud_.call(
                          "doc.list",
                          wire::pack({{"col", Value(rtp->schema.name())}}));
                      const doc::Object resp = wire::unpack(reply);
                      for (const auto& v : wire::get_arr(resp, "ids")) {
                        scratch->id_slots[0].push_back(v.as_string());
                      }
                      scratch->approximate = true;
                    }}}});
  } else {
    p.stages.push_back(
        {"index", {{"range:" + slot->tactic->descriptor().name + ":" + field,
                    &slot->mutex,
                    /*exclusive=*/false, [this, slot, scratch, &lo, &hi] {
                      const ScopedPerf perf(perf_, slot->tactic->descriptor().name,
                                            TacticOperation::kRangeQuery);
                      scratch->id_slots[0] = slot->tactic->range_search(lo, hi);
                    }}}});
  }

  append_resolve_stages(p, rt, scratch,
                        [scratch] { return scratch->id_slots[0]; }, "doc.mget");

  // RangeResolution: exact bound re-check after decryption (no-op for
  // exact indexes on consistent data; shields against concurrent updates).
  const std::string f = field;
  p.stages.push_back(
      {"verify", {{"range-resolution", nullptr, false, [scratch, f, &lo, &hi] {
                     std::erase_if(scratch->docs, [&](const Document& d) {
                       return !in_range(d, f, lo, hi);
                     });
                   }}}});
  return p;
}

OperationPlan Planner::aggregate(CollectionRuntime& rt, const std::string& field,
                                 schema::Aggregate agg) const {
  TacticSlot* slot = nullptr;
  if (agg == schema::Aggregate::kMin || agg == schema::Aggregate::kMax) {
    auto it = rt.range.find(field);
    if (it == rt.range.end()) {
      throw_error(ErrorCode::kPolicyViolation,
                  "aggregate: min/max on '" + field + "' needs a range tactic");
    }
    slot = &it->second;
  } else {
    auto it = rt.agg.find(field);
    if (it == rt.agg.end()) {
      throw_error(ErrorCode::kPolicyViolation,
                  "aggregate: field '" + field + "' has no aggregate tactic");
    }
    slot = &it->second;
  }

  OperationPlan p;
  p.collection = rt.schema.name();
  p.op = op_of(agg);
  p.inline_only = cloud_.in_deferred_section();
  p.scratch = std::make_shared<QueryScratch>();
  auto scratch = p.scratch;

  p.stages.push_back(
      {"aggregate", {{"agg:" + slot->tactic->descriptor().name + ":" + field,
                      &slot->mutex, /*exclusive=*/false, [this, slot, scratch, agg] {
                        const ScopedPerf perf(perf_, slot->tactic->descriptor().name,
                                              op_of(agg));
                        scratch->agg = slot->tactic->aggregate(agg);
                      }}}});
  return p;
}

}  // namespace datablinder::core::exec
