#include "core/spi.hpp"

#include "common/hex.hpp"
#include "common/status.hpp"

namespace datablinder::core {

std::string to_string(SpiInterface spi) {
  switch (spi) {
    case SpiInterface::kInsertion: return "Insertion";
    case SpiInterface::kDocIdGen: return "DocIDGen";
    case SpiInterface::kSecureEnc: return "SecureEnc";
    case SpiInterface::kUpdate: return "Update";
    case SpiInterface::kRetrieval: return "Retrieval";
    case SpiInterface::kDeletion: return "Deletion";
    case SpiInterface::kEqQuery: return "EqQuery";
    case SpiInterface::kEqResolution: return "EqResolution";
    case SpiInterface::kBoolQuery: return "BoolQuery";
    case SpiInterface::kBoolResolution: return "BoolResolution";
    case SpiInterface::kRangeQuery: return "RangeQuery";
    case SpiInterface::kRangeResolution: return "RangeResolution";
    case SpiInterface::kAggFunction: return "AggFunction";
    case SpiInterface::kAggFunctionResolution: return "AggFunctionResolution";
    case SpiInterface::kSetup: return "Setup";
  }
  return "?";
}

void FieldTactic::on_insert(const DocId&, const doc::Value&) {
  throw_error(ErrorCode::kInvalidArgument,
              descriptor().name + ": insert not supported");
}

void FieldTactic::on_delete(const DocId&, const doc::Value&) {
  throw_error(ErrorCode::kInvalidArgument,
              descriptor().name + ": delete not supported");
}

std::vector<DocId> FieldTactic::equality_search(const doc::Value&) {
  throw_error(ErrorCode::kInvalidArgument,
              descriptor().name + ": equality search not supported");
}

std::vector<DocId> FieldTactic::range_search(const doc::Value&, const doc::Value&) {
  throw_error(ErrorCode::kInvalidArgument,
              descriptor().name + ": range query not supported");
}

AggregateResult FieldTactic::aggregate(schema::Aggregate) {
  throw_error(ErrorCode::kInvalidArgument,
              descriptor().name + ": aggregates not supported");
}

std::string field_keyword(const std::string& field, const doc::Value& value) {
  return field + ":" + hex_encode(value.scalar_bytes());
}

}  // namespace datablinder::core
