// Performance-metric reification (the third axis of the tactic abstraction
// model, Fig. 1: every tactic operation "comes with a performance cost
// impacting clients' experience").
//
// The gateway records the latency of every tactic protocol invocation
// here, keyed by (tactic, operation). Operators read the report to see
// where a policy's cost actually lands — e.g. that Paillier aggregates
// dominate, the observation §5.2 makes about the evaluation numbers.
//
// Beyond the cumulative count/total/max, every series maintains a *live
// cost signal* for the adaptive selection loop (cost_model.hpp): a decayed
// EWMA of the per-call latency plus a bounded ring of recent samples from
// which streaming p50/p95 are computed on demand. The ring doubles as the
// decay mechanism — only the last kWindow samples shape the quantiles and
// the blending weight, so a tactic that was slow under an old data size
// ages out instead of haunting the model.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/spi.hpp"

namespace datablinder::core {

struct OpStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
  double ewma_us = 0.0;  // decayed per-call latency (alpha = 1/8)
  double p50_us = 0.0;   // median of the recent-sample window
  double p95_us = 0.0;

  double mean_us() const {
    return count == 0 ? 0.0 : static_cast<double>(total_ns) / static_cast<double>(count) / 1e3;
  }
};

/// One (tactic, operation) series with a stable address. The fields the
/// cost model polls per candidate per query — EWMA and recent-sample count
/// — are plain atomics, so hot-loop readers never touch the registry mutex
/// (or even this series' own mutex). Mutation and quantile extraction
/// serialize on the per-series mutex.
class PerfSeries {
 public:
  static constexpr std::size_t kWindow = 128;   // recent-sample ring size
  static constexpr double kAlpha = 0.125;       // EWMA decay per sample

  /// Lock-free fast reads for the selection hot loop.
  double ewma_us() const noexcept { return ewma_us_.load(std::memory_order_relaxed); }
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  /// Samples currently in the decay window (saturates at kWindow) — the
  /// "how much recent evidence" input to the prior/observed blend.
  std::uint64_t recent_count() const noexcept {
    return std::min<std::uint64_t>(count(), kWindow);
  }

  void observe(std::uint64_t ns);

  /// Cumulative + windowed view (takes the series mutex; sorts the ring).
  OpStats stats() const;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> ewma_us_{0.0};

  mutable std::mutex mutex_;  // guards everything below
  std::uint64_t total_ns_ = 0;
  std::uint64_t max_ns_ = 0;
  std::array<std::uint32_t, kWindow> ring_us_{};  // recent samples, circular
  std::size_t ring_next_ = 0;
};

class PerfRegistry {
 public:
  void record(const std::string& tactic, TacticOperation op, std::uint64_t ns);

  /// Consistent copy of all recorded series.
  std::map<std::pair<std::string, TacticOperation>, OpStats> snapshot() const;

  /// Stats for one (tactic, operation) pair (zeroes if never recorded).
  OpStats stats(const std::string& tactic, TacticOperation op) const;

  /// Stable handle for repeated lock-free reads of one series — resolve
  /// once, then poll ewma_us()/recent_count() per query without ever
  /// re-taking the registry mutex. The series is created empty if it was
  /// never recorded; handles stay valid until reset().
  const PerfSeries* handle(const std::string& tactic, TacticOperation op);

  // --- named counters ------------------------------------------------------
  //
  // Event series that are counts rather than latencies — retry attempts,
  // breaker trips, journal resumes, cache traffic ("net.retry.*",
  // "net.breaker.*", "core.journal.*", "core.cache.*"). Kept alongside the
  // latency table so one registry snapshot covers the whole middleware.

  void incr(const std::string& series, std::uint64_t delta = 1);
  std::uint64_t counter(const std::string& series) const;
  std::map<std::string, std::uint64_t> counters() const;

  /// Rendered per-tactic/per-operation table plus the counter series.
  std::string report() const;

  void reset();

 private:
  PerfSeries& series(const std::string& tactic, TacticOperation op);

  mutable std::mutex mutex_;
  // unique_ptr: PerfSeries addresses must survive map rehash/rebalance so
  // handle() pointers stay valid.
  std::map<std::pair<std::string, TacticOperation>, std::unique_ptr<PerfSeries>> series_;
  std::map<std::string, std::uint64_t> counters_;
};

/// RAII recorder: times a scope and files it on destruction.
class ScopedPerf {
 public:
  ScopedPerf(PerfRegistry& registry, std::string tactic, TacticOperation op)
      : registry_(registry), tactic_(std::move(tactic)), op_(op),
        start_(std::chrono::steady_clock::now()) {}

  ~ScopedPerf() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    registry_.record(tactic_, op_, static_cast<std::uint64_t>(ns));
  }

  ScopedPerf(const ScopedPerf&) = delete;
  ScopedPerf& operator=(const ScopedPerf&) = delete;

 private:
  PerfRegistry& registry_;
  std::string tactic_;
  TacticOperation op_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace datablinder::core
