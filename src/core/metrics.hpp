// Performance-metric reification (the third axis of the tactic abstraction
// model, Fig. 1: every tactic operation "comes with a performance cost
// impacting clients' experience").
//
// The gateway records the latency of every tactic protocol invocation
// here, keyed by (tactic, operation). Operators read the report to see
// where a policy's cost actually lands — e.g. that Paillier aggregates
// dominate, the observation §5.2 makes about the evaluation numbers.
//
// Beyond the cumulative count/total/max, every series maintains a *live
// cost signal* for the adaptive selection loop (cost_model.hpp): a decayed
// EWMA of the per-call latency plus a bounded ring of recent samples from
// which streaming p50/p95 are computed on demand. The ring doubles as the
// decay mechanism — only the last kWindow samples shape the quantiles and
// the blending weight, so a tactic that was slow under an old data size
// ages out instead of haunting the model.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/perf_series.hpp"
#include "core/spi.hpp"

namespace datablinder::core {

// OpStats and PerfSeries now live in common/perf_series.hpp (the replica
// group's failure-accrual detector in net/ shares them); re-exported here
// so core code and tests keep their spelling.
using datablinder::OpStats;
using datablinder::PerfSeries;

class PerfRegistry {
 public:
  void record(const std::string& tactic, TacticOperation op, std::uint64_t ns);

  /// Consistent copy of all recorded series.
  std::map<std::pair<std::string, TacticOperation>, OpStats> snapshot() const;

  /// Stats for one (tactic, operation) pair (zeroes if never recorded).
  OpStats stats(const std::string& tactic, TacticOperation op) const;

  /// Stable handle for repeated lock-free reads of one series — resolve
  /// once, then poll ewma_us()/recent_count() per query without ever
  /// re-taking the registry mutex. The series is created empty if it was
  /// never recorded; handles stay valid until reset().
  const PerfSeries* handle(const std::string& tactic, TacticOperation op);

  // --- named counters ------------------------------------------------------
  //
  // Event series that are counts rather than latencies — retry attempts,
  // breaker trips, journal resumes, cache traffic ("net.retry.*",
  // "net.breaker.*", "core.journal.*", "core.cache.*"). Kept alongside the
  // latency table so one registry snapshot covers the whole middleware.

  void incr(const std::string& series, std::uint64_t delta = 1);
  std::uint64_t counter(const std::string& series) const;
  std::map<std::string, std::uint64_t> counters() const;

  /// Rendered per-tactic/per-operation table plus the counter series.
  std::string report() const;

  void reset();

 private:
  PerfSeries& series(const std::string& tactic, TacticOperation op);

  mutable std::mutex mutex_;
  // unique_ptr: PerfSeries addresses must survive map rehash/rebalance so
  // handle() pointers stay valid.
  std::map<std::pair<std::string, TacticOperation>, std::unique_ptr<PerfSeries>> series_;
  std::map<std::string, std::uint64_t> counters_;
};

/// RAII recorder: times a scope and files it on destruction.
class ScopedPerf {
 public:
  ScopedPerf(PerfRegistry& registry, std::string tactic, TacticOperation op)
      : registry_(registry), tactic_(std::move(tactic)), op_(op),
        start_(std::chrono::steady_clock::now()) {}

  ~ScopedPerf() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    registry_.record(tactic_, op_, static_cast<std::uint64_t>(ns));
  }

  ScopedPerf(const ScopedPerf&) = delete;
  ScopedPerf& operator=(const ScopedPerf&) = delete;

 private:
  PerfRegistry& registry_;
  std::string tactic_;
  TacticOperation op_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace datablinder::core
