// Performance-metric reification (the third axis of the tactic abstraction
// model, Fig. 1: every tactic operation "comes with a performance cost
// impacting clients' experience").
//
// The gateway records the latency of every tactic protocol invocation
// here, keyed by (tactic, operation). Operators read the report to see
// where a policy's cost actually lands — e.g. that Paillier aggregates
// dominate, the observation §5.2 makes about the evaluation numbers.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/spi.hpp"

namespace datablinder::core {

struct OpStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;

  double mean_us() const {
    return count == 0 ? 0.0 : static_cast<double>(total_ns) / static_cast<double>(count) / 1e3;
  }
};

class PerfRegistry {
 public:
  void record(const std::string& tactic, TacticOperation op, std::uint64_t ns);

  /// Consistent copy of all recorded series.
  std::map<std::pair<std::string, TacticOperation>, OpStats> snapshot() const;

  /// Stats for one (tactic, operation) pair (zeroes if never recorded).
  OpStats stats(const std::string& tactic, TacticOperation op) const;

  // --- named counters ------------------------------------------------------
  //
  // Event series that are counts rather than latencies — retry attempts,
  // breaker trips, journal resumes ("net.retry.*", "net.breaker.*",
  // "core.journal.*"). Kept alongside the latency table so one registry
  // snapshot covers the whole middleware.

  void incr(const std::string& series, std::uint64_t delta = 1);
  std::uint64_t counter(const std::string& series) const;
  std::map<std::string, std::uint64_t> counters() const;

  /// Rendered per-tactic/per-operation table plus the counter series.
  std::string report() const;

  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<std::string, TacticOperation>, OpStats> series_;
  std::map<std::string, std::uint64_t> counters_;
};

/// RAII recorder: times a scope and files it on destruction.
class ScopedPerf {
 public:
  ScopedPerf(PerfRegistry& registry, std::string tactic, TacticOperation op)
      : registry_(registry), tactic_(std::move(tactic)), op_(op),
        start_(std::chrono::steady_clock::now()) {}

  ~ScopedPerf() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    registry_.record(tactic_, op_, static_cast<std::uint64_t>(ns));
  }

  ScopedPerf(const ScopedPerf&) = delete;
  ScopedPerf& operator=(const ScopedPerf&) = delete;

 private:
  PerfRegistry& registry_;
  std::string tactic_;
  TacticOperation op_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace datablinder::core
