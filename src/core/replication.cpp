#include "core/replication.hpp"

#include <algorithm>

namespace datablinder::core {

ReplicatedCloud::ReplicatedCloud(const GatewayConfig& config,
                                 net::ChannelConfig channel_config) {
  const std::size_t n = std::max<std::size_t>(1, config.replicas);
  nodes_.reserve(n);
  channels_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<CloudNode>());
    channels_.push_back(std::make_unique<net::Channel>(channel_config));
  }

  if (n == 1 && !config.hedged_reads) {
    // Legacy shape: no group, no routing layer — the exact single-node
    // client, byte-identical on the wire to the pre-replication build.
    client_ = std::make_unique<net::RpcClient>(nodes_[0]->rpc(), *channels_[0]);
    return;
  }

  std::vector<net::ReplicaEndpoint> endpoints;
  endpoints.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    endpoints.push_back({&nodes_[i]->rpc(), channels_[i].get()});
  }
  net::HedgeConfig hedge = config.hedge;
  hedge.enabled = config.hedged_reads;
  group_ = std::make_unique<net::ReplicaGroup>(std::move(endpoints), hedge,
                                               config.accrual);
  client_ = std::make_unique<net::RpcClient>(*group_);
}

std::size_t ReplicatedCloud::catch_up() {
  if (group_ == nullptr) return nodes_.size();
  return group_->catch_up_all();
}

}  // namespace datablinder::core
