// TacticRegistry — the pluggable SPI backbone (§4.2).
//
// Tactic providers register a descriptor plus a factory; the middleware
// core instantiates implementations *by name at runtime* (strategy
// pattern), which is what gives DataBlinder its crypto agility: swapping
// the tactic bound to a field is a registry/policy change, not an
// application change.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/spi.hpp"

namespace datablinder::core {

/// Checks a descriptor's declared per-operation leakage against the
/// ceiling table for its registered protection class (the single
/// definition site in schema/leakage.hpp). Returns a kPolicyViolation
/// failure naming the first offending operation. Registration throws on
/// failure — the runtime twin of dblint's leakage-conformance pass, so the
/// lint and the gateway can never disagree about which declarations are
/// admissible.
Status validate_descriptor_leakage(const TacticDescriptor& descriptor);

/// Checks a descriptor's cost priors: calibration constants must be finite
/// and non-negative, and every costed operation must also be declared in
/// the leakage table — a cost entry for an undeclared operation means the
/// two reifications of the same operation set have drifted apart.
Status validate_descriptor_cost(const TacticDescriptor& descriptor);

class TacticRegistry {
 public:
  using FieldFactory = std::function<std::unique_ptr<FieldTactic>(const GatewayContext&)>;
  using BooleanFactory =
      std::function<std::unique_ptr<BooleanTactic>(const GatewayContext&)>;

  /// Registers a field-scoped tactic. Throws Error(kAlreadyExists) on a
  /// duplicate name.
  void register_field_tactic(TacticDescriptor descriptor, FieldFactory factory);

  /// Registers a collection-scoped boolean tactic.
  void register_boolean_tactic(TacticDescriptor descriptor, BooleanFactory factory);

  bool has(const std::string& name) const;
  bool is_boolean(const std::string& name) const;

  /// Throws Error(kNotFound) for unknown names.
  const TacticDescriptor& descriptor(const std::string& name) const;

  std::unique_ptr<FieldTactic> create_field(const std::string& name,
                                            const GatewayContext& ctx) const;
  std::unique_ptr<BooleanTactic> create_boolean(const std::string& name,
                                                const GatewayContext& ctx) const;

  /// All registered tactic names (registration order).
  std::vector<std::string> names() const;

 private:
  struct Entry {
    TacticDescriptor descriptor;
    FieldFactory field_factory;      // one of the two factories is set
    BooleanFactory boolean_factory;
  };

  const Entry& entry(const std::string& name) const;

  std::unordered_map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

}  // namespace datablinder::core
