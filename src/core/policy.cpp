#include "core/policy.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "common/logging.hpp"
#include "common/status.hpp"

namespace datablinder::core {

using schema::Aggregate;
using schema::Operation;
using schema::ProtectionClass;

namespace {
int class_value(ProtectionClass c) { return static_cast<int>(c); }

// A candidate is admissible under `bound` when its class does not exceed
// the bound AND every operation it declares stays within the per-operation
// leakage ceiling for that bound — the same table (schema/leakage.hpp)
// registration and dblint's leakage-conformance pass enforce.
bool admissible_within(const TacticDescriptor& d, ProtectionClass bound) {
  if (class_value(d.protection_class) > class_value(bound)) return false;
  for (const auto& [op, profile] : d.operations) {
    if (!schema::leakage_within(bound, op, profile.leakage)) return false;
  }
  return true;
}

void add_unique(std::vector<std::string>& v, const std::string& name) {
  if (!name.empty() && std::find(v.begin(), v.end(), name) == v.end()) {
    v.push_back(name);
  }
}
}  // namespace

std::vector<std::string> PolicyEngine::serving(Operation op) const {
  std::vector<std::string> out;
  for (const auto& name : registry_.names()) {
    if (registry_.descriptor(name).serves_operations.count(op)) out.push_back(name);
  }
  return out;
}

std::vector<std::string> PolicyEngine::serving(Aggregate agg) const {
  std::vector<std::string> out;
  for (const auto& name : registry_.names()) {
    if (registry_.descriptor(name).serves_aggregates.count(agg)) out.push_back(name);
  }
  return out;
}

std::string PolicyEngine::best_within(const std::vector<std::string>& candidates,
                                      ProtectionClass bound) const {
  // Least protective acceptable tactic: maximize class, then preference.
  std::string best;
  int best_class = 0;
  int best_pref = 0;
  for (const auto& name : candidates) {
    const auto& d = registry_.descriptor(name);
    if (!admissible_within(d, bound)) continue;  // too leaky for this field
    const int cv = class_value(d.protection_class);
    if (cv > best_class || (cv == best_class && d.preference > best_pref)) {
      best = name;
      best_class = cv;
      best_pref = d.preference;
    }
  }
  return best;
}

CollectionPlan PolicyEngine::select(const schema::Schema& s) const {
  CollectionPlan plan;
  plan.schema_name = s.name();

  for (const auto& [field, ann] : s.fields()) {
    if (!ann.sensitive) continue;  // protected only by whole-document AEAD

    FieldPlan fp;
    std::vector<std::string> reasons;
    int weakest = class_value(ProtectionClass::kClass1);

    auto apply = [&](const std::string& tactic) {
      add_unique(fp.tactics, tactic);
      weakest = std::max(weakest,
                         class_value(registry_.descriptor(tactic).protection_class));
    };

    // --- boolean search ---------------------------------------------------
    bool eq_folded = false;
    if (ann.needs(Operation::kBoolean)) {
      const std::string chosen = best_within(serving(Operation::kBoolean), ann.protection);
      if (chosen.empty()) {
        throw_error(ErrorCode::kPolicyViolation,
                    "field '" + field + "': no boolean tactic within " +
                        schema::to_string(ann.protection));
      }
      if (registry_.is_boolean(chosen)) {
        // Collection-scoped (BIEX family): all BL fields share one index.
        if (!plan.boolean_tactic.empty() && plan.boolean_tactic != chosen) {
          // Keep the stricter (lower class) tactic for the whole collection.
          const auto& prev = registry_.descriptor(plan.boolean_tactic);
          const auto& next = registry_.descriptor(chosen);
          if (class_value(next.protection_class) < class_value(prev.protection_class)) {
            plan.boolean_tactic = chosen;
          }
        } else {
          plan.boolean_tactic = chosen;
        }
        fp.boolean_member = true;
        apply(chosen);
        reasons.push_back("Boolean & cross-field");
        if (ann.needs(Operation::kEquality) &&
            registry_.descriptor(chosen).boolean_covers_equality) {
          eq_folded = true;  // single-term boolean query answers equality
        }
      } else {
        // Field-scoped tactic (DET): boolean via gateway-side combination.
        fp.eq_tactic = chosen;
        apply(chosen);
        reasons.push_back("Boolean via equality combination");
        eq_folded = true;
      }
    }

    // --- equality search --------------------------------------------------
    if (ann.needs(Operation::kEquality) && !eq_folded) {
      const std::string chosen = best_within(serving(Operation::kEquality), ann.protection);
      if (chosen.empty()) {
        throw_error(ErrorCode::kPolicyViolation,
                    "field '" + field + "': no equality tactic within " +
                        schema::to_string(ann.protection));
      }
      fp.eq_tactic = chosen;
      apply(chosen);
      const auto& d = registry_.descriptor(chosen);
      if (d.protection_class == ProtectionClass::kClass2) {
        reasons.push_back("Identifier protection level");
      } else if (d.protection_class == ProtectionClass::kClass1) {
        reasons.push_back("Structure protection level");
      } else {
        reasons.push_back("Equality search");
      }
    }

    // --- range queries ------------------------------------------------------
    if (ann.needs(Operation::kRange)) {
      const std::string chosen = best_within(serving(Operation::kRange), ann.protection);
      if (chosen.empty()) {
        throw_error(ErrorCode::kPolicyViolation,
                    "field '" + field + "': no range tactic within " +
                        schema::to_string(ann.protection));
      }
      fp.range_tactic = chosen;
      apply(chosen);
      reasons.push_back("Range queries");
      // Admissibility filter output for the cost model: every range tactic
      // within the bound, static choice first, the rest in the static
      // ranking order best_within would have used for them.
      fp.range_candidates.push_back(chosen);
      std::vector<std::pair<int, std::string>> rest;
      for (const auto& name : serving(Operation::kRange)) {
        if (name == chosen) continue;
        const auto& d = registry_.descriptor(name);
        if (!admissible_within(d, ann.protection)) continue;
        rest.emplace_back(class_value(d.protection_class) * 1000 + d.preference, name);
      }
      std::sort(rest.begin(), rest.end(), std::greater<>());
      for (auto& [rank, name] : rest) fp.range_candidates.push_back(name);
    }

    // --- aggregates ---------------------------------------------------------
    for (const Aggregate agg :
         {Aggregate::kSum, Aggregate::kAverage, Aggregate::kCount}) {
      if (!ann.needs(agg)) continue;
      const std::string chosen = best_within(serving(agg), ann.protection);
      if (chosen.empty()) {
        throw_error(ErrorCode::kPolicyViolation,
                    "field '" + field + "': no tactic for " + schema::to_string(agg));
      }
      if (fp.agg_tactic.empty()) {
        fp.agg_tactic = chosen;
        apply(chosen);
        reasons.push_back("Cloud-side averages");
      }
    }
    for (const Aggregate agg : {Aggregate::kMin, Aggregate::kMax}) {
      if (!ann.needs(agg)) continue;
      if (fp.range_tactic.empty()) {
        throw_error(ErrorCode::kPolicyViolation,
                    "field '" + field + "': min/max requires a range tactic (add RG)");
      }
      fp.minmax_via_range = true;
    }

    // --- storage-only sensitive fields --------------------------------------
    if (fp.tactics.empty()) {
      // No searchable capability requested: strongest storage protection.
      const std::string chosen = best_within(serving(Operation::kInsert), ann.protection);
      // RND (Class 1) always qualifies: every bound admits class 1.
      fp.eq_tactic = "";
      apply(chosen.empty() ? "RND" : chosen);
      reasons.push_back("Structure protection level");
    }

    fp.effective = static_cast<ProtectionClass>(weakest);
    std::ostringstream reason;
    for (std::size_t i = 0; i < reasons.size(); ++i) {
      if (i) reason << "; ";
      reason << reasons[i];
    }
    fp.reason = reason.str();
    DB_LOG_INFO << "policy: " << s.name() << "." << field << " -> "
                << (fp.tactics.empty() ? "(none)" : fp.tactics[0])
                << (fp.tactics.size() > 1 ? ",..." : "") << " [" << fp.reason << "]";
    plan.fields.emplace(field, std::move(fp));
  }
  return plan;
}

std::string CollectionPlan::to_table() const {
  std::ostringstream out;
  out << "Sensitives      | Tactic Selection      | Reason                         "
         "| Predicted cost / chosen-by\n";
  out << "----------------+-----------------------+--------------------------------"
         "+---------------------------\n";
  for (const auto& [field, fp] : fields) {
    std::string tactics;
    for (std::size_t i = 0; i < fp.tactics.size(); ++i) {
      if (i) tactics += ", ";
      tactics += fp.tactics[i];
    }
    // Column 4: why the adaptive engine did (or did not) deviate from the
    // static §5.1 choice for this field's range plan.
    std::string annot = "-";
    if (!fp.range_tactic.empty()) {
      if (fp.range_last_choice.empty()) {
        annot = "static table";
      } else {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%s %.0fus (%s)", fp.range_last_choice.c_str(),
                      fp.range_predicted_us, fp.range_chosen_by.c_str());
        annot = buf;
      }
    }
    out << field;
    for (std::size_t i = field.size(); i < 16; ++i) out << ' ';
    out << "| " << tactics;
    for (std::size_t i = tactics.size(); i < 22; ++i) out << ' ';
    out << "| " << fp.reason;
    for (std::size_t i = fp.reason.size(); i < 31; ++i) out << ' ';
    out << "| " << annot << "\n";
  }
  return out.str();
}

}  // namespace datablinder::core
