// CloudNode — the untrusted-zone half of DataBlinder (§4, Fig. 3/4).
//
// Hosts the encrypted document store (MongoDB role), the cloud-side secure
// indexes (Redis role) and the cloud implementations of every tactic SPI,
// exposed as RPC methods the gateway calls across the simulated WAN. The
// node never holds key material: it sees only ciphertexts, PRF labels,
// trapdoors/tokens, and Paillier ciphertexts (tests assert this).
//
// A parallel set of "plain.*" methods serves the S_A baseline scenario —
// the same store and channel without any protection, isolating the cost of
// the tactics themselves in the Figure 5 comparison.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "bigint/bigint.hpp"
#include "bigint/montgomery.hpp"
#include "net/rpc.hpp"
#include "sse/iex2lev.hpp"
#include "sse/iexzmf.hpp"
#include "sse/mitra.hpp"
#include "sse/mitra_stateless.hpp"
#include "sse/sophos.hpp"
#include "store/docstore.hpp"
#include "store/kvstore.hpp"

namespace datablinder::core {

class CloudNode {
 public:
  CloudNode();

  /// The RPC surface the gateway binds to.
  net::RpcServer& rpc() noexcept { return rpc_; }

  /// Storage metric across all cloud-side structures.
  std::size_t storage_bytes() const;

  /// Number of secure-index operations served (Fig. 5 reports ~350k per
  /// experiment run).
  std::uint64_t index_ops() const noexcept { return index_ops_.load(); }
  void reset_counters() { index_ops_ = 0; }

  /// Order-insensitive digest of all replicated state: document store,
  /// KV substrate, every SSE server structure, and Paillier aggregate
  /// columns. Two nodes fed byte-identical write traffic digest equal —
  /// the replica convergence check. Per-node counters (index_ops), which
  /// legitimately differ under read routing, are excluded. Also exposed as
  /// the "admin.digest" RPC method.
  std::uint64_t state_digest() const;

 private:
  // Handler groups — one per cloud-side tactic module (the "cloud
  // implementations" column of Table 1).
  void register_doc_handlers();
  void register_det_handlers();
  void register_ope_handlers();
  void register_ore_handlers();
  void register_mitra_handlers();
  void register_mitra_stateless_handlers();
  void register_sophos_handlers();
  void register_iex_handlers();
  void register_zmf_handlers();
  void register_agg_handlers();
  void register_plain_handlers();
  void register_admin_handlers();

  sse::MitraServer& mitra(const std::string& scope);
  sse::MitraStatelessServer& mitra_sl(const std::string& scope);
  sse::Iex2LevServer& iex(const std::string& scope);
  sse::IexZmfServer& zmf(const std::string& scope, const sse::ZmfFilterParams* params);

  net::RpcServer rpc_;
  store::DocumentStore docs_;
  store::KvStore kv_;

  std::mutex sse_mutex_;
  std::unordered_map<std::string, std::unique_ptr<sse::MitraServer>> mitra_;
  std::unordered_map<std::string, std::unique_ptr<sse::MitraStatelessServer>> mitra_sl_;
  std::unordered_map<std::string, std::unique_ptr<sse::SophosServer>> sophos_;
  std::unordered_map<std::string, std::unique_ptr<sse::Iex2LevServer>> iex_;
  std::unordered_map<std::string, std::unique_ptr<sse::IexZmfServer>> zmf_;

  struct AggColumn {
    bigint::BigInt n;          // Paillier public modulus
    bigint::BigInt n_squared;
    std::shared_ptr<const bigint::Montgomery> mont_n2;  // fold-loop context
    std::unordered_map<std::string, bigint::BigInt> cts;  // doc id -> ciphertext
  };
  std::unordered_map<std::string, AggColumn> agg_;
  std::mutex agg_mutex_;

  std::atomic<std::uint64_t> index_ops_{0};
};

}  // namespace datablinder::core
