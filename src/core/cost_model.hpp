// CostModel — cost-ranked tactic choice among leakage-admissible
// candidates (the Enc2DB-style second half of selection).
//
// The policy engine's admissibility filter is unchanged and still runs
// first: only tactics whose declared leakage fits the field's protection
// class ever reach this model (plus the retrieve-and-post-filter plan
// shape, which leaks access structure only and is admissible everywhere).
// The model then predicts each candidate's cost at the observed collection
// cardinality by blending two signals:
//
//   * static priors — the descriptor's CostProfile (asymptotic shape +
//     calibration constants seeded from BENCH_crypto.json), so a tactic
//     that has never executed still has a defensible estimate;
//   * live evidence — the whole-plan latency EWMA the gateway records
//     under "plan.<tactic>" (PerfSeries fast-reads: no registry mutex in
//     the per-candidate loop).
//
// The blend weight grows with recent evidence (w = recent/(recent+k)), so
// a cold tactic is judged by its prior and a warm one by what actually
// happened. Switching away from the current choice requires a sustained
// predicted win — at least `hysteresis_margin` cheaper for
// `hysteresis_windows` consecutive decisions — so alternating fast/slow
// windows cannot make the selection flap.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/spi.hpp"

namespace datablinder::core {

class HotCache;

/// Name of the planner's retrieve-and-post-filter pseudo-candidate: bulk
/// retrieve + gateway-side decrypt + predicate. Not a registry tactic —
/// the planner synthesizes its plan directly.
inline constexpr const char* kPostFilterTactic = "PostFilter";

/// Static prior for the post-filter shape: one doc.list round trip, then
/// every document fetched, AEAD-opened (~40us each, BENCH_crypto
/// BM_AesGcmOpen) and predicate-checked at the gateway. Linear in n and
/// indifferent to selectivity — the whole collection travels.
const CostProfile& post_filter_cost_profile();

struct CostCandidate {
  std::string name;
  const CostProfile* profile = nullptr;  // static prior; null predicts 0
};

struct CostDecision {
  std::string chosen;
  double predicted_us = 0.0;
  /// "static" (model agrees with the §5.1 table), "cost-model" (model has
  /// switched away from the static choice), or "hysteresis-hold" (a
  /// cheaper challenger exists but has not sustained its win yet).
  std::string chosen_by = "static";
};

class CostModel {
 public:
  struct Config {
    /// Challenger must predict at least this fraction cheaper ...
    double hysteresis_margin = 0.15;
    /// ... for this many consecutive decisions before the model switches.
    int hysteresis_windows = 3;
    /// Assumed K/n for kLogNPlusK priors when true selectivity is unknown.
    double default_selectivity = 0.1;
    /// Pseudo-sample count backing the static prior in the blend.
    double prior_weight = 8.0;
  };

  CostModel(PerfRegistry& perf, Config config, const HotCache* cache = nullptr);
  explicit CostModel(PerfRegistry& perf) : CostModel(perf, Config(), nullptr) {}

  /// Blended cost prediction for one candidate at cardinality n.
  double predict_us(const CostCandidate& candidate, TacticOperation op,
                    std::uint64_t n);

  /// Ranks `candidates` and applies hysteresis against the per-key
  /// incumbent (seeded with `static_choice` on first sight). Thread-safe.
  CostDecision choose(const std::string& decision_key,
                      const std::string& static_choice,
                      const std::vector<CostCandidate>& candidates,
                      TacticOperation op, std::uint64_t n);

  /// PerfRegistry series name for whole-plan latencies of one candidate —
  /// distinct from the tactic's own index-step series, because a plan's
  /// cost includes retrieval and gateway-side resolution.
  static std::string plan_series(const std::string& tactic) {
    return "plan." + tactic;
  }

  const Config& config() const noexcept { return config_; }

 private:
  const PerfSeries* observed(const std::string& name, TacticOperation op);

  PerfRegistry& perf_;
  Config config_;
  const HotCache* cache_;  // optional: hit ratio discounts post-filter cost

  std::mutex mutex_;  // guards handles_ and state_
  std::map<std::pair<std::string, TacticOperation>, const PerfSeries*> handles_;
  struct State {
    std::string incumbent;
    std::string challenger;
    int streak = 0;
  };
  std::map<std::string, State> state_;
};

}  // namespace datablinder::core
