#include "core/gateway.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/hex.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/wire.hpp"
#include "doc/binary_codec.hpp"
#include "store/docstore.hpp"  // compare_values for post-verification

namespace datablinder::core {

using doc::Document;
using doc::Value;

Gateway::Gateway(net::RpcClient& cloud, kms::KeyManager& kms,
                 store::KvStore& local_store, const TacticRegistry& registry,
                 GatewayConfig config)
    : cloud_(cloud),
      kms_(kms),
      local_store_(local_store),
      registry_(registry),
      config_(std::move(config)),
      policy_(registry) {}

GatewayContext Gateway::make_context(const std::string& collection,
                                     const std::string& field) const {
  GatewayContext ctx;
  ctx.cloud = &cloud_;
  ctx.local_store = &local_store_;
  ctx.kms = &kms_;
  ctx.collection = collection;
  ctx.field = field;
  ctx.params = config_.tactic_params;
  return ctx;
}

void Gateway::register_schema(schema::Schema s) {
  const std::string name = s.name();
  require(!name.empty(), "register_schema: schema needs a name");

  auto cs = std::make_unique<CollectionState>();
  cs->plan = policy_.select(s);
  cs->schema = std::move(s);
  cs->doc_cipher =
      std::make_unique<crypto::AesGcm>(kms_.derive("doc/" + name, 32));

  // Instantiate the selected tactics (runtime strategy loading).
  if (!cs->plan.boolean_tactic.empty()) {
    cs->boolean = registry_.create_boolean(cs->plan.boolean_tactic,
                                           make_context(name, ""));
    cs->boolean->setup();
  }
  for (const auto& [field, fp] : cs->plan.fields) {
    auto instantiate = [&](const std::string& tactic,
                           std::map<std::string, std::unique_ptr<FieldTactic>>& slot) {
      if (tactic.empty()) return;
      auto t = registry_.create_field(tactic, make_context(name, field));
      t->setup();
      slot.emplace(field, std::move(t));
    };
    instantiate(fp.eq_tactic, cs->eq);
    instantiate(fp.range_tactic, cs->range);
    instantiate(fp.agg_tactic, cs->agg);
  }

  std::lock_guard lock(collections_mutex_);
  if (collections_.count(name)) {
    throw_error(ErrorCode::kAlreadyExists, "register_schema: duplicate '" + name + "'");
  }
  DB_LOG_INFO << "gateway: registered schema '" << name << "' with "
              << cs->plan.fields.size() << " protected fields";
  collections_.emplace(name, std::move(cs));
}

Gateway::CollectionState& Gateway::state(const std::string& collection) {
  std::lock_guard lock(collections_mutex_);
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    throw_error(ErrorCode::kNotFound, "gateway: unknown collection '" + collection + "'");
  }
  return *it->second;
}

const Gateway::CollectionState& Gateway::state(const std::string& collection) const {
  std::lock_guard lock(collections_mutex_);
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    throw_error(ErrorCode::kNotFound, "gateway: unknown collection '" + collection + "'");
  }
  return *it->second;
}

const CollectionPlan& Gateway::plan(const std::string& collection) const {
  return state(collection).plan;
}

const schema::Schema& Gateway::schema_of(const std::string& collection) const {
  return state(collection).schema;
}

DocId Gateway::generate_doc_id() {
  // DocIDGen SPI role: uniform random ids so identifiers carry no content.
  return hex_encode(SecureRng::bytes(12));
}

Bytes Gateway::seal_document(const CollectionState& cs, const Document& d) const {
  // SecureEnc SPI role: the whole document is AEAD-protected and bound to
  // its id, so the cloud can neither read nor swap blobs between ids.
  return cs.doc_cipher->seal_random_nonce(doc::encode_document(d), to_bytes(d.id));
}

Document Gateway::open_document(const CollectionState& cs, const DocId& id,
                                BytesView blob) const {
  auto plain = cs.doc_cipher->open_with_nonce(blob, to_bytes(id));
  if (!plain) {
    throw_error(ErrorCode::kCryptoFailure,
                "document blob failed authentication for id " + id);
  }
  return doc::decode_document(*plain);
}

std::vector<std::string> Gateway::boolean_keywords(const CollectionState& cs,
                                                   const Document& d) const {
  std::vector<std::string> keywords;
  for (const auto& [field, fp] : cs.plan.fields) {
    if (fp.boolean_member && d.has(field)) {
      keywords.push_back(field_keyword(field, d.at(field)));
    }
  }
  return keywords;
}

void Gateway::dispatch_update(CollectionState& cs, const Document& d, bool is_insert) {
  for (const auto& [field, fp] : cs.plan.fields) {
    if (!d.has(field)) continue;
    const Value& value = d.at(field);
    auto route = [&](std::map<std::string, std::unique_ptr<FieldTactic>>& slot) {
      auto it = slot.find(field);
      if (it == slot.end()) return;
      const ScopedPerf perf(perf_, it->second->descriptor().name,
                            is_insert ? TacticOperation::kInsert
                                      : TacticOperation::kDelete);
      if (is_insert) {
        it->second->on_insert(d.id, value);
      } else {
        it->second->on_delete(d.id, value);
      }
    };
    route(cs.eq);
    route(cs.range);
    route(cs.agg);
  }
  if (cs.boolean) {
    const auto keywords = boolean_keywords(cs, d);
    if (!keywords.empty()) {
      const ScopedPerf perf(perf_, cs.boolean->descriptor().name,
                            is_insert ? TacticOperation::kInsert
                                      : TacticOperation::kDelete);
      if (is_insert) {
        cs.boolean->on_insert(d.id, keywords);
      } else {
        cs.boolean->on_delete(d.id, keywords);
      }
    }
  }
}

DocId Gateway::insert(const std::string& collection, Document d) {
  CollectionState& cs = state(collection);
  cs.schema.validate(d);
  if (d.id.empty()) d.id = generate_doc_id();

  std::unique_lock lock(cs.op_mutex);
  cloud_.call("doc.put", wire::pack({{"col", Value(collection)},
                                     {"id", Value(d.id)},
                                     {"blob", Value(seal_document(cs, d))}}));
  dispatch_update(cs, d, /*is_insert=*/true);
  return d.id;
}

std::vector<DocId> Gateway::insert_many(const std::string& collection,
                                        std::vector<Document> docs) {
  CollectionState& cs = state(collection);
  std::vector<DocId> ids;
  ids.reserve(docs.size());
  for (auto& d : docs) {
    cs.schema.validate(d);
    if (d.id.empty()) d.id = generate_doc_id();
    ids.push_back(d.id);
  }

  // Fire-and-forget update methods whose responses are empty by protocol.
  // mitrasl.* is deliberately absent: its update protocol reads the
  // current counter from the server, so deferring would use stale counters.
  static const std::set<std::string> kDeferrable = {
      "doc.put",      "det.insert", "ope.insert",   "ore.insert",
      "mitra.update", "iex.update", "zmf.update",   "sophos.update",
      "agg.insert"};

  std::unique_lock lock(cs.op_mutex);
  cloud_.begin_deferred(kDeferrable);
  try {
    for (auto& d : docs) {
      cloud_.call("doc.put", wire::pack({{"col", Value(collection)},
                                         {"id", Value(d.id)},
                                         {"blob", Value(seal_document(cs, d))}}));
      dispatch_update(cs, d, /*is_insert=*/true);
    }
  } catch (...) {
    cloud_.abandon_deferred();
    throw;
  }
  cloud_.flush_deferred();
  return ids;
}

Document Gateway::read(const std::string& collection, const DocId& id) {
  const CollectionState& cs = state(collection);
  std::shared_lock lock(cs.op_mutex);
  const Bytes reply = cloud_.call(
      "doc.get", wire::pack({{"col", Value(collection)}, {"id", Value(id)}}));
  return open_document(cs, id, wire::get_bin(wire::unpack(reply), "blob"));
}

void Gateway::remove(const std::string& collection, const DocId& id) {
  CollectionState& cs = state(collection);
  std::unique_lock lock(cs.op_mutex);
  // Retrieval first: index removal needs the field values.
  const Bytes reply = cloud_.call(
      "doc.get", wire::pack({{"col", Value(collection)}, {"id", Value(id)}}));
  const Document d = open_document(cs, id, wire::get_bin(wire::unpack(reply), "blob"));
  dispatch_update(cs, d, /*is_insert=*/false);
  cloud_.call("doc.del", wire::pack({{"col", Value(collection)}, {"id", Value(id)}}));
}

void Gateway::update(const std::string& collection, Document d) {
  require(!d.id.empty(), "update: document needs an id");
  remove(collection, d.id);
  insert(collection, std::move(d));
}

std::vector<Document> Gateway::fetch_documents(const CollectionState& cs,
                                               const std::vector<DocId>& ids) {
  std::vector<Document> out;
  out.reserve(ids.size());
  for (const auto& id : ids) {
    try {
      const Bytes reply = cloud_.call(
          "doc.get",
          wire::pack({{"col", Value(cs.schema.name())}, {"id", Value(id)}}));
      out.push_back(open_document(cs, id, wire::get_bin(wire::unpack(reply), "blob")));
    } catch (const Error& e) {
      if (e.code() != ErrorCode::kNotFound) throw;
      // Tolerate index entries pointing at concurrently removed documents.
    }
  }
  return out;
}

namespace {
bool term_matches(const Document& d, const std::string& field, const Value& value) {
  if (!d.has(field)) return false;
  try {
    return store::compare_values(d.at(field), value) == 0;
  } catch (const Error&) {
    return false;
  }
}
}  // namespace

std::vector<Document> Gateway::equality_search(const std::string& collection,
                                               const std::string& field,
                                               const Value& value) {
  CollectionState& cs = state(collection);
  std::shared_lock lock(cs.op_mutex);
  const auto fit = cs.plan.fields.find(field);
  if (fit == cs.plan.fields.end()) {
    throw_error(ErrorCode::kPolicyViolation,
                "equality_search: field '" + field + "' is not protected/searchable");
  }
  const FieldPlan& fp = fit->second;

  std::vector<DocId> ids;
  bool approximate = false;
  if (auto it = cs.eq.find(field); it != cs.eq.end()) {
    const ScopedPerf perf(perf_, it->second->descriptor().name,
                          TacticOperation::kEqualitySearch);
    ids = it->second->equality_search(value);
    approximate = it->second->approximate();
  } else if (fp.boolean_member && cs.boolean) {
    // Equality folded into the boolean tactic: single-term conjunction.
    const ScopedPerf perf(perf_, cs.boolean->descriptor().name,
                          TacticOperation::kEqualitySearch);
    sse::BoolQuery q;
    q.dnf.push_back({field_keyword(field, value)});
    ids = cs.boolean->query(q);
    approximate = cs.boolean->approximate();
  } else {
    throw_error(ErrorCode::kPolicyViolation,
                "equality_search: field '" + field + "' has no equality tactic (op EQ "
                "not annotated?)");
  }

  std::vector<Document> docs = fetch_documents(cs, ids);
  if (approximate) {
    // EqResolution: exact post-filtering after decryption.
    std::erase_if(docs, [&](const Document& d) { return !term_matches(d, field, value); });
  }
  return docs;
}

std::vector<Document> Gateway::boolean_search(const std::string& collection,
                                              const FieldBoolQuery& query) {
  CollectionState& cs = state(collection);
  std::shared_lock lock(cs.op_mutex);
  require(!query.dnf.empty(), "boolean_search: empty query");

  std::vector<DocId> result_ids;
  std::unordered_set<DocId> seen;
  for (const auto& conj : query.dnf) {
    require(!conj.empty(), "boolean_search: empty conjunction");
    // Split the conjunction: terms on boolean-member fields go to the
    // collection's boolean tactic as one sub-conjunction; the rest resolve
    // through their per-field equality tactics and intersect at the
    // gateway (BoolResolution).
    std::vector<std::string> sse_terms;
    std::vector<const FieldTerm*> eq_terms;
    for (const auto& term : conj) {
      const auto fit = cs.plan.fields.find(term.field);
      if (fit == cs.plan.fields.end()) {
        throw_error(ErrorCode::kPolicyViolation,
                    "boolean_search: field '" + term.field + "' is not searchable");
      }
      if (fit->second.boolean_member && cs.boolean) {
        sse_terms.push_back(field_keyword(term.field, term.value));
      } else if (cs.eq.count(term.field)) {
        eq_terms.push_back(&term);
      } else {
        throw_error(ErrorCode::kPolicyViolation,
                    "boolean_search: field '" + term.field +
                        "' supports neither boolean nor equality search");
      }
    }

    std::optional<std::vector<DocId>> ids;
    if (!sse_terms.empty()) {
      const ScopedPerf perf(perf_, cs.boolean->descriptor().name,
                            TacticOperation::kBooleanSearch);
      sse::BoolQuery q;
      q.dnf.push_back(std::move(sse_terms));
      ids = cs.boolean->query(q);
    }
    for (const FieldTerm* term : eq_terms) {
      FieldTactic& tactic = *cs.eq.at(term->field);
      const ScopedPerf perf(perf_, tactic.descriptor().name,
                            TacticOperation::kEqualitySearch);
      auto term_ids = tactic.equality_search(term->value);
      if (!ids) {
        ids = std::move(term_ids);
      } else {
        const std::unordered_set<DocId> keep(term_ids.begin(), term_ids.end());
        std::erase_if(*ids, [&](const DocId& id) { return !keep.count(id); });
      }
    }
    for (auto& id : *ids) {
      if (seen.insert(id).second) result_ids.push_back(std::move(id));
    }
  }

  // BoolResolution: decrypt candidates and re-evaluate the DNF exactly —
  // needed for ZMF false positives and RND full scans, and harmless
  // otherwise.
  std::vector<Document> docs = fetch_documents(cs, result_ids);
  std::erase_if(docs, [&](const Document& d) {
    for (const auto& conj : query.dnf) {
      const bool all = std::all_of(conj.begin(), conj.end(), [&](const FieldTerm& t) {
        return term_matches(d, t.field, t.value);
      });
      if (all) return false;  // matches this disjunct: keep
    }
    return true;
  });
  return docs;
}

std::vector<Document> Gateway::range_search(const std::string& collection,
                                            const std::string& field, const Value& lo,
                                            const Value& hi) {
  CollectionState& cs = state(collection);
  std::shared_lock lock(cs.op_mutex);
  auto it = cs.range.find(field);
  if (it == cs.range.end()) {
    throw_error(ErrorCode::kPolicyViolation,
                "range_search: field '" + field + "' has no range tactic (op RG "
                "not annotated?)");
  }
  std::vector<DocId> ids;
  {
    const ScopedPerf perf(perf_, it->second->descriptor().name,
                          TacticOperation::kRangeQuery);
    ids = it->second->range_search(lo, hi);
  }
  return fetch_documents(cs, ids);
}

AggregateResult Gateway::aggregate(const std::string& collection,
                                   const std::string& field, schema::Aggregate agg) {
  CollectionState& cs = state(collection);
  std::shared_lock lock(cs.op_mutex);
  auto op_of = [](schema::Aggregate a) {
    switch (a) {
      case schema::Aggregate::kSum: return TacticOperation::kSum;
      case schema::Aggregate::kAverage: return TacticOperation::kAverage;
      case schema::Aggregate::kCount: return TacticOperation::kCount;
      case schema::Aggregate::kMin: return TacticOperation::kMin;
      case schema::Aggregate::kMax: return TacticOperation::kMax;
    }
    return TacticOperation::kSum;
  };
  if (agg == schema::Aggregate::kMin || agg == schema::Aggregate::kMax) {
    auto it = cs.range.find(field);
    if (it == cs.range.end()) {
      throw_error(ErrorCode::kPolicyViolation,
                  "aggregate: min/max on '" + field + "' needs a range tactic");
    }
    const ScopedPerf perf(perf_, it->second->descriptor().name, op_of(agg));
    return it->second->aggregate(agg);
  }
  auto it = cs.agg.find(field);
  if (it == cs.agg.end()) {
    throw_error(ErrorCode::kPolicyViolation,
                "aggregate: field '" + field + "' has no aggregate tactic");
  }
  const ScopedPerf perf(perf_, it->second->descriptor().name, op_of(agg));
  return it->second->aggregate(agg);
}

}  // namespace datablinder::core
