#include "core/gateway.hpp"

#include <set>

#include "common/hex.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"

namespace datablinder::core {

using doc::Document;
using doc::Value;

namespace {

// Fire-and-forget update methods whose responses are empty by protocol.
// mitrasl.* is deliberately absent: its update protocol reads the current
// counter from the server, so deferring would use stale counters (and, for
// the same reason, Mitra-SL updates sit outside the insert intent journal).
const std::set<std::string>& deferrable_methods() {
  static const std::set<std::string> kDeferrable = {
      "doc.put",      "det.insert", "ope.insert", "ore.insert",
      "mitra.update", "iex.update", "zmf.update", "sophos.update",
      "agg.insert"};
  return kDeferrable;
}

}  // namespace

Gateway::Gateway(net::RpcClient& cloud, kms::KeyManager& kms,
                 store::KvStore& local_store, const TacticRegistry& registry,
                 GatewayConfig config)
    : cloud_(cloud),
      kms_(kms),
      local_store_(local_store),
      registry_(registry),
      config_(std::move(config)),
      policy_(registry),
      cache_(config_.hot_cache_capacity > 0
                 ? std::make_unique<HotCache>(&perf_,
                                              HotCache::Config{config_.hot_cache_capacity})
                 : nullptr),
      cost_model_(config_.adaptive_selection
                      ? std::make_unique<CostModel>(perf_, config_.cost, cache_.get())
                      : nullptr),
      planner_(cloud_, perf_, cache_.get(), cost_model_.get()),
      executor_(perf_, config_.index_workers) {
  if (config_.retry.enabled) cloud_.set_retry_policy(config_.retry);
  if (config_.breaker.enabled) cloud_.channel().breaker().configure(config_.breaker);
  cloud_.set_metrics_hook(
      [this](const char* series, std::uint64_t value) { perf_.incr(series, value); });
  if (config_.journal_inserts) {
    journal_ = std::make_unique<exec::IntentJournal>(local_store_, cloud_);
  }
}

Gateway::~Gateway() { cloud_.set_metrics_hook(nullptr); }

GatewayContext Gateway::make_context(const std::string& collection,
                                     const std::string& field) {
  GatewayContext ctx;
  ctx.cloud = &cloud_;
  ctx.local_store = &local_store_;
  ctx.kms = &kms_;
  ctx.perf = &perf_;
  ctx.collection = collection;
  ctx.field = field;
  ctx.params = config_.tactic_params;
  ctx.cache = cache_.get();
  return ctx;
}

void Gateway::register_schema(schema::Schema s) {
  const std::string name = s.name();
  require(!name.empty(), "register_schema: schema needs a name");

  auto rt = std::make_unique<exec::CollectionRuntime>();
  rt->plan = policy_.select(s);
  rt->schema = std::move(s);
  rt->doc_cipher =
      std::make_unique<crypto::AesGcm>(kms_.derive("doc/" + name, 32));

  // Instantiate the selected tactics (runtime strategy loading).
  if (!rt->plan.boolean_tactic.empty()) {
    rt->boolean = registry_.create_boolean(rt->plan.boolean_tactic,
                                           make_context(name, ""));
    rt->boolean->setup();
  }
  for (const auto& [field, fp] : rt->plan.fields) {
    auto instantiate = [&](const std::string& tactic,
                           std::map<std::string, exec::TacticSlot>& slots) {
      if (tactic.empty()) return;
      auto t = registry_.create_field(tactic, make_context(name, field));
      t->setup();
      slots[field].tactic = std::move(t);
    };
    instantiate(fp.eq_tactic, rt->eq);
    instantiate(fp.range_tactic, rt->range);
    instantiate(fp.agg_tactic, rt->agg);

    // Adaptive selection: instantiate every other admissible range
    // candidate too, so the cost model can reroute queries without an
    // index rebuild. With adaptation off this loop body never runs and
    // the runtime is identical to the static build.
    if (config_.adaptive_selection) {
      for (std::size_t i = 1; i < fp.range_candidates.size(); ++i) {
        const std::string& alt = fp.range_candidates[i];
        auto t = registry_.create_field(alt, make_context(name, field));
        t->setup();
        rt->range_alts[field][alt].tactic = std::move(t);
      }
    }
  }

  std::lock_guard lock(collections_mutex_);
  if (collections_.count(name)) {
    throw_error(ErrorCode::kAlreadyExists, "register_schema: duplicate '" + name + "'");
  }
  DB_LOG_INFO << "gateway: registered schema '" << name << "' with "
              << rt->plan.fields.size() << " protected fields";
  collections_.emplace(name, std::move(rt));
}

exec::CollectionRuntime& Gateway::runtime(const std::string& collection) {
  std::lock_guard lock(collections_mutex_);
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    throw_error(ErrorCode::kNotFound, "gateway: unknown collection '" + collection + "'");
  }
  return *it->second;
}

const exec::CollectionRuntime& Gateway::runtime(const std::string& collection) const {
  std::lock_guard lock(collections_mutex_);
  auto it = collections_.find(collection);
  if (it == collections_.end()) {
    throw_error(ErrorCode::kNotFound, "gateway: unknown collection '" + collection + "'");
  }
  return *it->second;
}

const CollectionPlan& Gateway::plan(const std::string& collection) const {
  return runtime(collection).plan;
}

const schema::Schema& Gateway::schema_of(const std::string& collection) const {
  return runtime(collection).schema;
}

DocId Gateway::generate_doc_id() {
  // DocIDGen SPI role: uniform random ids so identifiers carry no content.
  return hex_encode(SecureRng::bytes(12));
}

void Gateway::journaled_run(const std::string& collection,
                            const std::vector<std::string>& ids,
                            const std::function<void()>& body) {
  // Capture: the plan runs fully (gateway-side tactic state advances) but
  // every deferrable cloud mutation is queued, not sent.
  cloud_.begin_deferred(deferrable_methods());
  std::vector<net::Request> captured;
  try {
    body();
    captured = cloud_.take_deferred();
  } catch (...) {
    cloud_.abandon_deferred();
    throw;
  }
  // Journal the exact wire bytes durably BEFORE anything ships, then send
  // the whole batch in one round trip. A fault between begin and complete
  // leaves a pending intent that recover_pending_inserts()/a retried
  // insert replays byte-identically.
  const std::string token = journal_->begin(collection, ids, captured);
  perf_.incr("core.journal.begin");
  cloud_.send_batch(captured);
  journal_->complete(token);
}

DocId Gateway::insert(const std::string& collection, Document d) {
  exec::CollectionRuntime& rt = runtime(collection);
  rt.schema.validate(d);
  if (d.id.empty()) d.id = generate_doc_id();

  if (journal_ != nullptr) {
    // Retried insert: a pending intent for this id means a previous attempt
    // already journaled its mutations — finish THAT attempt by replaying
    // its recorded ciphertexts instead of re-encrypting (exactly-once).
    if (auto intent = journal_->find(collection, d.id)) {
      journal_->resume(*intent);
      perf_.incr("core.journal.resume");
      return d.id;
    }
    journaled_run(collection, {d.id}, [&] {
      auto plan = planner_.insert(rt, d);
      executor_.run(plan);
    });
    rt.doc_count.fetch_add(1, std::memory_order_relaxed);
    return d.id;
  }

  auto plan = planner_.insert(rt, d);
  executor_.run(plan);
  rt.doc_count.fetch_add(1, std::memory_order_relaxed);
  return d.id;
}

std::size_t Gateway::recover_pending_inserts() {
  if (journal_ == nullptr) return 0;
  const std::size_t n = journal_->resume_all();
  if (n > 0) perf_.incr("core.journal.resume", n);
  return n;
}

std::vector<DocId> Gateway::insert_many(const std::string& collection,
                                        std::vector<Document> docs) {
  exec::CollectionRuntime& rt = runtime(collection);
  std::vector<DocId> ids;
  ids.reserve(docs.size());
  for (auto& d : docs) {
    rt.schema.validate(d);
    if (d.id.empty()) d.id = generate_doc_id();
    ids.push_back(d.id);
  }

  auto run_all = [&] {
    for (auto& d : docs) {
      // Plans built inside the deferred section are flagged inline_only,
      // so every deferrable call stays on this thread's batch queue.
      auto plan = planner_.insert(rt, d);
      executor_.run(plan);
    }
  };

  if (journal_ != nullptr) {
    // Same single-round-trip shape, with the batch journaled before it
    // ships. (Bulk retry goes through recover_pending_inserts(), not the
    // per-id fast path of insert().)
    journaled_run(collection, ids, run_all);
    rt.doc_count.fetch_add(ids.size(), std::memory_order_relaxed);
    return ids;
  }

  cloud_.begin_deferred(deferrable_methods());
  try {
    run_all();
  } catch (...) {
    cloud_.abandon_deferred();
    throw;
  }
  cloud_.flush_deferred();
  rt.doc_count.fetch_add(ids.size(), std::memory_order_relaxed);
  return ids;
}

Document Gateway::read(const std::string& collection, const DocId& id) {
  exec::CollectionRuntime& rt = runtime(collection);
  auto plan = planner_.read(rt, id);
  executor_.run(plan);
  return std::move(plan.scratch->docs.at(0));
}

void Gateway::remove(const std::string& collection, const DocId& id) {
  exec::CollectionRuntime& rt = runtime(collection);
  auto plan = planner_.remove(rt, id);
  executor_.run(plan);
  // Saturating decrement: the count is approximate under recovery.
  std::uint64_t n = rt.doc_count.load(std::memory_order_relaxed);
  while (n > 0 &&
         !rt.doc_count.compare_exchange_weak(n, n - 1, std::memory_order_relaxed)) {
  }
  // Any removal (update = remove + insert) may orphan cached documents of
  // this collection: bump the epoch so they all go stale at once.
  if (cache_ != nullptr) cache_->bump_epoch(collection);
}

void Gateway::update(const std::string& collection, Document d) {
  require(!d.id.empty(), "update: document needs an id");
  remove(collection, d.id);
  insert(collection, std::move(d));
}

std::vector<Document> Gateway::equality_search(const std::string& collection,
                                               const std::string& field,
                                               const Value& value) {
  exec::CollectionRuntime& rt = runtime(collection);
  auto plan = planner_.equality_search(rt, field, value);
  executor_.run(plan);
  return std::move(plan.scratch->docs);
}

std::vector<Document> Gateway::boolean_search(const std::string& collection,
                                              const FieldBoolQuery& query) {
  exec::CollectionRuntime& rt = runtime(collection);
  auto plan = planner_.boolean_search(rt, query);
  executor_.run(plan);
  return std::move(plan.scratch->docs);
}

std::vector<Document> Gateway::range_search(const std::string& collection,
                                            const std::string& field, const Value& lo,
                                            const Value& hi) {
  exec::CollectionRuntime& rt = runtime(collection);
  auto plan = planner_.range_search(rt, field, lo, hi);
  if (!plan.cost_series.empty()) {
    // Whole-plan latency under "plan.<candidate>" — the live evidence the
    // cost model blends against the static priors next time it ranks.
    const ScopedPerf perf(perf_, plan.cost_series, TacticOperation::kRangeQuery);
    executor_.run(plan);
  } else {
    executor_.run(plan);
  }
  return std::move(plan.scratch->docs);
}

AggregateResult Gateway::aggregate(const std::string& collection,
                                   const std::string& field, schema::Aggregate agg) {
  exec::CollectionRuntime& rt = runtime(collection);
  auto plan = planner_.aggregate(rt, field, agg);
  executor_.run(plan);
  return plan.scratch->agg;
}

}  // namespace datablinder::core
