// PolicyEngine — adaptive selection of data protection tactics (§3.2, §5.1).
//
// Given a field's annotation (minimum protection class + required
// operations/aggregates) and the registry of available tactics, the engine
// picks, per operation, the *least protective tactic that still satisfies
// the class bound* — leakier schemes are cheaper, and the annotation is an
// upper bound on acceptable leakage. Ties break on registered preference.
// The effective protection of a field is the weakest class among all
// tactics applied to it (weakest-link rule).
//
// The engine reproduces the §5.1 selection table exactly: e.g. a C5 field
// with [I, EQ, BL, RG] resolves to DET + OPE, a C3 field with [I, EQ, BL]
// folds its equality into BIEX-2Lev, a C2 [I, EQ] field gets Mitra, and a
// C1 insert-only field gets RND.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "schema/schema.hpp"

namespace datablinder::core {

/// Per-field outcome of tactic selection.
struct FieldPlan {
  /// Tactic serving equality search; empty when equality is folded into
  /// the collection's boolean tactic.
  std::string eq_tactic;
  std::string range_tactic;
  std::string agg_tactic;      // sum / average / count
  bool boolean_member = false; // participates in the collection boolean index
  bool minmax_via_range = false;

  /// All distinct tactics applied to this field (selection table column 2).
  std::vector<std::string> tactics;
  /// Weakest-link effective class.
  schema::ProtectionClass effective = schema::ProtectionClass::kClass1;
  /// Human-readable rationale (selection table column 3).
  std::string reason;

  /// Every admissible range tactic, static choice first, then descending
  /// (class, preference) — the candidate set the adaptive cost model
  /// re-ranks per query. Populated whenever range_tactic is; with
  /// adaptation off only the first entry is ever instantiated.
  std::vector<std::string> range_candidates;

  // --- live annotation (selection table column 4) --------------------------
  // Written by the adaptive planner under the runtime's plan mutex; stays
  // at the defaults when adaptation is off.
  std::string range_last_choice;             // empty until adaptively planned
  std::string range_chosen_by = "static";    // CostDecision::chosen_by
  double range_predicted_us = 0.0;
};

struct CollectionPlan {
  std::string schema_name;
  /// Collection-scoped boolean tactic (BIEX family), empty if unused.
  std::string boolean_tactic;
  std::map<std::string, FieldPlan> fields;

  /// Renders the §5.1-style selection table.
  std::string to_table() const;
};

class PolicyEngine {
 public:
  explicit PolicyEngine(const TacticRegistry& registry) : registry_(registry) {}

  /// Resolves a schema to a plan. Throws Error(kPolicyViolation) when a
  /// requested operation has no tactic within the class bound.
  CollectionPlan select(const schema::Schema& s) const;

 private:
  /// Best tactic among `candidates` with class <= bound; empty if none.
  std::string best_within(const std::vector<std::string>& candidates,
                          schema::ProtectionClass bound) const;

  /// Registered tactics serving `op`, optionally restricted to
  /// field-scoped or collection-scoped entries.
  std::vector<std::string> serving(schema::Operation op) const;
  std::vector<std::string> serving(schema::Aggregate agg) const;

  const TacticRegistry& registry_;
};

}  // namespace datablinder::core
