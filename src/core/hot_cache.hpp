// HotCache — the gateway's bounded, explicitly-invalidated hot-path cache.
//
// One cache per gateway, shared by the exec planner (recently decrypted
// documents), the tactic kernels (SSE trapdoors, DET labels, OPE scores)
// and the public-key tactics (per-modulus Montgomery contexts). Three
// disciplines keep it safe:
//
//   * Wipe on eviction. Every byte value is held as a SecretBytes, so LRU
//     eviction, erase(), epoch invalidation and destruction all route
//     through the wiping allocator. dblint rule R10 (secret-cache) makes
//     this the ONLY container allowed to hold secret-derived cached values.
//   * Epoch invalidation. Entries may be tagged with an epoch domain
//     (per-collection); bump_epoch(domain) logically invalidates every
//     tagged entry at once — the gateway bumps on update/delete. Entries
//     without a domain are pure functions of key material (DET labels,
//     OPE scores) and survive data churn.
//   * Keyed invalidation. State-dependent trapdoors (Mitra: every update
//     of a keyword advances its counter) are erased precisely by the
//     tactic that advanced the state, via erase().
//
// Traffic counters (hits/misses/evictions/invalidations) are plain atomics
// for lock-free reads by the cost model, and are mirrored into the
// PerfRegistry as "core.cache.*" so one metrics snapshot shows cache
// effectiveness next to tactic latencies.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "bigint/montgomery.hpp"
#include "common/bytes.hpp"
#include "common/secret.hpp"

namespace datablinder::core {

class PerfRegistry;

class HotCache {
 public:
  struct Config {
    std::size_t capacity = 4096;  // entries, not bytes; 0 disables puts
  };

  HotCache(PerfRegistry* perf, Config config);
  explicit HotCache(PerfRegistry* perf = nullptr) : HotCache(perf, Config()) {}

  /// Inserts (or refreshes) `key`. `epoch_domain` tags the entry for bulk
  /// invalidation via bump_epoch(); empty means the value is a pure
  /// function of key material and never goes stale.
  void put(const std::string& key, BytesView value,
           const std::string& epoch_domain = std::string());

  /// Returns a copy of the cached value, or nullopt on miss / stale epoch.
  /// Stale entries are erased (and wiped) on the way out.
  std::optional<Bytes> get(const std::string& key);

  /// Precise invalidation for state-dependent entries (Mitra trapdoors).
  void erase(const std::string& key);

  /// Logically invalidates every entry tagged with `domain`. O(1): stale
  /// entries are reclaimed lazily on lookup or eviction.
  void bump_epoch(const std::string& domain);

  /// Shared Montgomery context for `modulus` — the per-modulus store the
  /// public-key tactics draw from, so two tactic instances over the same
  /// modulus share one precomputation. Contexts are public parameters
  /// (moduli are not secrets) and are never evicted: a gateway sees a
  /// handful of moduli over its lifetime.
  std::shared_ptr<const bigint::Montgomery> montgomery(const bigint::BigInt& modulus);

  std::size_t size() const;
  std::size_t capacity() const noexcept { return config_.capacity; }

  // Lock-free traffic counters (the cost-model feedback path).
  std::uint64_t hits() const noexcept { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const noexcept { return misses_.load(std::memory_order_relaxed); }
  std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::uint64_t invalidations() const noexcept {
    return invalidations_.load(std::memory_order_relaxed);
  }
  /// hits / (hits + misses); 0 before any traffic.
  double hit_ratio() const noexcept;

 private:
  struct Entry {
    SecretBytes value;  // wiped on every exit path
    std::string domain;
    std::uint64_t epoch = 0;
    std::list<std::string>::iterator lru_it;
  };

  // All private helpers assume mutex_ is held.
  bool stale(const Entry& e) const;
  void erase_locked(std::unordered_map<std::string, Entry>::iterator it);
  void note(const char* series, std::atomic<std::uint64_t>& counter);

  Config config_;
  PerfRegistry* perf_;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  std::map<std::string, std::uint64_t> epochs_;
  std::map<std::string, std::shared_ptr<const bigint::Montgomery>> montgomery_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
};

}  // namespace datablinder::core
