#include "core/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace datablinder::core {

void PerfSeries::observe(std::uint64_t ns) {
  const double us = static_cast<double>(ns) / 1e3;
  {
    std::lock_guard lock(mutex_);
    total_ns_ += ns;
    if (ns > max_ns_) max_ns_ = ns;
    ring_us_[ring_next_] = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(ns / 1000, 0xFFFFFFFFull));
    ring_next_ = (ring_next_ + 1) % kWindow;
    // EWMA updated under the same lock (single writer per sample), read
    // lock-free elsewhere. First sample seeds the average directly.
    const double prev = ewma_us_.load(std::memory_order_relaxed);
    const std::uint64_t n = count_.load(std::memory_order_relaxed);
    ewma_us_.store(n == 0 ? us : prev + kAlpha * (us - prev),
                   std::memory_order_relaxed);
    count_.store(n + 1, std::memory_order_relaxed);
  }
}

OpStats PerfSeries::stats() const {
  OpStats s;
  std::lock_guard lock(mutex_);
  s.count = count_.load(std::memory_order_relaxed);
  s.total_ns = total_ns_;
  s.max_ns = max_ns_;
  s.ewma_us = ewma_us_.load(std::memory_order_relaxed);
  const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(s.count, kWindow));
  if (n > 0) {
    std::vector<std::uint32_t> window;
    window.reserve(n);
    // Ring fill order does not matter for quantiles; take the first n slots
    // (exactly the occupied ones until the ring wraps, all of them after).
    window.assign(ring_us_.begin(), ring_us_.begin() + n);
    std::sort(window.begin(), window.end());
    s.p50_us = static_cast<double>(window[(n - 1) / 2]);
    s.p95_us = static_cast<double>(window[(n * 95) / 100 >= n ? n - 1 : (n * 95) / 100]);
  }
  return s;
}

PerfSeries& PerfRegistry::series(const std::string& tactic, TacticOperation op) {
  std::lock_guard lock(mutex_);
  auto& slot = series_[{tactic, op}];
  if (!slot) slot = std::make_unique<PerfSeries>();
  return *slot;
}

void PerfRegistry::record(const std::string& tactic, TacticOperation op,
                          std::uint64_t ns) {
  series(tactic, op).observe(ns);
}

const PerfSeries* PerfRegistry::handle(const std::string& tactic, TacticOperation op) {
  return &series(tactic, op);
}

std::map<std::pair<std::string, TacticOperation>, OpStats> PerfRegistry::snapshot()
    const {
  std::map<std::pair<std::string, TacticOperation>, OpStats> out;
  std::lock_guard lock(mutex_);
  for (const auto& [key, s] : series_) out.emplace(key, s->stats());
  return out;
}

OpStats PerfRegistry::stats(const std::string& tactic, TacticOperation op) const {
  std::lock_guard lock(mutex_);
  auto it = series_.find({tactic, op});
  return it == series_.end() ? OpStats{} : it->second->stats();
}

void PerfRegistry::incr(const std::string& series, std::uint64_t delta) {
  std::lock_guard lock(mutex_);
  counters_[series] += delta;
}

std::uint64_t PerfRegistry::counter(const std::string& series) const {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(series);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, std::uint64_t> PerfRegistry::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

std::string PerfRegistry::report() const {
  const auto snap = snapshot();
  std::ostringstream out;
  out << "tactic       operation         count    mean/us    ewma/us     p50/us     p95/us     max/us\n";
  char line[192];
  for (const auto& [key, s] : snap) {
    std::snprintf(line, sizeof(line),
                  "%-12s %-16s %7llu %10.1f %10.1f %10.1f %10.1f %10.1f\n",
                  key.first.c_str(), to_string(key.second).c_str(),
                  static_cast<unsigned long long>(s.count), s.mean_us(), s.ewma_us,
                  s.p50_us, s.p95_us, static_cast<double>(s.max_ns) / 1e3);
    out << line;
  }
  const auto counts = counters();
  if (!counts.empty()) {
    out << "counter                              total\n";
    for (const auto& [name, value] : counts) {
      std::snprintf(line, sizeof(line), "%-28s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out << line;
    }
  }
  return out.str();
}

void PerfRegistry::reset() {
  std::lock_guard lock(mutex_);
  series_.clear();  // invalidates handles; callers re-resolve after reset
  counters_.clear();
}

}  // namespace datablinder::core
