#include "core/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace datablinder::core {

PerfSeries& PerfRegistry::series(const std::string& tactic, TacticOperation op) {
  std::lock_guard lock(mutex_);
  auto& slot = series_[{tactic, op}];
  if (!slot) slot = std::make_unique<PerfSeries>();
  return *slot;
}

void PerfRegistry::record(const std::string& tactic, TacticOperation op,
                          std::uint64_t ns) {
  series(tactic, op).observe(ns);
}

const PerfSeries* PerfRegistry::handle(const std::string& tactic, TacticOperation op) {
  return &series(tactic, op);
}

std::map<std::pair<std::string, TacticOperation>, OpStats> PerfRegistry::snapshot()
    const {
  std::map<std::pair<std::string, TacticOperation>, OpStats> out;
  std::lock_guard lock(mutex_);
  for (const auto& [key, s] : series_) out.emplace(key, s->stats());
  return out;
}

OpStats PerfRegistry::stats(const std::string& tactic, TacticOperation op) const {
  std::lock_guard lock(mutex_);
  auto it = series_.find({tactic, op});
  return it == series_.end() ? OpStats{} : it->second->stats();
}

void PerfRegistry::incr(const std::string& series, std::uint64_t delta) {
  std::lock_guard lock(mutex_);
  counters_[series] += delta;
}

std::uint64_t PerfRegistry::counter(const std::string& series) const {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(series);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, std::uint64_t> PerfRegistry::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

std::string PerfRegistry::report() const {
  const auto snap = snapshot();
  std::ostringstream out;
  out << "tactic       operation         count    mean/us    ewma/us     p50/us     p95/us     max/us\n";
  char line[192];
  for (const auto& [key, s] : snap) {
    std::snprintf(line, sizeof(line),
                  "%-12s %-16s %7llu %10.1f %10.1f %10.1f %10.1f %10.1f\n",
                  key.first.c_str(), to_string(key.second).c_str(),
                  static_cast<unsigned long long>(s.count), s.mean_us(), s.ewma_us,
                  s.p50_us, s.p95_us, static_cast<double>(s.max_ns) / 1e3);
    out << line;
  }
  const auto counts = counters();
  if (!counts.empty()) {
    out << "counter                              total\n";
    for (const auto& [name, value] : counts) {
      std::snprintf(line, sizeof(line), "%-28s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out << line;
    }
  }
  return out.str();
}

void PerfRegistry::reset() {
  std::lock_guard lock(mutex_);
  series_.clear();  // invalidates handles; callers re-resolve after reset
  counters_.clear();
}

}  // namespace datablinder::core
