// ShardedCloud — the untrusted zone as N shards × R replicas.
//
// Composes the scale-out stack: each shard is a full ReplicatedCloud-style
// replica set (its own CloudNodes behind independently faultable
// Channels, assembled into a net::ReplicaGroup), and the shards sit
// behind one net::ShardRouter fronted by a router-mode RpcClient the
// Gateway binds to exactly like a single-node client. PR-7 resilience
// (hedged reads, failure accrual, byte-exact replication, catch-up)
// applies PER SHARD unchanged — one shard's primary failover never stalls
// its siblings.
//
// Fidelity contract, layered on ReplicatedCloud's:
//   * shards = 1, replicas = 1, hedged_reads off — no group, no router:
//     the plain single-node RpcClient, byte-identical on the wire to the
//     pre-replication build.
//   * shards = 1 otherwise — exactly the ReplicatedCloud shape (one
//     group-mode client), byte-identical to PR-7.
//   * shards > 1 — every shard gets a ReplicaGroup (even at replicas = 1:
//     the router's contract is "each backend dedups byte-identical
//     replays", which the group's log provides) and the client routes
//     through the ShardRouter.
#pragma once

#include <memory>
#include <vector>

#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "net/channel.hpp"
#include "net/replica_group.hpp"
#include "net/rpc.hpp"
#include "net/shard_router.hpp"

namespace datablinder::core {

class ShardedCloud {
 public:
  /// Builds config.shards shard groups (minimum 1) of config.replicas
  /// nodes each (minimum 1), every channel starting from `channel_config`.
  explicit ShardedCloud(const GatewayConfig& config = {},
                        net::ChannelConfig channel_config = {});

  /// The client the Gateway should be constructed over.
  net::RpcClient& client() noexcept { return *client_; }

  /// The shard router, or nullptr when shards = 1 (no routing layer).
  net::ShardRouter* router() noexcept { return router_.get(); }

  /// Replica group of shard s, or nullptr in the legacy plain shape.
  net::ReplicaGroup* group(std::size_t s) noexcept {
    return shards_[s].group.get();
  }

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t replicas_per_shard() const noexcept {
    return shards_[0].nodes.size();
  }

  CloudNode& node(std::size_t shard, std::size_t replica = 0) {
    return *shards_[shard].nodes[replica];
  }
  net::Channel& channel(std::size_t shard, std::size_t replica = 0) {
    return *shards_[shard].channels[replica];
  }

  /// Replays missing log suffixes on every shard's reachable replicas;
  /// returns replicas fully in sync, summed across shards.
  std::size_t catch_up();

  /// Cluster-wide counters summed across every node of every shard (the
  /// bench/observability view a single CloudNode used to provide).
  std::uint64_t index_ops() const;
  std::size_t storage_bytes() const;

 private:
  struct Shard {
    std::vector<std::unique_ptr<CloudNode>> nodes;
    std::vector<std::unique_ptr<net::Channel>> channels;
    std::unique_ptr<net::ReplicaGroup> group;
  };

  std::vector<Shard> shards_;
  std::unique_ptr<net::ShardRouter> router_;  // before client_: client holds it
  std::unique_ptr<net::RpcClient> client_;
};

}  // namespace datablinder::core
