#include "core/cloud_node.hpp"

#include "common/fingerprint.hpp"
#include "common/hex.hpp"
#include "common/status.hpp"
#include "core/wire.hpp"
#include "ppe/ore.hpp"

namespace datablinder::core {

using bigint::BigInt;
using doc::Array;
using doc::Object;
using doc::Value;

namespace {
Value ids_to_value(const std::vector<std::string>& ids) {
  Array arr;
  arr.reserve(ids.size());
  for (const auto& id : ids) arr.emplace_back(id);
  return Value(std::move(arr));
}
}  // namespace

CloudNode::CloudNode() {
  register_doc_handlers();
  register_det_handlers();
  register_ope_handlers();
  register_ore_handlers();
  register_mitra_handlers();
  register_mitra_stateless_handlers();
  register_sophos_handlers();
  register_iex_handlers();
  register_zmf_handlers();
  register_agg_handlers();
  register_plain_handlers();
  register_admin_handlers();
}

std::size_t CloudNode::storage_bytes() const {
  std::size_t n = docs_.storage_bytes() + kv_.storage_bytes();
  // SSE server dictionaries.
  for (const auto& [scope, s] : mitra_) n += s->dict().storage_bytes();
  for (const auto& [scope, s] : mitra_sl_) {
    n += s->entries().storage_bytes() + s->counters().storage_bytes();
  }
  for (const auto& [scope, s] : sophos_) n += s->dict().storage_bytes();
  for (const auto& [scope, s] : iex_) n += s->dict().storage_bytes();
  for (const auto& [scope, s] : zmf_) n += s->storage_bytes();
  return n;
}

std::uint64_t CloudNode::state_digest() const {
  // Same traversal as storage_bytes(); per-scope digests combine by sum so
  // unordered scope-map iteration order cannot matter.
  std::uint64_t digest = docs_.fingerprint() * 3 + kv_.fingerprint();
  for (const auto& [scope, s] : mitra_) {
    digest += fnv1a(fnv1a(kFnvOffset, scope), s->dict().fingerprint());
  }
  for (const auto& [scope, s] : mitra_sl_) {
    digest += fnv1a(fnv1a(kFnvOffset, scope),
                    s->entries().fingerprint() * 3 + s->counters().fingerprint());
  }
  for (const auto& [scope, s] : sophos_) {
    digest += fnv1a(fnv1a(kFnvOffset, scope), s->dict().fingerprint());
  }
  for (const auto& [scope, s] : iex_) {
    digest += fnv1a(fnv1a(kFnvOffset, scope), s->dict().fingerprint());
  }
  for (const auto& [scope, s] : zmf_) {
    digest += fnv1a(fnv1a(kFnvOffset, scope), s->fingerprint());
  }
  for (const auto& [column, col] : agg_) {
    std::uint64_t h = fnv1a(kFnvOffset, column);
    h = fnv1a(h, col.n.to_bytes());
    std::uint64_t cts = 0;
    for (const auto& [id, ct] : col.cts) {
      cts += fnv1a(fnv1a(kFnvOffset, id), ct.to_bytes());
    }
    digest += fnv1a(h, cts);
  }
  return digest;
}

sse::MitraServer& CloudNode::mitra(const std::string& scope) {
  std::lock_guard lock(sse_mutex_);
  auto& slot = mitra_[scope];
  if (!slot) slot = std::make_unique<sse::MitraServer>();
  return *slot;
}

sse::MitraStatelessServer& CloudNode::mitra_sl(const std::string& scope) {
  std::lock_guard lock(sse_mutex_);
  auto& slot = mitra_sl_[scope];
  if (!slot) slot = std::make_unique<sse::MitraStatelessServer>();
  return *slot;
}

sse::Iex2LevServer& CloudNode::iex(const std::string& scope) {
  std::lock_guard lock(sse_mutex_);
  auto& slot = iex_[scope];
  if (!slot) slot = std::make_unique<sse::Iex2LevServer>();
  return *slot;
}

sse::IexZmfServer& CloudNode::zmf(const std::string& scope,
                                  const sse::ZmfFilterParams* params) {
  std::lock_guard lock(sse_mutex_);
  auto& slot = zmf_[scope];
  if (!slot) slot = std::make_unique<sse::IexZmfServer>(params ? *params
                                                               : sse::ZmfFilterParams{});
  return *slot;
}

// --- encrypted documents -----------------------------------------------------

void CloudNode::register_doc_handlers() {
  rpc_.register_method("doc.put", [this](BytesView p) {
    const Object req = wire::unpack(p);
    doc::Document d;
    d.id = wire::get_str(req, "id");
    d.set("blob", Value(wire::get_bin(req, "blob")));
    docs_.collection(wire::get_str(req, "col")).put(std::move(d));
    return wire::pack({});
  });
  rpc_.register_method("doc.get", [this](BytesView p) {
    const Object req = wire::unpack(p);
    auto d = docs_.collection(wire::get_str(req, "col")).get(wire::get_str(req, "id"));
    if (!d) throw_error(ErrorCode::kNotFound, "doc.get: no such document");
    return wire::pack({{"blob", d->at("blob")}});
  });
  rpc_.register_method("doc.mget", [this](BytesView p) {
    // Batched retrieval: one round trip for a whole candidate set. The
    // response carries only the ids that still exist (in request order);
    // vanished ids are skipped, mirroring the gateway's tolerance for
    // index entries racing with deletions.
    const Object req = wire::unpack(p);
    std::vector<std::string> ids;
    for (const auto& v : wire::get_arr(req, "ids")) ids.push_back(v.as_string());
    const auto found = docs_.collection(wire::get_str(req, "col")).get_many(ids);
    Array out;
    out.reserve(found.size());
    for (const auto& d : found) {
      Object entry;
      entry["id"] = Value(d.id);
      entry["blob"] = d.at("blob");
      out.emplace_back(std::move(entry));
    }
    return wire::pack({{"docs", Value(std::move(out))}});
  });
  rpc_.register_method("doc.del", [this](BytesView p) {
    const Object req = wire::unpack(p);
    const bool erased =
        docs_.collection(wire::get_str(req, "col")).erase(wire::get_str(req, "id"));
    return wire::pack({{"erased", Value(erased)}});
  });
  rpc_.register_method("doc.list", [this](BytesView p) {
    const Object req = wire::unpack(p);
    std::vector<std::string> ids;
    docs_.collection(wire::get_str(req, "col")).scan([&](const doc::Document& d) {
      ids.push_back(d.id);
      return true;
    });
    return wire::pack({{"ids", ids_to_value(ids)}});
  });
}

// --- DET: ciphertext-equality index (KvStore sets) ---------------------------

void CloudNode::register_det_handlers() {
  auto set_key = [](const Object& req) {
    return "det:" + wire::get_str(req, "col") + ":" + wire::get_str(req, "field") + ":" +
           hex_encode(wire::get_bin(req, "label"));
  };
  rpc_.register_method("det.insert", [this, set_key](BytesView p) {
    const Object req = wire::unpack(p);
    kv_.sadd(set_key(req), wire::get_str(req, "id"));
    ++index_ops_;
    return wire::pack({});
  });
  rpc_.register_method("det.remove", [this, set_key](BytesView p) {
    const Object req = wire::unpack(p);
    kv_.srem(set_key(req), wire::get_str(req, "id"));
    ++index_ops_;
    return wire::pack({});
  });
  rpc_.register_method("det.search", [this, set_key](BytesView p) {
    const Object req = wire::unpack(p);
    const auto members = kv_.smembers(set_key(req));
    ++index_ops_;
    return wire::pack(
        {{"ids", ids_to_value({members.begin(), members.end()})}});
  });
}

// --- OPE: order-preserving range index (KvStore zsets) -----------------------

void CloudNode::register_ope_handlers() {
  auto zkey = [](const Object& req) {
    return "ope:" + wire::get_str(req, "col") + ":" + wire::get_str(req, "field");
  };
  rpc_.register_method("ope.insert", [this, zkey](BytesView p) {
    const Object req = wire::unpack(p);
    kv_.zadd(zkey(req), wire::get_bin(req, "score"), wire::get_str(req, "id"));
    ++index_ops_;
    return wire::pack({});
  });
  rpc_.register_method("ope.remove", [this, zkey](BytesView p) {
    const Object req = wire::unpack(p);
    kv_.zrem(zkey(req), wire::get_bin(req, "score"), wire::get_str(req, "id"));
    ++index_ops_;
    return wire::pack({});
  });
  rpc_.register_method("ope.range", [this, zkey](BytesView p) {
    const Object req = wire::unpack(p);
    const auto ids =
        kv_.zrange(zkey(req), wire::get_bin(req, "lo"), wire::get_bin(req, "hi"));
    ++index_ops_;
    return wire::pack({{"ids", ids_to_value(ids)}});
  });
  rpc_.register_method("ope.extreme", [this, zkey](BytesView p) {
    // Returns the minimal or maximal (score, id) pair of the index.
    const Object req = wire::unpack(p);
    const bool want_max = wire::get_int(req, "max") != 0;
    const auto extreme = want_max ? kv_.zmax(zkey(req)) : kv_.zmin(zkey(req));
    ++index_ops_;
    if (!extreme) {
      return wire::pack({{"found", Value(false)}});
    }
    return wire::pack({{"found", Value(true)},
                       {"score", Value(extreme->first)},
                       {"id", Value(extreme->second)}});
  });
}

// --- ORE: left/right comparison scan (KvStore hashes) ------------------------

void CloudNode::register_ore_handlers() {
  auto hkey = [](const Object& req) {
    return "ore:" + wire::get_str(req, "col") + ":" + wire::get_str(req, "field");
  };
  rpc_.register_method("ore.insert", [this, hkey](BytesView p) {
    const Object req = wire::unpack(p);
    kv_.hset(hkey(req), wire::get_str(req, "id"), wire::get_bin(req, "right"));
    ++index_ops_;
    return wire::pack({});
  });
  rpc_.register_method("ore.remove", [this, hkey](BytesView p) {
    const Object req = wire::unpack(p);
    kv_.hdel(hkey(req), wire::get_str(req, "id"));
    ++index_ops_;
    return wire::pack({});
  });
  rpc_.register_method("ore.range", [this, hkey](BytesView p) {
    // Linear scan comparing each stored right ciphertext against the two
    // left endpoint tokens: lo <= y <= hi.
    const Object req = wire::unpack(p);
    const auto left_lo = ppe::OreLeft::deserialize(wire::get_bin(req, "left_lo"));
    const auto left_hi = ppe::OreLeft::deserialize(wire::get_bin(req, "left_hi"));
    std::vector<std::string> ids;
    for (const auto& [id, right_bytes] : kv_.hgetall(hkey(req))) {
      const auto right = ppe::OreRight::deserialize(right_bytes);
      const auto lo_cmp = ppe::OreCipher::compare(left_lo, right);
      const auto hi_cmp = ppe::OreCipher::compare(left_hi, right);
      ++index_ops_;
      const bool ge_lo = lo_cmp != ppe::OreResult::kGreater;  // lo <= y
      const bool le_hi = hi_cmp != ppe::OreResult::kLess;     // hi >= y
      if (ge_lo && le_hi) ids.push_back(id);
    }
    return wire::pack({{"ids", ids_to_value(ids)}});
  });
}

// --- Mitra --------------------------------------------------------------------

void CloudNode::register_mitra_handlers() {
  rpc_.register_method("mitra.update", [this](BytesView p) {
    const Object req = wire::unpack(p);
    sse::MitraUpdateToken token;
    token.address = wire::get_bin(req, "address");
    token.value = wire::get_bin(req, "value");
    mitra(wire::get_str(req, "scope")).apply_update(token);
    ++index_ops_;
    return wire::pack({});
  });
  rpc_.register_method("mitra.search", [this](BytesView p) {
    const Object req = wire::unpack(p);
    sse::MitraSearchToken token;
    for (const auto& a : wire::get_arr(req, "addresses")) {
      token.addresses.push_back(a.as_binary());
    }
    const auto values = mitra(wire::get_str(req, "scope")).search(token);
    index_ops_ += token.addresses.size();
    Array arr;
    arr.reserve(values.size());
    for (const auto& v : values) arr.emplace_back(v);
    return wire::pack({{"values", Value(std::move(arr))}});
  });
}

// --- Mitra-Stateless ------------------------------------------------------------
//
// Two extra methods versus plain Mitra: the encrypted keyword-counter slot
// lives server-side so the gateway keeps no state at all.

void CloudNode::register_mitra_stateless_handlers() {
  rpc_.register_method("mitrasl.get_counter", [this](BytesView p) {
    const Object req = wire::unpack(p);
    auto blob = mitra_sl(wire::get_str(req, "scope"))
                    .get_counter(wire::get_bin(req, "label"));
    ++index_ops_;
    Object out;
    out["found"] = Value(blob.has_value());
    if (blob) out["blob"] = Value(std::move(*blob));
    return wire::pack(std::move(out));
  });
  rpc_.register_method("mitrasl.update", [this](BytesView p) {
    // Atomic second round: store the new counter blob and the new entry.
    const Object req = wire::unpack(p);
    auto& server = mitra_sl(wire::get_str(req, "scope"));
    server.put_counter(wire::get_bin(req, "label"), wire::get_bin(req, "counter"));
    sse::MitraUpdateToken token;
    token.address = wire::get_bin(req, "address");
    token.value = wire::get_bin(req, "value");
    server.apply_update(token);
    index_ops_ += 2;
    return wire::pack({});
  });
  rpc_.register_method("mitrasl.search", [this](BytesView p) {
    const Object req = wire::unpack(p);
    sse::MitraSearchToken token;
    for (const auto& a : wire::get_arr(req, "addresses")) {
      token.addresses.push_back(a.as_binary());
    }
    const auto values = mitra_sl(wire::get_str(req, "scope")).search(token);
    index_ops_ += token.addresses.size();
    Array arr;
    arr.reserve(values.size());
    for (const auto& v : values) arr.emplace_back(v);
    return wire::pack({{"values", Value(std::move(arr))}});
  });
}

// --- Sophos --------------------------------------------------------------------

void CloudNode::register_sophos_handlers() {
  rpc_.register_method("sophos.setup", [this](BytesView p) {
    const Object req = wire::unpack(p);
    sse::SophosPublicParams params;
    params.n = BigInt::from_bytes(wire::get_bin(req, "n"));
    params.e = BigInt::from_bytes(wire::get_bin(req, "e"));
    params.init_context();  // one Montgomery context for every future search
    std::lock_guard lock(sse_mutex_);
    sophos_[wire::get_str(req, "scope")] =
        std::make_unique<sse::SophosServer>(std::move(params));
    return wire::pack({});
  });
  rpc_.register_method("sophos.update", [this](BytesView p) {
    const Object req = wire::unpack(p);
    sse::SophosUpdateToken token;
    token.ut = wire::get_bin(req, "ut");
    token.value = wire::get_bin(req, "value");
    std::lock_guard lock(sse_mutex_);
    auto it = sophos_.find(wire::get_str(req, "scope"));
    if (it == sophos_.end()) {
      throw_error(ErrorCode::kNotFound, "sophos: scope not set up");
    }
    it->second->apply_update(token);
    ++index_ops_;
    return wire::pack({});
  });
  rpc_.register_method("sophos.search", [this](BytesView p) {
    const Object req = wire::unpack(p);
    sse::SophosSearchToken token;
    token.kw_token = wire::get_bin(req, "kw_token");
    token.st_current = wire::get_bin(req, "st");
    token.count = static_cast<std::uint64_t>(wire::get_int(req, "count"));
    std::vector<std::string> ids;
    {
      std::lock_guard lock(sse_mutex_);
      auto it = sophos_.find(wire::get_str(req, "scope"));
      if (it == sophos_.end()) {
        throw_error(ErrorCode::kNotFound, "sophos: scope not set up");
      }
      ids = it->second->search(token);
    }
    index_ops_ += token.count;
    return wire::pack({{"ids", ids_to_value(ids)}});
  });
}

// --- IEX-2Lev -------------------------------------------------------------------

void CloudNode::register_iex_handlers() {
  rpc_.register_method("iex.update", [this](BytesView p) {
    const Object req = wire::unpack(p);
    sse::IexUpdateToken token;
    token.address = wire::get_bin(req, "address");
    token.value = wire::get_bin(req, "value");
    iex(wire::get_str(req, "scope")).apply_update(token);
    ++index_ops_;
    return wire::pack({});
  });
  rpc_.register_method("iex.search", [this](BytesView p) {
    const Object req = wire::unpack(p);
    sse::IexConjToken token;
    for (const auto& list : wire::get_arr(req, "lists")) {
      std::vector<Bytes> addresses;
      for (const auto& a : list.as_array()) addresses.push_back(a.as_binary());
      index_ops_ += addresses.size();
      token.lists.push_back(std::move(addresses));
    }
    const auto lists = iex(wire::get_str(req, "scope")).search(token);
    Array out;
    for (const auto& values : lists) {
      Array inner;
      inner.reserve(values.size());
      for (const auto& v : values) inner.emplace_back(v);
      out.emplace_back(std::move(inner));
    }
    return wire::pack({{"lists", Value(std::move(out))}});
  });
}

// --- IEX-ZMF --------------------------------------------------------------------

void CloudNode::register_zmf_handlers() {
  rpc_.register_method("zmf.setup", [this](BytesView p) {
    const Object req = wire::unpack(p);
    sse::ZmfFilterParams params;
    params.filter_bits = static_cast<std::size_t>(wire::get_int(req, "filter_bits"));
    params.num_hashes = static_cast<std::size_t>(wire::get_int(req, "num_hashes"));
    zmf(wire::get_str(req, "scope"), &params);
    return wire::pack({});
  });
  rpc_.register_method("zmf.update", [this](BytesView p) {
    const Object req = wire::unpack(p);
    sse::ZmfUpdateToken token;
    token.address = wire::get_bin(req, "address");
    token.value = wire::get_bin(req, "value");
    token.salt = wire::get_bin(req, "salt");
    token.filter = wire::get_bin(req, "filter");
    zmf(wire::get_str(req, "scope"), nullptr).apply_update(token);
    ++index_ops_;
    return wire::pack({});
  });
  rpc_.register_method("zmf.search", [this](BytesView p) {
    const Object req = wire::unpack(p);
    sse::ZmfConjToken token;
    for (const auto& a : wire::get_arr(req, "addresses")) {
      token.addresses.push_back(a.as_binary());
    }
    for (const auto& t : wire::get_arr(req, "tokens")) {
      token.keyword_tokens.push_back(t.as_binary());
    }
    index_ops_ += token.addresses.size();
    const auto values = zmf(wire::get_str(req, "scope"), nullptr).search(token);
    Array arr;
    arr.reserve(values.size());
    for (const auto& v : values) arr.emplace_back(v);
    return wire::pack({{"values", Value(std::move(arr))}});
  });
}

// --- Paillier aggregates ----------------------------------------------------------

void CloudNode::register_agg_handlers() {
  rpc_.register_method("agg.setup", [this](BytesView p) {
    const Object req = wire::unpack(p);
    std::lock_guard lock(agg_mutex_);
    AggColumn& col = agg_[wire::get_str(req, "scope")];
    col.n = BigInt::from_bytes(wire::get_bin(req, "n"));
    col.n_squared = col.n * col.n;
    if (col.n_squared.is_odd()) {
      col.mont_n2 = std::make_shared<const bigint::Montgomery>(col.n_squared);
    }
    return wire::pack({});
  });
  rpc_.register_method("agg.insert", [this](BytesView p) {
    const Object req = wire::unpack(p);
    std::lock_guard lock(agg_mutex_);
    auto it = agg_.find(wire::get_str(req, "scope"));
    if (it == agg_.end()) throw_error(ErrorCode::kNotFound, "agg: scope not set up");
    it->second.cts[wire::get_str(req, "id")] =
        BigInt::from_bytes(wire::get_bin(req, "ct"));
    ++index_ops_;
    return wire::pack({});
  });
  rpc_.register_method("agg.remove", [this](BytesView p) {
    const Object req = wire::unpack(p);
    std::lock_guard lock(agg_mutex_);
    auto it = agg_.find(wire::get_str(req, "scope"));
    if (it != agg_.end()) it->second.cts.erase(wire::get_str(req, "id"));
    ++index_ops_;
    return wire::pack({});
  });
  rpc_.register_method("agg.sum", [this](BytesView p) {
    // Homomorphic fold over the whole column (AggFunction, cloud side).
    const Object req = wire::unpack(p);
    std::lock_guard lock(agg_mutex_);
    auto it = agg_.find(wire::get_str(req, "scope"));
    if (it == agg_.end()) throw_error(ErrorCode::kNotFound, "agg: scope not set up");
    const AggColumn& col = it->second;
    BigInt acc(1);  // multiplicative identity in Z_{n^2}: Enc-domain zero sum
    std::uint64_t count = 0;
    for (const auto& [id, ct] : col.cts) {
      acc = col.mont_n2 ? acc.mul_mod(ct, *col.mont_n2) : acc.mul_mod(ct, col.n_squared);
      ++count;
    }
    index_ops_ += count;
    return wire::pack({{"sum_ct", Value(acc.to_bytes())},
                       {"count", Value(static_cast<std::int64_t>(count))}});
  });
}

// --- plaintext baseline (S_A) --------------------------------------------------

void CloudNode::register_plain_handlers() {
  auto col_name = [](const Object& req) { return "plain:" + wire::get_str(req, "col"); };
  rpc_.register_method("plain.put", [this, col_name](BytesView p) {
    const Object req = wire::unpack(p);
    auto& col = docs_.collection(col_name(req));
    doc::Document d = doc::decode_document(wire::get_bin(req, "doc"));
    col.put(std::move(d));
    return wire::pack({});
  });
  rpc_.register_method("plain.index", [this, col_name](BytesView p) {
    const Object req = wire::unpack(p);
    docs_.collection(col_name(req)).create_index(wire::get_str(req, "field"));
    return wire::pack({});
  });
  rpc_.register_method("plain.get", [this, col_name](BytesView p) {
    const Object req = wire::unpack(p);
    auto d = docs_.collection(col_name(req)).get(wire::get_str(req, "id"));
    if (!d) throw_error(ErrorCode::kNotFound, "plain.get: no such document");
    return wire::pack({{"doc", Value(doc::encode_document(*d))}});
  });
  rpc_.register_method("plain.del", [this, col_name](BytesView p) {
    const Object req = wire::unpack(p);
    docs_.collection(col_name(req)).erase(wire::get_str(req, "id"));
    return wire::pack({});
  });
  auto docs_to_value = [](const std::vector<doc::Document>& found) {
    Array arr;
    arr.reserve(found.size());
    for (const auto& d : found) arr.emplace_back(doc::encode_document(d));
    return Value(std::move(arr));
  };
  rpc_.register_method("plain.find_eq", [this, col_name, docs_to_value](BytesView p) {
    const Object req = wire::unpack(p);
    const auto found = docs_.collection(col_name(req))
                           .find(store::Filter::eq(wire::get_str(req, "field"),
                                                   wire::get(req, "value")));
    return wire::pack({{"docs", docs_to_value(found)}});
  });
  rpc_.register_method("plain.find_range", [this, col_name, docs_to_value](BytesView p) {
    const Object req = wire::unpack(p);
    const auto found = docs_.collection(col_name(req))
                           .find(store::Filter::range(wire::get_str(req, "field"),
                                                      wire::get(req, "lo"),
                                                      wire::get(req, "hi")));
    return wire::pack({{"docs", docs_to_value(found)}});
  });
  rpc_.register_method("plain.find_bool", [this, col_name, docs_to_value](BytesView p) {
    // DNF: array of conjunctions; each conjunction is an array of
    // {field, value} objects.
    const Object req = wire::unpack(p);
    std::vector<store::Filter> disjuncts;
    for (const auto& conj : wire::get_arr(req, "dnf")) {
      std::vector<store::Filter> terms;
      for (const auto& term : conj.as_array()) {
        const Object& t = term.as_object();
        terms.push_back(store::Filter::eq(wire::get_str(t, "field"),
                                          wire::get(t, "value")));
      }
      disjuncts.push_back(store::Filter::and_of(std::move(terms)));
    }
    const auto found =
        docs_.collection(col_name(req)).find(store::Filter::or_of(std::move(disjuncts)));
    return wire::pack({{"docs", docs_to_value(found)}});
  });
  rpc_.register_method("plain.avg", [this, col_name](BytesView p) {
    const Object req = wire::unpack(p);
    const std::string field = wire::get_str(req, "field");
    double sum = 0;
    std::int64_t count = 0;
    docs_.collection(col_name(req)).scan([&](const doc::Document& d) {
      if (d.has(field)) {
        sum += d.at(field).as_double();
        ++count;
      }
      return true;
    });
    return wire::pack({{"sum", Value(sum)}, {"count", Value(count)}});
  });
}

// --- admin / observability -------------------------------------------------------

void CloudNode::register_admin_handlers() {
  // One-round-trip batch execution of queued fire-and-forget updates.
  rpc_.register_method("rpc.batch", net::RpcClient::make_batch_handler(rpc_));
  rpc_.register_method("admin.storage", [this](BytesView) {
    return wire::pack(
        {{"bytes", Value(static_cast<std::int64_t>(storage_bytes()))}});
  });
  rpc_.register_method("admin.index_ops", [this](BytesView) {
    return wire::pack(
        {{"ops", Value(static_cast<std::int64_t>(index_ops_.load()))}});
  });
  rpc_.register_method("admin.digest", [this](BytesView) {
    return wire::pack(
        {{"digest", Value(static_cast<std::int64_t>(state_digest()))}});
  });
}

}  // namespace datablinder::core
