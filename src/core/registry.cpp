#include "core/registry.hpp"

#include <cmath>

#include "common/status.hpp"

namespace datablinder::core {

Status validate_descriptor_leakage(const TacticDescriptor& descriptor) {
  for (const auto& [op, profile] : descriptor.operations) {
    if (!schema::leakage_within(descriptor.protection_class, op, profile.leakage)) {
      return Status::Failure(
          ErrorCode::kPolicyViolation,
          "tactic '" + descriptor.name + "': operation " + to_string(op) +
              " declares leakage " + to_string(profile.leakage) +
              " above the " + schema::to_string(descriptor.protection_class) +
              " ceiling " +
              to_string(schema::leakage_ceiling(descriptor.protection_class, op)));
    }
  }
  return Status::OK();
}

Status validate_descriptor_cost(const TacticDescriptor& descriptor) {
  for (const auto& [op, prior] : descriptor.cost.ops) {
    if (!std::isfinite(prior.base_us) || prior.base_us < 0.0 ||
        !std::isfinite(prior.per_unit_us) || prior.per_unit_us < 0.0) {
      return Status::Failure(ErrorCode::kInvalidArgument,
                             "tactic '" + descriptor.name + "': cost prior for " +
                                 to_string(op) + " has a negative or non-finite constant");
    }
    if (!descriptor.operations.count(op)) {
      return Status::Failure(ErrorCode::kInvalidArgument,
                             "tactic '" + descriptor.name + "': cost prior for " +
                                 to_string(op) +
                                 " has no matching leakage declaration");
    }
  }
  return Status::OK();
}

void TacticRegistry::register_field_tactic(TacticDescriptor descriptor,
                                           FieldFactory factory) {
  const std::string name = descriptor.name;
  if (entries_.count(name)) {
    throw_error(ErrorCode::kAlreadyExists, "registry: duplicate tactic " + name);
  }
  validate_descriptor_leakage(descriptor).throw_if_error();
  validate_descriptor_cost(descriptor).throw_if_error();
  entries_.emplace(name, Entry{std::move(descriptor), std::move(factory), nullptr});
  order_.push_back(name);
}

void TacticRegistry::register_boolean_tactic(TacticDescriptor descriptor,
                                             BooleanFactory factory) {
  const std::string name = descriptor.name;
  if (entries_.count(name)) {
    throw_error(ErrorCode::kAlreadyExists, "registry: duplicate tactic " + name);
  }
  validate_descriptor_leakage(descriptor).throw_if_error();
  validate_descriptor_cost(descriptor).throw_if_error();
  entries_.emplace(name, Entry{std::move(descriptor), nullptr, std::move(factory)});
  order_.push_back(name);
}

bool TacticRegistry::has(const std::string& name) const { return entries_.count(name) > 0; }

bool TacticRegistry::is_boolean(const std::string& name) const {
  return entry(name).boolean_factory != nullptr;
}

const TacticRegistry::Entry& TacticRegistry::entry(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw_error(ErrorCode::kNotFound, "registry: unknown tactic " + name);
  }
  return it->second;
}

const TacticDescriptor& TacticRegistry::descriptor(const std::string& name) const {
  return entry(name).descriptor;
}

std::unique_ptr<FieldTactic> TacticRegistry::create_field(const std::string& name,
                                                          const GatewayContext& ctx) const {
  const Entry& e = entry(name);
  if (!e.field_factory) {
    throw_error(ErrorCode::kInvalidArgument, "registry: " + name + " is not field-scoped");
  }
  return e.field_factory(ctx);
}

std::unique_ptr<BooleanTactic> TacticRegistry::create_boolean(
    const std::string& name, const GatewayContext& ctx) const {
  const Entry& e = entry(name);
  if (!e.boolean_factory) {
    throw_error(ErrorCode::kInvalidArgument,
                "registry: " + name + " is not collection-scoped");
  }
  return e.boolean_factory(ctx);
}

std::vector<std::string> TacticRegistry::names() const { return order_; }

}  // namespace datablinder::core
