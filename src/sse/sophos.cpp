#include "sse/sophos.hpp"

#include "bigint/prime.hpp"
#include "common/status.hpp"
#include "crypto/prf.hpp"

namespace datablinder::sse {

Bytes sophos_h1(BytesView kw_token, BytesView st_bytes) {
  return crypto::prf_labeled(kw_token, "sophos-h1", st_bytes);
}

Bytes sophos_h2(BytesView kw_token, BytesView st_bytes, std::size_t len) {
  Bytes input = to_bytes("sophos-h2");
  input.push_back(0);
  append(input, st_bytes);
  return crypto::prf_n(kw_token, input, len);
}

Bytes sophos_h1(const crypto::PrfKey& kw, BytesView st_bytes) {
  return kw.prf_labeled("sophos-h1", st_bytes);
}

Bytes sophos_h2(const crypto::PrfKey& kw, BytesView st_bytes, std::size_t len) {
  Bytes input = to_bytes("sophos-h2");
  input.push_back(0);
  append(input, st_bytes);
  return kw.prf_n(input, len);
}

void SophosPublicParams::init_context() {
  if (!mont_n && n.is_odd()) mont_n = std::make_shared<const Montgomery>(n);
}

void SophosServer::apply_update(const SophosUpdateToken& token) {
  dict_.put(token.ut, token.value);
}

std::vector<DocId> SophosServer::search(const SophosSearchToken& token) const {
  std::vector<DocId> out;
  out.reserve(token.count);
  BigInt st = BigInt::from_bytes(token.st_current);
  const std::size_t elem_len = params_.element_len();
  // One HMAC key schedule for the whole chain walk instead of two per step.
  const crypto::PrfKey kw(token.kw_token);
  for (std::uint64_t i = 0; i < token.count; ++i) {
    const Bytes st_bytes = st.to_bytes(elem_len);
    const Bytes ut = sophos_h1(kw, st_bytes);
    auto value = dict_.get(ut);
    if (value) {
      Bytes payload = *value;
      xor_inplace(payload, sophos_h2(kw, st_bytes, payload.size()));
      out.emplace_back(reinterpret_cast<const char*>(payload.data()), payload.size());
    }
    // Step to the previous state with the public (forward) permutation.
    st = params_.mont_n ? st.pow_mod(params_.e, *params_.mont_n)
                        : st.pow_mod(params_.e, params_.n);
  }
  return out;
}

SophosClient::SophosClient(BytesView prf_key, std::size_t modulus_bits)
    : prf_key_(prf_key) {
  require(!prf_key.empty(), "SophosClient: empty PRF key");
  require(modulus_bits >= 128, "SophosClient: modulus too small");
  const auto [p, q] = bigint::generate_prime_pair(modulus_bits / 2);
  n_ = p * q;
  e_ = BigInt(65537);
  const BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
  d_ = e_.inv_mod(phi);
  mont_n_ = std::make_shared<const Montgomery>(n_);
}

SophosClient::SophosClient(const SecretBytes& prf_key, std::size_t modulus_bits)
    : SophosClient(prf_key.expose_secret(), modulus_bits) {}

SophosPublicParams SophosClient::public_params() const {
  SophosPublicParams params{n_, e_};
  params.mont_n = mont_n_;  // share the client's context with the server side
  return params;
}

Bytes SophosClient::kw_token(const std::string& keyword) const {
  return prf_key_.prf_labeled("sophos-kw", to_bytes(keyword));
}

SophosUpdateToken SophosClient::update(const std::string& keyword, const DocId& id) {
  auto& ks = state_[keyword];
  if (ks.count == 0) {
    // Fresh keyword: random starting point in Z_n.
    ks.st = BigInt::random_below(n_);
  } else {
    // Step backwards: only the trapdoor holder can do this.
    ks.st = mont_n_ ? ks.st.pow_mod(d_, *mont_n_) : ks.st.pow_mod(d_, n_);
  }
  ++ks.count;

  const std::size_t elem_len = (n_.bit_length() + 7) / 8;
  const Bytes st_bytes = ks.st.to_bytes(elem_len);
  const crypto::PrfKey kt(kw_token(keyword));  // one schedule for H1 + H2

  SophosUpdateToken token;
  token.ut = sophos_h1(kt, st_bytes);
  token.value = to_bytes(id);
  xor_inplace(token.value, sophos_h2(kt, st_bytes, token.value.size()));
  return token;
}

std::optional<SophosSearchToken> SophosClient::search_token(
    const std::string& keyword) const {
  auto it = state_.find(keyword);
  if (it == state_.end()) return std::nullopt;
  SophosSearchToken token;
  token.kw_token = kw_token(keyword);
  token.st_current = it->second.st.to_bytes((n_.bit_length() + 7) / 8);
  token.count = it->second.count;
  return token;
}

}  // namespace datablinder::sse
