// Sophos (Σoφoς) — forward-private SSE from a trapdoor permutation
// (Bost — CCS 2016).
//
// Search tokens for keyword w form a chain ST_0 <- ST_1 <- ... where the
// client steps *backwards* with the RSA private key (ST_{c+1} = π^{-1}(ST_c))
// and the server replays *forwards* with the public key (ST_{i-1} = π(ST_i)).
// An update inserts at UT = H1(K_w, ST_new); since deriving ST_new needs the
// trapdoor, the server cannot connect new updates to previously searched
// keywords — forward privacy. The scheme is append-only (no deletions),
// which is why Table 2 lists fewer SPI interfaces for it than for Mitra,
// and its challenge column says "key management" (the RSA trapdoor).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/montgomery.hpp"
#include "common/bytes.hpp"
#include "common/secret.hpp"
#include "crypto/prf.hpp"
#include "sse/index_common.hpp"

namespace datablinder::sse {

using bigint::BigInt;
using bigint::Montgomery;

/// RSA trapdoor-permutation key material.
struct SophosPublicParams {
  BigInt n;       // RSA modulus
  BigInt e;       // public exponent (forward direction, server side)

  /// Cached Montgomery context for n — the server replays one modular
  /// exponentiation per chain step, so search cost is dominated by it.
  /// Never serialized; rebuilt on demand.
  std::shared_ptr<const Montgomery> mont_n;

  /// Builds the cached context. Idempotent.
  void init_context();

  std::size_t element_len() const { return (n.bit_length() + 7) / 8; }
};

struct SophosUpdateToken {
  Bytes ut;      // dictionary address H1(K_w, ST)
  Bytes value;   // id XOR H2(K_w, ST)
};

struct SophosSearchToken {
  Bytes kw_token;     // K_w
  Bytes st_current;   // ST_c serialized (element of Z_n)
  std::uint64_t count = 0;
};

class SophosServer {
 public:
  explicit SophosServer(SophosPublicParams params) : params_(std::move(params)) {}

  void apply_update(const SophosUpdateToken& token);

  /// Walks the token chain forward with the public permutation, returning
  /// the recovered document ids (newest first).
  std::vector<DocId> search(const SophosSearchToken& token) const;

  const EncryptedDict& dict() const noexcept { return dict_; }
  const SophosPublicParams& params() const noexcept { return params_; }

 private:
  SophosPublicParams params_;
  EncryptedDict dict_;
};

class SophosClient {
 public:
  /// Generates fresh RSA trapdoor material (modulus_bits) and a PRF key.
  SophosClient(BytesView prf_key, std::size_t modulus_bits);
  SophosClient(const SecretBytes& prf_key, std::size_t modulus_bits);

  SophosPublicParams public_params() const;

  /// Append-only update (Sophos has no deletion protocol).
  SophosUpdateToken update(const std::string& keyword, const DocId& id);

  /// Returns nullopt if the keyword has never been updated.
  std::optional<SophosSearchToken> search_token(const std::string& keyword) const;

  std::size_t distinct_keywords() const noexcept { return state_.size(); }

 private:
  struct KeywordState {
    BigInt st;             // current (newest) token state
    std::uint64_t count = 0;
  };

  Bytes kw_token(const std::string& keyword) const;

  crypto::PrfKey prf_key_;  // hoisted HMAC schedule for kw-token derivation
  BigInt n_, e_, d_;  // RSA trapdoor permutation
  std::shared_ptr<const Montgomery> mont_n_;  // context for the d-exponent steps
  std::unordered_map<std::string, KeywordState> state_;
};

/// H1/H2 are shared between client and server (token-keyed PRFs). The
/// PrfKey overloads let a search walk hoist the HMAC key schedule for the
/// keyword token once and reuse it across every chain step.
Bytes sophos_h1(BytesView kw_token, BytesView st_bytes);
Bytes sophos_h2(BytesView kw_token, BytesView st_bytes, std::size_t len);
Bytes sophos_h1(const crypto::PrfKey& kw, BytesView st_bytes);
Bytes sophos_h2(const crypto::PrfKey& kw, BytesView st_bytes, std::size_t len);

}  // namespace datablinder::sse
