// RangeBRC — range queries over SSE via dyadic intervals and best range
// covers (the construction family of Faber et al., "Rich Queries on
// Encrypted Data", which the paper cites as [22], and Demertzis et al.'s
// practical range search).
//
// Every indexed value x is inserted under one keyword per dyadic level:
// level L's keyword is the (64-L)-bit prefix of x, i.e. the aligned
// interval of size 2^L containing x. A range [lo, hi] is answered by
// computing its *best range cover* — the minimal set of dyadic intervals
// that exactly tiles it (at most 2 per level, ~126 worst case) — and
// running one single-keyword SSE search per cover node.
//
// Leakage: the access pattern of interval keywords — strictly less than
// order-revealing schemes: the server never learns how two stored values
// compare, only which encrypted interval buckets a query touched
// (protection Class 3, "predicates"). Cost: 64 index entries per value and
// O(log D) searches per query — the trade-off measured by
// bench_ablation_ranges.
//
// The encrypted-index machinery is Mitra's (forward-private updates, lazy
// deletes); this header adds the dyadic encoding and the cover algorithm.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/secret.hpp"
#include "sse/mitra.hpp"

namespace datablinder::sse {

/// One dyadic interval: the values whose top (64-level) bits equal prefix.
/// level 0 is a single point; level 63 is half the domain.
struct DyadicInterval {
  std::uint8_t level = 0;
  std::uint64_t prefix = 0;  // value >> level

  bool operator==(const DyadicInterval&) const = default;

  std::uint64_t lo() const noexcept { return prefix << level; }
  std::uint64_t hi() const noexcept {
    return (prefix << level) | ((level == 0) ? 0 : ((std::uint64_t{1} << level) - 1));
  }

  /// Stable keyword encoding for the SSE index.
  std::string keyword(const std::string& scope) const;
};

/// All 64 dyadic intervals containing `x` (levels 0..63).
std::vector<DyadicInterval> dyadic_path(std::uint64_t x);

/// Minimal dyadic tiling of [lo, hi] (inclusive). Exact: the union of the
/// returned intervals equals [lo, hi] with no overlap.
std::vector<DyadicInterval> best_range_cover(std::uint64_t lo, std::uint64_t hi);

/// Client: a thin composition over the Mitra construction — one logical
/// Mitra keyword per dyadic interval.
class RangeBrcClient {
 public:
  explicit RangeBrcClient(BytesView key, std::string scope);
  explicit RangeBrcClient(const SecretBytes& key, std::string scope);

  /// 64 update tokens (one per level) for adding/removing `x`.
  std::vector<MitraUpdateToken> update(MitraOp op, std::uint64_t x, const DocId& id);

  /// Search tokens for every cover node of [lo, hi], paired with the
  /// keyword needed to resolve the responses.
  struct CoverQuery {
    std::vector<std::string> keywords;        // aligned with tokens
    std::vector<MitraSearchToken> tokens;
  };
  CoverQuery range_query(std::uint64_t lo, std::uint64_t hi) const;

  /// Resolves one cover node's response.
  std::vector<DocId> resolve(const std::string& keyword,
                             const std::vector<Bytes>& values) const;

  /// State pass-through for gateway persistence (Mitra's counters).
  std::uint64_t counter(const std::string& keyword) const {
    return mitra_.counter(keyword);
  }
  void restore_counter(const std::string& keyword, std::uint64_t count) {
    mitra_.restore_counter(keyword, count);
  }

 private:
  std::string scope_;
  MitraClient mitra_;
};

}  // namespace datablinder::sse
