#include "sse/range_brc.hpp"

#include <bit>

#include "common/hex.hpp"
#include "common/status.hpp"

namespace datablinder::sse {

std::string DyadicInterval::keyword(const std::string& scope) const {
  // "brc:<scope>:<level>:<prefix-hex>" — collision-free across levels.
  return "brc:" + scope + ":" + std::to_string(level) + ":" +
         hex_encode(be64(prefix));
}

std::vector<DyadicInterval> dyadic_path(std::uint64_t x) {
  std::vector<DyadicInterval> out;
  out.reserve(64);
  for (std::uint8_t level = 0; level < 64; ++level) {
    out.push_back({level, x >> level});
  }
  return out;
}

std::vector<DyadicInterval> best_range_cover(std::uint64_t lo, std::uint64_t hi) {
  require(lo <= hi, "best_range_cover: lo > hi");
  std::vector<DyadicInterval> out;
  // Greedy left-to-right tiling: at position `lo`, emit the largest aligned
  // dyadic block that starts at lo and does not overshoot hi.
  using U128 = unsigned __int128;
  U128 cursor = lo;
  const U128 end = static_cast<U128>(hi) + 1;  // exclusive
  while (cursor < end) {
    // Alignment bound: the block size must divide the cursor position.
    const unsigned align =
        cursor == 0 ? 64
                    : static_cast<unsigned>(
                          std::countr_zero(static_cast<std::uint64_t>(cursor)));
    // Size bound: the block must fit within the remaining span.
    const U128 remaining = end - cursor;
    unsigned fit = 0;
    while (fit < 64 && (static_cast<U128>(1) << (fit + 1)) <= remaining) ++fit;
    unsigned level = std::min(align, fit);
    if (level > 63) level = 63;  // keyword space covers levels 0..63
    out.push_back({static_cast<std::uint8_t>(level),
                   static_cast<std::uint64_t>(cursor) >> level});
    cursor += static_cast<U128>(1) << level;
  }
  return out;
}

RangeBrcClient::RangeBrcClient(BytesView key, std::string scope)
    : scope_(std::move(scope)), mitra_(key) {}

RangeBrcClient::RangeBrcClient(const SecretBytes& key, std::string scope)
    : scope_(std::move(scope)), mitra_(key) {}

std::vector<MitraUpdateToken> RangeBrcClient::update(MitraOp op, std::uint64_t x,
                                                     const DocId& id) {
  std::vector<MitraUpdateToken> tokens;
  tokens.reserve(64);
  for (const DyadicInterval& node : dyadic_path(x)) {
    tokens.push_back(mitra_.update(op, node.keyword(scope_), id));
  }
  return tokens;
}

RangeBrcClient::CoverQuery RangeBrcClient::range_query(std::uint64_t lo,
                                                       std::uint64_t hi) const {
  CoverQuery q;
  for (const DyadicInterval& node : best_range_cover(lo, hi)) {
    const std::string kw = node.keyword(scope_);
    q.tokens.push_back(mitra_.search_token(kw));
    q.keywords.push_back(kw);
  }
  return q;
}

std::vector<DocId> RangeBrcClient::resolve(const std::string& keyword,
                                           const std::vector<Bytes>& values) const {
  return mitra_.resolve(keyword, values);
}

}  // namespace datablinder::sse
