// IEX-ZMF — boolean SSE with matryoshka-filter local indexes
// (Kamara & Moataz — Eurocrypt 2017), Goh-style Bloom-filter instantiation.
//
// Space/read trade-off versus IEX-2Lev: instead of materialising one
// encrypted list per keyword *pair* (quadratic space), every global index
// entry carries a fixed-size keyed Bloom filter over the document's other
// keywords. A conjunction w1 ∧ w2 ∧ ... is answered by walking w1's global
// entries and testing the query tokens against each entry's filter — the
// server returns only candidates that pass all filters. Bloom false
// positives are possible; DataBlinder's boolean tactic re-verifies
// candidates at the gateway after decryption (the extra reads that make
// ZMF "read-heavier but space-lighter", as the paper's Table 2 contrasts).
//
// Filter privacy: positions are derived from PRF(k_filter, keyword) mixed
// with a random per-filter salt, so filters for the same keyword set are
// uncorrelated and membership is only testable with a token.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/secret.hpp"
#include "crypto/prf.hpp"
#include "sse/iex2lev.hpp"  // reuses BoolQuery / IexOp
#include "sse/index_common.hpp"

namespace datablinder::sse {

struct ZmfFilterParams {
  std::size_t filter_bits = 256;  // m
  std::size_t num_hashes = 4;     // h
};

struct ZmfUpdateToken {
  Bytes address;   // global index address for (w, counter)
  Bytes value;     // padded (op, id)
  Bytes salt;      // per-entry filter salt (public)
  Bytes filter;    // Bloom filter bits over the doc's keyword set
};

/// Conjunction token: address list for the first keyword's global entries,
/// plus one membership token per remaining keyword.
struct ZmfConjToken {
  std::vector<Bytes> addresses;
  std::vector<Bytes> keyword_tokens;
};

class IexZmfServer {
 public:
  explicit IexZmfServer(ZmfFilterParams params = {}) : params_(params) {}

  void apply_update(const ZmfUpdateToken& token);

  /// Returns, for each address (positionally aligned), the stored value if
  /// every keyword token passes that entry's filter — empty placeholder
  /// otherwise.
  std::vector<Bytes> search(const ZmfConjToken& token) const;

  std::size_t storage_bytes() const noexcept {
    return values_.storage_bytes() + filters_.storage_bytes();
  }

  /// Order-insensitive content digest (replica convergence checks).
  std::uint64_t fingerprint() const {
    return values_.fingerprint() * 3 + filters_.fingerprint();
  }

 private:
  ZmfFilterParams params_;
  EncryptedDict values_;
  EncryptedDict filters_;  // address -> salt || filter bits
};

class IexZmfClient {
 public:
  explicit IexZmfClient(BytesView key, ZmfFilterParams params = {});
  explicit IexZmfClient(const SecretBytes& key, ZmfFilterParams params = {});

  std::vector<ZmfUpdateToken> update(IexOp op, const std::vector<std::string>& keywords,
                                     const DocId& id);

  ZmfConjToken conj_token(const std::vector<std::string>& conj) const;

  /// Decrypts the (candidate) values for `conj`; the result may contain
  /// Bloom false positives — callers re-verify after document decryption.
  std::vector<DocId> resolve_conj(const std::vector<std::string>& conj,
                                  const std::vector<Bytes>& values) const;

  /// Full DNF evaluation against a local server instance.
  std::vector<DocId> query(const BoolQuery& q, const IexZmfServer& server) const;

  Bytes export_state() const { return counters_.serialize(); }
  void import_state(BytesView b) { counters_ = KeywordCounters::deserialize(b); }

  const ZmfFilterParams& params() const noexcept { return params_; }

 private:
  Bytes keyword_token(const std::string& w) const;

  crypto::PrfKey key_;  // hoisted HMAC schedule
  ZmfFilterParams params_;
  KeywordCounters counters_;
};

/// Bit positions a keyword token hashes to within a salted filter.
std::vector<std::size_t> zmf_positions(BytesView keyword_token, BytesView salt,
                                       const ZmfFilterParams& params);

}  // namespace datablinder::sse
