#include "sse/iexzmf.hpp"

#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "crypto/prf.hpp"

namespace datablinder::sse {

namespace {
Bytes stream_input(const std::string& w, std::uint64_t count, std::uint8_t role) {
  Bytes input = to_bytes(w);
  append(input, be64(count));
  input.push_back(role);
  return input;
}

bool filter_test(BytesView filter, const std::vector<std::size_t>& positions) {
  for (std::size_t pos : positions) {
    if ((filter[pos / 8] & (1u << (pos % 8))) == 0) return false;
  }
  return true;
}
}  // namespace

std::vector<std::size_t> zmf_positions(BytesView keyword_token, BytesView salt,
                                       const ZmfFilterParams& params) {
  std::vector<std::size_t> out;
  out.reserve(params.num_hashes);
  for (std::size_t i = 0; i < params.num_hashes; ++i) {
    Bytes input(salt.begin(), salt.end());
    append(input, be64(i));
    out.push_back(crypto::prf_mod(keyword_token, input, params.filter_bits));
  }
  return out;
}

void IexZmfServer::apply_update(const ZmfUpdateToken& token) {
  values_.put(token.address, token.value);
  Bytes stored(token.salt.begin(), token.salt.end());
  append(stored, token.filter);
  filters_.put(token.address, std::move(stored));
}

std::vector<Bytes> IexZmfServer::search(const ZmfConjToken& token) const {
  std::vector<Bytes> out;
  out.reserve(token.addresses.size());
  const std::size_t filter_len = (params_.filter_bits + 7) / 8;
  for (const auto& addr : token.addresses) {
    auto value = values_.get(addr);
    auto stored = filters_.get(addr);
    bool pass = value.has_value() && stored.has_value() &&
                stored->size() == 16 + filter_len;
    if (pass) {
      const BytesView salt(stored->data(), 16);
      const BytesView filter(stored->data() + 16, filter_len);
      for (const auto& kt : token.keyword_tokens) {
        if (!filter_test(filter, zmf_positions(kt, salt, params_))) {
          pass = false;
          break;
        }
      }
    }
    out.push_back(pass ? std::move(*value) : Bytes{});
  }
  return out;
}

IexZmfClient::IexZmfClient(BytesView key, ZmfFilterParams params)
    : key_(key), params_(params) {
  require(!key.empty(), "IexZmfClient: empty key");
  require(params_.filter_bits % 8 == 0 && params_.filter_bits > 0,
          "IexZmfClient: filter_bits must be a positive multiple of 8");
  require(params_.num_hashes > 0, "IexZmfClient: num_hashes must be positive");
}

IexZmfClient::IexZmfClient(const SecretBytes& key, ZmfFilterParams params)
    : IexZmfClient(key.expose_secret(), params) {}

Bytes IexZmfClient::keyword_token(const std::string& w) const {
  return key_.prf_labeled("zmf-kw", to_bytes(w));
}

std::vector<ZmfUpdateToken> IexZmfClient::update(
    IexOp op, const std::vector<std::string>& keywords, const DocId& id) {
  // Build the document's keyword filter content once per entry (fresh salt
  // each time so filters are unlinkable across entries).
  std::vector<ZmfUpdateToken> tokens;
  tokens.reserve(keywords.size());
  const std::size_t filter_len = (params_.filter_bits + 7) / 8;

  for (const auto& w : keywords) {
    const std::uint64_t c = counters_.increment(w);
    ZmfUpdateToken token;
    token.address = key_.prf(stream_input(w, c, 0));

    Bytes payload;
    payload.push_back(static_cast<std::uint8_t>(op));
    append(payload, to_bytes(id));
    xor_inplace(payload, key_.prf_n(stream_input(w, c, 1), payload.size()));
    token.value = std::move(payload);

    token.salt = SecureRng::bytes(16);
    token.filter.assign(filter_len, 0);
    for (const auto& v : keywords) {
      for (std::size_t pos : zmf_positions(keyword_token(v), token.salt, params_)) {
        token.filter[pos / 8] |= static_cast<std::uint8_t>(1u << (pos % 8));
      }
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

ZmfConjToken IexZmfClient::conj_token(const std::vector<std::string>& conj) const {
  require(!conj.empty(), "IexZmfClient: empty conjunction");
  ZmfConjToken token;
  const std::string& w1 = conj[0];
  const std::uint64_t c = counters_.get(w1);
  token.addresses.reserve(c);
  for (std::uint64_t i = 1; i <= c; ++i) {
    token.addresses.push_back(key_.prf(stream_input(w1, i, 0)));
  }
  for (std::size_t j = 1; j < conj.size(); ++j) {
    token.keyword_tokens.push_back(keyword_token(conj[j]));
  }
  return token;
}

std::vector<DocId> IexZmfClient::resolve_conj(const std::vector<std::string>& conj,
                                              const std::vector<Bytes>& values) const {
  const std::string& w1 = conj[0];
  std::unordered_map<DocId, bool> live;
  std::vector<DocId> order;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i].empty()) continue;  // filtered out or missing
    Bytes payload = values[i];
    xor_inplace(payload, key_.prf_n(stream_input(w1, i + 1, 1), payload.size()));
    const auto op = static_cast<IexOp>(payload[0]);
    DocId id(reinterpret_cast<const char*>(payload.data() + 1), payload.size() - 1);
    if (op == IexOp::kAdd) {
      if (!live.count(id)) order.push_back(id);
      live[id] = true;
    } else {
      live[id] = false;
    }
  }
  std::vector<DocId> out;
  for (const auto& id : order) {
    if (live[id]) out.push_back(id);
  }
  return out;
}

std::vector<DocId> IexZmfClient::query(const BoolQuery& q,
                                       const IexZmfServer& server) const {
  std::vector<DocId> out;
  std::unordered_set<DocId> seen;
  for (const auto& conj : q.dnf) {
    const ZmfConjToken token = conj_token(conj);
    const auto values = server.search(token);
    for (auto& id : resolve_conj(conj, values)) {
      if (seen.insert(id).second) out.push_back(std::move(id));
    }
  }
  return out;
}

}  // namespace datablinder::sse
