#include "sse/mitra.hpp"

#include <unordered_map>

#include "common/status.hpp"
#include "crypto/prf.hpp"

namespace datablinder::sse {

namespace {
Bytes keyword_input(const std::string& keyword, std::uint64_t count, std::uint8_t role) {
  Bytes input = to_bytes(keyword);
  append(input, be64(count));
  input.push_back(role);
  return input;
}
}  // namespace

void MitraServer::apply_update(const MitraUpdateToken& token) {
  dict_.put(token.address, token.value);
}

std::vector<Bytes> MitraServer::search(const MitraSearchToken& token) const {
  std::vector<Bytes> out;
  out.reserve(token.addresses.size());
  for (const auto& addr : token.addresses) {
    if (auto v = dict_.get(addr)) out.push_back(std::move(*v));
  }
  return out;
}

MitraClient::MitraClient(BytesView key) : key_(key) {
  require(!key.empty(), "MitraClient: empty key");
}

MitraClient::MitraClient(const SecretBytes& key) : MitraClient(key.expose_secret()) {}

Bytes MitraClient::address_for(const std::string& keyword, std::uint64_t count) const {
  return key_.prf(keyword_input(keyword, count, 0));
}

Bytes MitraClient::pad_for(const std::string& keyword, std::uint64_t count) const {
  return key_.prf(keyword_input(keyword, count, 1));
}

MitraUpdateToken MitraClient::update(MitraOp op, const std::string& keyword,
                                     const DocId& id) {
  const std::uint64_t c = counters_.increment(keyword);
  MitraUpdateToken token;
  token.address = address_for(keyword, c);

  // Payload: op byte || id, XOR-padded with a PRF stream (expanded to fit).
  Bytes payload;
  payload.push_back(static_cast<std::uint8_t>(op));
  append(payload, to_bytes(id));
  Bytes pad = key_.prf_n(keyword_input(keyword, c, 1), payload.size());
  xor_inplace(payload, pad);
  token.value = std::move(payload);
  return token;
}

MitraSearchToken MitraClient::search_token(const std::string& keyword) const {
  MitraSearchToken token;
  const std::uint64_t c = counters_.get(keyword);
  token.addresses.reserve(c);
  for (std::uint64_t i = 1; i <= c; ++i) {
    token.addresses.push_back(address_for(keyword, i));
  }
  return token;
}

std::vector<DocId> MitraClient::resolve(const std::string& keyword,
                                        const std::vector<Bytes>& values) const {
  // Values come back in address order (count 1..c); decrypt each and fold
  // add/delete operations. A delete cancels all earlier adds of the id.
  std::unordered_map<DocId, bool> live;
  std::vector<DocId> order;
  const std::uint64_t c = counters_.get(keyword);
  require(values.size() <= c, "MitraClient::resolve: more values than updates");
  for (std::size_t i = 0; i < values.size(); ++i) {
    Bytes payload = values[i];
    const Bytes pad = key_.prf_n(keyword_input(keyword, i + 1, 1), payload.size());
    xor_inplace(payload, pad);
    require(!payload.empty(), "MitraClient::resolve: empty payload");
    const auto op = static_cast<MitraOp>(payload[0]);
    DocId id(reinterpret_cast<const char*>(payload.data() + 1), payload.size() - 1);
    if (op == MitraOp::kAdd) {
      if (!live.count(id)) order.push_back(id);
      live[id] = true;
    } else {
      live[id] = false;
    }
  }
  std::vector<DocId> out;
  out.reserve(order.size());
  for (const auto& id : order) {
    if (live[id]) out.push_back(id);
  }
  return out;
}

}  // namespace datablinder::sse
