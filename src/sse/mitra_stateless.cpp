#include "sse/mitra_stateless.hpp"

#include <unordered_map>

#include "common/status.hpp"
#include "crypto/gcm.hpp"
#include "crypto/prf.hpp"

namespace datablinder::sse {

namespace {
Bytes keyword_input(const std::string& keyword, std::uint64_t count, std::uint8_t role) {
  Bytes input = to_bytes(keyword);
  append(input, be64(count));
  input.push_back(role);
  return input;
}
}  // namespace

void MitraStatelessServer::put_counter(const Bytes& label, Bytes encrypted_counter) {
  counters_.put(label, std::move(encrypted_counter));
}

std::optional<Bytes> MitraStatelessServer::get_counter(const Bytes& label) const {
  return counters_.get(label);
}

void MitraStatelessServer::apply_update(const MitraUpdateToken& token) {
  entries_.put(token.address, token.value);
}

std::vector<Bytes> MitraStatelessServer::search(const MitraSearchToken& token) const {
  std::vector<Bytes> out;
  out.reserve(token.addresses.size());
  for (const auto& addr : token.addresses) {
    if (auto v = entries_.get(addr)) out.push_back(std::move(*v));
  }
  return out;
}

MitraStatelessClient::MitraStatelessClient(BytesView key)
    : key_(key),
      counter_key_(crypto::prf_labeled(key, "mitra-sl-counter", {})) {
  require(!key.empty(), "MitraStatelessClient: empty key");
}

MitraStatelessClient::MitraStatelessClient(const SecretBytes& key)
    : MitraStatelessClient(key.expose_secret()) {}

Bytes MitraStatelessClient::counter_label(const std::string& keyword) const {
  return key_.prf_labeled("mitra-sl-slot", to_bytes(keyword));
}

std::uint64_t MitraStatelessClient::decode_counter(
    const std::string& keyword, const std::optional<Bytes>& blob) const {
  if (!blob) return 0;
  const crypto::AesGcm gcm(counter_key_);
  auto plain = gcm.open_with_nonce(*blob, to_bytes(keyword));
  if (!plain || plain->size() != 8) {
    throw_error(ErrorCode::kCryptoFailure, "mitra-stateless: bad counter blob");
  }
  return read_be64(*plain);
}

Bytes MitraStatelessClient::encode_counter(const std::string& keyword,
                                           std::uint64_t count) const {
  // Probabilistic: re-encryptions of the same count are unlinkable.
  const crypto::AesGcm gcm(counter_key_);
  return gcm.seal_random_nonce(be64(count), to_bytes(keyword));
}

MitraUpdateToken MitraStatelessClient::update(MitraOp op, const std::string& keyword,
                                              const DocId& id,
                                              std::uint64_t current_count) const {
  const std::uint64_t c = current_count + 1;
  MitraUpdateToken token;
  token.address = key_.prf(keyword_input(keyword, c, 0));
  Bytes payload;
  payload.push_back(static_cast<std::uint8_t>(op));
  append(payload, to_bytes(id));
  xor_inplace(payload, key_.prf_n(keyword_input(keyword, c, 1), payload.size()));
  token.value = std::move(payload);
  return token;
}

MitraSearchToken MitraStatelessClient::search_token(const std::string& keyword,
                                                    std::uint64_t count) const {
  MitraSearchToken token;
  token.addresses.reserve(count);
  for (std::uint64_t i = 1; i <= count; ++i) {
    token.addresses.push_back(key_.prf(keyword_input(keyword, i, 0)));
  }
  return token;
}

std::vector<DocId> MitraStatelessClient::resolve(const std::string& keyword,
                                                 const std::vector<Bytes>& values) const {
  std::unordered_map<DocId, bool> live;
  std::vector<DocId> order;
  for (std::size_t i = 0; i < values.size(); ++i) {
    Bytes payload = values[i];
    xor_inplace(payload, key_.prf_n(keyword_input(keyword, i + 1, 1), payload.size()));
    require(!payload.empty(), "mitra-stateless: empty payload");
    const auto op = static_cast<MitraOp>(payload[0]);
    DocId id(reinterpret_cast<const char*>(payload.data() + 1), payload.size() - 1);
    if (op == MitraOp::kAdd) {
      if (!live.count(id)) order.push_back(id);
      live[id] = true;
    } else {
      live[id] = false;
    }
  }
  std::vector<DocId> out;
  for (const auto& id : order) {
    if (live[id]) out.push_back(id);
  }
  return out;
}

}  // namespace datablinder::sse
