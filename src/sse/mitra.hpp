// Mitra — forward- and backward-private dynamic SSE
// (Chamani, Papadopoulos, Papamanthou, Jalili — CCS 2018).
//
// The client keeps a per-keyword update counter; each update inserts one
// dictionary entry at address PRF(k, w || c || 0) holding (id, op) XOR-padded
// with PRF(k, w || c || 1). Searching keyword w, the client derives all c_w
// addresses and sends them; the server returns the stored values and learns
// nothing that links them to future updates (forward privacy). Deletions
// are lazy: the client cancels (id, del) against (id, add) when resolving.
//
// Paper Table 2: protection Class 2, "Identifiers" leakage, challenge =
// local storage (the counter map lives at the gateway).
#pragma once

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/secret.hpp"
#include "crypto/prf.hpp"
#include "sse/index_common.hpp"

namespace datablinder::sse {

enum class MitraOp : std::uint8_t { kAdd = 0, kDelete = 1 };

/// One prepared dictionary write (sent to the server verbatim).
struct MitraUpdateToken {
  Bytes address;
  Bytes value;
};

/// Search request: the full address list for keyword w.
struct MitraSearchToken {
  std::vector<Bytes> addresses;
};

/// Server side: a plain encrypted dictionary.
class MitraServer {
 public:
  void apply_update(const MitraUpdateToken& token);

  /// Returns the stored values for each address (skipping misses).
  std::vector<Bytes> search(const MitraSearchToken& token) const;

  const EncryptedDict& dict() const noexcept { return dict_; }

 private:
  EncryptedDict dict_;
};

/// Client side: key material + keyword counters.
class MitraClient {
 public:
  explicit MitraClient(BytesView key);
  explicit MitraClient(const SecretBytes& key);

  MitraUpdateToken update(MitraOp op, const std::string& keyword, const DocId& id);

  MitraSearchToken search_token(const std::string& keyword) const;

  /// Decrypts server results and resolves add/delete pairs into the live
  /// id set for the searched keyword.
  std::vector<DocId> resolve(const std::string& keyword,
                             const std::vector<Bytes>& values) const;

  /// Client-state persistence (gateway-local storage).
  Bytes export_state() const { return counters_.serialize(); }
  void import_state(BytesView b) { counters_ = KeywordCounters::deserialize(b); }

  /// Incremental persistence hooks: current count for one keyword, and
  /// restoration of a persisted count.
  std::uint64_t counter(const std::string& keyword) const { return counters_.get(keyword); }
  void restore_counter(const std::string& keyword, std::uint64_t count) {
    counters_.set(keyword, count);
  }

  std::size_t distinct_keywords() const noexcept { return counters_.distinct_keywords(); }

 private:
  Bytes address_for(const std::string& keyword, std::uint64_t count) const;
  Bytes pad_for(const std::string& keyword, std::uint64_t count) const;

  crypto::PrfKey key_;  // hoisted HMAC schedule — every op is PRF-bound
  KeywordCounters counters_;
};

}  // namespace datablinder::sse
