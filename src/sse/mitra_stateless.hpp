// Mitra-Stateless — a stateless-gateway variant of Mitra, addressing the
// paper's concluding research direction: "the gateway is a stateless data
// access middleware ... there exist some secure SE tactics requiring
// keeping the state at the gateway. A challenging research direction
// towards secure cloud-native systems is to design efficient stateless SE
// schemes."
//
// Construction: the per-keyword counter — the only gateway state in Mitra —
// is itself outsourced, stored at the server under a PRF-derived label and
// encrypted with a keyword-derived key. An update becomes a two-round
// protocol (fetch counter, then write counter+entry); a search becomes the
// same fetch followed by the ordinary Mitra address-list query.
//
// Trade-off (documented, and measurable via the Table 2 bench): the
// counter slot for a keyword is a *fixed* label, so the server learns when
// two updates concern the same keyword — the update pattern leaks keyword
// equality, which plain Mitra hides (forward privacy). Query leakage is
// unchanged (identifiers). The gain is operational: any gateway replica —
// or a rebooted one — can serve updates and searches with no local state
// or state synchronization at all.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/secret.hpp"
#include "crypto/prf.hpp"
#include "sse/index_common.hpp"
#include "sse/mitra.hpp"

namespace datablinder::sse {

/// Server side reuses the Mitra dictionary plus a second dictionary for
/// encrypted counters.
class MitraStatelessServer {
 public:
  void put_counter(const Bytes& label, Bytes encrypted_counter);
  std::optional<Bytes> get_counter(const Bytes& label) const;

  void apply_update(const MitraUpdateToken& token);
  std::vector<Bytes> search(const MitraSearchToken& token) const;

  const EncryptedDict& entries() const noexcept { return entries_; }
  const EncryptedDict& counters() const noexcept { return counters_; }

 private:
  EncryptedDict entries_;
  EncryptedDict counters_;
};

/// Client side: key material only — NO mutable state. Every instance
/// constructed from the same key is interchangeable at any time.
class MitraStatelessClient {
 public:
  explicit MitraStatelessClient(BytesView key);
  explicit MitraStatelessClient(const SecretBytes& key);

  /// The fixed counter-slot label for a keyword (request payload of the
  /// first protocol round).
  Bytes counter_label(const std::string& keyword) const;

  /// Decrypts the stored counter blob (0 when absent).
  std::uint64_t decode_counter(const std::string& keyword,
                               const std::optional<Bytes>& blob) const;

  /// Encrypts a counter value for storage.
  Bytes encode_counter(const std::string& keyword, std::uint64_t count) const;

  /// Second round of an update: given the current count, produces the new
  /// dictionary entry (for count+1).
  MitraUpdateToken update(MitraOp op, const std::string& keyword, const DocId& id,
                          std::uint64_t current_count) const;

  /// Second round of a search: all addresses for counts 1..count.
  MitraSearchToken search_token(const std::string& keyword, std::uint64_t count) const;

  /// Shared with Mitra: decrypt + fold add/delete entries.
  std::vector<DocId> resolve(const std::string& keyword,
                             const std::vector<Bytes>& values) const;

 private:
  crypto::PrfKey key_;  // hoisted HMAC schedule
  SecretBytes counter_key_;
};

}  // namespace datablinder::sse
