#include "sse/twolev.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "crypto/gcm.hpp"
#include "crypto/prf.hpp"

namespace datablinder::sse {

namespace {
constexpr std::uint8_t kInlineTag = 0;
constexpr std::uint8_t kBucketTag = 1;

Bytes bucket_key_for(BytesView entry_key, std::uint32_t chunk) {
  return crypto::prf_labeled(entry_key, "2lev-bucket", be32(chunk));
}
}  // namespace

std::size_t TwoLevServerIndex::storage_bytes() const {
  std::size_t n = dictionary.storage_bytes();
  for (const auto& b : bucket_array) n += b.size();
  return n;
}

TwoLevClient::TwoLevClient(BytesView key, TwoLevParams params)
    : key_(key), params_(params) {
  require(!key.empty(), "TwoLevClient: empty key");
  require(params_.bucket_capacity > 0, "TwoLevClient: bucket_capacity must be > 0");
}

TwoLevClient::TwoLevClient(const SecretBytes& key, TwoLevParams params)
    : TwoLevClient(key.expose_secret(), params) {}

Bytes TwoLevClient::entry_key_for(const std::string& keyword) const {
  return key_.prf_labeled("2lev-key", to_bytes(keyword));
}

TwoLevToken TwoLevClient::token(const std::string& keyword) const {
  return {key_.prf_labeled("2lev-label", to_bytes(keyword)), entry_key_for(keyword)};
}

TwoLevServerIndex TwoLevClient::build(
    const std::map<std::string, std::vector<DocId>>& multimap) const {
  TwoLevServerIndex index;

  // First pass: chunk large lists and find the uniform padded bucket size
  // (all buckets in one index must be indistinguishable by length).
  struct PendingBucket {
    Bytes key;        // per-bucket encryption key
    Bytes plaintext;  // unpadded encode_id_list
  };
  std::vector<PendingBucket> pending;
  struct PendingEntry {
    Bytes label;
    Bytes entry_key;
    Bytes plaintext;                       // inline form, or filled later
    std::vector<std::size_t> bucket_refs;  // indices into `pending`
  };
  std::vector<PendingEntry> entries;
  std::size_t max_bucket_plain = 0;

  for (const auto& [keyword, ids] : multimap) {
    const TwoLevToken t = token(keyword);
    PendingEntry entry;
    entry.label = t.label;
    entry.entry_key = t.entry_key;
    if (ids.size() <= params_.inline_threshold) {
      entry.plaintext.push_back(kInlineTag);
      append(entry.plaintext, encode_id_list(ids));
    } else {
      for (std::size_t off = 0; off < ids.size(); off += params_.bucket_capacity) {
        const std::size_t end = std::min(off + params_.bucket_capacity, ids.size());
        PendingBucket bucket;
        bucket.key = bucket_key_for(t.entry_key,
                                    static_cast<std::uint32_t>(entry.bucket_refs.size()));
        bucket.plaintext =
            encode_id_list({ids.begin() + static_cast<std::ptrdiff_t>(off),
                            ids.begin() + static_cast<std::ptrdiff_t>(end)});
        max_bucket_plain = std::max(max_bucket_plain, bucket.plaintext.size());
        entry.bucket_refs.push_back(pending.size());
        pending.push_back(std::move(bucket));
      }
    }
    entries.push_back(std::move(entry));
  }

  // Keyed shuffle of bucket positions: the array order carries no keyword
  // grouping information.
  std::vector<std::uint32_t> position(pending.size());
  for (std::uint32_t i = 0; i < position.size(); ++i) position[i] = i;
  // PRG-shuffled bucket placement: the shuffle seed is a PRF of the index
  // key, so the generator acts as a deterministic expander, not an entropy
  // source — rebuilding with the same key reproduces the same layout.
  DetRng shuffle_rng(  // dblint:allow(rng): PRF-seeded deterministic shuffle
      key_.prf_u64(to_bytes("2lev-shuffle")));
  for (std::size_t i = position.size(); i > 1; --i) {
    std::swap(position[i - 1], position[shuffle_rng.uniform(i)]);
  }

  // Second pass: encrypt buckets (padded uniformly) into their positions.
  index.bucket_array.resize(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    Bytes padded = pending[i].plaintext;
    padded.resize(max_bucket_plain, 0);  // decode_id_list ignores the tail
    const crypto::AesGcm gcm(pending[i].key);
    index.bucket_array[position[i]] = gcm.seal_random_nonce(padded);
  }

  // Third pass: dictionary entries (inline lists, or shuffled indices).
  for (auto& entry : entries) {
    if (entry.bucket_refs.empty()) {
      // entry.plaintext already holds the inline form.
    } else {
      entry.plaintext.push_back(kBucketTag);
      append(entry.plaintext, be32(static_cast<std::uint32_t>(entry.bucket_refs.size())));
      for (const std::size_t ref : entry.bucket_refs) {
        append(entry.plaintext, be32(position[ref]));
      }
    }
    const crypto::AesGcm gcm(entry.entry_key);
    index.dictionary.put(entry.label, gcm.seal_random_nonce(entry.plaintext, entry.label));
  }
  return index;
}

std::vector<std::uint32_t> TwoLevClient::bucket_indices(BytesView decrypted_entry) {
  require(!decrypted_entry.empty(), "2lev: empty entry");
  if (decrypted_entry[0] == kInlineTag) return {};
  require(decrypted_entry[0] == kBucketTag && decrypted_entry.size() >= 5,
          "2lev: malformed entry");
  const std::size_t n = read_be32(decrypted_entry.subspan(1));
  require(decrypted_entry.size() == 5 + 4 * n, "2lev: malformed index list");
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(read_be32(decrypted_entry.subspan(5 + 4 * i)));
  }
  return out;
}

std::vector<DocId> TwoLevClient::resolve(const TwoLevToken& token,
                                         const std::optional<Bytes>& dictionary_entry,
                                         const std::vector<Bytes>& buckets) const {
  if (!dictionary_entry) return {};
  const crypto::AesGcm gcm(token.entry_key);
  auto entry = gcm.open_with_nonce(*dictionary_entry, token.label);
  if (!entry) throw_error(ErrorCode::kCryptoFailure, "2lev: entry failed to decrypt");

  if ((*entry)[0] == kInlineTag) {
    return decode_id_list(BytesView(*entry).subspan(1));
  }
  std::vector<DocId> out;
  for (std::uint32_t chunk = 0; chunk < buckets.size(); ++chunk) {
    const crypto::AesGcm bucket_gcm(bucket_key_for(token.entry_key, chunk));
    auto plain = bucket_gcm.open_with_nonce(buckets[chunk]);
    if (!plain) throw_error(ErrorCode::kCryptoFailure, "2lev: bucket failed to decrypt");
    for (auto& id : decode_id_list(*plain)) out.push_back(std::move(id));
  }
  return out;
}

std::optional<Bytes> TwoLevServer::lookup(const TwoLevServerIndex& index,
                                          const Bytes& label) {
  return index.dictionary.get(label);
}

std::vector<Bytes> TwoLevServer::fetch_buckets(const TwoLevServerIndex& index,
                                               const std::vector<std::uint32_t>& indices) {
  std::vector<Bytes> out;
  out.reserve(indices.size());
  for (const std::uint32_t i : indices) {
    if (i >= index.bucket_array.size()) {
      throw_error(ErrorCode::kProtocolError, "2lev: bucket index out of range");
    }
    out.push_back(index.bucket_array[i]);
  }
  return out;
}

}  // namespace datablinder::sse
