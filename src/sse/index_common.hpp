// Shared plumbing for the searchable-symmetric-encryption schemes.
//
// Every SSE construction in this library stores its server state in an
// `EncryptedDict` — an untrusted dictionary from opaque labels to opaque
// values (the server learns only sizes and access patterns, which is each
// scheme's declared leakage). Client-side helpers encode/decode document-id
// lists and keyword-counter state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"

namespace datablinder::sse {

/// Document identifiers are opaque strings (the middleware uses random hex).
using DocId = std::string;

struct BytesHash {
  std::size_t operator()(const Bytes& b) const noexcept;
};

/// Untrusted label -> value dictionary: the generic SSE server state.
/// Thread-compatible; the cloud node serializes access.
class EncryptedDict {
 public:
  void put(Bytes label, Bytes value);
  std::optional<Bytes> get(const Bytes& label) const;
  bool erase(const Bytes& label);
  bool contains(const Bytes& label) const;
  std::size_t size() const noexcept { return map_.size(); }

  /// Total stored bytes (labels + values) — the storage-overhead metric.
  std::size_t storage_bytes() const noexcept { return storage_bytes_; }

  /// Order-insensitive content digest (replica convergence checks).
  std::uint64_t fingerprint() const;

  void clear();

 private:
  std::unordered_map<Bytes, Bytes, BytesHash> map_;
  std::size_t storage_bytes_ = 0;
};

/// Length-prefixed encoding of a list of DocIds.
Bytes encode_id_list(const std::vector<DocId>& ids);
std::vector<DocId> decode_id_list(BytesView b);

/// Per-keyword update counters (client state for dynamic schemes).
/// Serializable so the gateway can persist it in its local KvStore.
class KeywordCounters {
 public:
  /// Returns the current count for `w` (0 if never seen).
  std::uint64_t get(const std::string& w) const;

  /// Increments and returns the new count.
  std::uint64_t increment(const std::string& w);

  /// Restores a persisted count (gateway-local state recovery).
  void set(const std::string& w, std::uint64_t count) { counts_[w] = count; }

  std::size_t distinct_keywords() const noexcept { return counts_.size(); }

  Bytes serialize() const;
  static KeywordCounters deserialize(BytesView b);

 private:
  std::unordered_map<std::string, std::uint64_t> counts_;
};

}  // namespace datablinder::sse
