#include "sse/iex2lev.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/status.hpp"
#include "crypto/prf.hpp"

namespace datablinder::sse {

namespace {
Bytes stream_input(const std::string& stream, std::uint64_t count, std::uint8_t role) {
  Bytes input = to_bytes(stream);
  append(input, be64(count));
  input.push_back(role);
  return input;
}
}  // namespace

void Iex2LevServer::apply_update(const IexUpdateToken& token) {
  dict_.put(token.address, token.value);
}

std::vector<std::vector<Bytes>> Iex2LevServer::search(const IexConjToken& token) const {
  std::vector<std::vector<Bytes>> out;
  out.reserve(token.lists.size());
  for (const auto& addresses : token.lists) {
    std::vector<Bytes> values;
    values.reserve(addresses.size());
    for (const auto& addr : addresses) {
      auto v = dict_.get(addr);
      // Preserve positional alignment: a miss yields an empty placeholder.
      values.push_back(v ? std::move(*v) : Bytes{});
    }
    out.push_back(std::move(values));
  }
  return out;
}

Iex2LevClient::Iex2LevClient(BytesView key) : key_(key) {
  require(!key.empty(), "Iex2LevClient: empty key");
}

Iex2LevClient::Iex2LevClient(const SecretBytes& key)
    : Iex2LevClient(key.expose_secret()) {}

std::string Iex2LevClient::global_stream(const std::string& w) { return "g\x01" + w; }

std::string Iex2LevClient::pair_stream(const std::string& w, const std::string& v) {
  return "p\x01" + w + "\x01" + v;
}

IexUpdateToken Iex2LevClient::make_token(IexOp op, const std::string& stream,
                                         std::uint64_t count, const DocId& id) const {
  IexUpdateToken token;
  token.address = key_.prf(stream_input(stream, count, 0));
  Bytes payload;
  payload.push_back(static_cast<std::uint8_t>(op));
  append(payload, to_bytes(id));
  xor_inplace(payload, key_.prf_n(stream_input(stream, count, 1), payload.size()));
  token.value = std::move(payload);
  return token;
}

std::vector<IexUpdateToken> Iex2LevClient::update(
    IexOp op, const std::vector<std::string>& keywords, const DocId& id) {
  std::vector<IexUpdateToken> tokens;
  // One global entry per keyword; one local entry per ordered pair. The
  // pair expansion is the 2Lev space cost the paper's Table 2 calls out.
  tokens.reserve(keywords.size() * keywords.size());
  for (const auto& w : keywords) {
    const std::string gs = global_stream(w);
    tokens.push_back(make_token(op, gs, counters_.increment(gs), id));
    for (const auto& v : keywords) {
      if (v == w) continue;
      const std::string ps = pair_stream(w, v);
      tokens.push_back(make_token(op, ps, counters_.increment(ps), id));
    }
  }
  return tokens;
}

IexConjToken Iex2LevClient::conj_token(const std::vector<std::string>& conj) const {
  require(!conj.empty(), "Iex2LevClient: empty conjunction");
  IexConjToken token;
  auto addresses_for = [&](const std::string& stream) {
    std::vector<Bytes> addrs;
    const std::uint64_t c = counters_.get(stream);
    addrs.reserve(c);
    for (std::uint64_t i = 1; i <= c; ++i) {
      addrs.push_back(key_.prf(stream_input(stream, i, 0)));
    }
    return addrs;
  };
  token.lists.push_back(addresses_for(global_stream(conj[0])));
  for (std::size_t j = 1; j < conj.size(); ++j) {
    token.lists.push_back(addresses_for(pair_stream(conj[0], conj[j])));
  }
  return token;
}

std::vector<DocId> Iex2LevClient::resolve_stream(const std::string& stream,
                                                 const std::vector<Bytes>& values) const {
  std::unordered_map<DocId, bool> live;
  std::vector<DocId> order;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i].empty()) continue;  // positional placeholder for a miss
    Bytes payload = values[i];
    xor_inplace(payload, key_.prf_n(stream_input(stream, i + 1, 1), payload.size()));
    const auto op = static_cast<IexOp>(payload[0]);
    DocId id(reinterpret_cast<const char*>(payload.data() + 1), payload.size() - 1);
    if (op == IexOp::kAdd) {
      if (!live.count(id)) order.push_back(id);
      live[id] = true;
    } else {
      live[id] = false;
    }
  }
  std::vector<DocId> out;
  for (const auto& id : order) {
    if (live[id]) out.push_back(id);
  }
  return out;
}

std::vector<DocId> Iex2LevClient::resolve_conj(
    const std::vector<std::string>& conj,
    const std::vector<std::vector<Bytes>>& lists) const {
  require(lists.size() == conj.size(), "Iex2LevClient::resolve_conj: arity mismatch");
  std::vector<DocId> result = resolve_stream(global_stream(conj[0]), lists[0]);
  for (std::size_t j = 1; j < conj.size(); ++j) {
    const std::vector<DocId> pair_ids =
        resolve_stream(pair_stream(conj[0], conj[j]), lists[j]);
    const std::unordered_set<DocId> keep(pair_ids.begin(), pair_ids.end());
    std::erase_if(result, [&](const DocId& id) { return !keep.count(id); });
  }
  return result;
}

std::vector<DocId> Iex2LevClient::query(const BoolQuery& q,
                                        const Iex2LevServer& server) const {
  std::vector<DocId> out;
  std::unordered_set<DocId> seen;
  for (const auto& conj : q.dnf) {
    const IexConjToken token = conj_token(conj);
    const auto lists = server.search(token);
    for (auto& id : resolve_conj(conj, lists)) {
      if (seen.insert(id).second) out.push_back(std::move(id));
    }
  }
  return out;
}

Bytes Iex2LevClient::export_state() const { return counters_.serialize(); }

void Iex2LevClient::import_state(BytesView b) {
  counters_ = KeywordCounters::deserialize(b);
}

}  // namespace datablinder::sse
