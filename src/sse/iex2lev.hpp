// IEX-2Lev — boolean (conjunctive/disjunctive) SSE with worst-case
// sub-linear search (Kamara & Moataz — Eurocrypt 2017), dynamic variant in
// the style of the Clusion library the paper integrated.
//
// Two index levels:
//  * a *global* index: keyword w -> encrypted id list (per-keyword counter
//    addressing, forward-private in the Mitra style), and
//  * a *local* cross-keyword index: pair (w, v) -> encrypted list of ids
//    containing both w and v.
// A conjunction w1 ∧ w2 ∧ ... is answered from global(w1) and the local
// entries (w1, wj); a DNF query is the union of its conjunctions. The
// server only ever sees PRF labels and padded values; intersection and
// union happen at the gateway ("BoolResolution" in SPI Table 1).
//
// Paper Table 2: protection Class 3, "Predicates" leakage, challenge =
// storage implementation complexity (the pair-expanded local index).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/secret.hpp"
#include "crypto/prf.hpp"
#include "sse/index_common.hpp"

namespace datablinder::sse {

/// Boolean query in disjunctive normal form: OR over AND-lists.
struct BoolQuery {
  std::vector<std::vector<std::string>> dnf;
};

struct IexUpdateToken {
  Bytes address;
  Bytes value;
};

enum class IexOp : std::uint8_t { kAdd = 0, kDelete = 1 };

/// Search token for ONE conjunction: the address lists the server must
/// fetch. `lists[0]` is the global list of the first keyword; subsequent
/// entries are local (pair) lists.
struct IexConjToken {
  std::vector<std::vector<Bytes>> lists;
};

class Iex2LevServer {
 public:
  void apply_update(const IexUpdateToken& token);

  /// Fetches each address list; inner vectors keep address order so the
  /// client can realign PRF pads.
  std::vector<std::vector<Bytes>> search(const IexConjToken& token) const;

  const EncryptedDict& dict() const noexcept { return dict_; }

 private:
  EncryptedDict dict_;
};

class Iex2LevClient {
 public:
  explicit Iex2LevClient(BytesView key);
  explicit Iex2LevClient(const SecretBytes& key);

  /// Indexes `id` under every keyword and every ordered keyword pair.
  std::vector<IexUpdateToken> update(IexOp op, const std::vector<std::string>& keywords,
                                     const DocId& id);

  /// Token for one conjunction (must be non-empty).
  IexConjToken conj_token(const std::vector<std::string>& conj) const;

  /// Decrypts the server response for `conj` and intersects the lists.
  std::vector<DocId> resolve_conj(const std::vector<std::string>& conj,
                                  const std::vector<std::vector<Bytes>>& lists) const;

  /// Convenience: evaluates a full DNF query against a server (local call;
  /// the middleware tactic performs the same steps across the RPC channel).
  std::vector<DocId> query(const BoolQuery& q, const Iex2LevServer& server) const;

  Bytes export_state() const;
  void import_state(BytesView b);

 private:
  // Returns one update token for a single (scope-key, counter) stream.
  IexUpdateToken make_token(IexOp op, const std::string& stream, std::uint64_t count,
                            const DocId& id) const;
  std::vector<DocId> resolve_stream(const std::string& stream,
                                    const std::vector<Bytes>& values) const;

  static std::string global_stream(const std::string& w);
  static std::string pair_stream(const std::string& w, const std::string& v);

  crypto::PrfKey key_;  // hoisted HMAC schedule (pair expansion is PRF-heavy)
  KeywordCounters counters_;  // counts per stream (global and pair streams)
};

}  // namespace datablinder::sse
