#include "sse/index_common.hpp"

#include "common/fingerprint.hpp"
#include "common/status.hpp"

namespace datablinder::sse {

std::size_t BytesHash::operator()(const Bytes& b) const noexcept {
  // FNV-1a; labels are PRF outputs so any decent mix works.
  std::size_t h = 1469598103934665603ULL;
  for (std::uint8_t byte : b) {
    h ^= byte;
    h *= 1099511628211ULL;
  }
  return h;
}

void EncryptedDict::put(Bytes label, Bytes value) {
  auto it = map_.find(label);
  if (it != map_.end()) {
    storage_bytes_ -= it->second.size();
    storage_bytes_ += value.size();
    it->second = std::move(value);
  } else {
    storage_bytes_ += label.size() + value.size();
    map_.emplace(std::move(label), std::move(value));
  }
}

std::optional<Bytes> EncryptedDict::get(const Bytes& label) const {
  auto it = map_.find(label);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

bool EncryptedDict::erase(const Bytes& label) {
  auto it = map_.find(label);
  if (it == map_.end()) return false;
  storage_bytes_ -= it->first.size() + it->second.size();
  map_.erase(it);
  return true;
}

bool EncryptedDict::contains(const Bytes& label) const {
  return map_.find(label) != map_.end();
}

void EncryptedDict::clear() {
  map_.clear();
  storage_bytes_ = 0;
}

std::uint64_t EncryptedDict::fingerprint() const {
  // Per-entry FNV-1a hashes combined by sum: unordered_map iteration order
  // differs between byte-identical replicas, the content must not.
  std::uint64_t digest = 0;
  for (const auto& [label, value] : map_) {
    std::uint64_t h = fnv1a(kFnvOffset, label);
    h = fnv1a(h, static_cast<std::uint64_t>(value.size()));
    h = fnv1a(h, value);
    digest += h;
  }
  return digest;
}

Bytes encode_id_list(const std::vector<DocId>& ids) {
  Bytes out = be32(static_cast<std::uint32_t>(ids.size()));
  for (const auto& id : ids) {
    append(out, be32(static_cast<std::uint32_t>(id.size())));
    append(out, to_bytes(id));
  }
  return out;
}

std::vector<DocId> decode_id_list(BytesView b) {
  require(b.size() >= 4, "decode_id_list: truncated");
  const std::size_t n = read_be32(b);
  // Each entry carries a 4-byte length prefix: a forged count larger than
  // the buffer could ever hold must not drive the reserve allocation.
  require(n <= (b.size() - 4) / 4, "decode_id_list: implausible count");
  std::vector<DocId> out;
  out.reserve(n);
  std::size_t off = 4;
  for (std::size_t i = 0; i < n; ++i) {
    require(off + 4 <= b.size(), "decode_id_list: truncated entry");
    const std::size_t len = read_be32(b.subspan(off));
    off += 4;
    require(off + len <= b.size(), "decode_id_list: truncated id");
    out.emplace_back(reinterpret_cast<const char*>(b.data() + off), len);
    off += len;
  }
  return out;
}

std::uint64_t KeywordCounters::get(const std::string& w) const {
  auto it = counts_.find(w);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t KeywordCounters::increment(const std::string& w) { return ++counts_[w]; }

Bytes KeywordCounters::serialize() const {
  Bytes out = be32(static_cast<std::uint32_t>(counts_.size()));
  for (const auto& [w, c] : counts_) {
    append(out, be32(static_cast<std::uint32_t>(w.size())));
    append(out, to_bytes(w));
    append(out, be64(c));
  }
  return out;
}

KeywordCounters KeywordCounters::deserialize(BytesView b) {
  require(b.size() >= 4, "KeywordCounters: truncated");
  const std::size_t n = read_be32(b);
  KeywordCounters out;
  std::size_t off = 4;
  for (std::size_t i = 0; i < n; ++i) {
    require(off + 4 <= b.size(), "KeywordCounters: truncated");
    const std::size_t len = read_be32(b.subspan(off));
    off += 4;
    require(off + len + 8 <= b.size(), "KeywordCounters: truncated");
    std::string w(reinterpret_cast<const char*>(b.data() + off), len);
    off += len;
    out.counts_[std::move(w)] = read_be64(b.subspan(off));
    off += 8;
  }
  return out;
}

}  // namespace datablinder::sse
