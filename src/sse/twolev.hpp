// 2Lev — the static encrypted multimap of Cash et al. (NDSS 2014, the
// paper's reference [12]), the structure the BIEX-2Lev tactic is named
// after and the storage layout the Clusion library implements.
//
// Two levels, chosen per keyword by result-set size:
//   * small lists  — stored INLINE in the dictionary entry (one lookup);
//   * large lists  — chunked into fixed-size encrypted buckets in a flat
//     array; the dictionary entry holds the encrypted list of bucket
//     indices. Buckets are shuffled and padded so the array reveals only
//     its total size (the "storage impl. complexity" Table 2 notes).
//
// This is a *static* scheme: the whole index is built at setup from the
// complete keyword -> ids map (the paper's SE "setup protocol"); the
// dynamic tactics (Mitra-style streams) handle updates. A deployment
// bulk-builds with 2Lev and lets the dynamic layer absorb the delta — the
// classic static+dynamic hybrid.
//
// Leakage: dictionary size, array size, and per-query the access pattern
// of one dictionary entry plus its buckets (response-length rounded up to
// bucket multiples — mild padding for free).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/secret.hpp"
#include "crypto/prf.hpp"
#include "sse/index_common.hpp"

namespace datablinder::sse {

struct TwoLevParams {
  /// Max ids stored inline in the dictionary before spilling to buckets.
  std::size_t inline_threshold = 4;
  /// Ids per array bucket.
  std::size_t bucket_capacity = 8;
};

/// The server-side state produced by the setup protocol: an opaque
/// dictionary plus an opaque bucket array.
struct TwoLevServerIndex {
  EncryptedDict dictionary;
  std::vector<Bytes> bucket_array;

  std::size_t storage_bytes() const;
};

/// Query token: the dictionary label plus the key that unwraps the entry.
struct TwoLevToken {
  Bytes label;
  Bytes entry_key;
};

class TwoLevClient {
 public:
  explicit TwoLevClient(BytesView key, TwoLevParams params = {});
  explicit TwoLevClient(const SecretBytes& key, TwoLevParams params = {});

  /// Setup protocol: builds the full index from the plaintext multimap.
  /// Buckets are padded to capacity and placed in PRG-shuffled order.
  TwoLevServerIndex build(const std::map<std::string, std::vector<DocId>>& multimap) const;

  TwoLevToken token(const std::string& keyword) const;

  /// Resolves a query: decrypts the dictionary entry and the returned
  /// buckets into the id list.
  std::vector<DocId> resolve(const TwoLevToken& token,
                             const std::optional<Bytes>& dictionary_entry,
                             const std::vector<Bytes>& buckets) const;

  /// Which buckets the server must fetch for a decrypted entry — exposed
  /// separately because the server executes it (it only sees indices).
  static std::vector<std::uint32_t> bucket_indices(BytesView decrypted_entry);

  const TwoLevParams& params() const noexcept { return params_; }

 private:
  Bytes entry_key_for(const std::string& keyword) const;

  crypto::PrfKey key_;  // hoisted HMAC schedule — setup is one PRF per keyword
  TwoLevParams params_;
};

/// Server-side query execution: one dictionary lookup plus the indicated
/// bucket fetches. Stateless over the index.
struct TwoLevServer {
  static std::optional<Bytes> lookup(const TwoLevServerIndex& index, const Bytes& label);
  static std::vector<Bytes> fetch_buckets(const TwoLevServerIndex& index,
                                          const std::vector<std::uint32_t>& indices);
};

}  // namespace datablinder::sse
