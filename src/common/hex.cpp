#include "common/hex.hpp"

#include <array>
#include <stdexcept>

namespace datablinder {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

constexpr char kB64Digits[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int b64_val(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}
}  // namespace

std::string hex_encode(BytesView b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0xf]);
  }
  return out;
}

Bytes hex_decode(std::string_view s) {
  if (s.size() % 2 != 0) throw std::invalid_argument("hex_decode: odd length");
  Bytes out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    const int hi = hex_val(s[i]);
    const int lo = hex_val(s[i + 1]);
    if (hi < 0 || lo < 0) throw std::invalid_argument("hex_decode: bad digit");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string base64_encode(BytesView b) {
  std::string out;
  out.reserve((b.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= b.size(); i += 3) {
    const std::uint32_t n = (static_cast<std::uint32_t>(b[i]) << 16) |
                            (static_cast<std::uint32_t>(b[i + 1]) << 8) | b[i + 2];
    out.push_back(kB64Digits[(n >> 18) & 63]);
    out.push_back(kB64Digits[(n >> 12) & 63]);
    out.push_back(kB64Digits[(n >> 6) & 63]);
    out.push_back(kB64Digits[n & 63]);
  }
  const std::size_t rem = b.size() - i;
  if (rem == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(b[i]) << 16;
    out.push_back(kB64Digits[(n >> 18) & 63]);
    out.push_back(kB64Digits[(n >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    const std::uint32_t n = (static_cast<std::uint32_t>(b[i]) << 16) |
                            (static_cast<std::uint32_t>(b[i + 1]) << 8);
    out.push_back(kB64Digits[(n >> 18) & 63]);
    out.push_back(kB64Digits[(n >> 12) & 63]);
    out.push_back(kB64Digits[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Bytes base64_decode(std::string_view s) {
  if (s.size() % 4 != 0) throw std::invalid_argument("base64_decode: bad length");
  Bytes out;
  out.reserve(s.size() / 4 * 3);
  for (std::size_t i = 0; i < s.size(); i += 4) {
    int vals[4];
    int pad = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const char c = s[i + j];
      if (c == '=') {
        if (i + 4 != s.size() || j < 2) {
          throw std::invalid_argument("base64_decode: misplaced padding");
        }
        vals[j] = 0;
        ++pad;
      } else {
        if (pad > 0) throw std::invalid_argument("base64_decode: data after padding");
        vals[j] = b64_val(c);
        if (vals[j] < 0) throw std::invalid_argument("base64_decode: bad digit");
      }
    }
    const std::uint32_t n =
        (static_cast<std::uint32_t>(vals[0]) << 18) |
        (static_cast<std::uint32_t>(vals[1]) << 12) |
        (static_cast<std::uint32_t>(vals[2]) << 6) | static_cast<std::uint32_t>(vals[3]);
    out.push_back(static_cast<std::uint8_t>((n >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>((n >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(n & 0xff));
  }
  return out;
}

}  // namespace datablinder
