// Hex and Base64 codecs used for key material, document ids and debugging.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace datablinder {

/// Lowercase hex encoding.
std::string hex_encode(BytesView b);

/// Decodes a hex string (case-insensitive). Throws std::invalid_argument on
/// odd length or non-hex characters.
Bytes hex_decode(std::string_view s);

/// Standard Base64 (RFC 4648, with padding).
std::string base64_encode(BytesView b);

/// Decodes Base64. Throws std::invalid_argument on malformed input.
Bytes base64_decode(std::string_view s);

}  // namespace datablinder
