// Byte-buffer utilities shared by every DataBlinder module.
//
// All cryptographic and wire-level code in this library operates on
// `Bytes` (a contiguous, owned byte buffer) and `BytesView` (a non-owning
// span). Helpers here cover concatenation, XOR, constant-time comparison
// and conversions to/from std::string.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace datablinder {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Builds a Bytes buffer from a string's raw characters.
Bytes to_bytes(std::string_view s);

/// Interprets a byte buffer as a std::string (no encoding validation).
std::string to_string(BytesView b);

/// Concatenates any number of byte buffers into one.
Bytes concat(std::initializer_list<BytesView> parts);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// XORs `b` into `a` element-wise. Requires a.size() == b.size().
void xor_inplace(std::span<std::uint8_t> a, BytesView b);

/// Returns a ^ b. Requires equal sizes.
Bytes xor_bytes(BytesView a, BytesView b);

/// Constant-time equality check (length leak only), for MAC/tag comparison.
bool ct_equal(BytesView a, BytesView b) noexcept;

/// Big-endian encoding of a 32-bit integer.
Bytes be32(std::uint32_t v);
/// Big-endian encoding of a 64-bit integer.
Bytes be64(std::uint64_t v);
/// Reads a big-endian 32-bit integer. Requires b.size() >= 4.
std::uint32_t read_be32(BytesView b);
/// Reads a big-endian 64-bit integer. Requires b.size() >= 8.
std::uint64_t read_be64(BytesView b);

/// Securely wipes a buffer (best-effort; prevents dead-store elimination).
void secure_wipe(std::span<std::uint8_t> b) noexcept;

}  // namespace datablinder
