// Minimal leveled logger.
//
// The middleware logs tactic selection decisions and protocol events at
// kInfo; benches silence it by raising the level. Not a general-purpose
// logging framework — just enough observability for a middleware library.
#pragma once

#include <sstream>
#include <string>

namespace datablinder {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level (default kWarn so tests/benches stay quiet).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Writes one line to stderr if `level` >= the global level.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define DB_LOG(level) ::datablinder::detail::LogStream(level)
#define DB_LOG_DEBUG DB_LOG(::datablinder::LogLevel::kDebug)
#define DB_LOG_INFO DB_LOG(::datablinder::LogLevel::kInfo)
#define DB_LOG_WARN DB_LOG(::datablinder::LogLevel::kWarn)
#define DB_LOG_ERROR DB_LOG(::datablinder::LogLevel::kError)

}  // namespace datablinder
