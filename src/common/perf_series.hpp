// PerfSeries — one latency series with lock-free fast reads.
//
// Extracted from core/metrics so layers below core (net/ in particular)
// can maintain per-endpoint latency evidence with the same EWMA/quantile
// semantics the adaptive cost model consumes: the replica group's hedged
// reads derive their hedge delay from a replica's p95 and its health score
// from the latency EWMA, and those numbers must mean the same thing as the
// "plan.<tactic>" series the gateway records. core/metrics re-exports these
// types, so existing core code is unaffected by the move.
//
// Concurrency contract: observe() and stats() serialize on the per-series
// mutex; ewma_us()/count()/recent_count() are plain atomic loads usable
// from hot loops without ever touching the mutex.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

namespace datablinder {

struct OpStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
  double ewma_us = 0.0;  // decayed per-call latency (alpha = 1/8)
  double p50_us = 0.0;   // median of the recent-sample window
  double p95_us = 0.0;

  double mean_us() const {
    return count == 0 ? 0.0 : static_cast<double>(total_ns) / static_cast<double>(count) / 1e3;
  }
};

/// One latency series with a stable address. The fields hot-loop readers
/// poll — EWMA and recent-sample count — are plain atomics, so readers
/// never touch the series mutex. Mutation and quantile extraction
/// serialize on the per-series mutex.
class PerfSeries {
 public:
  static constexpr std::size_t kWindow = 128;   // recent-sample ring size
  static constexpr double kAlpha = 0.125;       // EWMA decay per sample

  /// Lock-free fast reads for selection / routing hot loops.
  double ewma_us() const noexcept { return ewma_us_.load(std::memory_order_relaxed); }
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  /// Samples currently in the decay window (saturates at kWindow) — the
  /// "how much recent evidence" input to the prior/observed blend.
  std::uint64_t recent_count() const noexcept {
    return count() < kWindow ? count() : kWindow;
  }

  void observe(std::uint64_t ns);

  /// Cumulative + windowed view (takes the series mutex; sorts the ring).
  OpStats stats() const;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> ewma_us_{0.0};

  mutable std::mutex mutex_;  // guards everything below
  std::uint64_t total_ns_ = 0;
  std::uint64_t max_ns_ = 0;
  std::array<std::uint32_t, kWindow> ring_us_{};  // recent samples, circular
  std::size_t ring_next_ = 0;
};

}  // namespace datablinder
