#include "common/bytes.hpp"

#include <cassert>
#include <cstring>

namespace datablinder {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

Bytes concat(std::initializer_list<BytesView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void xor_inplace(std::span<std::uint8_t> a, BytesView b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] ^= b[i];
}

Bytes xor_bytes(BytesView a, BytesView b) {
  assert(a.size() == b.size());
  Bytes out(a.begin(), a.end());
  xor_inplace(out, b);
  return out;
}

bool ct_equal(BytesView a, BytesView b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

Bytes be32(std::uint32_t v) {
  return {static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
          static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
}

Bytes be64(std::uint64_t v) {
  Bytes out(8);
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return out;
}

std::uint32_t read_be32(BytesView b) {
  assert(b.size() >= 4);
  return (static_cast<std::uint32_t>(b[0]) << 24) |
         (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) | static_cast<std::uint32_t>(b[3]);
}

std::uint64_t read_be64(BytesView b) {
  assert(b.size() >= 8);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | b[i];
  return v;
}

void secure_wipe(std::span<std::uint8_t> b) noexcept {
  volatile std::uint8_t* p = b.data();
  for (std::size_t i = 0; i < b.size(); ++i) p[i] = 0;
}

}  // namespace datablinder
