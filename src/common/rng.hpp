// Random number generation.
//
// Two distinct generators are provided on purpose:
//  * `SecureRng` — cryptographic randomness for keys, nonces and Paillier
//    blinding, sourced from the OS entropy pool (/dev/urandom).
//  * `DetRng`    — fast, seedable, *deterministic* randomness for workload
//    generation, simulation and property tests. Never use for key material.
#pragma once

#include <cstdint>
#include <random>

#include "common/bytes.hpp"

namespace datablinder {

/// Cryptographically secure generator backed by the OS entropy pool.
/// Thread-safe: each call reads independently.
class SecureRng {
 public:
  /// Fills `out` with random bytes. Throws Error(kUnavailable) if the
  /// entropy source cannot be read.
  static void fill(std::span<std::uint8_t> out);

  /// Returns `n` random bytes.
  static Bytes bytes(std::size_t n);

  /// Uniform random integer in [0, bound). Requires bound > 0.
  static std::uint64_t uniform(std::uint64_t bound);
};

/// Deterministic, seedable generator for simulations and tests.
class DetRng {
 public:
  explicit DetRng(std::uint64_t seed) : engine_(seed) {}

  /// Canonical "0 means fresh entropy" seeding rule shared by every
  /// seedable component (fault injection, retry jitter, workloads):
  /// returns `seed` when nonzero, otherwise a std::random_device draw.
  static std::uint64_t seed_or_entropy(std::uint64_t seed);

  /// Uniform in [0, bound). Requires bound > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double real();

  /// Fills a buffer with pseudorandom bytes.
  void fill(std::span<std::uint8_t> out);

  Bytes bytes(std::size_t n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace datablinder
