#include "common/status.hpp"

namespace datablinder {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kCryptoFailure: return "crypto_failure";
    case ErrorCode::kSchemaViolation: return "schema_violation";
    case ErrorCode::kPolicyViolation: return "policy_violation";
    case ErrorCode::kProtocolError: return "protocol_error";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

void throw_error(ErrorCode code, const std::string& message) {
  throw Error(code, message);
}

void require(bool cond, const std::string& message) {
  if (!cond) throw Error(ErrorCode::kInvalidArgument, message);
}

}  // namespace datablinder
