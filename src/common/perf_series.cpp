#include "common/perf_series.hpp"

#include <algorithm>
#include <vector>

namespace datablinder {

void PerfSeries::observe(std::uint64_t ns) {
  const double us = static_cast<double>(ns) / 1e3;
  {
    std::lock_guard lock(mutex_);
    total_ns_ += ns;
    if (ns > max_ns_) max_ns_ = ns;
    ring_us_[ring_next_] = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(ns / 1000, 0xFFFFFFFFull));
    ring_next_ = (ring_next_ + 1) % kWindow;
    // EWMA updated under the same lock (single writer per sample), read
    // lock-free elsewhere. First sample seeds the average directly.
    const double prev = ewma_us_.load(std::memory_order_relaxed);
    const std::uint64_t n = count_.load(std::memory_order_relaxed);
    ewma_us_.store(n == 0 ? us : prev + kAlpha * (us - prev),
                   std::memory_order_relaxed);
    count_.store(n + 1, std::memory_order_relaxed);
  }
}

OpStats PerfSeries::stats() const {
  OpStats s;
  std::lock_guard lock(mutex_);
  s.count = count_.load(std::memory_order_relaxed);
  s.total_ns = total_ns_;
  s.max_ns = max_ns_;
  s.ewma_us = ewma_us_.load(std::memory_order_relaxed);
  const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(s.count, kWindow));
  if (n > 0) {
    std::vector<std::uint32_t> window;
    window.reserve(n);
    // Ring fill order does not matter for quantiles; take the first n slots
    // (exactly the occupied ones until the ring wraps, all of them after).
    window.assign(ring_us_.begin(), ring_us_.begin() + n);
    std::sort(window.begin(), window.end());
    s.p50_us = static_cast<double>(window[(n - 1) / 2]);
    s.p95_us = static_cast<double>(window[(n * 95) / 100 >= n ? n - 1 : (n * 95) / 100]);
  }
  return s;
}

}  // namespace datablinder
