// SecretBytes — taint type for key material.
//
// Every long-lived secret in the library (master keys, derived tactic keys,
// PRF keys, cipher subkeys) is held in a SecretBytes rather than a plain
// Bytes. The type enforces, by construction, the hygiene rules that used to
// be comment-only:
//   * zeroization: the backing buffer is wiped before every deallocation
//     (destruction, move-assignment and vector regrowth all pass through
//     the wiping allocator);
//   * no implicit conversion to Bytes — the raw bytes are reachable only
//     through an explicit expose_secret() call, which the in-repo dblint
//     checker restricts to allowlisted crypto-kernel files (rule `expose`);
//   * no operator== — secrets compare only via the constant-time ct_equal;
//   * redacted formatting: streaming a SecretBytes prints "[REDACTED:n]",
//     never the contents (dblint rule `log-secret` backs this up).
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "common/bytes.hpp"

namespace datablinder {

namespace secret_detail {

/// Test seam: invoked after a secret buffer has been wiped but before it is
/// returned to the heap, so tests can observe zeroization without touching
/// freed memory. Null (disabled) outside tests.
using WipeHook = void (*)(const std::uint8_t* data, std::size_t size);
void set_wipe_hook(WipeHook hook) noexcept;

/// Wipes [p, p+n) through secure_wipe and notifies the test hook.
void wipe_region(std::uint8_t* p, std::size_t n) noexcept;

/// Allocator whose deallocate() wipes the buffer first. Stateless, so
/// moves between containers transfer the buffer without copying.
template <typename T>
struct WipingAllocator {
  using value_type = T;

  WipingAllocator() noexcept = default;
  template <typename U>
  WipingAllocator(const WipingAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) { return std::allocator<T>().allocate(n); }

  void deallocate(T* p, std::size_t n) noexcept {
    wipe_region(reinterpret_cast<std::uint8_t*>(p), n * sizeof(T));
    std::allocator<T>().deallocate(p, n);
  }

  friend bool operator==(const WipingAllocator&, const WipingAllocator&) noexcept {
    return true;
  }
};

using SecretBuffer = std::vector<std::uint8_t, WipingAllocator<std::uint8_t>>;

}  // namespace secret_detail

class SecretBytes {
 public:
  SecretBytes() = default;

  /// Adopts `plaintext`: copies it into wiped storage and wipes the source
  /// buffer, so a key returned by e.g. hkdf() leaves no residue behind.
  explicit SecretBytes(Bytes plaintext);

  /// Copies a view the caller retains responsibility for.
  static SecretBytes from_view(BytesView b);

  /// Move-only: accidental copies of key material are a compile error.
  /// Deliberate copies go through clone().
  SecretBytes(const SecretBytes&) = delete;
  SecretBytes& operator=(const SecretBytes&) = delete;
  SecretBytes(SecretBytes&&) noexcept = default;
  SecretBytes& operator=(SecretBytes&&) noexcept = default;
  ~SecretBytes() = default;  // buffer wiped by the allocator

  SecretBytes clone() const;

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// The only way at the raw bytes. dblint rule `expose` restricts call
  /// sites to the crypto-kernel allowlist.
  BytesView expose_secret() const noexcept { return {data_.data(), data_.size()}; }

  /// Secrets never compare with operator== (variable-time).
  bool operator==(const SecretBytes&) const = delete;

  /// Constant-time equality (length leak only).
  friend bool ct_equal(const SecretBytes& a, const SecretBytes& b) noexcept;

 private:
  secret_detail::SecretBuffer data_;
};

/// Streams as "[REDACTED:n]" — never the contents.
std::ostream& operator<<(std::ostream& os, const SecretBytes& s);

}  // namespace datablinder
