// Order-insensitive structural fingerprinting.
//
// The replica chaos suite checks that independently driven cloud nodes
// converge to identical state. Stores hash each entry with FNV-1a and
// combine entries commutatively (sum), so hash-map iteration order — which
// legitimately differs between byte-identical replicas — cannot affect the
// digest, while any divergence in actual content does.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace datablinder {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a(std::uint64_t h, BytesView b) {
  return fnv1a(h, b.data(), b.size());
}

inline std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  return fnv1a(h, s.data(), s.size());
}

inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof(v));
}

}  // namespace datablinder
