// Error model for DataBlinder.
//
// The library follows the C++ Core Guidelines error-handling philosophy:
// programming errors are asserted, operational failures are reported by
// typed exceptions rooted at `datablinder::Error`. Each subsystem throws a
// category-tagged error so callers (and the middleware core) can translate
// failures into protocol-level responses.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace datablinder {

/// Failure categories roughly matching the middleware subsystems.
enum class ErrorCode {
  kInvalidArgument,   // malformed input to a public API
  kNotFound,          // missing key, document, collection, tactic, ...
  kAlreadyExists,     // duplicate id / schema / registration
  kCryptoFailure,     // authentication tag mismatch, malformed ciphertext
  kSchemaViolation,   // document does not match its configured schema
  kPolicyViolation,   // annotations cannot be satisfied by any tactic
  kProtocolError,     // malformed or unexpected RPC message
  kUnavailable,       // channel closed / endpoint down / injected fault
  kInternal,          // invariant broken; indicates a library bug
};

/// Human-readable name for an ErrorCode (used in logs and messages).
std::string_view error_code_name(ErrorCode code) noexcept;

/// Root of the DataBlinder exception hierarchy.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " + message),
        code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

[[noreturn]] void throw_error(ErrorCode code, const std::string& message);

/// Throws kInvalidArgument unless `cond` holds.
void require(bool cond, const std::string& message);

}  // namespace datablinder
